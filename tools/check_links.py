#!/usr/bin/env python3
"""Markdown link checker for the repository's documentation.

Walks every ``*.md`` file in the repo (skipping ``.git`` and generated
benchmark artifacts), extracts inline links and images, and validates:

* **relative file links** resolve to an existing file or directory,
  relative to the Markdown file that contains them;
* **anchors** (``#section-title``, bare or appended to a file link) match
  a heading in the target file, using GitHub's slugging rules;
* external links (``http(s)://``, ``mailto:``) are *not* fetched — they
  are counted and skipped, so the checker runs offline and deterministic.

Links inside fenced code blocks and inline code spans are ignored.
Exits non-zero listing every broken link as ``file:line: message`` so CI
surfaces them like compiler errors.

Usage::

    python tools/check_links.py [--root REPO_ROOT] [--verbose]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# [text](target) and ![alt](target), with an optional "title" suffix.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
_FENCE_RE = re.compile(r"^\s*(?:```|~~~)")
_INLINE_CODE_RE = re.compile(r"`[^`]*`")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

_SKIP_DIRS = {".git", "__pycache__", "results", ".pytest_cache", "node_modules"}


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """Return the GitHub anchor slug for *heading*, deduplicating via *seen*."""
    # Strip inline code/links down to their text, then apply GitHub's rules:
    # lowercase, drop punctuation, spaces and hyphens preserved as hyphens.
    text = _INLINE_CODE_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)
    slug = re.sub(r"[^\w\- ]", "", text.lower(), flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def heading_anchors(md_file: Path) -> set[str]:
    """Collect the set of valid anchor slugs for *md_file*."""
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in md_file.read_text(encoding="utf-8").splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if m:
            anchors.add(github_slug(m.group(2), seen))
        # Explicit HTML anchors also count: <a name="x"> / id="x".
        for attr in re.finditer(r"(?:name|id)\s*=\s*\"([^\"]+)\"", line):
            anchors.add(attr.group(1))
    return anchors


def iter_links(md_file: Path):
    """Yield ``(line_number, target)`` for every link outside code."""
    in_fence = False
    for lineno, line in enumerate(
        md_file.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = _INLINE_CODE_RE.sub("", line)
        for m in _LINK_RE.finditer(stripped):
            yield lineno, m.group(1)


def find_markdown_files(root: Path) -> list[Path]:
    """Return every Markdown file under *root*, skipping generated dirs."""
    files = []
    for path in sorted(root.rglob("*.md")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        files.append(path)
    return files


def check_repo(root: Path, verbose: bool = False) -> list[str]:
    """Check all Markdown files under *root*; return broken-link messages."""
    md_files = find_markdown_files(root)
    anchor_cache: dict[Path, set[str]] = {}
    errors: list[str] = []
    checked = external = 0

    def anchors_of(path: Path) -> set[str]:
        if path not in anchor_cache:
            anchor_cache[path] = heading_anchors(path)
        return anchor_cache[path]

    for md in md_files:
        rel_md = md.relative_to(root)
        for lineno, target in iter_links(md):
            if target.startswith(_EXTERNAL_PREFIXES):
                external += 1
                continue
            checked += 1
            if target.startswith("#"):
                anchor = target[1:]
                if anchor not in anchors_of(md):
                    errors.append(
                        f"{rel_md}:{lineno}: broken anchor '#{anchor}'"
                    )
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{rel_md}:{lineno}: broken link '{target}' "
                    f"(no such file: {path_part})"
                )
                continue
            if anchor:
                if resolved.suffix.lower() != ".md":
                    errors.append(
                        f"{rel_md}:{lineno}: anchor on non-Markdown "
                        f"target '{target}'"
                    )
                elif anchor not in anchors_of(resolved):
                    errors.append(
                        f"{rel_md}:{lineno}: broken anchor '{target}'"
                    )
    if verbose:
        print(
            f"checked {checked} relative links across {len(md_files)} files "
            f"({external} external links skipped)"
        )
    return errors


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root to scan (default: this repo)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print a summary line"
    )
    ns = parser.parse_args(argv)
    errors = check_repo(ns.root.resolve(), verbose=ns.verbose)
    for err in errors:
        print(err, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
