"""Worker supervision: crash classification, fast detection, gang teardown.

The acceptance bar for the supervision layer: a SIGKILLed / hung /
silently-exited rank surfaces as a classified WorkerCrash within seconds —
never the 600s run timeout — the whole gang is torn down (kill escalation
included), and the failure path still accounts for every rank that managed
to report.
"""

import multiprocessing as mp
import os
import signal
import time

import numpy as np
import pytest

from repro.errors import MPIError, WorkerCrash
from repro.mpi import process_backend
from repro.mpi.process_backend import run_mpi_processes
from repro.mpi.supervisor import CrashAgent, classify_exit

#: well under the run timeout; detection should beat this by a wide margin
DETECTION_DEADLINE_S = 10.0


# rank programs must be module-level (picklable) for the process backend
def _boundary_prog(comm):
    """One job boundary (where a CrashAgent fires), then return the rank."""
    comm.check_fault(0, "before")
    return comm.rank


def _shuffle_then_boundary_prog(comm):
    """Put real segments in flight before the armed boundary."""
    comm.alltoall([np.arange(500) for _ in range(comm.size)])
    comm.check_fault(0, "before")
    comm.alltoall([np.arange(500) for _ in range(comm.size)])
    return comm.rank


def _stubborn_prog(comm):
    """Ignore SIGTERM, then hit the armed boundary (hang agent)."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    comm.check_fault(0, "before")
    return comm.rank


def _all_error_prog(comm):
    raise ValueError(f"rank {comm.rank} boom")


def _assert_no_children():
    # join_thread-ed queues spawn no processes; anything alive is a leak
    deadline = time.monotonic() + 5.0
    while mp.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert mp.active_children() == []


class TestClassifyExit:
    def test_sigkill_names_signal_and_hints_oom(self):
        crash = classify_exit(2, -signal.SIGKILL)
        assert isinstance(crash, WorkerCrash)
        assert crash.rank == 2 and crash.kind == "signal"
        assert crash.signal_name == "SIGKILL"
        assert "SIGKILL" in str(crash) and "OOM" in str(crash)

    def test_sigsegv_named_without_oom_hint(self):
        crash = classify_exit(0, -signal.SIGSEGV)
        assert crash.signal_name == "SIGSEGV"
        assert "OOM" not in str(crash)

    def test_nonzero_exit(self):
        crash = classify_exit(1, 23)
        assert crash.kind == "exit" and crash.exitcode == 23
        assert "code 23" in str(crash)

    def test_silent_zero_exit(self):
        crash = classify_exit(3, 0)
        assert crash.kind == "silent"

    def test_as_report_is_plain_data(self):
        report = classify_exit(1, -9).as_report()
        assert report == {
            "rank": 1, "kind": "signal", "exitcode": -9,
            "signal": "SIGKILL", "detail": report["detail"],
        }


class TestCrashAgentSpec:
    def test_full_spec_round_trip(self):
        a = CrashAgent.from_spec("exit:rank=2,job=1,when=after,code=7,marker=/tmp/m")
        assert (a.mode, a.rank, a.job, a.when, a.exit_code, a.marker) == (
            "exit", 2, 1, "after", 7, "/tmp/m"
        )

    def test_defaults(self):
        a = CrashAgent.from_spec("kill:rank=0")
        assert (a.job, a.when, a.marker) == (0, "before", None)

    @pytest.mark.parametrize("spec", [
        "explode:rank=1",          # unknown mode
        "kill:job=0",              # no rank
        "kill:rank=1,blast=2",     # unknown field
        "kill:rank=1,when=during",  # bad boundary
        "kill:rank",               # not key=value
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            CrashAgent.from_spec(spec)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("PAPAR_CRASH_AGENT", raising=False)
        assert CrashAgent.from_env() is None
        monkeypatch.setenv("PAPAR_CRASH_AGENT", "hang:rank=3")
        agent = CrashAgent.from_env()
        assert agent.mode == "hang" and agent.rank == 3

    def test_marker_makes_it_fire_once(self, tmp_path):
        marker = str(tmp_path / "fired")
        agent = CrashAgent("kill", rank=0, marker=marker)
        assert agent._arm_once() is True
        assert os.path.exists(marker)
        assert agent._arm_once() is False  # second attempt: already fired

    def test_off_target_boundaries_do_nothing(self):
        agent = CrashAgent("exit", rank=1, job=2, when="after")
        agent.check_crash(0, 2, "after")    # wrong rank
        agent.check_crash(1, 1, "after")    # wrong job
        agent.check_crash(1, 2, "before")   # wrong boundary
        assert agent.scale_compute(1, 2.5) == 2.5


class TestCrashDetection:
    """Real faults surface as classified WorkerCrash, fast."""

    def test_sigkill_detected_quickly_with_rank_and_signal(self):
        agent = CrashAgent("kill", rank=1)
        start = time.monotonic()
        with pytest.raises(WorkerCrash) as excinfo:
            run_mpi_processes(_boundary_prog, 3, timeout=600.0, crash_agent=agent)
        elapsed = time.monotonic() - start
        assert elapsed < DETECTION_DEADLINE_S, f"detection took {elapsed:.1f}s"
        crash = excinfo.value
        assert crash.rank == 1 and crash.kind == "signal"
        assert crash.signal_name == "SIGKILL"
        assert "rank 1" in str(crash) and "SIGKILL" in str(crash)
        _assert_no_children()

    def test_nonzero_exit_detected_and_classified(self):
        agent = CrashAgent("exit", rank=2, exit_code=23)
        with pytest.raises(WorkerCrash) as excinfo:
            run_mpi_processes(_boundary_prog, 3, timeout=600.0, crash_agent=agent)
        assert excinfo.value.rank == 2
        assert excinfo.value.kind == "exit"
        assert excinfo.value.exitcode == 23
        _assert_no_children()

    def test_hang_detected_via_heartbeat_loss(self):
        agent = CrashAgent("hang", rank=1)
        start = time.monotonic()
        with pytest.raises(WorkerCrash) as excinfo:
            run_mpi_processes(
                _boundary_prog, 3, timeout=600.0, hang_timeout=1.5, crash_agent=agent
            )
        elapsed = time.monotonic() - start
        assert elapsed < DETECTION_DEADLINE_S
        assert excinfo.value.rank == 1 and excinfo.value.kind == "hang"
        assert "heartbeat" in str(excinfo.value)
        _assert_no_children()

    def test_no_shm_segments_leak_after_kill(self):
        from repro.mpi.shm import scan_segments

        before = set(scan_segments("pp"))
        agent = CrashAgent("kill", rank=1)
        with pytest.raises(WorkerCrash):
            run_mpi_processes(
                _shuffle_then_boundary_prog, 3, timeout=600.0, crash_agent=agent
            )
        assert set(scan_segments("pp")) - before == set()
        _assert_no_children()

    def test_env_var_arms_the_agent(self, monkeypatch):
        monkeypatch.setenv("PAPAR_CRASH_AGENT", "exit:rank=0,code=11")
        with pytest.raises(WorkerCrash) as excinfo:
            run_mpi_processes(_boundary_prog, 2, timeout=600.0)
        assert excinfo.value.rank == 0 and excinfo.value.exitcode == 11


class TestTeardownEscalation:
    def test_sigterm_immune_worker_is_killed_not_leaked(self, monkeypatch):
        # a SIGTERM-blind hung worker must fall through to kill() instead of
        # surviving the old terminate+join teardown
        monkeypatch.setattr(process_backend, "TERM_GRACE", 0.5)
        agent = CrashAgent("hang", rank=1)
        with pytest.raises(WorkerCrash) as excinfo:
            run_mpi_processes(
                _stubborn_prog, 3, timeout=600.0, hang_timeout=1.0, crash_agent=agent
            )
        assert excinfo.value.kind == "hang"
        _assert_no_children()


class TestFailureAccounting:
    def test_error_path_drains_all_exit_messages(self):
        with pytest.raises(ValueError, match="boom") as excinfo:
            run_mpi_processes(_all_error_prog, 3)
        transport = excinfo.value.papar_transport
        # every rank errored near-simultaneously; the drain must still fold
        # all three exit messages into the accounting
        assert set(transport["per_rank"]) == {0, 1, 2}
        assert transport["kind"] == "shm"
        _assert_no_children()

    def test_crash_error_carries_partial_transport(self):
        agent = CrashAgent("kill", rank=1)
        with pytest.raises(WorkerCrash) as excinfo:
            run_mpi_processes(
                _shuffle_then_boundary_prog, 3, timeout=600.0, crash_agent=agent
            )
        transport = excinfo.value.papar_transport
        assert transport["kind"] == "shm"  # summary exists even on crash

    def test_timeout_names_pending_ranks(self):
        agent = CrashAgent("hang", rank=1)
        with pytest.raises(MPIError, match="pending ranks \\[1\\]"):
            # hang detection off: only the (short) global timeout can fire
            run_mpi_processes(
                _boundary_prog, 3, timeout=2.0, hang_timeout=None, crash_agent=agent
            )
        _assert_no_children()
