"""Unit tests for the shared-memory payload transport (repro.mpi.shm)."""

import dataclasses
import gc
import queue
import secrets

import numpy as np
import pytest

from repro.errors import MPIError
from repro.mpi.shm import (
    KIND_ARRAY,
    KIND_INLINE,
    KIND_OBJECT,
    MIN_SEGMENT,
    ShmPool,
    _attach,
    decode_payload,
    encode_payload,
    scan_segments,
    sweep_pending_closes,
    unlink_segments,
)


@pytest.fixture
def prefix():
    return f"tst{secrets.token_hex(4)}"


@pytest.fixture
def pool(prefix):
    release = queue.Queue()
    names = queue.Queue()
    p = ShmPool(prefix, rank=0, release_queue=release, names_queue=names)
    yield p
    gc.collect()
    sweep_pending_closes()
    p.close()
    unlink_segments(scan_segments(prefix))
    assert scan_segments(prefix) == []


def _roundtrip(obj, pool, **kw):
    return decode_payload(encode_payload(obj, pool), **kw)


class TestEncodeKinds:
    def test_bare_array_skips_pickle(self, pool):
        env = encode_payload(np.arange(100, dtype=np.int64), pool)
        assert env.kind == KIND_ARRAY
        assert env.blob is None
        assert env.oob_bytes == 800
        assert env.fallback_bytes == 0

    def test_structured_array_keeps_fields_via_pickle(self, pool):
        arr = np.zeros(10, dtype=[("a", "i8"), ("b", "f4")])
        env = encode_payload(arr, pool)
        assert env.kind == KIND_OBJECT
        out = decode_payload(env)
        assert out.dtype == arr.dtype
        np.testing.assert_array_equal(out["a"], arr["a"])

    def test_containers_with_arrays_go_out_of_band(self, pool):
        obj = {"xs": np.arange(1000.0), "label": "chunk-3"}
        env = encode_payload(obj, pool)
        assert env.kind == KIND_OBJECT
        assert env.oob_bytes >= 8000
        assert env.fallback_bytes == 0

    def test_plain_objects_stay_inline(self, pool):
        env = encode_payload({"rank": 3, "label": "done"}, pool)
        assert env.kind == KIND_INLINE
        assert env.segment is None
        assert env.oob_bytes == 0
        assert env.fallback_bytes == 0

    def test_empty_array_needs_no_segment(self, pool):
        env = encode_payload(np.empty((0, 4), dtype=np.float32), pool)
        assert env.segment is None
        out = decode_payload(env)
        assert out.shape == (0, 4)
        assert out.dtype == np.float32
        assert pool.stats.created == 0


class TestRoundTrips:
    @pytest.mark.parametrize("dtype", ["i1", "u2", "i4", "i8", "f4", "f8", "c16"])
    def test_bare_array_all_dtypes(self, pool, dtype):
        arr = (np.arange(257) * 3).astype(dtype)
        np.testing.assert_array_equal(_roundtrip(arr, pool), arr)

    def test_multidimensional_shape_preserved(self, pool):
        arr = np.arange(24.0).reshape(2, 3, 4)
        out = _roundtrip(arr, pool)
        assert out.shape == (2, 3, 4)
        np.testing.assert_array_equal(out, arr)

    def test_noncontiguous_input_is_handled(self, pool):
        base = np.arange(100, dtype=np.int64)
        np.testing.assert_array_equal(_roundtrip(base[::2], pool), base[::2])

    def test_nested_object_roundtrip(self, pool):
        obj = {"a": np.arange(50.0), "b": [np.ones(3, dtype=np.int32), "x"], "n": 7}
        out = _roundtrip(obj, pool)
        np.testing.assert_array_equal(out["a"], obj["a"])
        np.testing.assert_array_equal(out["b"][0], obj["b"][0])
        assert out["b"][1] == "x"
        assert out["n"] == 7

    def test_views_are_read_only(self, pool):
        out = _roundtrip(np.arange(10), pool)
        with pytest.raises(ValueError):
            out[0] = 99

    def test_copy_mode_returns_writable_arrays(self, pool):
        out = _roundtrip(np.arange(10), pool, copy=True)
        out[0] = 99  # ordinary memory, not a segment view
        assert out[0] == 99

    def test_copy_mode_releases_immediately(self, pool):
        fired = []
        env = encode_payload(np.arange(10), pool)
        decode_payload(env, release_cb=lambda: fired.append(env.segment), copy=True)
        assert fired == [env.segment]


class TestFallback:
    def test_unpicklable_with_buffers_falls_back_inline(self, pool):
        class FlakyOnce:
            """Raises on the first pickle attempt, succeeds on the retry."""

            calls = [0]

            def __reduce__(self):
                self.calls[0] += 1
                if self.calls[0] == 1:
                    raise RuntimeError("no out-of-band for me")
                return (str, ("ok",))

        env = encode_payload(FlakyOnce(), pool)
        assert env.kind == KIND_INLINE
        assert env.fallback_bytes == len(env.blob) > 0
        assert decode_payload(env) == "ok"


class TestCorruption:
    def test_corrupt_segment_bytes_raise(self, pool):
        env = encode_payload(np.arange(100, dtype=np.int64), pool)
        shm = _attach(env.segment)
        shm.buf[8] ^= 0xFF
        shm.close()
        with pytest.raises(MPIError, match="crc mismatch"):
            decode_payload(env)

    def test_corrupt_inline_blob_raises(self, pool):
        env = encode_payload({"plain": True}, pool)
        bad = dataclasses.replace(env, blob=env.blob[:-1] + b"\x00")
        with pytest.raises(MPIError, match="crc mismatch"):
            decode_payload(bad)

    def test_corrupt_object_skeleton_raises(self, pool):
        env = encode_payload({"xs": np.arange(100.0)}, pool)
        bad = dataclasses.replace(env, crc=env.crc ^ 1)
        with pytest.raises(MPIError, match="crc mismatch"):
            decode_payload(bad)


class TestPoolRecycling:
    def test_release_cycle_reuses_segments(self, pool, prefix):
        env = encode_payload(np.arange(512, dtype=np.int64), pool)
        out = decode_payload(
            env, release_cb=lambda: pool._release_queue.put(env.segment)
        )
        assert pool.stats.created == 1
        del out
        gc.collect()
        env2 = encode_payload(np.arange(512, dtype=np.int64), pool)
        assert env2.segment == env.segment
        assert pool.stats.reused == 1
        assert pool.stats.created == 1

    def test_size_classes_are_powers_of_two(self, pool):
        pool.acquire(1)
        pool.acquire(MIN_SEGMENT + 1)
        assert pool.stats.bytes_allocated == MIN_SEGMENT + 2 * MIN_SEGMENT

    def test_ledger_records_every_created_segment(self, pool):
        encode_payload(np.arange(10), pool)
        encode_payload({"xs": np.arange(9000.0)}, pool)
        names = []
        while True:
            try:
                names.append(pool._names_queue.get_nowait())
            except queue.Empty:
                break
        assert len(names) == pool.stats.created == 2


class TestSpawnerCleanup:
    def test_unlink_segments_removes_everything(self, prefix):
        pool = ShmPool(prefix, rank=0)
        encode_payload(np.arange(100), pool)
        encode_payload(np.arange(10000.0), pool)
        assert len(scan_segments(prefix)) == 2
        pool.close()
        assert unlink_segments(scan_segments(prefix)) == 2
        assert scan_segments(prefix) == []

    def test_unlink_tolerates_missing_names(self):
        assert unlink_segments(["definitely-not-a-segment-name"]) == 0
