"""MPI runtime stress and property tests."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpi import MAX, MIN, SUM, run_mpi

FAST = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCollectiveProperties:
    @FAST
    @given(
        size=st.integers(1, 7),
        root=st.integers(0, 6),
        values=st.lists(st.integers(-1000, 1000), min_size=7, max_size=7),
    )
    def test_reduce_equals_python_sum(self, size, root, values):
        root = root % size

        def prog(comm):
            return comm.reduce(values[comm.rank], SUM, root=root)

        run = run_mpi(prog, size)
        assert run.results[root] == sum(values[:size])

    @FAST
    @given(size=st.integers(1, 6), data=st.binary(max_size=2000))
    def test_bcast_arbitrary_payload(self, size, data):
        def prog(comm):
            return comm.bcast(data if comm.rank == 0 else None, root=0)

        run = run_mpi(prog, size)
        assert all(r == data for r in run.results)

    @FAST
    @given(size=st.integers(2, 6), seed=st.integers(0, 100))
    def test_alltoall_numpy_payloads(self, size, seed):
        def prog(comm):
            rng = np.random.default_rng(seed * 100 + comm.rank)
            chunks = [rng.integers(0, 100, size=d + 1) for d in range(comm.size)]
            received = comm.alltoall(chunks)
            return [c.sum() for c in received]

        run = run_mpi(prog, size)
        # recompute expected sums
        for rank in range(size):
            expected = []
            for src in range(size):
                rng = np.random.default_rng(seed * 100 + src)
                chunks = [rng.integers(0, 100, size=d + 1) for d in range(size)]
                expected.append(chunks[rank].sum())
            assert run.results[rank] == expected

    @FAST
    @given(size=st.integers(1, 6))
    def test_scan_exscan_relation(self, size):
        def prog(comm):
            inc = comm.scan(comm.rank + 1, SUM)
            exc = comm.exscan(comm.rank + 1, SUM, identity=0)
            return inc - exc == comm.rank + 1

        run = run_mpi(prog, size)
        assert all(run.results)


class TestMessageStress:
    def test_many_small_messages(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(500):
                    comm.send(i, dest=1, tag=i % 7)
                return None
            out = []
            for i in range(500):
                out.append(comm.recv(source=0, tag=i % 7))
            return out

        run = run_mpi(prog, 2)
        # FIFO holds per (source, tag) stream
        received = run.results[1]
        by_tag = {}
        for v in received:
            by_tag.setdefault(v % 7, []).append(v)
        for tag, values in by_tag.items():
            assert values == sorted(values)

    def test_ring_pipeline(self):
        """Token circulates the ring many times without deadlock."""

        def prog(comm):
            token = 0
            nxt = (comm.rank + 1) % comm.size
            prev = (comm.rank - 1) % comm.size
            for _ in range(50):
                if comm.rank == 0:
                    comm.send(token + 1, dest=nxt)
                    token = comm.recv(source=prev)
                else:
                    token = comm.recv(source=prev)
                    comm.send(token + 1, dest=nxt)
            return token

        run = run_mpi(prog, 5)
        assert run.results[0] == 50 * 5

    def test_all_pairs_concurrent_exchange(self):
        def prog(comm):
            for peer in range(comm.size):
                if peer != comm.rank:
                    comm.send((comm.rank, peer), dest=peer, tag=99)
            got = [comm.recv(tag=99) for _ in range(comm.size - 1)]
            return sorted(got)

        run = run_mpi(prog, 6)
        for rank, got in enumerate(run.results):
            assert got == sorted((s, rank) for s in range(6) if s != rank)

    def test_large_buffer_alltoallv(self):
        def prog(comm):
            n = 200_000
            counts = [n // comm.size] * comm.size
            counts[-1] += n - sum(counts)
            sendbuf = np.full(n, comm.rank, dtype=np.int64)
            recvbuf, recvcounts = comm.Alltoallv(sendbuf, counts)
            return int(recvbuf.sum()), int(recvcounts.sum())

        run = run_mpi(prog, 4)
        for rank, (total, count) in enumerate(run.results):
            assert count > 0
            # received chunks are constant arrays from each source
            assert total == sum(
                src * (200_000 // 4 + (200_000 - 4 * (200_000 // 4) if src == 3 else 0))
                for src in range(4)
            )

    def test_nested_communicators(self):
        """split() inside split() with collectives at both levels."""

        def prog(comm):
            half = comm.split(color=comm.rank // 4)
            quarter = half.split(color=half.rank // 2)
            return (
                comm.allreduce(1, SUM),
                half.allreduce(1, SUM),
                quarter.allreduce(1, SUM),
            )

        run = run_mpi(prog, 8)
        assert all(r == (8, 4, 2) for r in run.results)
