"""Buffer-path (capitalized) collectives on numpy arrays."""

import numpy as np
import pytest

from repro.mpi import MAX, SUM, run_mpi

SIZES = [1, 2, 3, 4, 7]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_Bcast(size, root):
    root = size - 1 if root == "last" else root

    def prog(comm):
        buf = np.arange(50, dtype=np.float64) if comm.rank == root else np.zeros(50)
        comm.Bcast(buf, root=root)
        return buf

    run = run_mpi(prog, size)
    for r in run.results:
        np.testing.assert_array_equal(r, np.arange(50, dtype=np.float64))


@pytest.mark.parametrize("size", SIZES)
def test_Reduce_sum(size):
    def prog(comm):
        return comm.Reduce(np.full(10, comm.rank + 1, dtype=np.int64), SUM, root=0)

    run = run_mpi(prog, size)
    expected = size * (size + 1) // 2
    np.testing.assert_array_equal(run.results[0], np.full(10, expected))
    assert all(r is None for r in run.results[1:])


@pytest.mark.parametrize("size", SIZES)
def test_Allreduce(size):
    def prog(comm):
        return comm.Allreduce(np.array([comm.rank, -comm.rank], dtype=np.float64), MAX)

    run = run_mpi(prog, size)
    for r in run.results:
        np.testing.assert_array_equal(r, [size - 1, 0])


def test_Reduce_does_not_mutate_input():
    def prog(comm):
        buf = np.full(5, comm.rank + 1, dtype=np.int64)
        comm.Reduce(buf, SUM, root=0)
        return buf

    run = run_mpi(prog, 4)
    for rank, buf in enumerate(run.results):
        np.testing.assert_array_equal(buf, np.full(5, rank + 1))


@pytest.mark.parametrize("size", SIZES)
def test_Allgatherv(size):
    def prog(comm):
        local = np.full(comm.rank + 1, comm.rank, dtype=np.int64)
        recvbuf, counts = comm.Allgatherv(local)
        return recvbuf, counts

    run = run_mpi(prog, size)
    expected = np.concatenate([np.full(r + 1, r, dtype=np.int64) for r in range(size)])
    for recvbuf, counts in run.results:
        np.testing.assert_array_equal(recvbuf, expected)
        np.testing.assert_array_equal(counts, np.arange(1, size + 1))


def test_Allgatherv_with_empty_contribution():
    def prog(comm):
        n = 0 if comm.rank == 1 else 3
        local = np.full(n, comm.rank, dtype=np.int64)
        recvbuf, counts = comm.Allgatherv(local)
        return recvbuf, counts

    run = run_mpi(prog, 3)
    for recvbuf, counts in run.results:
        assert counts.tolist() == [3, 0, 3]
        np.testing.assert_array_equal(recvbuf, [0, 0, 0, 2, 2, 2])


def test_buffer_collectives_charge_virtual_time():
    from repro.cluster import ClusterModel, INFINIBAND_QDR

    cluster = ClusterModel(num_nodes=2, ranks_per_node=2, network=INFINIBAND_QDR)

    def prog(comm):
        comm.Allreduce(np.ones(100_000), SUM)
        return comm.clock.now

    run = run_mpi(prog, 4, cluster=cluster)
    assert all(t > 0 for t in run.results)
