"""Abort, probe, and deadlock-diagnosis paths of the fabric.

Companion to test_failure_injection.py: these tests pin down the *prompt*
wakeup guarantees (abort must not wait out the deadlock grace), the pending
``(source, tag)`` state carried by :class:`~repro.errors.DeadlockError`, and
the perf-counter merge over dead ranks' ``None`` slots.
"""

import threading
import time

import pytest

from repro.errors import DeadlockError, MPIError
from repro.mapreduce.columnar import PerfCounters
from repro.mpi import run_mpi
from repro.mpi.fabric import Fabric


class TestAbortWakesWaiters:
    def test_abort_wakes_coordinate_waiters_promptly(self):
        """Waiters parked in the split/collective rendezvous must not sleep
        out the (long) deadlock grace once the fabric is dead."""
        fabric = Fabric(3, deadlock_grace=60.0)
        errors = []

        def waiter(rank):
            try:
                fabric.coordinate("split-round", rank, rank, size=3)
            except MPIError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=waiter, args=(r,), daemon=True)
                   for r in (0, 1)]  # rank 2 never arrives
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        time.sleep(0.05)
        fabric.abort(RuntimeError("rank 2 died"))
        for t in threads:
            t.join(timeout=5)
        assert all(not t.is_alive() for t in threads)
        assert time.perf_counter() - t0 < 5.0, "waiters slept instead of waking"
        assert len(errors) == 2
        assert all("aborted" in str(e) for e in errors)

    def test_mid_collective_abort_ends_run_promptly(self):
        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("dies mid-collective")
            comm.barrier()

        t0 = time.perf_counter()
        with pytest.raises((RuntimeError, MPIError)):
            run_mpi(prog, 4, deadlock_grace=60.0)
        assert time.perf_counter() - t0 < 5.0

    def test_mid_split_abort_ends_run_promptly(self):
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("dies before split")
            return comm.split(color=comm.rank % 2)

        t0 = time.perf_counter()
        with pytest.raises((RuntimeError, MPIError)):
            run_mpi(prog, 4, deadlock_grace=60.0)
        assert time.perf_counter() - t0 < 5.0

    def test_first_abort_wins(self):
        fabric = Fabric(2)
        root = RuntimeError("root cause")
        fabric.abort(root)
        fabric.abort(MPIError("follow-on from a sibling rank"))
        assert fabric.aborted is root


class TestProbeAfterAbort:
    def test_probe_after_abort_raises(self):
        fabric = Fabric(2)
        fabric.abort(RuntimeError("dead"))
        with pytest.raises(MPIError, match="aborted"):
            fabric.probe(0, source=1, tag=0)

    def test_comm_probe_after_peer_death_raises(self):
        started = threading.Event()

        def prog(comm):
            if comm.rank == 1:
                started.wait(timeout=5)
                raise RuntimeError("peer dies")
            started.set()
            # spin until the fabric dies under us: probe must raise, not
            # silently return False forever
            for _ in range(2000):
                comm.probe(source=1, tag=9)
                time.sleep(0.001)
            raise AssertionError("probe never noticed the abort")

        with pytest.raises((RuntimeError, MPIError)):
            run_mpi(prog, 2, deadlock_grace=60.0)


class TestDeadlockDiagnosis:
    def test_deadlock_error_carries_pending_state(self):
        fabric = Fabric(2, deadlock_grace=0.1)
        with pytest.raises(DeadlockError) as err:
            fabric.collect(0, source=1, tag=7)
        assert err.value.rank == 0
        assert err.value.pending == {0: (1, 7)}
        assert "(source=1, tag=7)" in str(err.value)

    def test_deadlock_error_names_all_blocked_ranks(self):
        fabric = Fabric(3, deadlock_grace=0.3)
        caught = []

        def blocked_receiver():
            try:
                fabric.collect(1, source=2, tag=4)
            except MPIError as exc:
                caught.append(exc)

        t = threading.Thread(target=blocked_receiver, daemon=True)
        t.start()
        time.sleep(0.05)
        with pytest.raises(DeadlockError) as err:
            fabric.collect(0, source=2, tag=3)
        t.join(timeout=5)
        # the background receiver blocked first, so its grace expires first,
        # while rank 0 is still registered: its error must name both ranks
        assert caught and isinstance(caught[0], DeadlockError)
        assert caught[0].pending == {0: (2, 3), 1: (2, 4)}
        # rank 0 expires after rank 1 already gave up and deregistered
        assert err.value.pending == {0: (2, 3)}

    def test_explicit_timeout_is_a_plain_mpi_error(self):
        fabric = Fabric(2, deadlock_grace=60.0)
        t0 = time.perf_counter()
        with pytest.raises(MPIError, match="timed out") as err:
            fabric.collect(0, source=1, tag=0, timeout=0.05)
        assert not isinstance(err.value, DeadlockError)
        assert time.perf_counter() - t0 < 5.0

    def test_coordinate_deadlock_names_arrived_ranks(self):
        fabric = Fabric(3, deadlock_grace=0.1)
        with pytest.raises(DeadlockError, match=r"ranks \[0\] of 3"):
            fabric.coordinate("round", 0, "v", size=3)

    def test_grace_must_be_positive(self):
        with pytest.raises(MPIError):
            Fabric(2, deadlock_grace=0.0)

    def test_pending_waits_empty_when_idle(self):
        assert Fabric(2).pending_waits() == {}


class TestPerfCounterMerge:
    def test_merge_ranks_tolerates_none_slots(self):
        """A failed attempt leaves dead ranks' slots as None; the merge must
        survive and sum the live ones."""
        a = PerfCounters()
        a.count_move(10, 100)
        b = PerfCounters()
        b.count_move(5, 50)
        total = PerfCounters.merge_ranks([None, a, None, b])
        assert total.records_moved == 15
        assert total.bytes_moved == 150

    def test_merge_ranks_all_none(self):
        total = PerfCounters.merge_ranks([None, None])
        assert total.summary() == {
            "records_moved": 0, "bytes_moved": 0, "phases": {}
        }
