"""Failure injection: dead ranks must not hang the world."""

import pytest

from repro.errors import MPIError
from repro.mpi import SUM, run_mpi
from repro.mpi.fabric import Fabric, Message


class TestRankFailures:
    @pytest.mark.parametrize("failing_rank", [0, 1, 3])
    def test_failure_during_collective_aborts_everyone(self, failing_rank):
        def prog(comm):
            if comm.rank == failing_rank:
                raise RuntimeError(f"rank {failing_rank} dies")
            # everyone else blocks in a collective involving the dead rank
            return comm.allreduce(comm.rank, SUM)

        with pytest.raises((RuntimeError, MPIError)):
            run_mpi(prog, 4)

    def test_failure_during_barrier(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises((ValueError, MPIError)):
            run_mpi(prog, 4)

    def test_failure_before_scatter(self):
        def prog(comm):
            if comm.rank == 0:
                raise OSError("root died before scattering")
            return comm.scatter(None, root=0)

        with pytest.raises((OSError, MPIError)):
            run_mpi(prog, 3)

    def test_first_error_reported(self):
        """The original exception (not a follow-on MPIError) is surfaced."""

        def prog(comm):
            if comm.rank == 1:
                raise KeyError("original failure")
            return comm.recv(source=1)

        with pytest.raises((KeyError, MPIError)) as excinfo:
            run_mpi(prog, 2)
        # the root cause is visible either directly or via the cause chain
        exc = excinfo.value
        assert isinstance(exc, KeyError) or "original failure" in repr(exc.__cause__)


class TestFabricDirect:
    def test_collect_timeout(self):
        fabric = Fabric(2)
        with pytest.raises(MPIError, match="timed out"):
            fabric.collect(0, source=1, tag=5, timeout=0.05)

    def test_abort_wakes_blocked_receiver(self):
        import threading
        import time

        fabric = Fabric(2)
        errors = []

        def receiver():
            try:
                fabric.collect(0, source=1, tag=0)
            except MPIError as exc:
                errors.append(exc)

        t = threading.Thread(target=receiver, daemon=True)
        t.start()
        time.sleep(0.05)
        fabric.abort(RuntimeError("injected"))
        t.join(timeout=5)
        assert not t.is_alive()
        assert errors and "aborted" in str(errors[0])

    def test_deliver_after_abort_raises(self):
        fabric = Fabric(2)
        fabric.abort(RuntimeError("dead"))
        with pytest.raises(MPIError, match="aborted"):
            fabric.deliver(0, Message(source=1, tag=0, payload=b"", nbytes=0))

    def test_deliver_out_of_range(self):
        fabric = Fabric(2)
        with pytest.raises(MPIError, match="out of range"):
            fabric.deliver(5, Message(source=0, tag=0, payload=b"", nbytes=0))

    def test_invalid_size(self):
        with pytest.raises(MPIError):
            Fabric(0)
