"""Process-backed SPMD execution (true parallelism)."""

import os

import numpy as np
import pytest

from repro.errors import MPIError
from repro.mpi import SUM, run_mpi
from repro.mpi.process_backend import run_mpi_processes


# rank programs must be module-level (picklable) for the process backend
def _rank_id(comm):
    return (comm.rank, comm.size, os.getpid())


def _allreduce_prog(comm):
    return comm.allreduce(comm.rank + 1, SUM)


def _buffer_prog(comm):
    return comm.Allreduce(np.full(100, comm.rank, dtype=np.float64), SUM)


def _alltoall_prog(comm):
    return comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])


def _sort_prog(comm, data):
    """Distributed sample-sort matching the thread backend's semantics."""
    from repro.mapreduce.sampling import sample_key_ranges

    local = np.array_split(data, comm.size)[comm.rank]
    boundaries = sample_key_ranges(comm, local, num_reducers=comm.size)
    owners = np.searchsorted(np.asarray(boundaries), local, side="left")
    chunks = comm.alltoall([local[owners == d] for d in range(comm.size)])
    merged = np.sort(np.concatenate(chunks), kind="stable")
    return merged


def _failing_prog(comm):
    if comm.rank == 1:
        raise ValueError("rank 1 exploded")
    return comm.rank


def _split_prog(comm):
    return comm.split(color=0)


class TestProcessBackend:
    def test_distinct_processes(self):
        run = run_mpi_processes(_rank_id, 3)
        pids = {pid for _, _, pid in run.results}
        assert len(pids) == 3  # genuinely separate processes
        assert [(r, s) for r, s, _ in run.results] == [(0, 3), (1, 3), (2, 3)]

    def test_allreduce_matches_thread_backend(self):
        proc = run_mpi_processes(_allreduce_prog, 4)
        thread = run_mpi(_allreduce_prog, 4)
        assert proc.results == thread.results == [10, 10, 10, 10]

    def test_buffer_collectives(self):
        run = run_mpi_processes(_buffer_prog, 3)
        for r in run.results:
            np.testing.assert_array_equal(r, np.full(100, 3.0))

    def test_alltoall(self):
        run = run_mpi_processes(_alltoall_prog, 4)
        for rank, got in enumerate(run.results):
            assert got == [f"{s}->{rank}" for s in range(4)]

    def test_distributed_sort(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 10_000, size=5_000)
        run = run_mpi_processes(_sort_prog, 4, args=(data,))
        merged = np.concatenate(run.results)
        np.testing.assert_array_equal(merged, np.sort(data, kind="stable"))

    def test_traffic_counted(self):
        run = run_mpi_processes(_alltoall_prog, 3)
        assert run.messages > 0
        assert run.bytes_moved > 0

    def test_rank_failure_propagates(self):
        with pytest.raises(ValueError, match="exploded"):
            run_mpi_processes(_failing_prog, 3)

    def test_split_unsupported(self):
        with pytest.raises(MPIError, match="not supported"):
            run_mpi_processes(_split_prog, 2)

    def test_size_validation(self):
        with pytest.raises(MPIError):
            run_mpi_processes(_rank_id, 0)

    def test_cluster_size_mismatch(self):
        from repro.cluster import ClusterModel

        with pytest.raises(MPIError, match="cluster"):
            run_mpi_processes(_rank_id, 3, cluster=ClusterModel(num_nodes=1, ranks_per_node=2))


def _numpy_shuffle_prog(comm):
    """Alltoall of numpy columns: everything should ride shared memory."""
    rng = np.random.default_rng(comm.rank)
    chunks = [rng.integers(0, 100, size=1000) for _ in range(comm.size)]
    got = comm.alltoall(chunks)
    return int(sum(c.sum() for c in got))


def _multi_round_shuffle_prog(comm):
    """Several alltoall rounds with dropped references: exercises recycling."""
    total = 0
    for round_no in range(4):
        rng = np.random.default_rng(100 * comm.rank + round_no)
        got = comm.alltoall([rng.integers(0, 50, size=2000) for _ in range(comm.size)])
        total += int(sum(c.sum() for c in got))
        del got  # last views die -> segments flow back to their owners
    return total


def _crashing_shuffle_prog(comm):
    """Crash one rank mid-shuffle, after segments are already in flight."""
    comm.alltoall([np.arange(500) for _ in range(comm.size)])
    if comm.rank == 1:
        raise ValueError("rank 1 died mid-shuffle")
    comm.alltoall([np.arange(500) for _ in range(comm.size)])
    return comm.rank


class TestTransportAccounting:
    def test_transport_summary_in_extra(self):
        run = run_mpi_processes(_numpy_shuffle_prog, 3)
        t = run.extra["transport"]
        assert t["kind"] == "shm"
        assert t["shm_bytes"] > 0
        assert t["segments_created"] > 0
        assert t["segments_unlinked"] >= 0
        assert set(t["per_rank"]) == {0, 1, 2}

    def test_numpy_payloads_never_pickle(self):
        # the zero-copy guarantee: array bytes travel via shared memory,
        # the pickle lane stays at exactly zero
        run = run_mpi_processes(_numpy_shuffle_prog, 4)
        t = run.extra["transport"]
        assert t["pickle_bytes"] == 0
        assert all(r["pickle_bytes"] == 0 for r in t["per_rank"].values())
        assert t["shm_bytes"] >= 4 * 4 * 1000  # every column out-of-band

    def test_segments_recycled_across_rounds(self):
        run = run_mpi_processes(_multi_round_shuffle_prog, 3)
        t = run.extra["transport"]
        assert t["segments_reused"] > 0
        # the pool caps allocation well below the total bytes shuffled
        assert t["shm_bytes_allocated"] < t["shm_bytes"]

    def test_thread_backend_leaves_shm_lanes_at_zero(self):
        run = run_mpi(_numpy_shuffle_prog, 3)
        assert "transport" not in run.extra


class TestShmCleanup:
    def test_no_leaked_segments_on_clean_exit(self):
        from repro.mpi.shm import scan_segments

        run = run_mpi_processes(_numpy_shuffle_prog, 3)
        prefix = run.extra["transport"]["shm_prefix"]
        assert scan_segments(prefix) == []

    def test_no_leaked_segments_after_crash(self):
        from repro.mpi.shm import scan_segments

        before = set(scan_segments("pp"))
        with pytest.raises(ValueError, match="mid-shuffle"):
            run_mpi_processes(_crashing_shuffle_prog, 3)
        assert set(scan_segments("pp")) - before == set()
