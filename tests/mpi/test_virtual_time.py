"""Virtual-time accounting through the MPI runtime."""

import pytest

from repro.cluster import ClusterModel, CostModel, ETHERNET_10G, INFINIBAND_QDR
from repro.mpi import SUM, run_mpi


def cluster(nodes=2, rpn=2, network=INFINIBAND_QDR):
    return ClusterModel(num_nodes=nodes, ranks_per_node=rpn, network=network)


def test_no_cluster_means_zero_clocks():
    def prog(comm):
        comm.send("x", dest=(comm.rank + 1) % comm.size)
        comm.recv()

    run = run_mpi(prog, 2)
    assert run.elapsed == 0.0


def test_message_advances_receiver_clock():
    c = cluster()

    def prog(comm):
        if comm.rank == 0:
            comm.send(b"0" * 10_000, dest=2)  # cross-node
        elif comm.rank == 2:
            comm.recv(source=0)
        return comm.clock.now

    run = run_mpi(prog, 4, cluster=c)
    assert run.results[2] > 0.0
    # untouched ranks stay at zero
    assert run.results[3] == 0.0


def test_cross_node_costs_more_than_intra_node():
    c = cluster()
    payload = b"0" * 1_000_000

    def intra(comm):
        if comm.rank == 0:
            comm.send(payload, dest=1)  # same node (ranks 0,1 on node 0)
        elif comm.rank == 1:
            comm.recv(source=0)
        return comm.clock.now

    def cross(comm):
        if comm.rank == 0:
            comm.send(payload, dest=2)  # node 0 -> node 1
        elif comm.rank == 2:
            comm.recv(source=0)
        return comm.clock.now

    run_intra = run_mpi(intra, 4, cluster=c)
    run_cross = run_mpi(cross, 4, cluster=c)
    assert run_cross.results[2] > run_intra.results[1]


def test_infiniband_faster_than_ethernet():
    payload = b"0" * 4_000_000

    def prog(comm):
        if comm.rank == 0:
            comm.send(payload, dest=2)
        elif comm.rank == 2:
            comm.recv(source=0)

    ib = run_mpi(prog, 4, cluster=cluster(network=INFINIBAND_QDR))
    eth = run_mpi(prog, 4, cluster=cluster(network=ETHERNET_10G))
    assert ib.elapsed < eth.elapsed


def test_charge_compute_is_reflected_in_elapsed():
    c = cluster()

    def prog(comm):
        if comm.rank == 1:
            comm.charge_compute(2.5)
        comm.barrier()
        return comm.clock.now

    run = run_mpi(prog, 4, cluster=c)
    # the barrier propagates the slowest rank's clock to everyone
    assert all(t >= 2.5 for t in run.results)


def test_barrier_synchronizes_clocks_to_max():
    c = cluster()

    def prog(comm):
        comm.charge_compute(float(comm.rank))
        comm.barrier()
        return comm.clock.now

    run = run_mpi(prog, 4, cluster=c)
    slowest = 3.0
    assert all(t >= slowest for t in run.results)
    # and nobody should be charged absurdly more than the barrier cost
    assert run.elapsed < slowest + 0.1


def test_reduce_virtual_time_scales_logarithmically():
    """A tree reduce over p ranks should cost ~log2(p) latencies, not p."""
    lat = INFINIBAND_QDR.latency_s

    def prog(comm):
        comm.reduce(comm.rank, SUM, root=0)
        return comm.clock.now

    t4 = run_mpi(prog, 4, cluster=cluster(nodes=2, rpn=2)).elapsed
    t16 = run_mpi(prog, 16, cluster=cluster(nodes=8, rpn=2)).elapsed
    assert t16 < t4 * 4  # strictly sub-linear growth
    assert t16 > 0
    assert t4 >= lat  # at least one cross-node hop


def test_elapsed_is_max_clock():
    c = cluster()

    def prog(comm):
        comm.charge_compute(1.0 if comm.rank == 3 else 0.1)
        return None

    run = run_mpi(prog, 4, cluster=c)
    assert run.elapsed == pytest.approx(1.0)


def test_cluster_size_mismatch_rejected():
    from repro.errors import MPIError

    with pytest.raises(MPIError, match="cluster"):
        run_mpi(lambda comm: None, 3, cluster=cluster(nodes=2, rpn=2))
