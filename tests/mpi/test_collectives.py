"""Collective operations across a range of communicator sizes."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.mpi import MAX, MAXLOC, MIN, PROD, SUM, UNDEFINED, run_mpi

SIZES = [1, 2, 3, 4, 5, 8]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast(size, root):
    root = size - 1 if root == "last" else root

    def prog(comm):
        obj = {"payload": list(range(10))} if comm.rank == root else None
        return comm.bcast(obj, root=root)

    run = run_mpi(prog, size)
    assert all(r == {"payload": list(range(10))} for r in run.results)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_reduce_sum(size, root):
    root = size - 1 if root == "last" else root

    def prog(comm):
        return comm.reduce(comm.rank + 1, SUM, root=root)

    run = run_mpi(prog, size)
    expected = size * (size + 1) // 2
    assert run.results[root] == expected
    assert all(r is None for i, r in enumerate(run.results) if i != root)


@pytest.mark.parametrize("size", SIZES)
def test_reduce_respects_rank_order_for_noncommutative_op(size):
    """String concatenation is associative but not commutative."""
    from repro.mpi.reduce_ops import ReduceOp

    concat = ReduceOp("CONCAT", lambda a, b: a + b, commutative=False)

    def prog(comm):
        return comm.reduce(str(comm.rank), concat, root=0)

    run = run_mpi(prog, size)
    assert run.results[0] == "".join(str(i) for i in range(size))


@pytest.mark.parametrize("size", SIZES)
def test_allreduce(size):
    def prog(comm):
        return comm.allreduce(comm.rank + 1, SUM)

    run = run_mpi(prog, size)
    assert run.results == [size * (size + 1) // 2] * size


def test_allreduce_numpy_arrays():
    def prog(comm):
        return comm.allreduce(np.full(5, comm.rank, dtype=np.int64), SUM)

    run = run_mpi(prog, 4)
    for r in run.results:
        np.testing.assert_array_equal(r, np.full(5, 6))


@pytest.mark.parametrize("op,expected", [(MAX, 3), (MIN, 0), (PROD, 0)])
def test_reduce_other_ops(op, expected):
    def prog(comm):
        return comm.reduce(comm.rank, op, root=0)

    run = run_mpi(prog, 4)
    assert run.results[0] == expected


def test_maxloc():
    values = [3, 9, 1, 9]

    def prog(comm):
        return comm.allreduce((values[comm.rank], comm.rank), MAXLOC)

    run = run_mpi(prog, 4)
    # ties prefer the lower rank
    assert run.results == [(9, 1)] * 4


@pytest.mark.parametrize("size", SIZES)
def test_scatter_gather(size):
    def prog(comm):
        data = [(i + 1) ** 2 for i in range(size)] if comm.rank == 0 else None
        mine = comm.scatter(data, root=0)
        assert mine == (comm.rank + 1) ** 2
        return comm.gather(mine * 10, root=0)

    run = run_mpi(prog, size)
    assert run.results[0] == [10 * (i + 1) ** 2 for i in range(size)]
    assert all(r is None for r in run.results[1:])


def test_scatter_wrong_length_raises():
    def prog(comm):
        data = [1] if comm.rank == 0 else None
        return comm.scatter(data, root=0)

    with pytest.raises(MPIError, match="scatter"):
        run_mpi(prog, 3)


@pytest.mark.parametrize("size", SIZES)
def test_allgather(size):
    def prog(comm):
        return comm.allgather(comm.rank * 2)

    run = run_mpi(prog, size)
    assert run.results == [[2 * i for i in range(size)]] * size


@pytest.mark.parametrize("size", SIZES)
def test_alltoall(size):
    def prog(comm):
        return comm.alltoall([f"{comm.rank}->{d}" for d in range(size)])

    run = run_mpi(prog, size)
    for rank, got in enumerate(run.results):
        assert got == [f"{s}->{rank}" for s in range(size)]


@pytest.mark.parametrize("size", SIZES)
def test_barrier_completes(size):
    def prog(comm):
        for _ in range(3):
            comm.barrier()
        return True

    run = run_mpi(prog, size)
    assert all(run.results)


@pytest.mark.parametrize("size", SIZES)
def test_scan(size):
    def prog(comm):
        return comm.scan(comm.rank + 1, SUM)

    run = run_mpi(prog, size)
    assert run.results == [sum(range(1, i + 2)) for i in range(size)]


@pytest.mark.parametrize("size", SIZES)
def test_exscan(size):
    def prog(comm):
        return comm.exscan(comm.rank + 1, SUM, identity=0)

    run = run_mpi(prog, size)
    assert run.results == [sum(range(1, i + 1)) for i in range(size)]


@pytest.mark.parametrize("size", [2, 4, 6])
def test_alltoallv_buffers(size):
    def prog(comm):
        # rank r sends (d+1) copies of value 100*r+d to destination d
        chunks = [np.full(d + 1, 100 * comm.rank + d, dtype=np.int64) for d in range(size)]
        sendbuf = np.concatenate(chunks)
        counts = [d + 1 for d in range(size)]
        recvbuf, recvcounts = comm.Alltoallv(sendbuf, counts)
        return recvbuf, recvcounts

    run = run_mpi(prog, size)
    for rank, (recvbuf, recvcounts) in enumerate(run.results):
        np.testing.assert_array_equal(recvcounts, np.full(size, rank + 1))
        expected = np.concatenate(
            [np.full(rank + 1, 100 * s + rank, dtype=np.int64) for s in range(size)]
        )
        np.testing.assert_array_equal(recvbuf, expected)


def test_alltoallv_count_mismatch_raises():
    def prog(comm):
        comm.Alltoallv(np.arange(3), [1, 1])  # sums to 2, buffer has 3

    with pytest.raises(MPIError, match="sendcounts"):
        run_mpi(prog, 2)


def test_split_by_parity():
    def prog(comm):
        sub = comm.split(color=comm.rank % 2)
        total = sub.allreduce(comm.rank, SUM)
        return (sub.rank, sub.size, total)

    run = run_mpi(prog, 6)
    evens = sum(r for r in range(6) if r % 2 == 0)
    odds = sum(r for r in range(6) if r % 2 == 1)
    for rank, (sub_rank, sub_size, total) in enumerate(run.results):
        assert sub_size == 3
        assert sub_rank == rank // 2
        assert total == (evens if rank % 2 == 0 else odds)


def test_split_undefined_excluded():
    def prog(comm):
        color = UNDEFINED if comm.rank == 0 else 1
        sub = comm.split(color=color)
        if comm.rank == 0:
            return sub  # None
        return sub.size

    run = run_mpi(prog, 4)
    assert run.results[0] is None
    assert run.results[1:] == [3, 3, 3]


def test_split_key_reorders_ranks():
    def prog(comm):
        # reverse ordering inside the new communicator
        sub = comm.split(color=0, key=-comm.rank)
        return sub.rank

    run = run_mpi(prog, 4)
    assert run.results == [3, 2, 1, 0]


def test_dup_is_independent():
    def prog(comm):
        d = comm.dup()
        assert d.size == comm.size and d.rank == comm.rank
        return d.allreduce(1, SUM)

    run = run_mpi(prog, 3)
    assert run.results == [3, 3, 3]
