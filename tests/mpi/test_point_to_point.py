"""Point-to-point semantics of the simulated MPI runtime."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.mpi import ANY_SOURCE, ANY_TAG, PROC_NULL, Status, run_mpi
from repro.mpi.request import wait_all


def test_send_recv_object():
    def prog(comm):
        if comm.rank == 0:
            comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
            return None
        return comm.recv(source=0, tag=11)

    run = run_mpi(prog, 2)
    assert run.results[1] == {"a": 7, "b": 3.14}


def test_send_recv_roundtrip_many_types():
    payloads = [42, "text", (1, 2), [None, {"k": b"v"}], frozenset({3})]

    def prog(comm):
        if comm.rank == 0:
            for i, p in enumerate(payloads):
                comm.send(p, dest=1, tag=i)
            return None
        return [comm.recv(source=0, tag=i) for i in range(len(payloads))]

    run = run_mpi(prog, 2)
    assert run.results[1] == payloads


def test_messages_are_isolated_copies():
    """Mutating a received object must not affect the sender's copy."""

    def prog(comm):
        data = [1, 2, 3]
        if comm.rank == 0:
            comm.send(data, dest=1)
            comm.recv(source=1)  # sync
            return data
        got = comm.recv(source=0)
        got.append(99)
        comm.send(None, dest=0)
        return got

    run = run_mpi(prog, 2)
    assert run.results[0] == [1, 2, 3]
    assert run.results[1] == [1, 2, 3, 99]


def test_fifo_per_source():
    def prog(comm):
        if comm.rank == 0:
            for i in range(50):
                comm.send(i, dest=1, tag=7)
            return None
        return [comm.recv(source=0, tag=7) for _ in range(50)]

    run = run_mpi(prog, 2)
    assert run.results[1] == list(range(50))


def test_tag_matching_out_of_order():
    """A receiver may pick a later-sent message by tag."""

    def prog(comm):
        if comm.rank == 0:
            comm.send("first", dest=1, tag=1)
            comm.send("second", dest=1, tag=2)
            return None
        second = comm.recv(source=0, tag=2)
        first = comm.recv(source=0, tag=1)
        return (first, second)

    run = run_mpi(prog, 2)
    assert run.results[1] == ("first", "second")


def test_any_source_any_tag_with_status():
    def prog(comm):
        if comm.rank == 2:
            s = Status()
            got = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=s)
            return (got, s.Get_source(), s.Get_count() > 0)
        if comm.rank == 0:
            comm.send("hello", dest=2, tag=5)
        return None

    run = run_mpi(prog, 3)
    got, source, has_count = run.results[2]
    assert got == "hello"
    assert source == 0
    assert has_count


def test_proc_null_send_recv_noop():
    def prog(comm):
        comm.send("ignored", dest=PROC_NULL)
        return comm.recv(source=PROC_NULL)

    run = run_mpi(prog, 1)
    assert run.results[0] is None


def test_isend_irecv():
    def prog(comm):
        if comm.rank == 0:
            req = comm.isend({"x": 1}, dest=1, tag=3)
            assert req.wait() is None
            return None
        req = comm.irecv(source=0, tag=3)
        return req.wait()

    run = run_mpi(prog, 2)
    assert run.results[1] == {"x": 1}


def test_irecv_test_polls_without_blocking():
    def prog(comm):
        if comm.rank == 1:
            req = comm.irecv(source=0, tag=9)
            comm.send(None, dest=0, tag=1)  # tell rank 0 we are armed
            while True:
                done, data = req.test()
                if done:
                    return data
        comm.recv(source=1, tag=1)
        comm.send("payload", dest=1, tag=9)
        return None

    run = run_mpi(prog, 2)
    assert run.results[1] == "payload"


def test_wait_all():
    def prog(comm):
        if comm.rank == 0:
            reqs = [comm.isend(i, dest=1, tag=i) for i in range(4)]
            wait_all(reqs)
            return None
        reqs = [comm.irecv(source=0, tag=i) for i in range(4)]
        return wait_all(reqs)

    run = run_mpi(prog, 2)
    assert run.results[1] == [0, 1, 2, 3]


def test_sendrecv_exchange():
    def prog(comm):
        peer = 1 - comm.rank
        return comm.sendrecv(f"from-{comm.rank}", dest=peer, source=peer)

    run = run_mpi(prog, 2)
    assert run.results == ["from-1", "from-0"]


def test_buffer_send_recv():
    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.arange(100, dtype=np.int64), dest=1, tag=77)
            return None
        buf = np.empty(100, dtype=np.int64)
        comm.Recv(buf, source=0, tag=77)
        return buf

    run = run_mpi(prog, 2)
    np.testing.assert_array_equal(run.results[1], np.arange(100))


def test_buffer_recv_too_small_raises():
    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.arange(10, dtype=np.int64), dest=1)
            return None
        buf = np.empty(5, dtype=np.int64)
        comm.Recv(buf, source=0)

    with pytest.raises(MPIError, match="too small"):
        run_mpi(prog, 2)


def test_rank_exception_propagates_and_does_not_hang():
    def prog(comm):
        if comm.rank == 0:
            raise ValueError("boom on rank 0")
        # rank 1 would deadlock here without fabric abort
        return comm.recv(source=0)

    with pytest.raises((ValueError, MPIError)):
        run_mpi(prog, 2)


def test_probe():
    def prog(comm):
        if comm.rank == 0:
            comm.send("x", dest=1, tag=4)
            return None
        while not comm.probe(source=0, tag=4):
            pass
        return comm.recv(source=0, tag=4)

    run = run_mpi(prog, 2)
    assert run.results[1] == "x"


def test_traffic_stats_counted():
    def prog(comm):
        if comm.rank == 0:
            comm.send(b"0" * 1000, dest=1)
        else:
            comm.recv(source=0)

    run = run_mpi(prog, 2)
    assert run.messages == 1
    assert run.bytes_moved >= 1000
