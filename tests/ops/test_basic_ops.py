"""Basic operators: Sort, Group, Split, Distribute (single-node kernels)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dataset import Dataset
from repro.errors import OperatorError
from repro.formats import BLAST_INDEX_SCHEMA, EDGE_LIST_SCHEMA
from repro.ops import Count, Distribute, Group, Sort, Split
from repro.ops.sort import ASCENDING, DESCENDING
from repro.policies import SplitPolicy

FIGURE1_ROWS = [
    (0, 94, 0, 74),
    (94, 100, 74, 89),
    (194, 99, 163, 109),
    (293, 91, 272, 107),
]


def blast_ds(rows=FIGURE1_ROWS):
    return Dataset.from_rows(BLAST_INDEX_SCHEMA, rows)


class TestSort:
    def test_figure1_sort(self):
        """Figure 1: sort the four-tuple index ascending by seq_size."""
        out = Sort("seq_size").apply_local(blast_ds())
        assert out.rows() == [
            (293, 91, 272, 107),
            (0, 94, 0, 74),
            (194, 99, 163, 109),
            (94, 100, 74, 89),
        ]

    def test_descending(self):
        out = Sort("seq_size", ascending=False).apply_local(blast_ds())
        assert [r[1] for r in out.rows()] == [100, 99, 94, 91]

    def test_stable_on_ties(self):
        rows = [(0, 94, 0, 1), (10, 94, 1, 2), (20, 51, 2, 3)]
        out = Sort("seq_size").apply_local(blast_ds(rows))
        assert out.rows() == [(20, 51, 2, 3), (0, 94, 0, 1), (10, 94, 1, 2)]

    def test_stable_descending_on_ties(self):
        rows = [(0, 94, 0, 1), (10, 94, 1, 2), (20, 51, 2, 3)]
        out = Sort("seq_size", ascending=False).apply_local(blast_ds(rows))
        assert out.rows() == [(0, 94, 0, 1), (10, 94, 1, 2), (20, 51, 2, 3)]

    def test_from_flag_table1(self):
        assert Sort.from_flag("k", ASCENDING).ascending is True
        assert Sort.from_flag("k", DESCENDING).ascending is False
        with pytest.raises(OperatorError):
            Sort.from_flag("k", 0)

    def test_missing_key(self):
        with pytest.raises(OperatorError, match="key"):
            Sort("nope").apply_local(blast_ds())

    def test_empty_key_rejected(self):
        with pytest.raises(OperatorError):
            Sort("")

    @given(st.lists(st.integers(0, 1000), max_size=100))
    def test_property_sorted_and_multiset_preserved(self, sizes):
        rows = [(i, s, i, 1) for i, s in enumerate(sizes)]
        out = Sort("seq_size").apply_local(blast_ds(rows))
        got = [r[1] for r in out.rows()]
        assert got == sorted(sizes)
        assert sorted(r[0] for r in out.rows()) == list(range(len(sizes)))


EDGES_FIG2 = [
    # Figure 2/11-style toy graph: vertex 1 has indegree 4, others low
    (2, 1),
    (3, 1),
    (4, 1),
    (5, 1),
    (1, 2),
    (3, 2),
    (1, 6),
]


def edge_ds(rows=EDGES_FIG2):
    return Dataset.from_rows(EDGE_LIST_SCHEMA, rows)


class TestGroup:
    def test_group_by_in_vertex_with_count(self):
        """Figure 11 steps 1-3: group by vertex_b, count -> indegree, pack."""
        op = Group("vertex_b", addons=[(Count(), "indegree", None)], output_format="pack")
        out = op.apply_local(edge_ds())
        assert out.is_packed
        groups = dict(out.packed.groups)
        assert set(groups) == {1, 2, 6}
        assert groups[1]["indegree"].tolist() == [4, 4, 4, 4]
        assert sorted(groups[1]["vertex_a"].tolist()) == [2, 3, 4, 5]
        assert groups[2]["indegree"].tolist() == [2, 2]
        assert groups[6]["indegree"].tolist() == [1]

    def test_added_attrs_listed(self):
        op = Group("vertex_b", addons=[(Count(), "indegree", None)])
        assert op.added_attrs == ["indegree"]

    def test_orig_output_unpacks(self):
        op = Group("vertex_b", addons=[(Count(), "indegree", None)], output_format="orig")
        out = op.apply_local(edge_ds())
        assert not out.is_packed
        assert out.schema.has_field("indegree")
        assert out.num_records == len(EDGES_FIG2)

    def test_bad_output_format(self):
        with pytest.raises(OperatorError):
            Group("vertex_b", output_format="zip")

    def test_missing_key(self):
        with pytest.raises(OperatorError, match="key"):
            Group("vertex_z").apply_local(edge_ds())


class TestSplit:
    def grouped(self):
        return Group(
            "vertex_b", addons=[(Count(), "indegree", None)], output_format="pack"
        ).apply_local(edge_ds())

    def test_figure11_threshold_split(self):
        """Threshold 4: vertex 1 goes high-degree (unpacked), rest stay packed."""
        op = Split(
            "indegree",
            SplitPolicy.parse("{>=, 4},{<, 4}"),
            output_formats=["unpack", "orig"],
        )
        high, low = op.apply_local(self.grouped())
        assert not high.is_packed
        assert high.num_records == 4
        assert set(high.records["vertex_b"].tolist()) == {1}
        assert low.is_packed
        assert {k for k, _ in low.packed.groups} == {2, 6}

    def test_format_count_mismatch(self):
        with pytest.raises(OperatorError, match="formats"):
            Split("k", SplitPolicy.parse("{>=, 1},{<, 1}"), output_formats=["orig"])

    def test_default_formats_orig(self):
        op = Split("indegree", SplitPolicy.parse("{>=, 4},{<, 4}"))
        high, low = op.apply_local(self.grouped())
        assert high.is_packed and low.is_packed

    def test_split_flat_dataset(self):
        op = Split("seq_size", SplitPolicy.parse("{>=, 95},{<, 95}"))
        big, small = op.apply_local(blast_ds())
        assert [r[1] for r in big.rows()] == [100, 99]
        assert [r[1] for r in small.rows()] == [94, 91]


class TestDistribute:
    def test_figure1_cyclic_two_partitions(self):
        """Figure 1: sorted index dealt cyclically to 2 partitions."""
        sorted_ds = Sort("seq_size").apply_local(blast_ds())
        parts = Distribute("cyclic", 2).apply_local(sorted_ds)
        assert parts[0].rows() == [(293, 91, 272, 107), (194, 99, 163, 109)]
        assert parts[1].rows() == [(0, 94, 0, 74), (94, 100, 74, 89)]

    def test_block_two_partitions(self):
        parts = Distribute("block", 2).apply_local(blast_ds())
        assert parts[0].rows() == FIGURE1_ROWS[:2]
        assert parts[1].rows() == FIGURE1_ROWS[2:]

    def test_matrix_form_matches_index_form(self):
        sorted_ds = Sort("seq_size").apply_local(blast_ds())
        fast = Distribute("cyclic", 2, use_matrix=False).apply_local(sorted_ds)
        slow = Distribute("cyclic", 2, use_matrix=True).apply_local(sorted_ds)
        for a, b in zip(fast, slow):
            assert a.rows() == b.rows()

    def test_multi_stream_hybrid(self):
        """Figure 11 step 6: one packed stream + one flat stream, 3 partitions."""
        grouped = Group(
            "vertex_b", addons=[(Count(), "indegree", None)], output_format="pack"
        ).apply_local(edge_ds())
        high, low = Split(
            "indegree",
            SplitPolicy.parse("{>=, 4},{<, 4}"),
            output_formats=["unpack", "orig"],
        ).apply_local(grouped)
        parts = Distribute("graphVertexCut", 3).apply_local([high, low])
        assert len(parts) == 3
        # all partitions flat and jointly cover every record exactly once
        total = sum(p.num_records for p in parts)
        assert total == grouped.num_records
        assert all(not p.is_packed for p in parts)
        # low-degree groups stay intact: vertex 2's two edges land together
        owner = [i for i, p in enumerate(parts) if 2 in p.records["vertex_b"]]
        assert len(owner) == 1

    def test_packed_entries_kept_whole(self):
        grouped = Group(
            "vertex_b", addons=[(Count(), "indegree", None)], output_format="pack"
        ).apply_local(edge_ds())
        parts = Distribute("cyclic", 2).apply_local(grouped)
        for p in parts:
            assert not p.is_packed  # final output always unpacked
        # each vertex group must be wholly inside exactly one partition
        for vertex in (1, 2, 6):
            owners = [i for i, p in enumerate(parts) if vertex in p.records["vertex_b"]]
            assert len(owners) == 1

    def test_invalid_num_partitions(self):
        with pytest.raises(OperatorError):
            Distribute("cyclic", 0)

    def test_empty_streams_rejected(self):
        with pytest.raises(OperatorError, match="streams"):
            Distribute("cyclic", 2).apply_local([])

    @given(st.integers(0, 60), st.integers(1, 8))
    def test_property_cyclic_partition_counts(self, n, p):
        rows = [(i, i, i, i) for i in range(n)]
        parts = Distribute("cyclic", p).apply_local(blast_ds(rows))
        sizes = [len(x.records) for x in parts]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1
