"""Sort with add-ons, packed-dataset sorting, and operator edge cases."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.errors import OperatorError
from repro.formats import EDGE_LIST_SCHEMA, Field, RecordSchema
from repro.ops import Count, Distribute, Group, Sort

KV_SCHEMA = RecordSchema(
    id="kv",
    fields=(Field("k", "long"), Field("v", "long")),
    input_format="binary",
)


class TestSortWithAddOn:
    def test_count_addon_after_sort(self):
        """Table I: Sort takes an optional addOn; the output carries the
        attribute and is grouped (packed) by the sort key."""
        ds = Dataset.from_rows(KV_SCHEMA, [(3, 1), (1, 2), (3, 3), (2, 4)])
        op = Sort("k", addon=Count(), addon_attr="n")
        out = op.apply_local(ds)
        assert out.is_packed
        groups = dict(out.packed.groups)
        assert groups[3]["n"].tolist() == [2, 2]
        assert groups[1]["n"].tolist() == [1]
        # groups appear in sorted key order
        assert [k for k, _ in out.packed.groups] == [1, 2, 3]

    def test_sort_kernel_validation(self):
        with pytest.raises(OperatorError, match="kernel"):
            Sort("k", kernel="quantum")

    def test_sort_packed_dataset_by_group_key(self):
        ds = Dataset.from_rows(EDGE_LIST_SCHEMA, [(1, 9), (2, 3), (3, 9), (4, 3)])
        packed = ds.to_packed("vertex_b")
        out = Sort("vertex_b").apply_local(packed)
        assert out.is_packed
        assert [k for k, _ in out.packed.groups] == [3, 9]

    def test_descending_float_keys(self):
        schema = RecordSchema(
            id="f", fields=(Field("x", "double"),), input_format="binary"
        )
        ds = Dataset.from_rows(schema, [(1.5,), (-2.0,), (0.25,)])
        out = Sort("x", ascending=False).apply_local(ds)
        assert [r[0] for r in out.rows()] == [1.5, 0.25, -2.0]


class TestOperatorEdgeCases:
    def test_empty_dataset_through_sort_distribute(self):
        ds = Dataset.from_rows(KV_SCHEMA, [])
        out = Sort("k").apply_local(ds)
        parts = Distribute("cyclic", 3).apply_local(out)
        assert [len(p) for p in parts] == [0, 0, 0]

    def test_more_partitions_than_entries(self):
        ds = Dataset.from_rows(KV_SCHEMA, [(1, 1), (2, 2)])
        parts = Distribute("cyclic", 5).apply_local(ds)
        assert [len(p) for p in parts] == [1, 1, 0, 0, 0]

    def test_single_entry(self):
        ds = Dataset.from_rows(KV_SCHEMA, [(7, 7)])
        parts = Distribute("block", 4).apply_local(ds)
        assert [len(p) for p in parts] == [1, 0, 0, 0]

    def test_group_empty_dataset(self):
        ds = Dataset.from_rows(EDGE_LIST_SCHEMA, [])
        out = Group("vertex_b", addons=[(Count(), "n", None)]).apply_local(ds)
        assert out.is_packed
        assert out.packed.num_groups == 0

    def test_all_same_key_group(self):
        ds = Dataset.from_rows(EDGE_LIST_SCHEMA, [(i, 5) for i in range(10)])
        out = Group("vertex_b", addons=[(Count(), "n", None)]).apply_local(ds)
        assert out.packed.num_groups == 1
        assert out.packed.groups[0][1]["n"].tolist() == [10] * 10


class TestWorkflowEdgeCases:
    """Full workflows on degenerate inputs across all backends."""

    @pytest.fixture
    def papar(self):
        from repro import PaPar
        from repro.config import BLAST_INPUT_XML

        p = PaPar()
        p.register_input(BLAST_INPUT_XML)
        return p

    @pytest.mark.parametrize("backend,ranks", [("serial", 1), ("mpi", 3), ("mapreduce", 3)])
    def test_single_record_workflow(self, papar, backend, ranks):
        from repro.config.examples import BLAST_WORKFLOW_XML
        from repro.formats import BLAST_INDEX_SCHEMA

        data = Dataset.from_rows(BLAST_INDEX_SCHEMA, [(0, 42, 0, 10)])
        result = papar.run(
            BLAST_WORKFLOW_XML,
            {"input_path": "/in", "output_path": "/out", "num_partitions": 4},
            data=data,
            backend=backend,
            num_ranks=ranks,
        )
        assert result.num_partitions == 4
        assert [len(p) for p in result.partitions] == [1, 0, 0, 0]

    @pytest.mark.parametrize("backend,ranks", [("serial", 1), ("mpi", 2)])
    def test_all_ties_workflow(self, papar, backend, ranks):
        """All keys equal: cyclic dealing must follow the original order."""
        from repro.config.examples import BLAST_WORKFLOW_XML
        from repro.formats import BLAST_INDEX_SCHEMA

        rows = [(i, 100, i, 1) for i in range(9)]
        data = Dataset.from_rows(BLAST_INDEX_SCHEMA, rows)
        result = papar.run(
            BLAST_WORKFLOW_XML,
            {"input_path": "/in", "output_path": "/out", "num_partitions": 3},
            data=data,
            backend=backend,
            num_ranks=ranks,
        )
        for p, part in enumerate(result.partitions):
            assert part.records["seq_start"].tolist() == [p, p + 3, p + 6]
