"""Add-on operators (count/max/min/mean/sum) and format operators."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.errors import FormatError, OperatorError
from repro.formats import EDGE_LIST_SCHEMA, Field, RecordSchema, pack
from repro.ops import Count, Max, Mean, Min, Orig, Pack, Sum, Unpack
from repro.ops.base import get_addon, get_basic, get_format, registered_names

VALUES_SCHEMA = RecordSchema(
    id="kv",
    fields=(Field("k", "long"), Field("v", "double")),
    input_format="binary",
)


def packed_values():
    records = VALUES_SCHEMA.to_structured(
        [(1, 4.0), (1, 8.0), (1, 6.0), (2, 10.0)]
    )
    return pack(records, VALUES_SCHEMA, "k")


class TestAddOns:
    def test_count(self):
        out = Count().apply(packed_values(), "n")
        groups = dict(out.groups)
        assert groups[1]["n"].tolist() == [3, 3, 3]
        assert groups[2]["n"].tolist() == [1]
        assert out.schema.has_field("n")

    @pytest.mark.parametrize(
        "addon_cls,expected1",
        [(Max, 8.0), (Min, 4.0), (Mean, 6.0), (Sum, 18.0)],
    )
    def test_numeric_addons(self, addon_cls, expected1):
        out = addon_cls().apply(packed_values(), "agg", field="v")
        groups = dict(out.groups)
        assert groups[1]["agg"].tolist() == [expected1] * 3
        assert groups[2]["agg"].tolist() == [10.0]

    def test_field_required(self):
        with pytest.raises(OperatorError, match="field"):
            Max().apply(packed_values(), "agg")

    def test_unknown_field(self):
        with pytest.raises(OperatorError, match="no field"):
            Sum().apply(packed_values(), "agg", field="w")

    def test_count_needs_no_field(self):
        assert Count.needs_field is False
        Count().apply(packed_values(), "n", field=None)

    def test_attrs_do_not_mutate_input(self):
        packed = packed_values()
        Count().apply(packed, "n")
        assert not packed.schema.has_field("n")


class TestFormatOps:
    def flat(self):
        return Dataset.from_rows(EDGE_LIST_SCHEMA, [(2, 1), (3, 1), (9, 5)])

    def test_orig_identity(self):
        ds = self.flat()
        assert Orig().apply(ds) is ds

    def test_pack_groups(self):
        out = Pack().apply(self.flat(), key_field="vertex_b")
        assert out.is_packed
        assert {k for k, _ in out.packed.groups} == {1, 5}

    def test_pack_requires_key(self):
        with pytest.raises(OperatorError, match="key"):
            Pack().apply(self.flat())

    def test_pack_idempotent(self):
        packed = Pack().apply(self.flat(), key_field="vertex_b")
        assert Pack().apply(packed, key_field="vertex_b") is packed

    def test_unpack_flattens(self):
        packed = Pack().apply(self.flat(), key_field="vertex_b")
        flat = Unpack().apply(packed)
        assert not flat.is_packed
        assert sorted(flat.rows()) == sorted(self.flat().rows())

    def test_unpack_on_flat_is_identity(self):
        ds = self.flat()
        assert Unpack().apply(ds) is ds


class TestRegistry:
    def test_table1_names_registered(self):
        names = registered_names()
        assert {"sort", "group", "split", "distribute"} <= set(names["basic"])
        assert {"count", "max", "min", "mean", "sum"} == set(names["addon"])
        assert {"orig", "pack", "unpack"} == set(names["format"])

    def test_lookup_case_insensitive(self):
        assert get_basic("sort") is get_basic("Sort")
        assert isinstance(get_addon("COUNT"), Count)
        assert isinstance(get_format("Pack"), Pack)

    def test_unknown_lookups(self):
        with pytest.raises(OperatorError):
            get_basic("teleport")
        with pytest.raises(OperatorError):
            get_addon("median")
        with pytest.raises(OperatorError):
            get_format("gzip")

    def test_custom_basic_registration(self):
        from repro.ops.base import BasicOperator, register_basic

        @register_basic
        class Shuffle99(BasicOperator):
            name = "Shuffle99"

            def apply_local(self, data):
                return data

        assert get_basic("shuffle99") is Shuffle99
        with pytest.raises(OperatorError, match="already"):

            @register_basic
            class Other(BasicOperator):
                name = "shuffle99"

                def apply_local(self, data):
                    return data


class TestDataset:
    def test_needs_exactly_one_layout(self):
        with pytest.raises(FormatError):
            Dataset(schema=EDGE_LIST_SCHEMA)
        with pytest.raises(FormatError):
            Dataset(
                schema=EDGE_LIST_SCHEMA,
                records=np.empty(0, dtype=EDGE_LIST_SCHEMA.dtype),
                packed=pack(
                    np.empty(0, dtype=EDGE_LIST_SCHEMA.dtype), EDGE_LIST_SCHEMA, "vertex_b"
                ),
            )

    def test_dtype_checked(self):
        with pytest.raises(FormatError, match="dtype"):
            Dataset(schema=EDGE_LIST_SCHEMA, records=np.zeros(3, dtype=np.int64))

    def test_len_counts_entries(self):
        ds = Dataset.from_rows(EDGE_LIST_SCHEMA, [(2, 1), (3, 1), (9, 5)])
        assert len(ds) == 3
        packed = ds.to_packed("vertex_b")
        assert len(packed) == 2  # groups
        assert packed.num_records == 3

    def test_repack_with_other_key_rejected(self):
        ds = Dataset.from_rows(EDGE_LIST_SCHEMA, [(2, 1)]).to_packed("vertex_b")
        with pytest.raises(FormatError, match="packed"):
            ds.to_packed("vertex_a")

    def test_concat_schema_mismatch(self):
        from repro.core.dataset import concat
        from repro.formats import BLAST_INDEX_SCHEMA

        a = Dataset.from_rows(EDGE_LIST_SCHEMA, [(1, 2)])
        b = Dataset.from_rows(BLAST_INDEX_SCHEMA, [(0, 1, 2, 3)])
        with pytest.raises(FormatError, match="mixed"):
            concat([a, b])

    def test_concat_empty_rejected(self):
        from repro.core.dataset import concat

        with pytest.raises(FormatError):
            concat([])

    def test_column_on_packed_takes_group_value(self):
        ds = Dataset.from_rows(EDGE_LIST_SCHEMA, [(2, 1), (3, 1), (9, 5)])
        packed = ds.to_packed("vertex_b")
        assert packed.column("vertex_b").tolist() == [1, 5]
