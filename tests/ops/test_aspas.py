"""ASPaS-style blocked mergesort: equivalence with numpy's stable sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import OperatorError
from repro.ops.aspas import aspas_argsort, aspas_sort


class TestAspasSort:
    def test_small_input_direct(self):
        keys = np.array([5, 1, 4, 2])
        np.testing.assert_array_equal(aspas_argsort(keys), np.argsort(keys, kind="stable"))

    def test_blocked_path(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 100, size=10_000)
        got = aspas_argsort(keys, block=256)
        np.testing.assert_array_equal(got, np.argsort(keys, kind="stable"))

    def test_stability_with_many_ties(self):
        keys = np.array([1, 0, 1, 0, 1, 0, 1, 0] * 100)
        got = aspas_argsort(keys, block=16)
        np.testing.assert_array_equal(got, np.argsort(keys, kind="stable"))

    def test_odd_run_count(self):
        """Block count not a power of two exercises the leftover-run path."""
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 50, size=5 * 64 + 17)
        got = aspas_argsort(keys, block=64)
        np.testing.assert_array_equal(got, np.argsort(keys, kind="stable"))

    def test_sorted_values(self):
        rng = np.random.default_rng(3)
        keys = rng.normal(size=3000)
        np.testing.assert_array_equal(aspas_sort(keys, block=128), np.sort(keys, kind="stable"))

    def test_empty_and_single(self):
        assert len(aspas_argsort(np.array([], dtype=np.int64))) == 0
        np.testing.assert_array_equal(aspas_argsort(np.array([7])), [0])

    def test_invalid_block(self):
        with pytest.raises(OperatorError):
            aspas_argsort(np.array([1, 2]), block=1)

    @settings(max_examples=60)
    @given(
        hnp.arrays(np.int64, st.integers(0, 500), elements=st.integers(-50, 50)),
        st.integers(2, 64),
    )
    def test_property_matches_numpy_stable(self, keys, block):
        got = aspas_argsort(keys, block=block)
        np.testing.assert_array_equal(got, np.argsort(keys, kind="stable"))

    @settings(max_examples=30)
    @given(hnp.arrays(np.float64, st.integers(1, 300), elements=st.floats(-1e6, 1e6)))
    def test_property_float_keys(self, keys):
        got = aspas_sort(keys, block=32)
        np.testing.assert_array_equal(got, np.sort(keys, kind="stable"))
