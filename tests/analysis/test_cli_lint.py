"""The ``lint`` subcommand and the plan/run lint gate."""

import json

import pytest

from repro.cli import main

GOOD_ARGS = ["--arg", "input_path=/in", "--arg", "output_path=/out",
             "--arg", "num_partitions=4"]

BROKEN_WORKFLOW = """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sorty">
      <param name="inputPath" value="$input_paht"/>
      <param name="key" value="k"/>
    </operator>
  </operators>
</workflow>"""

WARN_ONLY_WORKFLOW = """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs"/>
    <param name="unused" type="integer" value="1"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="key" value="k"/>
    </operator>
  </operators>
</workflow>"""


@pytest.fixture
def repo_configs(pytestconfig):
    return pytestconfig.rootpath / "configs"


@pytest.fixture
def broken_xml(tmp_path):
    path = tmp_path / "broken.xml"
    path.write_text(BROKEN_WORKFLOW)
    return path


@pytest.fixture
def warn_xml(tmp_path):
    path = tmp_path / "warn.xml"
    path.write_text(WARN_ONLY_WORKFLOW)
    return path


class TestLintCommand:
    def test_clean_config_exits_zero(self, repo_configs, capsys):
        code = main([
            "lint", str(repo_configs / "blast_partition.xml"),
            "--input", str(repo_configs / "blast_db.xml"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_broken_config_exits_one_and_reports_all(self, broken_xml, capsys):
        code = main(["lint", str(broken_xml)])
        assert code == 1
        out = capsys.readouterr().out
        assert "PAP004" in out and "PAP010" in out

    def test_strict_fails_on_warnings(self, warn_xml, capsys):
        assert main(["lint", str(warn_xml)]) == 0
        assert main(["lint", str(warn_xml), "--strict"]) == 1
        assert "PAP013" in capsys.readouterr().out

    def test_json_output(self, broken_xml, capsys):
        code = main(["lint", str(broken_xml), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "papar-lint"
        assert any(d["code"] == "PAP004" for d in payload["diagnostics"])

    def test_ranks_enable_cluster_fit_rules(self, repo_configs, capsys):
        code = main([
            "lint", str(repo_configs / "blast_partition.xml"),
            "--input", str(repo_configs / "blast_db.xml"),
            "--arg", "num_partitions=2", "--ranks", "16",
        ])
        assert code == 0  # PAP044 is a warning
        assert "PAP044" in capsys.readouterr().out


class TestLintGate:
    def test_plan_refuses_broken_config(self, broken_xml, capsys):
        code = main(["plan", "--workflow", str(broken_xml)])
        assert code == 2
        err = capsys.readouterr().err
        assert "PAP004" in err and "--no-lint" in err

    def test_plan_no_lint_overrides(self, broken_xml, capsys):
        code = main(["plan", "--workflow", str(broken_xml), "--no-lint",
                     "--arg", "input_path=/in"])
        # the gate is skipped; the planner itself then rejects the config
        assert code == 2
        err = capsys.readouterr().err
        assert "PAP004" not in err

    def test_plan_passes_clean_config(self, repo_configs, capsys):
        code = main([
            "plan",
            "--workflow", str(repo_configs / "blast_partition.xml"),
            "--input-config", str(repo_configs / "blast_db.xml"),
            *GOOD_ARGS,
        ])
        assert code == 0
        assert "job(s)" in capsys.readouterr().out

    def test_warnings_do_not_block_plan(self, warn_xml, capsys):
        code = main(["plan", "--workflow", str(warn_xml),
                     "--arg", "input_path=/in"])
        assert code == 0

    def test_run_refuses_broken_config(self, broken_xml, capsys):
        code = main(["run", "--workflow", str(broken_xml)])
        assert code == 2
        assert "--no-lint" in capsys.readouterr().err
