"""Every configuration the repo ships must lint clean.

"Clean" is zero errors and zero warnings when each workflow is paired with
its matching input-data configuration; info-level notes are allowed.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_files, lint_workflow
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML

REPO = Path(__file__).resolve().parents[2]

#: workflow file -> its input-data configuration
SHIPPED = {
    "configs/blast_partition.xml": ["configs/blast_db.xml"],
    "configs/hybrid_cut.xml": ["configs/graph_edge.xml"],
}


def _render(result):
    return "\n".join(d.render() for d in result.diagnostics)


@pytest.mark.parametrize("workflow,inputs", sorted(SHIPPED.items()))
def test_shipped_config_files_lint_clean(workflow, inputs):
    result = lint_files(
        str(REPO / workflow), [str(REPO / p) for p in inputs]
    )
    assert not result.errors, _render(result)
    assert not result.warnings, _render(result)


def test_all_shipped_workflows_are_covered():
    configs = {p.relative_to(REPO).as_posix() for p in (REPO / "configs").glob("*.xml")}
    workflows = set(SHIPPED)
    inputs = {p for paths in SHIPPED.values() for p in paths}
    assert configs == workflows | inputs, "untracked config file"


@pytest.mark.parametrize(
    "name,workflow,input_xml",
    [
        ("blast", BLAST_WORKFLOW_XML, BLAST_INPUT_XML),
        ("hybrid_cut", HYBRID_CUT_WORKFLOW_XML, EDGE_INPUT_XML),
    ],
)
def test_example_workflow_constants_lint_clean(name, workflow, input_xml):
    result = lint_workflow(
        workflow, filename=f"<{name}>", inputs=[(input_xml, None)]
    )
    assert not result.errors, _render(result)
    assert not result.warnings, _render(result)


def test_quickstart_example_lints_clean():
    import sys

    sys.path.insert(0, str(REPO / "examples"))
    try:
        import quickstart
    finally:
        sys.path.pop(0)
    result = lint_workflow(
        quickstart.WORKFLOW_XML,
        filename="examples/quickstart.py",
        inputs=[(quickstart.INPUT_XML, None)],
    )
    assert not result.errors, _render(result)
    assert not result.warnings, _render(result)
