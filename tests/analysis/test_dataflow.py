"""Fixed-point dataflow analyses over the plan-IR."""

from repro.analysis import parse_located
from repro.analysis.dataflow import (
    BOTTOM,
    CardinalityAnalysis,
    LivenessAnalysis,
    SchemaAnalysis,
    SchemaValue,
    run_dataflow,
)
from repro.analysis.ir import workflow_ir
from repro.analysis.model import build_workflow_model

from tests.analysis.test_ir import CHAIN, HYBRID

BLAST_FIELDS = (
    ("seq_start", "integer"),
    ("seq_size", "integer"),
    ("desc_start", "integer"),
    ("desc_size", "integer"),
)
EDGE_FIELDS = (("vertex_a", "long"), ("vertex_b", "long"))


def make_ir(xml, args=None):
    model, _ = build_workflow_model(parse_located(xml), "t.xml")
    return workflow_ir(model, args)


class TestSchemaAnalysis:
    def test_fields_propagate_unchanged_through_sort_distribute(self):
        res = run_dataflow(make_ir(CHAIN), SchemaAnalysis(BLAST_FIELDS))
        for op in ("sort", "distr"):
            value = res.output_of[op]
            assert value.is_known
            assert value.names() == tuple(n for n, _ in BLAST_FIELDS)

    def test_group_addon_appends_typed_attribute(self):
        res = run_dataflow(make_ir(HYBRID), SchemaAnalysis(EDGE_FIELDS))
        out = res.output_of["group"]
        assert out.names() == ("vertex_a", "vertex_b", "indegree")
        assert out.field_type("indegree") == "long"
        # downstream stages see the widened schema
        assert res.output_of["distr"].names() == out.names()

    def test_unknown_input_stays_top(self):
        res = run_dataflow(make_ir(CHAIN), SchemaAnalysis(None))
        assert not res.output_of["distr"].is_known
        assert res.output_of["distr"].kind != BOTTOM

    def test_addon_collision_is_conflict(self):
        xml = HYBRID.replace('attr="indegree"', 'attr="vertex_a"')
        res = run_dataflow(make_ir(xml), SchemaAnalysis(EDGE_FIELDS))
        assert res.output_of["group"].kind == BOTTOM
        assert "vertex_a" in res.output_of["group"].reason

    def test_join_disagreement_is_conflict(self):
        analysis = SchemaAnalysis(None)
        a = SchemaValue.concrete((("x", "long"),))
        b = SchemaValue.concrete((("y", "long"),))
        assert analysis.join(a, a) == a
        assert analysis.join(a, b).kind == BOTTOM


class TestLivenessAnalysis:
    def test_keys_live_backward(self):
        res = run_dataflow(make_ir(CHAIN), LivenessAnalysis())
        # sort reads its key; nothing after distr reads anything
        assert res.output_of["sort"] == frozenset({"seq_size"})
        assert res.output_of["distr"] == frozenset()

    def test_addon_attr_is_a_def_not_a_use(self):
        res = run_dataflow(make_ir(HYBRID), LivenessAnalysis())
        # split keys on the group-defined attribute; the group kills it
        assert "indegree" in res.output_of["split"]
        assert "indegree" not in res.output_of["group"]
        assert "vertex_b" in res.output_of["group"]
        # vertex_a is never read anywhere
        for op in ("group", "split", "distr"):
            assert "vertex_a" not in res.output_of[op]


class TestCardinalityAnalysis:
    def test_rows_flow_forward(self):
        res = run_dataflow(
            make_ir(CHAIN),
            CardinalityAnalysis(input_rows=1000.0, input_row_bytes=16.0),
        )
        for op in ("sort", "distr"):
            assert res.input_of[op].rows == 1000.0
            assert res.input_of[op].est_bytes == 16000.0

    def test_split_fanin_does_not_double_count(self):
        # both split outputs feed the distribute; the engine dedupes by
        # producer so the distribute sees the split's rows once
        res = run_dataflow(
            make_ir(HYBRID),
            CardinalityAnalysis(input_rows=500.0, input_row_bytes=16.0),
        )
        assert res.input_of["distr"].rows == 500.0

    def test_group_widens_rows_and_applies_ratio(self):
        res = run_dataflow(
            make_ir(HYBRID),
            CardinalityAnalysis(
                input_rows=100.0,
                input_row_bytes=16.0,
                group_ratio=0.25,
                addon_bytes={"group": 8.0},
            ),
        )
        out = res.output_of["group"]
        assert out.rows == 100.0
        assert out.entries == 25.0
        assert out.row_bytes == 24.0
        assert out.packed  # hybrid group output declares format="pack"

    def test_unknown_rows_stay_unknown(self):
        res = run_dataflow(make_ir(CHAIN), CardinalityAnalysis())
        assert res.input_of["distr"].rows is None
        assert res.input_of["distr"].est_bytes is None

    def test_converges_within_sweep_bound(self):
        res = run_dataflow(make_ir(HYBRID), CardinalityAnalysis(input_rows=10.0))
        assert res.iterations <= len(make_ir(HYBRID).nodes) + 1
