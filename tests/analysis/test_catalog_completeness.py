"""Every catalogued rule teaches: bad + good examples, optimizer links.

``papar lint --explain PAPnnn`` renders straight from :data:`CATALOG`, so
an empty ``bad``/``good`` slot is a silent documentation hole — this
module turns each hole into a failing test.  The PAP08x entries carry an
extra obligation: their ``good`` examples must describe the *applied
rewrite* (the optimizer pass from :data:`PASS_NAMES`), not just a manual
edit, so the lint catalog and ``papar optimize`` stay in sync.
"""

from repro.analysis import CATALOG, all_codes
from repro.analysis.optimize import PASS_NAMES


def test_every_code_has_a_catalog_entry():
    for code in all_codes():
        assert code in CATALOG, f"{code} missing from CATALOG"


def test_every_entry_has_summary_and_description():
    for code, spec in CATALOG.items():
        assert spec.summary.strip(), f"{code} has no summary"
        assert (spec.description or spec.summary).strip(), (
            f"{code} has no description"
        )


def test_every_entry_has_bad_and_good_examples():
    for code, spec in CATALOG.items():
        assert spec.bad.strip(), f"{code} has no bad example"
        assert spec.good.strip(), f"{code} has no good example"


def test_no_placeholder_text_survives():
    for code, spec in CATALOG.items():
        for slot in ("summary", "description", "bad", "good"):
            text = getattr(spec, slot).lower()
            assert "todo" not in text and "accepted:" not in text, (
                f"{code}.{slot} still carries placeholder text"
            )


def test_advisory_goods_name_their_optimizer_pass():
    for code, pass_name in PASS_NAMES.items():
        spec = CATALOG[code]
        assert "applied rewrite" in spec.good, (
            f"{code}.good must show the applied rewrite, not a manual edit"
        )
        assert pass_name in spec.good, (
            f"{code}.good must name its optimizer pass {pass_name!r}"
        )


def test_hotspot_advisory_points_at_the_optimizer():
    spec = CATALOG["PAP084"]
    assert "papar optimize" in spec.good


def test_explain_dict_round_trips_examples():
    for code, spec in CATALOG.items():
        doc = spec.explain_dict()
        assert doc["code"] == code
        assert doc["bad"] == spec.bad
        assert doc["good"] == spec.good
