"""Golden diagnostics: one minimal bad configuration per rule code.

Each test pins a code's exact identity — code string, severity, and the
1-based source line the diagnostic points at — so a rule can only change
behavior by changing a test.  ``docs/lint-rules.md`` catalogues the same
codes with bad/good pairs.
"""

import numpy as np
import pytest

from repro.analysis import CATALOG, Severity, lint_workflow
from repro.policies.distr import DistributionPolicy, _POLICIES, register_policy

BLAST_DB = """\
<input id="blast_db" name="BLAST Database file">
  <input_format>binary</input_format>
  <element>
    <value name="seq_start" type="integer"/>
    <value name="seq_size" type="integer"/>
    <value name="desc_start" type="integer"/>
    <value name="desc_size" type="integer"/>
  </element>
</input>
"""

FLOAT_DB = """\
<input id="floaty" name="float records">
  <input_format>binary</input_format>
  <element>
    <value name="score" type="float"/>
    <value name="size" type="integer"/>
  </element>
</input>
"""

TEXT_DB = """\
<input id="texty" name="text records">
  <input_format>text</input_format>
  <element>
    <value name="label" type="string"/>
    <value name="size" type="integer"/>
    <delimiter value=","/>
    <delimiter value="\\n"/>
  </element>
</input>
"""


def run_lint(xml, inputs=(), **kw):
    return lint_workflow(xml, filename="t.xml", inputs=inputs, **kw)


def only(result, code):
    """The diagnostics carrying ``code`` (asserting there is at least one)."""
    matches = [d for d in result.diagnostics if d.code == code]
    assert matches, f"{code} missing; got {[d.code for d in result.diagnostics]}"
    return matches


def expect(result, code, line=None):
    """Assert ``code`` fired with its catalogued severity at ``line``."""
    diag = only(result, code)[0]
    assert diag.severity is CATALOG[code].severity
    assert diag.rule == CATALOG[code].name
    if line is not None:
        assert diag.line == line, f"{code}: line {diag.line} != {line}"
    return diag


class TestStructure:
    def test_pap001_malformed_xml(self):
        result = run_lint("<workflow id='t'><arguments>")
        diag = expect(result, "PAP001", line=1)
        assert diag.severity is Severity.ERROR
        assert result.exit_code() == 1

    def test_pap001_wrong_root(self):
        result = run_lint("<notworkflow/>")
        diag = expect(result, "PAP001", line=1)
        assert "<workflow>" in diag.message

    def test_pap002_operator_missing_attributes(self):
        result = run_lint(
            """<workflow id="t">
  <arguments/>
  <operators>
    <operator operator="Sort">
      <param name="key" value="x"/>
    </operator>
  </operators>
</workflow>""",
            do_plan=False,
        )
        expect(result, "PAP002", line=4)

    def test_pap003_duplicate_operator_id(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="p" type="hdfs"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$p"/>
      <param name="key" value="k"/>
    </operator>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$a.outputPath"/>
      <param name="key" value="k"/>
    </operator>
  </operators>
</workflow>""",
            do_plan=False,
        )
        expect(result, "PAP003", line=10)

    def test_pap004_unknown_operator(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="p" type="hdfs"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sorty">
      <param name="inputPath" value="$p"/>
      <param name="key" value="k"/>
    </operator>
  </operators>
</workflow>""",
            do_plan=False,
        )
        diag = expect(result, "PAP004", line=6)
        assert "sort" in (diag.suggestion or "")

    def test_pap005_unknown_addon_and_pap006_ignored(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="p" type="hdfs"/>
  </arguments>
  <operators>
    <operator id="b" operator="Sort">
      <param name="inputPath" value="$p"/>
      <param name="key" value="k"/>
      <addon operator="bogus" key="k" attr="x"/>
    </operator>
  </operators>
</workflow>""",
            do_plan=False,
        )
        expect(result, "PAP005", line=9)
        expect(result, "PAP006", line=9)


class TestReferences:
    def test_pap010_undefined_reference(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$input_paht"/>
      <param name="key" value="k"/>
    </operator>
  </operators>
</workflow>""",
            do_plan=False,
        )
        diag = expect(result, "PAP010", line=7)
        assert "$input_path" in (diag.suggestion or "")

    def test_pap011_forward_reference(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="p" type="hdfs"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$b.outputPath"/>
      <param name="key" value="k"/>
      <param name="outputPath" value="/tmp/a"/>
    </operator>
    <operator id="b" operator="Sort">
      <param name="inputPath" value="$p"/>
      <param name="key" value="k"/>
      <param name="outputPath" value="/tmp/b"/>
    </operator>
  </operators>
</workflow>""",
            do_plan=False,
        )
        expect(result, "PAP011", line=7)

    def test_pap012_reference_cycle(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="p" type="hdfs"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$b.outputPath"/>
      <param name="key" value="k"/>
      <param name="outputPath" value="/tmp/a"/>
    </operator>
    <operator id="b" operator="Sort">
      <param name="inputPath" value="$a.outputPath"/>
      <param name="key" value="k"/>
      <param name="outputPath" value="/tmp/b"/>
    </operator>
  </operators>
</workflow>""",
            do_plan=False,
        )
        diag = expect(result, "PAP012", line=6)
        assert "a -> b -> a" in diag.message
        # cycle members are not double-reported as forward references
        assert not [d for d in result.diagnostics if d.code == "PAP011"]

    def test_pap012_self_reference(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="p" type="hdfs"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$a.outputPath"/>
      <param name="key" value="k"/>
    </operator>
  </operators>
</workflow>""",
            do_plan=False,
        )
        expect(result, "PAP012", line=7)

    def test_pap013_unused_argument(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="p" type="hdfs"/>
    <param name="unused" type="integer" value="1"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$p"/>
      <param name="key" value="k"/>
    </operator>
  </operators>
</workflow>""",
            do_plan=False,
        )
        diag = expect(result, "PAP013", line=4)
        assert "unused" in diag.message

    def test_pap014_unknown_output_attribute(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="p" type="hdfs"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$p"/>
      <param name="key" value="k"/>
      <param name="outputPath" value="/tmp/a"/>
    </operator>
    <operator id="b" operator="Sort">
      <param name="inputPath" value="$a.bogusAttr"/>
      <param name="key" value="k"/>
    </operator>
  </operators>
</workflow>""",
            do_plan=False,
        )
        expect(result, "PAP014", line=12)


class TestSchemaFlow:
    def test_pap020_key_not_in_schema(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="s" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/s"/>
      <param name="key" value="nope"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        diag = expect(result, "PAP020", line=9)
        assert "seq_size" in diag.message

    def test_pap020_sees_addon_attributes(self):
        """A key an earlier add-on introduced is available downstream."""
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="g" operator="Group">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/g"/>
      <param name="key" value="seq_size"/>
      <addon operator="count" key="seq_size" attr="freq"/>
    </operator>
    <operator id="s" operator="Sort">
      <param name="inputPath" value="$g.outputPath"/>
      <param name="outputPath" value="/tmp/s"/>
      <param name="key" value="freq"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        assert not [d for d in result.diagnostics if d.code == "PAP020"]

    def test_pap021_float_group_key(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="floaty"/>
  </arguments>
  <operators>
    <operator id="g" operator="Group">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/g"/>
      <param name="key" value="score"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(FLOAT_DB, "floaty.xml")],
        )
        expect(result, "PAP021", line=9)

    def test_pap022_split_threshold_type(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="texty"/>
  </arguments>
  <operators>
    <operator id="sp" operator="Split">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPathList" value="/tmp/a,/tmp/b"/>
      <param name="key" value="label"/>
      <param name="policy" value="{&gt;=, 10},{&lt;, 10}"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(TEXT_DB, "texty.xml")],
        )
        expect(result, "PAP022", line=9)

    def test_pap023_split_coverage_gap(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="sp" operator="Split">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPathList" value="/tmp/a,/tmp/b"/>
      <param name="key" value="seq_size"/>
      <param name="policy" value="{&gt;, 10},{&lt;, 10}"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        diag = expect(result, "PAP023", line=10)
        assert "10" in diag.message

    def test_pap024_addon_field_missing(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="g" operator="Group">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/g"/>
      <param name="key" value="seq_size"/>
      <addon operator="sum" key="seq_size" value="missing_field" attr="tot"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        expect(result, "PAP024", line=10)

    def test_pap025_boolean_literal(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="p" type="hdfs"/>
    <param name="flag" type="boolean" value="ture"/>
  </arguments>
  <operators>
    <operator id="s" operator="Sort">
      <param name="inputPath" value="$p"/>
      <param name="key" value="k"/>
      <param name="verbose" type="boolean" value="$flag"/>
    </operator>
  </operators>
</workflow>""",
            do_plan=False,
        )
        diag = expect(result, "PAP025", line=4)
        assert "'ture'" in diag.message


class TestPathWiring:
    BAD_WIRING = """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/x"/>
      <param name="key" value="seq_size"/>
    </operator>
    <operator id="b" operator="Sort">
      <param name="inputPath" value="/tmp/nothing/"/>
      <param name="outputPath" value="/tmp/x"/>
      <param name="key" value="seq_size"/>
    </operator>
  </operators>
</workflow>"""

    def test_pap030_dead_output(self):
        result = run_lint(self.BAD_WIRING, inputs=[(BLAST_DB, "blast_db.xml")])
        expect(result, "PAP030", line=8)

    def test_pap031_output_collision(self):
        result = run_lint(self.BAD_WIRING, inputs=[(BLAST_DB, "blast_db.xml")])
        expect(result, "PAP031", line=13)

    def test_pap032_orphan_directory_input(self):
        result = run_lint(self.BAD_WIRING, inputs=[(BLAST_DB, "blast_db.xml")])
        expect(result, "PAP032", line=12)

    def test_pap033_split_arity(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="sp" operator="Split">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPathList" value="/tmp/a,/tmp/b,/tmp/c"/>
      <param name="key" value="seq_size"/>
      <param name="policy" value="{&gt;=, 10},{&lt;, 10}"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        diag = expect(result, "PAP033", line=8)
        assert "2" in diag.message and "3" in diag.message

    def test_pap034_split_policy_syntax(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="sp" operator="Split">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPathList" value="/tmp/a,/tmp/b"/>
      <param name="key" value="seq_size"/>
      <param name="policy" value="&gt;= 10"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        expect(result, "PAP034", line=10)

    def test_pap035_unknown_distribution_policy(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="d" operator="Distribute">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/d"/>
      <param name="distrPolicy" value="roundRobbin"/>
      <param name="numPartitions" value="4"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        diag = expect(result, "PAP035", line=9)
        assert "roundrobin" in (diag.suggestion or "").lower()

    def test_pap036_bad_partition_count(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="d" operator="Distribute">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/d"/>
      <param name="distrPolicy" value="roundRobin"/>
      <param name="numPartitions" value="0"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        expect(result, "PAP036", line=10)


class TestPlanRules:
    REDUCER_XML = """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
    <param name="output_path" type="hdfs"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort" num_reducers="2">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/s"/>
      <param name="key" value="seq_size"/>
    </operator>
    <operator id="distr" operator="Distribute" num_reducers="5">
      <param name="inputPath" value="$sort.outputPath"/>
      <param name="outputPath" value="$output_path"/>
      <param name="distrPolicy" value="roundRobin"/>
      <param name="numPartitions" value="4"/>
    </operator>
  </operators>
</workflow>"""

    def test_pap040_plan_failure(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="s" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/s"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        diag = expect(result, "PAP040")
        assert "no key" in diag.message

    def test_pap040_suppressed_by_static_explanation(self):
        """When a static rule explains the failure, PAP040 is noise."""
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="p" type="hdfs"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sorty">
      <param name="inputPath" value="$p"/>
      <param name="key" value="k"/>
    </operator>
  </operators>
</workflow>"""
        )
        assert [d.code for d in result.diagnostics if d.severity is Severity.ERROR] == [
            "PAP004"
        ]

    def test_pap041_invalid_permutation(self):
        class BrokenPolicy(DistributionPolicy):
            name = "brokenperm"

            def permutation(self, n, nparts):
                perm = np.zeros(n, dtype=np.int64)
                counts = np.zeros(nparts, dtype=np.int64)
                counts[0] = n
                return perm, counts

        register_policy("brokenperm", BrokenPolicy)
        try:
            result = run_lint(
                """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="d" operator="Distribute">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/d"/>
      <param name="distrPolicy" value="brokenperm"/>
      <param name="numPartitions" value="4"/>
    </operator>
  </operators>
</workflow>""",
                inputs=[(BLAST_DB, "blast_db.xml")],
            )
        finally:
            _POLICIES.pop("brokenperm", None)
        expect(result, "PAP041", line=6)

    def test_pap042_reducer_mismatch(self):
        result = run_lint(self.REDUCER_XML, inputs=[(BLAST_DB, "blast_db.xml")])
        expect(result, "PAP042", line=7)

    def test_pap043_sort_tie_partitioning(self):
        result = run_lint(self.REDUCER_XML, inputs=[(BLAST_DB, "blast_db.xml")])
        diag = expect(result, "PAP043", line=12)
        assert diag.severity is Severity.INFO

    def test_pap044_ranks_exceed_partitions(self):
        result = run_lint(
            self.REDUCER_XML, inputs=[(BLAST_DB, "blast_db.xml")], ranks=8
        )
        diag = expect(result, "PAP044", line=12)
        assert "8" in diag.message and "4" in diag.message


class TestInputConfigs:
    def test_pap050_invalid_input_config(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="broken"/>
  </arguments>
  <operators>
    <operator id="s" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="key" value="k"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[("<input id='broken'><element>", "broken.xml")],
        )
        diag = expect(result, "PAP050")
        assert diag.file == "broken.xml"

    def test_pap051_unreferenced_input_config(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs"/>
  </arguments>
  <operators>
    <operator id="s" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/s"/>
      <param name="key" value="seq_size"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        diag = expect(result, "PAP051")
        assert diag.file == "blast_db.xml"


SPLIT_ONLY = """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="s" operator="Split">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPathList" value="/tmp/p,/tmp/q"/>
      <param name="key" value="seq_size"/>
      <param name="policy" value="{&gt;=, 10},{&lt;, 10}"/>
    </operator>
  </operators>
</workflow>"""

SORT_THEN_SPLIT = SPLIT_ONLY.replace(
    "<operators>",
    """<operators>
    <operator id="pre" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/sorted"/>
      <param name="key" value="seq_size"/>
    </operator>""",
).replace('value="$input_path"/>\n      <param name="outputPathList"',
          'value="$pre.outputPath"/>\n      <param name="outputPathList"')


class TestOutOfCore:
    """PAP06x: declared memory budget versus estimated input size."""

    INPUTS = [(BLAST_DB, "blast_db.xml")]

    def test_pap061_invalid_budget_spec(self):
        result = run_lint(SPLIT_ONLY, inputs=self.INPUTS, memory_budget="banana")
        diag = expect(result, "PAP061")
        assert "banana" in diag.message
        assert result.exit_code() == 1

    def test_pap060_no_spill_capable_operator(self):
        # 10**6 records x 16 B = ~15 MiB against a 1KB budget, and Split
        # cannot spill: the input must be materialized over budget
        result = run_lint(
            SPLIT_ONLY, inputs=self.INPUTS,
            memory_budget="1KB", assume_records=10**6,
        )
        diag = expect(result, "PAP060", line=3)  # points at the input argument
        assert "1.0 KiB" in diag.message
        assert "1000000 records" in diag.message

    def test_pap060_suppressed_by_a_spill_capable_stage(self):
        result = run_lint(
            SORT_THEN_SPLIT, inputs=self.INPUTS,
            memory_budget="1KB", assume_records=10**6,
        )
        assert not [d for d in result.diagnostics if d.code == "PAP060"]

    def test_pap060_silent_when_the_input_fits(self):
        result = run_lint(
            SPLIT_ONLY, inputs=self.INPUTS,
            memory_budget="64MB", assume_records=1000,
        )
        assert not [d for d in result.diagnostics if d.code.startswith("PAP06")]

    def test_pap060_needs_an_assumed_record_count(self):
        result = run_lint(SPLIT_ONLY, inputs=self.INPUTS, memory_budget="1KB")
        assert not [d for d in result.diagnostics if d.code.startswith("PAP06")]

    def test_rules_silent_without_a_budget(self):
        result = run_lint(SPLIT_ONLY, inputs=self.INPUTS, assume_records=10**6)
        assert not [d for d in result.diagnostics if d.code.startswith("PAP06")]


class TestBackendFit:
    """PAP07x: declared execution backend versus its runtime restrictions."""

    INPUTS = [(BLAST_DB, "blast_db.xml")]

    def test_pap070_process_backend_with_faults(self):
        result = run_lint(
            SPLIT_ONLY, inputs=self.INPUTS, backend="process", faults=True,
            do_plan=False,
        )
        diag = expect(result, "PAP070")
        assert "backend='process'" in diag.message
        assert "mpi" in diag.suggestion
        # advisory, not blocking: exit code stays clean without --strict
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 1

    def test_pap070_silent_on_the_threaded_backend(self):
        result = run_lint(SPLIT_ONLY, inputs=self.INPUTS, backend="mpi", faults=True)
        assert not [d for d in result.diagnostics if d.code == "PAP070"]

    def test_pap070_silent_without_fault_tolerance(self):
        result = run_lint(SPLIT_ONLY, inputs=self.INPUTS, backend="process")
        assert not [d for d in result.diagnostics if d.code == "PAP070"]

    def test_pap071_oversubscribed_ranks(self, monkeypatch):
        from repro.analysis.rules import backend as backend_rules

        monkeypatch.setattr(backend_rules, "available_cpus", lambda: 4)
        result = run_lint(SPLIT_ONLY, inputs=self.INPUTS, backend="process", ranks=16)
        diag = expect(result, "PAP071")
        assert "16 process ranks" in diag.message
        assert "4 CPU" in diag.message

    def test_pap071_silent_when_ranks_fit(self, monkeypatch):
        from repro.analysis.rules import backend as backend_rules

        monkeypatch.setattr(backend_rules, "available_cpus", lambda: 8)
        result = run_lint(SPLIT_ONLY, inputs=self.INPUTS, backend="process", ranks=8)
        assert not [d for d in result.diagnostics if d.code == "PAP071"]

    def test_pap070_silent_for_checkpoint_only_recovery(self):
        """Gang-restart recovery is supported: declaring a checkpoint (without
        injection) must not warn that the run will be refused."""
        result = run_lint(
            SPLIT_ONLY, inputs=self.INPUTS, backend="process", checkpoint=True,
        )
        assert not [d for d in result.diagnostics if d.code == "PAP070"]

    def test_pap072_large_rank_count_without_checkpoint(self, monkeypatch):
        from repro.analysis.rules import backend as backend_rules

        monkeypatch.setattr(backend_rules, "available_cpus", lambda: 64)
        result = run_lint(SPLIT_ONLY, inputs=self.INPUTS, backend="process", ranks=8)
        diag = expect(result, "PAP072")
        assert "checkpoint" in diag.message
        assert "--checkpoint-dir" in diag.suggestion

    def test_pap072_large_input_without_checkpoint(self):
        result = run_lint(
            SPLIT_ONLY, inputs=self.INPUTS, backend="process",
            assume_records=2_000_000,
        )
        expect(result, "PAP072")

    def test_pap072_silenced_by_a_declared_checkpoint(self, monkeypatch):
        from repro.analysis.rules import backend as backend_rules

        monkeypatch.setattr(backend_rules, "available_cpus", lambda: 64)
        result = run_lint(
            SPLIT_ONLY, inputs=self.INPUTS, backend="process", ranks=16,
            assume_records=2_000_000, checkpoint=True,
        )
        assert not [d for d in result.diagnostics if d.code == "PAP072"]

    def test_pap072_silent_for_small_runs(self):
        result = run_lint(SPLIT_ONLY, inputs=self.INPUTS, backend="process", ranks=4)
        assert not [d for d in result.diagnostics if d.code == "PAP072"]

    def test_rules_silent_without_a_declared_backend(self):
        result = run_lint(
            SPLIT_ONLY, inputs=self.INPUTS, faults=True, ranks=10**6,
            assume_records=10**9,
        )
        assert not [d for d in result.diagnostics if d.code.startswith("PAP07")]


DEAL_ONLY = """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="dist" operator="Distribute">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/out"/>
      <param name="distrPolicy" value="cyclic"/>
      <param name="numPartitions" value="4"/>
    </operator>
  </operators>
</workflow>"""

SORT_THEN_DEAL = DEAL_ONLY.replace(
    "<operator id=\"dist\"",
    """<operator id="sort" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/sorted"/>
      <param name="key" value="seq_size"/>
    </operator>
    <operator id="dist\"""",
).replace('value="$input_path"/>\n      <param name="outputPath" value="/tmp/out"',
          'value="$sort.outputPath"/>\n      <param name="outputPath" value="/tmp/out"')


class TestServeFit:
    """PAP090: declared serve destination versus order-sensitive routing."""

    INPUTS = [(BLAST_DB, "blast_db.xml")]

    def test_pap090_dealing_with_no_keyed_stage(self):
        result = run_lint(DEAL_ONLY, inputs=self.INPUTS, serve=True)
        diag = expect(result, "PAP090", line=6)  # points at the distribute
        assert "'cyclic'" in diag.message
        assert "arrival order" in diag.message
        assert "Sort or Group" in diag.suggestion
        # a warning: blocks only under --strict
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 1

    def test_pap090_silent_with_a_sort_upstream(self):
        result = run_lint(SORT_THEN_DEAL, inputs=self.INPUTS, serve=True)
        assert not [d for d in result.diagnostics if d.code == "PAP090"]

    def test_pap090_silent_without_the_serve_declaration(self):
        result = run_lint(DEAL_ONLY, inputs=self.INPUTS)
        assert not [d for d in result.diagnostics if d.code.startswith("PAP09")]

    def test_pap090_silent_on_a_non_distribute_tail(self):
        sort_only = """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/sorted"/>
      <param name="key" value="seq_size"/>
    </operator>
  </operators>
</workflow>"""
        result = run_lint(sort_only, inputs=self.INPUTS, serve=True)
        assert not [d for d in result.diagnostics if d.code == "PAP090"]


class TestCatalogIntegrity:
    def test_every_code_is_catalogued(self):
        assert len(CATALOG) >= 30
        for code, spec in CATALOG.items():
            assert code.startswith("PAP") and len(code) == 6
            assert spec.code == code
            assert spec.name and spec.summary
            assert spec.severity in (Severity.ERROR, Severity.WARNING, Severity.INFO)

    def test_twelve_plus_distinct_codes_in_one_pass(self):
        """A single hostile config surfaces >= 12 distinct codes in one run."""
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
    <param name="unused" type="integer" value="1"/>
    <param name="flag" type="boolean" value="ture"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sorty">
      <param name="inputPath" value="$typo"/>
      <param name="key" value="seq_size"/>
      <param name="outputPath" value="/tmp/x"/>
    </operator>
    <operator id="b" operator="Sort">
      <param name="inputPath" value="$c.outputPath"/>
      <param name="key" value="nope"/>
      <param name="outputPath" value="/tmp/x"/>
      <addon operator="bogus" key="k" attr="y"/>
    </operator>
    <operator id="c" operator="Split">
      <param name="inputPath" value="/tmp/orphan/"/>
      <param name="outputPathList" value="/tmp/p,/tmp/q,/tmp/r"/>
      <param name="key" value="seq_size"/>
      <param name="policy" value="{&gt;, 10},{&lt;, 10}"/>
    </operator>
    <operator id="d" operator="Distribute">
      <param name="inputPath" value="$c.outputPathList"/>
      <param name="outputPath" value="/tmp/out"/>
      <param name="distrPolicy" value="nosuch"/>
      <param name="numPartitions" value="-3"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        codes = result.codes()
        assert len(codes) >= 12, codes
        for diag in result.diagnostics:
            assert diag.file, diag
        located = [d for d in result.diagnostics if d.line is not None]
        assert len(located) >= 10


ADVISORY_CHAIN = """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/a"/>
      <param name="key" value="seq_size"/>
    </operator>
    <operator id="b" operator="Distribute">
      <param name="inputPath" value="$a.outputPath"/>
      <param name="outputPath" value="/tmp/out"/>
      <param name="distrPolicy" value="roundRobin"/>
      <param name="numPartitions" value="4"/>
    </operator>
  </operators>
</workflow>"""


class TestAdvisories:
    """PAP080-PAP084: INFO-severity optimization advisories over the IR."""

    def test_pap080_dead_operator(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/a"/>
      <param name="key" value="seq_size"/>
    </operator>
    <operator id="dead" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/dead"/>
      <param name="key" value="seq_start"/>
    </operator>
    <operator id="b" operator="Distribute">
      <param name="inputPath" value="$a.outputPath"/>
      <param name="outputPath" value="/tmp/out"/>
      <param name="distrPolicy" value="roundRobin"/>
      <param name="numPartitions" value="4"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        diag = expect(result, "PAP080", line=11)
        assert diag.severity is Severity.INFO
        assert "'dead'" in diag.message

    def test_pap080_silent_on_linear_chain(self):
        result = run_lint(ADVISORY_CHAIN, inputs=[(BLAST_DB, "blast_db.xml")])
        assert "PAP080" not in result.codes()

    def test_pap081_sort_into_sort(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/a"/>
      <param name="key" value="seq_size"/>
    </operator>
    <operator id="b" operator="Sort">
      <param name="inputPath" value="$a.outputPath"/>
      <param name="outputPath" value="/tmp/b"/>
      <param name="key" value="seq_start"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        diag = expect(result, "PAP081", line=6)
        assert diag.severity is Severity.INFO
        assert "redundant" in diag.message

    def test_pap081_group_into_same_key_sort(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_file" type="hdfs" format="texty"/>
  </arguments>
  <operators>
    <operator id="g" operator="Group">
      <param name="inputPath" value="$input_file"/>
      <param name="outputPath" value="/tmp/g"/>
      <param name="key" value="size"/>
    </operator>
    <operator id="s" operator="Sort">
      <param name="inputPath" value="$g.outputPath"/>
      <param name="outputPath" value="/tmp/s"/>
      <param name="key" value="size"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(TEXT_DB, "texty.xml")],
        )
        expect(result, "PAP081", line=6)

    def test_pap081_silent_on_sort_into_distribute(self):
        """The paper's canonical pipeline: position permutation keeps order."""
        result = run_lint(ADVISORY_CHAIN, inputs=[(BLAST_DB, "blast_db.xml")])
        assert "PAP081" not in result.codes()

    def test_pap082_collapsible_with_named_equivalent(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="a" operator="Distribute">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/a"/>
      <param name="distrPolicy" value="block"/>
      <param name="numPartitions" value="4"/>
    </operator>
    <operator id="b" operator="Distribute">
      <param name="inputPath" value="$a.outputPath"/>
      <param name="outputPath" value="/tmp/b"/>
      <param name="distrPolicy" value="cyclic"/>
      <param name="numPartitions" value="4"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        diag = expect(result, "PAP082", line=6)
        assert "equivalent to a single 'cyclic' distribute" in diag.message
        assert "numPartitions=4" in diag.message

    def test_pap082_generic_composition_message(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="a" operator="Distribute">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/a"/>
      <param name="distrPolicy" value="cyclic"/>
      <param name="numPartitions" value="4"/>
    </operator>
    <operator id="b" operator="Distribute">
      <param name="inputPath" value="$a.outputPath"/>
      <param name="outputPath" value="/tmp/b"/>
      <param name="distrPolicy" value="cyclic"/>
      <param name="numPartitions" value="4"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
        )
        diag = expect(result, "PAP082", line=6)
        assert "compose into one shuffle" in diag.message

    def test_pap083_unused_columns_with_bytes_estimate(self):
        result = run_lint(
            ADVISORY_CHAIN,
            inputs=[(BLAST_DB, "blast_db.xml")],
            assume_records=1000,
        )
        diag = expect(result, "PAP083", line=3)
        assert diag.severity is Severity.INFO
        for col in ("'seq_start'", "'desc_start'", "'desc_size'"):
            assert col in diag.message
        # 1000 rows x 12 unused bytes x 1 intermediate exchange
        assert "save an estimated 11.7KB" in diag.message

    def test_pap083_silent_without_intermediate_exchange(self):
        result = run_lint(
            """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/a"/>
      <param name="key" value="seq_size"/>
    </operator>
  </operators>
</workflow>""",
            inputs=[(BLAST_DB, "blast_db.xml")],
            assume_records=1000,
        )
        assert "PAP083" not in result.codes()

    def test_pap084_exchange_hotspot(self):
        result = run_lint(
            ADVISORY_CHAIN,
            inputs=[(BLAST_DB, "blast_db.xml")],
            assume_records=20_000_000,  # x 16B/record = 305MB per exchange
        )
        diag = expect(result, "PAP084", line=6)
        assert diag.severity is Severity.INFO
        assert "hotspot threshold" in diag.message
        # both the sort and the distribute exchange cross the line
        assert len(only(result, "PAP084")) == 2

    def test_pap084_silent_below_threshold(self):
        result = run_lint(
            ADVISORY_CHAIN,
            inputs=[(BLAST_DB, "blast_db.xml")],
            assume_records=1000,
        )
        assert "PAP084" not in result.codes()

    def test_advisories_never_change_exit_code(self):
        result = run_lint(
            ADVISORY_CHAIN,
            inputs=[(BLAST_DB, "blast_db.xml")],
            assume_records=20_000_000,
        )
        assert {d.severity for d in result.diagnostics} == {Severity.INFO}
        assert result.exit_code() == 0
