"""The ``explain`` subcommand, ``lint --explain``, and output stability."""

import json

import pytest

from repro.analysis import CATALOG
from repro.analysis.explain import EXPLAIN_SCHEMA_VERSION, explain_workflow
from repro.cli import main

DEAD_COLUMN_WORKFLOW = """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/a"/>
      <param name="key" value="seq_size"/>
    </operator>
    <operator id="dead" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/dead"/>
      <param name="key" value="seq_start"/>
    </operator>
    <operator id="b" operator="Distribute">
      <param name="inputPath" value="$a.outputPath"/>
      <param name="outputPath" value="/tmp/out"/>
      <param name="distrPolicy" value="roundRobin"/>
      <param name="numPartitions" value="4"/>
    </operator>
  </operators>
</workflow>"""

BLAST_DB = """<input id="blast_db" name="BLAST Database file">
  <input_format>binary</input_format>
  <element>
    <value name="seq_start" type="integer"/>
    <value name="seq_size" type="integer"/>
    <value name="desc_start" type="integer"/>
    <value name="desc_size" type="integer"/>
  </element>
</input>"""


@pytest.fixture
def repo_configs(pytestconfig):
    return pytestconfig.rootpath / "configs"


class TestExplainCommand:
    def test_text_report_on_shipped_config(self, repo_configs, capsys):
        code = main([
            "explain", str(repo_configs / "blast_partition.xml"),
            "--input", str(repo_configs / "blast_db.xml"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "sort" in out and "distr" in out
        assert "exchange" in out
        assert "live" in out

    def test_json_contract(self, repo_configs, capsys):
        code = main([
            "explain", str(repo_configs / "blast_partition.xml"),
            "--input", str(repo_configs / "blast_db.xml"),
            "--format", "json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == EXPLAIN_SCHEMA_VERSION
        assert doc["tool"] == "papar-explain"
        assert set(doc) == {
            "version", "tool", "workflow", "file", "operators", "edges",
            "exchanges", "pruning", "advisories", "summary",
        }
        assert [op["id"] for op in doc["operators"]]
        for op in doc["operators"]:
            assert {"index", "id", "kind", "line", "exchange", "schema",
                    "live", "est_rows", "input", "outputs"} <= set(op)
        for ex in doc["exchanges"]:
            assert {"op", "kind", "rows", "row_bytes", "est_bytes",
                    "measured"} <= set(ex)
        assert set(doc["summary"]) == {"errors", "warnings", "info"}

    def test_assume_records_estimates_bytes(self, repo_configs, capsys):
        code = main([
            "explain", str(repo_configs / "blast_partition.xml"),
            "--input", str(repo_configs / "blast_db.xml"),
            "--assume-records", "1000", "--format", "json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        for ex in doc["exchanges"]:
            assert ex["rows"] == 1000
            assert ex["est_bytes"] == 16000
            assert not ex["measured"]

    def test_dead_operator_and_unused_column_reported(self):
        """Acceptance: injected dead op + unread columns both surface."""
        report = explain_workflow(
            DEAD_COLUMN_WORKFLOW,
            filename="t.xml",
            inputs=[(BLAST_DB, "blast_db.xml")],
            assume_records=1000,
        )
        codes = {d.code for d in report.advisories}
        assert "PAP080" in codes
        assert "PAP083" in codes
        pap083 = next(d for d in report.advisories if d.code == "PAP083")
        assert "save an estimated" in pap083.message
        assert report.pruning["est_bytes_saved"] is not None

    def test_broken_workflow_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<workflow id='t'><arguments>")
        code = main(["explain", str(bad)])
        assert code == 1


class TestLintExplainFlag:
    def test_text_explanation(self, capsys):
        code = main(["lint", "--explain", "PAP083"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("PAP083 (unused-column) — info")
        assert "bad:" in out and "good:" in out

    def test_json_explanation(self, capsys):
        code = main(["lint", "--explain", "pap030", "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["code"] == "PAP030"
        assert doc["severity"] == "warning"
        assert doc["description"] and doc["bad"] and doc["good"]

    def test_unknown_code_suggests_and_exits_2(self, capsys):
        code = main(["lint", "--explain", "PAP999"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown rule" in err

    def test_lint_without_workflow_or_explain_exits_2(self, capsys):
        code = main(["lint"])
        assert code == 2
        assert "workflow file is required" in capsys.readouterr().err

    def test_catalog_is_fully_documented(self):
        for code, spec in CATALOG.items():
            assert spec.description, code
            assert spec.bad, code
            assert spec.good, code
            doc = spec.explain_dict()
            assert set(doc) == {
                "code", "name", "severity", "summary", "description",
                "bad", "good",
            }


class TestDeterministicOrdering:
    def test_same_line_diagnostics_sorted_by_message(self, repo_configs, capsys):
        """Byte-stable output: ties at (file, line, severity, code) break on
        the message text, never on discovery order."""
        argv = [
            "lint", str(repo_configs / "hybrid_cut.xml"),
            "--input", str(repo_configs / "graph_edge.xml"),
            "--format", "json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_sort_key_includes_message(self):
        from repro.analysis.diagnostics import Diagnostic, LintResult, Severity

        mk = lambda msg: Diagnostic(
            code="PAP080", rule="dead-operator", severity=Severity.INFO,
            message=msg, file="t.xml", line=5,
        )
        result = LintResult(diagnostics=[mk("zebra"), mk("apple")])
        result.sort()
        assert [d.message for d in result.diagnostics] == ["apple", "zebra"]
