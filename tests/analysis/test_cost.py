"""Exchange-cost estimation: file-backed row counts and the accuracy contract.

The headline test pins the acceptance criterion of the cost model: the
statically estimated bytes_moved per exchange must land within 20% of the
``perf['bytes_moved']`` counter a real ``--stats`` run records.  In
practice the model is exact for both shipped case studies, because the
runtimes charge every exchange the full payload of the redistributed
stream — precisely what rows x record-width computes.
"""

import numpy as np
import pytest

from repro import PaPar
from repro.analysis.cost import estimate_input_rows, sample_group_ratio
from repro.analysis.explain import explain_files
from repro.formats.binary import write_binary
from repro.formats.records import BLAST_INDEX_SCHEMA, EDGE_LIST_SCHEMA
from repro.formats.text import write_text


@pytest.fixture
def configs(pytestconfig):
    return pytestconfig.rootpath / "configs"


def make_blast_file(path, n, seed=7):
    rng = np.random.default_rng(seed)
    arr = np.zeros(n, dtype=BLAST_INDEX_SCHEMA.dtype)
    for f in BLAST_INDEX_SCHEMA.field_names:
        arr[f] = rng.integers(0, 1 << 20, n)
    write_binary(path, arr, BLAST_INDEX_SCHEMA, header=b"\0" * 32)


def make_edge_file(path, n, seed=11):
    rng = np.random.default_rng(seed)
    rows = [
        (int(a), int(b))
        for a, b in zip(rng.integers(0, 500, n), rng.integers(0, 50, n))
    ]
    write_text(path, rows, EDGE_LIST_SCHEMA)
    return rows


class TestInputEstimation:
    def test_binary_row_count_is_exact(self, tmp_path):
        path = tmp_path / "db.index"
        make_blast_file(path, 321)
        assert estimate_input_rows(str(path), BLAST_INDEX_SCHEMA) == 321

    def test_text_row_count_is_exact(self, tmp_path):
        path = tmp_path / "edges.txt"
        make_edge_file(path, 123)
        assert estimate_input_rows(str(path), EDGE_LIST_SCHEMA) == 123

    def test_missing_file_is_unknown(self, tmp_path):
        assert estimate_input_rows(str(tmp_path / "nope"), BLAST_INDEX_SCHEMA) is None

    def test_group_ratio_sampled_from_head(self, tmp_path):
        path = tmp_path / "edges.txt"
        make_edge_file(path, 500)
        ratio = sample_group_ratio(str(path), EDGE_LIST_SCHEMA, "vertex_b")
        assert ratio is not None
        assert 0.0 < ratio <= 0.2  # 50 distinct targets over 500 rows

    def test_group_ratio_unknown_key(self, tmp_path):
        path = tmp_path / "edges.txt"
        make_edge_file(path, 10)
        assert sample_group_ratio(str(path), EDGE_LIST_SCHEMA, "nope") is None


class TestAccuracyContract:
    """Estimated bytes per exchange within 20% of a measured --stats run."""

    def _measured_bytes(self, papar, workflow_path, args, ranks=2):
        workflow = papar.load_workflow_file(str(workflow_path))
        out = papar.partition_files(
            workflow, args, backend="mpi", num_ranks=ranks
        )
        return out.result.extra["perf"]["bytes_moved"]

    def test_blast_estimate_matches_stats(self, tmp_path, configs):
        idx = tmp_path / "db.index"
        make_blast_file(idx, 4000)
        args = {
            "input_path": str(idx),
            "output_path": str(tmp_path / "out") + "/",
            "num_partitions": 4,
            "num_reducers": 2,
        }
        papar = PaPar()
        papar.register_input_file(str(configs / "blast_db.xml"))
        measured = self._measured_bytes(papar, configs / "blast_partition.xml", args)

        report = explain_files(
            str(configs / "blast_partition.xml"),
            [str(configs / "blast_db.xml")],
            args={k: str(v) for k, v in args.items()},
        )
        assert all(e["measured"] for e in report.exchanges)
        estimated = sum(e["est_bytes"] for e in report.exchanges)
        assert measured > 0
        assert abs(estimated - measured) / measured < 0.20

    def test_hybrid_estimate_matches_stats(self, tmp_path, configs):
        edges = tmp_path / "edges.txt"
        make_edge_file(edges, 2000)
        args = {
            "input_file": str(edges),
            "output_path": str(tmp_path / "gout") + "/",
            "num_partitions": 4,
            "threshold": 10,
        }
        papar = PaPar()
        papar.register_input_file(str(configs / "graph_edge.xml"))
        measured = self._measured_bytes(papar, configs / "hybrid_cut.xml", args)

        report = explain_files(
            str(configs / "hybrid_cut.xml"),
            [str(configs / "graph_edge.xml")],
            args={k: str(v) for k, v in args.items()},
        )
        estimated = sum(e["est_bytes"] for e in report.exchanges)
        assert measured > 0
        assert abs(estimated - measured) / measured < 0.20

    def test_pruning_estimate_scales_with_rows(self, tmp_path, configs):
        idx = tmp_path / "db.index"
        make_blast_file(idx, 1000)
        report = explain_files(
            str(configs / "blast_partition.xml"),
            [str(configs / "blast_db.xml")],
            args={"input_path": str(idx)},
        )
        # blast: 3 of 4 integer columns unused; one intermediate exchange
        assert report.pruning["unused_columns"] == [
            "seq_start", "desc_start", "desc_size",
        ]
        assert report.pruning["est_bytes_saved"] == 1000 * 12
