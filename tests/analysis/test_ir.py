"""Plan-IR construction: nodes, resolved params, edges, annotations."""

from repro.analysis import parse_located
from repro.analysis.ir import EXCHANGE_KINDS, build_ir, workflow_ir
from repro.analysis.model import LintContext, build_workflow_model

CHAIN = """<workflow id="chain">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
    <param name="parts" type="integer" value="4"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/sorted"/>
      <param name="key" value="seq_size"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" value="$sort.outputPath"/>
      <param name="outputPath" value="/out"/>
      <param name="distrPolicy" value="roundRobin"/>
      <param name="numPartitions" value="$parts"/>
    </operator>
  </operators>
</workflow>"""

HYBRID = """<workflow id="hy">
  <arguments>
    <param name="input_file" type="hdfs" format="graph_edge"/>
  </arguments>
  <operators>
    <operator id="group" operator="Group">
      <param name="inputPath" value="$input_file"/>
      <param name="outputPath" value="/tmp/group" format="pack"/>
      <param name="key" value="vertex_b"/>
      <addon operator="count" key="vertex_b" attr="indegree"/>
    </operator>
    <operator id="split" operator="Split">
      <param name="inputPath" value="$group.outputPath"/>
      <param name="outputPathList" value="/tmp/split/hi,/tmp/split/lo"/>
      <param name="key" value="$group.$indegree"/>
      <param name="policy" value="{&gt;=, 5},{&lt;, 5}"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" value="/tmp/split/"/>
      <param name="outputPath" value="/out"/>
      <param name="policy" value="graphVertexCut"/>
      <param name="numPartitions" value="3"/>
    </operator>
  </operators>
</workflow>"""


def make_ir(xml, args=None):
    model, diags = build_workflow_model(parse_located(xml), "t.xml")
    assert model is not None
    return workflow_ir(model, args)


class TestNodes:
    def test_nodes_in_document_order_with_kinds(self):
        ir = make_ir(CHAIN)
        assert [n.op_id for n in ir.nodes] == ["sort", "distr"]
        assert [n.kind for n in ir.nodes] == ["sort", "distribute"]
        assert [n.index for n in ir.nodes] == [0, 1]

    def test_exchange_annotations(self):
        ir = make_ir(HYBRID)
        assert {n.op_id: n.exchange for n in ir.nodes} == {
            "group": "range",
            "split": None,
            "distr": "position",
        }
        assert [n.op_id for n in ir.exchange_nodes()] == ["group", "distr"]
        assert EXCHANGE_KINDS["sort"] == "range"

    def test_params_resolved_through_env(self):
        ir = make_ir(CHAIN, args={"input_path": "/data/db.index"})
        sort = ir.node("sort")
        assert sort.input == "/data/db.index"
        assert sort.input_resolved
        distr = ir.node("distr")
        # $sort.outputPath resolves to the literal output path
        assert distr.input == "/tmp/sorted"
        # argument default flows into the param dict
        assert distr.param_value("numPartitions") == "4"
        assert distr.params_resolved["numPartitions"]

    def test_source_locations_carried(self):
        ir = make_ir(CHAIN)
        sort = ir.node("sort")
        assert sort.line == 7
        assert sort.input_line == 8
        assert sort.output_line == 9
        assert sort.param_line("key") == 10

    def test_default_output_path(self):
        xml = CHAIN.replace('<param name="outputPath" value="/tmp/sorted"/>', "")
        ir = make_ir(xml)
        assert ir.node("sort").outputs == ["/tmp/sort"]


class TestEdges:
    def test_workflow_input_pseudo_edge(self):
        ir = make_ir(CHAIN, args={"input_path": "/data/db.index"})
        feeds = ir.in_edges("sort")
        assert len(feeds) == 1
        assert feeds[0].src is None

    def test_exact_path_edge(self):
        ir = make_ir(CHAIN)
        feeds = ir.in_edges("distr")
        assert [(e.src, e.src_output) for e in feeds] == [("sort", 0)]
        assert feeds[0].path == "/tmp/sorted"

    def test_directory_prefix_consumes_every_split_output(self):
        ir = make_ir(HYBRID)
        feeds = ir.in_edges("distr")
        assert sorted((e.src, e.src_output) for e in feeds) == [
            ("split", 0),
            ("split", 1),
        ]
        assert ir.consumed_outputs("split") == {0, 1}

    def test_graph_queries(self):
        ir = make_ir(HYBRID)
        assert [n.op_id for n in ir.successors("group")] == ["split"]
        assert [n.op_id for n in ir.predecessors("distr")] == ["split"]
        assert ir.sole_consumer("split").op_id == "distr"
        assert ir.final.op_id == "distr"

    def test_split_outputs_resolved(self):
        ir = make_ir(HYBRID)
        assert ir.node("split").outputs == ["/tmp/split/hi", "/tmp/split/lo"]


class TestContextMemoization:
    def test_ctx_ir_is_memoized(self):
        model, _ = build_workflow_model(parse_located(CHAIN), "t.xml")
        ctx = LintContext(filename="t.xml", model=model)
        assert ctx.ir() is ctx.ir()
        assert build_ir(ctx) is not ctx.ir()  # fresh build is a new object

    def test_no_model_no_ir(self):
        ctx = LintContext(filename="t.xml", model=None)
        assert ctx.ir() is None
        assert ctx.analyzed() is None
