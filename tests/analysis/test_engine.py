"""The lint engine and its public faces: API, JSON contract, locations."""

import json

import pytest

from repro import PaPar
from repro.analysis import (
    CATALOG,
    Linter,
    Severity,
    all_codes,
    lint_workflow,
    parse_located,
    synthesize_arguments,
)
from repro.analysis.locate import XMLLocationError
from repro.config import BLAST_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML
from repro.config.workflow import parse_workflow_config

BROKEN_WORKFLOW = """<workflow id="t">
  <arguments>
    <param name="input_path" type="hdfs"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sorty">
      <param name="inputPath" value="$input_paht"/>
      <param name="key" value="k"/>
    </operator>
  </operators>
</workflow>"""


class TestLocate:
    def test_positions_are_one_based_lines(self):
        tree = parse_located("<a>\n  <b x='1'/>\n  <c/>\n</a>")
        root = tree.root
        assert tree.line(root) == 1
        b, c = list(root)
        assert tree.line(b) == 2
        assert tree.line(c) == 3

    def test_malformed_xml_carries_position(self):
        with pytest.raises(XMLLocationError) as err:
            parse_located("<a>\n  <b>\n</a>")
        assert err.value.line == 3

    def test_location_survives_strict_parse_errors(self):
        xml = BLAST_WORKFLOW_XML.replace('id="distr"', 'id="sort"')
        with pytest.raises(Exception, match=r"duplicate operator id .*\[<workflow>:14\]"):
            parse_workflow_config(xml, filename="<workflow>")


class TestSynthesizeArguments:
    def test_fills_only_unbound_arguments(self):
        spec = parse_workflow_config(BLAST_WORKFLOW_XML)
        args = synthesize_arguments(spec, {"input_path": "/real"})
        assert args["input_path"] == "/real"
        assert args["output_path"].startswith("/lint/")
        assert args["num_partitions"] == "4"
        # num_reducers has a default value in the config: left alone
        assert "num_reducers" not in args


class TestLintResult:
    def test_collects_everything_in_one_pass(self):
        result = lint_workflow(BROKEN_WORKFLOW, filename="t.xml")
        assert {"PAP004", "PAP010"} <= set(result.codes())

    def test_exit_codes(self):
        clean = lint_workflow(
            BLAST_WORKFLOW_XML, filename="w", inputs=[(BLAST_INPUT_XML, None)]
        )
        assert clean.exit_code() == 0
        assert clean.exit_code(strict=False) == 0
        broken = lint_workflow(BROKEN_WORKFLOW, filename="t.xml")
        assert broken.exit_code() == 1

    def test_strict_promotes_warnings(self):
        xml = """<workflow id="t">
  <arguments>
    <param name="p" type="hdfs"/>
    <param name="unused" type="integer" value="1"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" value="$p"/>
      <param name="key" value="k"/>
    </operator>
  </operators>
</workflow>"""
        result = lint_workflow(xml, filename="t.xml", do_plan=False)
        assert not result.errors and result.warnings
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 1

    def test_diagnostics_sorted_by_location(self):
        result = lint_workflow(BROKEN_WORKFLOW, filename="t.xml")
        lines = [d.line for d in result.diagnostics if d.line is not None]
        assert lines == sorted(lines)

    def test_render_text_has_file_line_and_fix(self):
        result = lint_workflow(BROKEN_WORKFLOW, filename="t.xml")
        text = result.render_text()
        assert "t.xml:6: error PAP004" in text
        assert "fix:" in text
        assert "error(s)" in text


class TestJSONContract:
    """The machine-readable output is a stable interface."""

    def test_envelope(self):
        result = lint_workflow(BROKEN_WORKFLOW, filename="t.xml")
        payload = json.loads(result.render_json())
        assert payload["version"] == 1
        assert payload["tool"] == "papar-lint"
        assert payload["files"] == ["t.xml"]
        assert set(payload["summary"]) == {"errors", "warnings", "info"}
        assert payload["summary"]["errors"] == len(result.errors)

    def test_diagnostic_shape(self):
        result = lint_workflow(BROKEN_WORKFLOW, filename="t.xml")
        payload = json.loads(result.render_json())
        assert payload["diagnostics"], "expected findings"
        for entry in payload["diagnostics"]:
            assert set(entry) == {
                "code", "severity", "rule", "message",
                "file", "line", "column", "suggestion",
            }
            assert entry["code"] in CATALOG
            assert entry["severity"] in ("error", "warning", "info")
            assert entry["rule"] == CATALOG[entry["code"]].name

    def test_codes_are_stable(self):
        """Removing or renaming a code is a breaking change."""
        expected = {
            "PAP001", "PAP002", "PAP003", "PAP004", "PAP005", "PAP006",
            "PAP010", "PAP011", "PAP012", "PAP013", "PAP014",
            "PAP020", "PAP021", "PAP022", "PAP023", "PAP024", "PAP025",
            "PAP030", "PAP031", "PAP032", "PAP033", "PAP034", "PAP035",
            "PAP036",
            "PAP040", "PAP041", "PAP042", "PAP043", "PAP044",
            "PAP050", "PAP051", "PAP099",
        }
        assert expected <= set(all_codes())


class TestInternalErrorGuard:
    def test_pap099_when_a_rule_crashes(self):
        from repro.analysis.rules import CHECKERS

        def exploding_checker(ctx):
            raise RuntimeError("boom")
            yield  # pragma: no cover

        CHECKERS.append(exploding_checker)
        try:
            result = lint_workflow(BROKEN_WORKFLOW, filename="t.xml")
        finally:
            CHECKERS.remove(exploding_checker)
        crash = [d for d in result.diagnostics if d.code == "PAP099"]
        assert crash and "boom" in crash[0].message
        # the crash does not swallow other rules' findings
        assert "PAP004" in result.codes()


class TestPaParAPI:
    def test_lint_xml_text(self):
        papar = PaPar()
        papar.register_input(BLAST_INPUT_XML)
        result = papar.lint(BLAST_WORKFLOW_XML)
        assert not result.errors and not result.warnings

    def test_lint_parsed_spec_uses_source_file(self, tmp_path):
        wf_path = tmp_path / "wf.xml"
        wf_path.write_text(BLAST_WORKFLOW_XML)
        papar = PaPar()
        papar.register_input(BLAST_INPUT_XML)
        spec = papar.load_workflow_file(wf_path)
        result = papar.lint(spec)
        assert not result.errors
        assert str(wf_path) in result.files

    def test_lint_files(self, tmp_path):
        wf_path = tmp_path / "wf.xml"
        wf_path.write_text(BROKEN_WORKFLOW)
        result = PaPar().lint_files(wf_path)
        assert result.errors
        assert all(d.file == str(wf_path) for d in result.errors)

    def test_registered_schemas_feed_type_rules(self):
        papar = PaPar()
        papar.register_input(BLAST_INPUT_XML)
        xml = BLAST_WORKFLOW_XML.replace('value="seq_size"', 'value="seq_sizo"')
        result = papar.lint(xml)
        bad_key = [d for d in result.diagnostics if d.code == "PAP020"]
        assert bad_key and "seq_sizo" in bad_key[0].message

    def test_linter_without_schemas_skips_type_rules(self):
        xml = BLAST_WORKFLOW_XML.replace('value="seq_size"', 'value="seq_sizo"')
        result = Linter().lint(xml, filename="w")
        assert "PAP020" not in result.codes()


class TestSeverity:
    def test_ordering_and_values(self):
        assert [s.value for s in (Severity.ERROR, Severity.WARNING, Severity.INFO)] == [
            "error", "warning", "info",
        ]
