"""The rewrite engine: every PAP08x pass fires, refuses, and converges.

One workflow per pass pins that the rewrite actually happens (PAP080
dead elimination, PAP081 redundant-exchange elimination, PAP082
distribute-chain composition, PAP083 column-pruning planning); the
refusal tests pin the safety arguments (stable-sort tie order,
per-stream dealing, packed formats); the golden JSON test pins the
``papar.optimize`` v1 contract; and the idempotence test pins that
optimizing an optimized plan is a no-op.
"""

import json

from repro.analysis.optimize import (
    OPTIMIZE_SCHEMA_VERSION,
    PASS_NAMES,
    optimize_workflow,
)
from repro.config import BLAST_INPUT_XML
from repro.config.serialize import workflow_to_xml

BLAST_INPUTS = [(BLAST_INPUT_XML, "blast_db.xml")]
ARGS = {"input_path": "/in", "output_path": "/out"}


def optimize(xml, args=ARGS, inputs=BLAST_INPUTS, **kw):
    kw.setdefault("assume_records", 1000)
    return optimize_workflow(xml, filename="t.xml", inputs=inputs, args=args, **kw)


def wf(operators, args_xml=None):
    args_xml = args_xml or """
    <param name="input_path" type="String" format="blast_db"/>
    <param name="output_path" type="String"/>
    <param name="num_partitions" type="Integer" value="4"/>
    """
    return f"""
<workflow id="t" name="t">
  <arguments>{args_xml}</arguments>
  <operators>{operators}</operators>
</workflow>
"""


SORT = """
  <operator id="{id}" operator="Sort">
    <param name="key" type="KeyId" value="{key}"/>
    <param name="inputPath" value="{inp}"/>
    <param name="outputPath" value="{out}"/>
    {extra}
  </operator>
"""


def sort_op(id, inp, out, key="seq_size", extra=""):
    return SORT.format(id=id, key=key, inp=inp, out=out, extra=extra)


def distr_op(id, inp, out, policy="roundRobin", parts="$num_partitions"):
    return f"""
  <operator id="{id}" operator="Distribute">
    <param name="inputPath" value="{inp}"/>
    <param name="outputPath" value="{out}"/>
    <param name="distrPolicy" value="{policy}"/>
    <param name="numPartitions" type="integer" value="{parts}"/>
  </operator>
"""


FUSED_SORTS = wf(
    sort_op("sort1", "$input_path", "/user/s1")
    + sort_op("sort2", "$sort1.outputPath", "/user/s2")
    + distr_op("distr", "$sort2.outputPath", "$output_path")
)


# -- each pass fires --------------------------------------------------------


def test_pap080_dead_operator_elimination_fires():
    xml = wf(
        sort_op("sort", "$input_path", "/user/s1")
        + sort_op("dead", "$sort.outputPath", "/user/dead", key="seq_start")
        + distr_op("distr", "$sort.outputPath", "$output_path")
    )
    report = optimize(xml)
    codes = [r.code for r in report.plan.rewrites]
    assert codes == ["PAP080"]
    assert report.plan.rewrites[0].removed == ["dead"]
    assert [op["id"] for op in report.after.operators] == ["sort", "distr"]


def test_pap081_same_key_sort_sort_collapses():
    report = optimize(FUSED_SORTS)
    codes = [r.code for r in report.plan.rewrites]
    assert codes == ["PAP081"]
    assert report.plan.rewrites[0].removed == ["sort1"]
    assert report.plan.exchanges_removed == 1
    # the survivor is re-pointed at the workflow input
    assert [e["src"] for e in report.after.edges] == [None, "sort2"]


def test_pap082_single_partition_distribute_collapses():
    xml = wf(
        distr_op("d1", "$input_path", "/user/d1", policy="cyclic", parts="1")
        + distr_op("d2", "$d1.outputPath", "$output_path")
    )
    report = optimize(xml)
    codes = [r.code for r in report.plan.rewrites]
    assert codes == ["PAP082"]
    assert report.plan.rewrites[0].removed == ["d1"]
    assert [op["id"] for op in report.after.operators] == ["d2"]


def test_pap082_block_into_single_partition_collapses():
    xml = wf(
        distr_op("d1", "$input_path", "/user/d1", policy="block", parts="4")
        + distr_op("d2", "$d1.outputPath", "$output_path", parts="1")
    )
    report = optimize(xml)
    assert [r.code for r in report.plan.rewrites] == ["PAP082"]


def test_pap083_column_pruning_planned():
    xml = wf(
        sort_op("sort", "$input_path", "/user/s1")
        + distr_op("distr", "$sort.outputPath", "$output_path")
    )
    report = optimize(xml)
    pruning = report.plan.pruning
    assert pruning is not None
    assert pruning.live == ["seq_size"]
    assert set(pruning.pruned) == {"seq_start", "desc_start", "desc_size"}
    assert pruning.full_row_bytes == 16
    assert pruning.narrow_row_bytes == 12  # seq_size (4) + row id (8)
    assert PASS_NAMES["PAP083"] in report.plan.summary()["passes_fired"]


# -- documented refusals ----------------------------------------------------


def refusal_reasons(report, code):
    return [r.reason for r in report.plan.refusals if r.code == code]


def test_pap081_refuses_different_key_sorts():
    xml = wf(
        sort_op("sort1", "$input_path", "/user/s1", key="seq_start")
        + sort_op("sort2", "$sort1.outputPath", "/user/s2")
        + distr_op("distr", "$sort2.outputPath", "$output_path")
    )
    report = optimize(xml)
    assert not report.plan.rewrites
    assert any("tie order" in r for r in refusal_reasons(report, "PAP081"))


def test_pap081_refuses_different_direction_sorts():
    xml = wf(
        sort_op("sort1", "$input_path", "/user/s1",
                extra='<param name="ascending" type="boolean" value="false"/>')
        + sort_op("sort2", "$sort1.outputPath", "/user/s2")
        + distr_op("distr", "$sort2.outputPath", "$output_path")
    )
    report = optimize(xml)
    assert not report.plan.rewrites
    assert any("direction" in r for r in refusal_reasons(report, "PAP081"))


def test_pap081_refuses_distribute_feeding_sort():
    xml = wf(
        distr_op("d1", "$input_path", "/user/d1")
        + sort_op("sort", "$d1.outputPath", "/user/s1")
        + distr_op("d2", "$sort.outputPath", "$output_path")
    )
    report = optimize(xml)
    assert not report.plan.rewrites
    assert any("reorder equal-key rows" in r
               for r in refusal_reasons(report, "PAP081"))


def test_pap082_refuses_general_composition():
    # cyclic(4) -> block(4): owner assignment matches but the runtimes deal
    # per stream, so the within-partition order differs — must refuse
    xml = wf(
        distr_op("d1", "$input_path", "/user/d1", policy="cyclic")
        + distr_op("d2", "$d1.outputPath", "$output_path", policy="block")
    )
    report = optimize(xml)
    assert not report.plan.rewrites
    assert any("per stream" in r for r in refusal_reasons(report, "PAP082"))


def test_pap083_refuses_packed_formats():
    xml = wf(
        """
  <operator id="group" operator="Group">
    <param name="key" type="KeyId" value="seq_size"/>
    <param name="inputPath" value="$input_path"/>
    <param name="outputPath" value="/user/g1" format="pack"/>
  </operator>
"""
        + distr_op("distr", "$group.outputPath", "$output_path")
    )
    report = optimize(xml)
    assert report.plan.pruning is None
    assert any("packed" in r for r in refusal_reasons(report, "PAP083"))


def test_pap083_refuses_out_of_core_runs():
    xml = wf(
        sort_op("sort", "$input_path", "/user/s1")
        + distr_op("distr", "$sort.outputPath", "$output_path")
    )
    report = optimize(xml, memory_budget="64MB")
    assert report.plan.pruning is None
    assert any("out-of-core" in r for r in refusal_reasons(report, "PAP083"))


# -- convergence ------------------------------------------------------------


def test_optimizing_an_optimized_plan_is_a_noop():
    first = optimize(FUSED_SORTS)
    assert first.plan.changed
    again = optimize(workflow_to_xml(first.plan.workflow))
    assert not again.plan.rewrites
    assert again.plan.exchanges_removed == 0


def test_minimal_plan_reports_unchanged():
    xml = wf(
        """
  <operator id="group" operator="Group">
    <param name="key" type="KeyId" value="seq_size"/>
    <param name="inputPath" value="$input_path"/>
    <param name="outputPath" value="/user/g1" format="pack"/>
    <addon operator="count" key="seq_size" attr="n"/>
  </operator>
"""
        + distr_op("distr", "$group.outputPath", "$output_path")
    )
    report = optimize(xml)
    assert not report.plan.changed
    assert report.plan.summary()["changed"] is False


def test_chain_of_three_sorts_collapses_to_one():
    xml = wf(
        sort_op("s1", "$input_path", "/user/s1")
        + sort_op("s2", "$s1.outputPath", "/user/s2")
        + sort_op("s3", "$s2.outputPath", "/user/s3")
        + distr_op("distr", "$s3.outputPath", "$output_path")
    )
    report = optimize(xml)
    assert [r.code for r in report.plan.rewrites] == ["PAP081", "PAP081"]
    assert [op["id"] for op in report.after.operators] == ["s3", "distr"]


# -- the JSON contract ------------------------------------------------------


def test_optimize_report_json_contract():
    report = optimize(FUSED_SORTS)
    doc = json.loads(report.render_json())
    assert doc["version"] == OPTIMIZE_SCHEMA_VERSION
    assert doc["tool"] == "papar-optimize"
    assert doc["workflow"] == "t"
    assert set(doc) == {"version", "tool", "workflow", "file", "summary",
                        "before", "after"}
    summary = doc["summary"]
    assert set(summary) == {
        "changed", "passes_fired", "rewrites", "refusals",
        "operators_removed", "exchanges_removed", "pruning",
        "est_bytes_before", "est_bytes_after", "est_bytes_saved",
    }
    rewrite = summary["rewrites"][0]
    assert set(rewrite) == {"code", "pass", "site", "removed", "kept",
                            "detail", "est_bytes_saved"}
    assert summary["pruning"]["rowid_field"] == "__papar_rowid"
    # the diff reuses the explain contract on both sides
    assert doc["before"]["tool"] == "papar-explain"
    assert doc["after"]["tool"] == "papar-explain"
    assert len(doc["after"]["operators"]) == len(doc["before"]["operators"]) - 1
    # the structural rewrite halves the estimate and pruning narrows the rest
    assert summary["est_bytes_after"] < summary["est_bytes_before"]


def test_every_advisory_pass_name_is_catalogued():
    from repro.analysis import CATALOG

    for code, pass_name in PASS_NAMES.items():
        assert code in CATALOG
        assert pass_name in CATALOG[code].good or pass_name in CATALOG[code].description
