"""MRMPIEngine vs LocalEngine: phases and full jobs."""

from collections import Counter

import pytest

from repro.cluster import ClusterModel, INFINIBAND_QDR
from repro.errors import MapReduceError
from repro.mapreduce import (
    ExplicitPartitioner,
    HashPartitioner,
    LocalEngine,
    MapReduceJob,
    MRMPIEngine,
    RangePartitioner,
)
from repro.mapreduce.engine import identity_map, identity_reduce
from repro.mapreduce.hadoop import InputSplit, ListInputFormat
from repro.mapreduce.job import run_pipeline
from repro.mpi import run_mpi

WORDS = (
    "the quick brown fox jumps over the lazy dog the fox is quick and the dog is lazy"
).split()


def word_count_map(word, emit):
    emit(word, 1)


def sum_reduce(key, values, emit):
    emit(key, sum(values))


def split_for(rank, size, items):
    """Contiguous block decomposition of items across ranks."""
    n = len(items)
    base, extra = divmod(n, size)
    start = rank * base + min(rank, extra)
    length = base + (1 if rank < extra else 0)
    return items[start : start + length]


class TestLocalEngine:
    def test_word_count(self):
        eng = LocalEngine()
        out = eng.run_job(WORDS, word_count_map, sum_reduce, num_reducers=3)
        assert dict(out) == dict(Counter(WORDS))

    def test_sorted_job(self):
        eng = LocalEngine()
        out = eng.run_job(
            [(k, None) for k in [5, 3, 9, 1]],
            identity_map,
            identity_reduce,
            partitioner=HashPartitioner(1),
            sort_keys=True,
        )
        assert [k for k, _ in out] == [1, 3, 5, 9]

    def test_descending_sort(self):
        eng = LocalEngine()
        out = eng.run_job(
            [(k, None) for k in [5, 3, 9, 1]],
            identity_map,
            identity_reduce,
            partitioner=HashPartitioner(1),
            sort_keys=True,
            descending=True,
        )
        assert [k for k, _ in out] == [9, 5, 3, 1]


@pytest.mark.parametrize("size", [1, 2, 3, 4])
class TestDistributedWordCount:
    def test_matches_serial(self, size):
        def prog(comm):
            eng = MRMPIEngine(comm)
            local = split_for(comm.rank, comm.size, WORDS)
            out = eng.run_job(local, word_count_map, sum_reduce)
            return eng.gather_output(out)

        run = run_mpi(prog, size)
        assert dict(run.results[0]) == dict(Counter(WORDS))

    def test_each_key_reduced_exactly_once(self, size):
        def prog(comm):
            eng = MRMPIEngine(comm)
            local = split_for(comm.rank, comm.size, WORDS)
            out = eng.run_job(local, word_count_map, sum_reduce)
            return eng.gather_output(out)

        run = run_mpi(prog, size)
        keys = [k for k, _ in run.results[0]]
        assert len(keys) == len(set(keys))


class TestShuffleSemantics:
    def test_explicit_partitioner_routes_by_key(self):
        def prog(comm):
            eng = MRMPIEngine(comm)
            # every rank sends one pair to each reducer id
            kv = [(d, f"{comm.rank}->{d}") for d in range(comm.size)]
            got = eng.shuffle(kv, ExplicitPartitioner(comm.size))
            return sorted(v for _, v in got)

        run = run_mpi(prog, 3)
        for rank, values in enumerate(run.results):
            assert values == sorted(f"{s}->{rank}" for s in range(3))

    def test_range_partitioner_gives_globally_sorted_concatenation(self):
        keys = [42, 7, 99, 13, 56, 21, 88, 3, 70, 35, 64, 11]

        def prog(comm):
            eng = MRMPIEngine(comm)
            local = [(k, None) for k in split_for(comm.rank, comm.size, keys)]
            part = RangePartitioner([30, 60], num_reducers=3)
            shuffled = eng.shuffle(local, part)
            local_sorted = eng.sort_local(shuffled)
            return [k for k, _ in local_sorted]

        run = run_mpi(prog, 3)
        concatenated = [k for chunk in run.results for k in chunk]
        assert concatenated == sorted(keys)

    def test_hash_shuffle_preserves_multiset(self):
        def prog(comm):
            eng = MRMPIEngine(comm)
            local = [(w, 1) for w in split_for(comm.rank, comm.size, WORDS)]
            shuffled = eng.shuffle(local, HashPartitioner(comm.size))
            return shuffled

        run = run_mpi(prog, 4)
        all_keys = Counter(k for chunk in run.results for k, _ in chunk)
        assert all_keys == Counter(WORDS)

    def test_same_key_lands_on_same_rank(self):
        def prog(comm):
            eng = MRMPIEngine(comm)
            local = [(w, comm.rank) for w in split_for(comm.rank, comm.size, WORDS)]
            return eng.shuffle(local, HashPartitioner(comm.size))

        run = run_mpi(prog, 4)
        owner = {}
        for rank, chunk in enumerate(run.results):
            for k, _ in chunk:
                assert owner.setdefault(k, rank) == rank


class TestGroupAndReduce:
    def test_group_preserves_value_multiplicity(self):
        eng = LocalEngine()
        grouped = dict(eng.group([("a", 1), ("b", 2), ("a", 3)]))
        assert grouped == {"a": [1, 3], "b": [2]}

    def test_add_on_style_reduce(self):
        """count/max/min/mean/sum over grouped values (Table I add-ons)."""
        eng = LocalEngine()
        grouped = eng.group([("x", v) for v in [4, 8, 6]])

        def stats_reduce(key, values, emit):
            emit(key, {
                "count": len(values),
                "max": max(values),
                "min": min(values),
                "mean": sum(values) / len(values),
                "sum": sum(values),
            })

        out = dict(eng.reduce(grouped, stats_reduce))
        assert out == {"x": {"count": 3, "max": 8, "min": 4, "mean": 6.0, "sum": 18}}


class TestPipeline:
    def test_two_stage_pipeline(self):
        """Stage 1 counts words; stage 2 buckets counts by parity."""
        count_job = MapReduceJob("count", word_count_map, sum_reduce)

        def parity_map(item, emit):
            word, count = item
            emit(count % 2, word)

        def collect_reduce(key, values, emit):
            emit(key, sorted(values))

        parity_job = MapReduceJob("parity", parity_map, collect_reduce)

        eng = LocalEngine()
        out = dict(run_pipeline([count_job, parity_job], eng, WORDS))
        counts = Counter(WORDS)
        assert set(out.get(0, [])) == {w for w, c in counts.items() if c % 2 == 0}
        assert set(out.get(1, [])) == {w for w, c in counts.items() if c % 2 == 1}

    def test_empty_pipeline_rejected(self):
        with pytest.raises(MapReduceError):
            run_pipeline([], LocalEngine(), [])


class TestVirtualTimeCharging:
    def test_job_advances_clocks(self):
        cluster = ClusterModel(num_nodes=2, ranks_per_node=2, network=INFINIBAND_QDR)

        def prog(comm):
            eng = MRMPIEngine(comm)
            local = split_for(comm.rank, comm.size, WORDS * 50)
            eng.run_job(local, word_count_map, sum_reduce)
            return comm.clock.now

        run = run_mpi(prog, 4, cluster=cluster)
        assert all(t > 0 for t in run.results)

    def test_more_data_costs_more_virtual_time(self):
        cluster = ClusterModel(num_nodes=2, ranks_per_node=2, network=INFINIBAND_QDR)

        def prog_factory(factor):
            def prog(comm):
                eng = MRMPIEngine(comm)
                local = split_for(comm.rank, comm.size, WORDS * factor)
                eng.run_job(local, word_count_map, sum_reduce)
                return comm.clock.now

            return prog

        small = run_mpi(prog_factory(10), 4, cluster=cluster).elapsed
        big = run_mpi(prog_factory(200), 4, cluster=cluster).elapsed
        assert big > small


class TestHadoopShim:
    def test_list_input_format_splits_evenly(self):
        fmt = ListInputFormat(list(range(10)))
        splits = fmt.get_splits(3)
        assert [s.length for s in splits] == [4, 3, 3]
        assert [list(fmt.get_record_reader(s)) for s in splits] == [
            [0, 1, 2, 3],
            [4, 5, 6],
            [7, 8, 9],
        ]

    def test_records_for_rank_covers_everything(self):
        fmt = ListInputFormat(list(range(17)))
        seen = []
        for rank in range(5):
            seen += fmt.records_for_rank(rank, 5)
        assert seen == list(range(17))

    def test_invalid_split_rejected(self):
        with pytest.raises(MapReduceError):
            InputSplit(source=None, start=-1, length=2)

    def test_zero_splits_rejected(self):
        with pytest.raises(MapReduceError):
            ListInputFormat([1]).get_splits(0)
