"""Index-width selection: int32 until it could wrap, int64 beyond.

``_INT32_MAX`` is module-level precisely so this test can lower it and
exercise the int64 escape hatch without allocating 2**31 records.
"""

import numpy as np
import pytest

import repro.mapreduce.columnar as columnar
from repro.mapreduce.columnar import KVBatch, bucketize, group, index_dtype


class TestIndexDtype:
    def test_small_batches_use_int32(self):
        assert index_dtype(0) == np.dtype(np.int32)
        assert index_dtype(np.iinfo(np.int32).max) == np.dtype(np.int32)

    def test_beyond_int32_max_uses_int64(self):
        assert index_dtype(np.iinfo(np.int32).max + 1) == np.dtype(np.int64)

    def test_threshold_is_patchable(self, monkeypatch):
        monkeypatch.setattr(columnar, "_INT32_MAX", 4)
        assert index_dtype(4) == np.dtype(np.int32)
        assert index_dtype(5) == np.dtype(np.int64)


class TestBucketizePastThreshold:
    @pytest.fixture(autouse=True)
    def tiny_threshold(self, monkeypatch):
        monkeypatch.setattr(columnar, "_INT32_MAX", 4)

    def test_indices_widen_and_stay_correct(self):
        owners = np.array([2, 0, 1, 0, 2, 2, 1, 0])  # size 8 > patched max 4
        buckets = bucketize(owners, 3)
        assert all(b.dtype == np.int64 for b in buckets)
        expected = [np.flatnonzero(owners == b) for b in range(3)]
        for got, want in zip(buckets, expected):
            assert np.array_equal(got, want)

    def test_small_batch_keeps_int32(self):
        buckets = bucketize(np.array([1, 0, 1]), 2)
        assert all(b.dtype == np.int32 for b in buckets)


class TestGroupPastThreshold:
    @pytest.fixture(autouse=True)
    def tiny_threshold(self, monkeypatch):
        monkeypatch.setattr(columnar, "_INT32_MAX", 4)

    @pytest.mark.parametrize("order", ["first-seen", "key"])
    def test_offsets_widen_and_grouping_is_unchanged(self, order):
        keys = np.array([3, 1, 3, 2, 1, 3], dtype=np.int64)
        values = np.arange(6, dtype=np.int64)
        grouped = group(KVBatch(keys=keys, values=values), order=order)
        assert grouped.offsets.dtype == np.int64
        assert dict(grouped.items()) == {3: [0, 2, 5], 1: [1, 4], 2: [3]}

    def test_small_batch_keeps_int32_offsets(self):
        grouped = group(
            KVBatch(keys=np.array([1, 1]), values=np.array([5, 6]))
        )
        assert grouped.offsets.dtype == np.int32
