"""Dynamic reducer rebalancing (the Related Work extension)."""

import pytest

from repro.mapreduce.rebalance import imbalance, rebalance
from repro.mpi import run_mpi


class TestImbalance:
    def test_balanced(self):
        run = run_mpi(lambda comm: imbalance(comm, 10), 4)
        assert run.results == [1.0] * 4

    def test_skewed(self):
        def prog(comm):
            return imbalance(comm, 100 if comm.rank == 0 else 0)

        run = run_mpi(prog, 4)
        assert run.results[0] == pytest.approx(4.0)

    def test_empty(self):
        run = run_mpi(lambda comm: imbalance(comm, 0), 3)
        assert run.results == [1.0] * 3


class TestRebalance:
    def test_skew_removed(self):
        def prog(comm):
            # rank 0 holds everything
            local = list(range(100)) if comm.rank == 0 else []
            out = rebalance(comm, local)
            return out

        run = run_mpi(prog, 4)
        sizes = [len(r) for r in run.results]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 100

    def test_global_order_preserved(self):
        def prog(comm):
            # rank r holds items [100r, 100r + r*10): increasing skew
            local = list(range(100 * comm.rank, 100 * comm.rank + comm.rank * 10))
            return rebalance(comm, local)

        run = run_mpi(prog, 4)
        concatenated = [x for r in run.results for x in r]
        assert concatenated == sorted(concatenated)

    def test_already_balanced_is_stable(self):
        def prog(comm):
            local = [f"{comm.rank}-{i}" for i in range(5)]
            return rebalance(comm, local)

        run = run_mpi(prog, 3)
        assert run.results == [
            [f"{r}-{i}" for i in range(5)] for r in range(3)
        ]

    def test_all_empty(self):
        run = run_mpi(lambda comm: rebalance(comm, []), 3)
        assert run.results == [[], [], []]

    def test_arbitrary_objects(self):
        def prog(comm):
            local = [{"rank": comm.rank, "i": i} for i in range(comm.rank * 4)]
            return rebalance(comm, local)

        run = run_mpi(prog, 3)
        total = sum(len(r) for r in run.results)
        assert total == 0 + 4 + 8
        sizes = [len(r) for r in run.results]
        assert max(sizes) - min(sizes) <= 1
