"""Partitioner behaviour and invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MapReduceError
from repro.mapreduce import ExplicitPartitioner, HashPartitioner, RangePartitioner
from repro.mapreduce.partitioner import FnPartitioner, stable_hash


class TestStableHash:
    def test_int_identity_like(self):
        assert stable_hash(5) == 5
        assert stable_hash(0) == 0

    def test_negative_int_nonnegative(self):
        assert stable_hash(-17) >= 0

    def test_str_and_bytes_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(b"abc") == stable_hash(b"abc")

    @given(st.one_of(st.integers(), st.text(), st.binary(), st.tuples(st.integers(), st.text())))
    def test_always_in_reducer_range(self, key):
        h = stable_hash(key)
        assert h >= 0


class TestHashPartitioner:
    def test_range(self):
        p = HashPartitioner(7)
        assert all(0 <= p(k) < 7 for k in range(1000))

    def test_deterministic(self):
        p = HashPartitioner(4)
        assert [p(k) for k in ["a", "b", "c"]] == [p(k) for k in ["a", "b", "c"]]

    def test_zero_reducers_rejected(self):
        with pytest.raises(MapReduceError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_assignment(self):
        p = RangePartitioner([10, 20], num_reducers=3)
        assert p(5) == 0
        assert p(10) == 0  # bisect_left: boundary key stays in its bucket
        assert p(11) == 1
        assert p(20) == 1
        assert p(21) == 2
        assert p(1000) == 2

    def test_order_preserving(self):
        p = RangePartitioner([10, 20, 30], num_reducers=4)
        keys = sorted([3, 14, 15, 92, 6, 53, 5, 8, 28])
        buckets = [p(k) for k in keys]
        assert buckets == sorted(buckets)

    def test_wrong_boundary_count(self):
        with pytest.raises(MapReduceError, match="boundaries"):
            RangePartitioner([1, 2, 3], num_reducers=3)

    def test_descending_boundaries_rejected(self):
        with pytest.raises(MapReduceError, match="ascending"):
            RangePartitioner([5, 1], num_reducers=3)

    @given(
        st.lists(st.integers(-1000, 1000), min_size=1, max_size=50),
        st.integers(2, 8),
    )
    def test_property_order_preserving(self, keys, nred):
        boundaries = sorted(keys)[: nred - 1]
        boundaries += [boundaries[-1]] * (nred - 1 - len(boundaries)) if boundaries else [0] * (nred - 1)
        p = RangePartitioner(sorted(boundaries), num_reducers=nred)
        ks = sorted(keys)
        buckets = [p(k) for k in ks]
        assert buckets == sorted(buckets)


class TestExplicitPartitioner:
    def test_key_is_reducer(self):
        p = ExplicitPartitioner(4)
        assert [p(i) for i in range(4)] == [0, 1, 2, 3]

    def test_out_of_range_rejected(self):
        p = ExplicitPartitioner(4)
        with pytest.raises(MapReduceError):
            p(4)
        with pytest.raises(MapReduceError):
            p(-1)


class TestFnPartitioner:
    def test_wraps_callable(self):
        p = FnPartitioner(lambda k: k % 3, 3)
        assert p(7) == 1

    def test_out_of_range_detected(self):
        p = FnPartitioner(lambda k: 99, 3)
        with pytest.raises(MapReduceError):
            p(0)
