"""Speculative scheduling simulation (the paper's motivation mechanism)."""

import numpy as np
import pytest

from repro.errors import MapReduceError
from repro.mapreduce.speculative import (
    balanced_task_durations,
    simulate_job,
    skewed_task_durations,
)


class TestSimulateJob:
    def test_single_slot_serializes(self):
        report = simulate_job(np.array([1.0, 2.0, 3.0]), slots=1)
        assert report.makespan == pytest.approx(6.0)
        assert report.tasks_run == 3

    def test_enough_slots_makespan_is_max(self):
        report = simulate_job(np.array([1.0, 2.0, 3.0]), slots=3)
        assert report.makespan == pytest.approx(3.0)

    def test_two_slots_greedy(self):
        # tasks 1,2 start; 1 finishes at 1 -> task 3 starts, ends 1+3=4
        report = simulate_job(np.array([1.0, 2.0, 3.0]), slots=2)
        assert report.makespan == pytest.approx(4.0)

    def test_empty_job(self):
        report = simulate_job(np.array([]), slots=4)
        assert report.makespan == 0.0

    def test_validation(self):
        with pytest.raises(MapReduceError):
            simulate_job(np.array([1.0]), slots=0)
        with pytest.raises(MapReduceError):
            simulate_job(np.array([-1.0]), slots=1)
        with pytest.raises(MapReduceError):
            simulate_job(np.array([1.0]), slots=1, backup_speedup=0)

    def test_speculation_trims_straggler(self):
        """A straggler backed up on a faster node finishes earlier."""
        durations = np.array([1.0, 1.0, 1.0, 10.0])
        plain = simulate_job(durations, slots=4)
        spec = simulate_job(
            durations, slots=4, speculative=True, speculative_threshold=2,
            backup_speedup=4.0,
        )
        assert plain.makespan == pytest.approx(10.0)
        assert spec.speculative_copies >= 1
        assert spec.makespan < plain.makespan

    def test_backup_that_cannot_win_changes_nothing(self):
        durations = np.array([1.0, 1.0, 10.0])
        spec = simulate_job(
            durations, slots=3, speculative=True, speculative_threshold=2,
            backup_speedup=1.0,
        )
        # the backup starts at t=1 and would finish at 11 > 10
        assert spec.makespan == pytest.approx(10.0)
        assert spec.wasted_work >= 0.0

    def test_speculation_cannot_beat_balance(self):
        """The paper's argument: runtime mechanisms < balanced partitions."""
        skewed = skewed_task_durations(32, seed=3)
        balanced = balanced_task_durations(32, total_work=float(skewed.sum()))
        spec = simulate_job(
            skewed, slots=32, speculative=True, speculative_threshold=4,
            backup_speedup=2.0,
        )
        bal = simulate_job(balanced, slots=32)
        assert bal.makespan < spec.makespan


class TestDurationGenerators:
    def test_skewed_has_heavy_tail(self):
        d = skewed_task_durations(400, seed=1)
        assert d.max() / np.median(d) > 2.0

    def test_balanced_uniform(self):
        d = balanced_task_durations(8, total_work=16.0)
        assert d.tolist() == [2.0] * 8

    def test_deterministic(self):
        np.testing.assert_array_equal(
            skewed_task_durations(50, seed=9), skewed_task_durations(50, seed=9)
        )

    def test_validation(self):
        with pytest.raises(MapReduceError):
            skewed_task_durations(0)
        with pytest.raises(MapReduceError):
            balanced_task_durations(0, 1.0)
