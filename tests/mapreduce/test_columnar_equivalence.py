"""The columnar fast path computes exactly what the per-pair path computes.

Three layers of equivalence, all seeded and randomized:

1. **Kernels** — ``bucketize`` equals the per-destination ``flatnonzero``
   scans it replaced; ``partition_array`` equals elementwise ``__call__``
   for every partitioner; columnar ``group`` equals dict grouping.
2. **Engine phases** — ``MRMPIEngine`` fed a :class:`KVBatch` emits
   byte-identical shuffle / group / reduce outputs (and identical
   records-moved accounting) to the same phases fed Python pairs, across
   random keys, values, rank counts and combiner choices.
3. **Workflows** — the two case studies (muBLASTP sort->distribute,
   hybrid-cut group->split->distribute) produce identical partitions,
   identical ``bytes_moved`` and identical virtual time at 1, 4 and 8
   ranks whether owners are bucketized by the shared argsort kernel or by
   the reference scans — the fast path changes wall-clock only.
"""

import numpy as np
import pytest

import repro.core.mr_runtime as mr_runtime_mod
import repro.core.runtime as runtime_mod
from repro import PaPar
from repro.blast import build_index, generate_database
from repro.cluster import INFINIBAND_QDR, ClusterModel
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.errors import MapReduceError
from repro.formats import BLAST_INDEX_SCHEMA
from repro.graph import generate_graph
from repro.mapreduce import (
    COMBINERS,
    ExplicitPartitioner,
    GroupedKVBatch,
    HashPartitioner,
    KVBatch,
    MRMPIEngine,
    PerfCounters,
    RangePartitioner,
    bucketize,
    stable_hash,
    stable_hash_array,
)
from repro.mapreduce.columnar import group as columnar_group
from repro.mapreduce.engine import identity_reduce
from repro.mapreduce.partitioner import FnPartitioner
from repro.mpi import run_mpi


def scan_bucketize(owners, num_buckets):
    """The replaced per-destination scan loop, kept as the reference oracle."""
    owners = np.asarray(owners)
    return [np.flatnonzero(owners == b) for b in range(num_buckets)]


# -- layer 1: kernels --------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("num_buckets", [1, 3, 8, 17])
def test_bucketize_equals_scans(seed, num_buckets):
    rng = np.random.default_rng(seed)
    owners = rng.integers(0, num_buckets, int(rng.integers(0, 5000)))
    got = bucketize(owners, num_buckets)
    want = scan_bucketize(owners, num_buckets)
    assert len(got) == len(want) == num_buckets
    for g, w in zip(got, want):
        np.testing.assert_array_equal(g, w)


def test_bucketize_validation():
    with pytest.raises(MapReduceError):
        bucketize(np.array([0, 3]), 3)
    with pytest.raises(MapReduceError):
        bucketize(np.array([-1, 0]), 3)
    with pytest.raises(MapReduceError):
        bucketize(np.zeros((2, 2)), 2)
    empty = bucketize(np.empty(0, dtype=np.int64), 4)
    assert len(empty) == 4 and all(len(b) == 0 for b in empty)


@pytest.mark.parametrize("seed", [0, 7])
def test_partition_array_matches_scalar(seed):
    rng = np.random.default_rng(seed)
    int_keys = rng.integers(0, 10_000_000, 2000)
    byte_keys = np.array(
        [bytes(rng.integers(65, 90, 6).tolist()) for _ in range(300)], dtype="S6"
    )
    for part in (
        HashPartitioner(7),
        RangePartitioner([100, 5000, 90_000], 4),
        FnPartitioner(lambda k: int(k) % 5, 5),  # exercises the base-class loop
    ):
        np.testing.assert_array_equal(
            part.partition_array(int_keys),
            np.array([part(int(k)) for k in int_keys]),
        )
    hash7 = HashPartitioner(7)
    np.testing.assert_array_equal(
        hash7.partition_array(byte_keys),
        np.array([hash7(k) for k in byte_keys.tolist()]),
    )
    np.testing.assert_array_equal(
        stable_hash_array(byte_keys),
        np.array([stable_hash(k) for k in byte_keys.tolist()]),
    )
    ids = rng.integers(0, 9, 500)
    explicit = ExplicitPartitioner(9)
    np.testing.assert_array_equal(
        explicit.partition_array(ids), np.array([explicit(int(k)) for k in ids])
    )
    with pytest.raises(MapReduceError):
        explicit.partition_array(np.array([0, 9]))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_columnar_group_matches_dict_grouping(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(0, 3000))
    keys = rng.integers(0, 50, n)
    values = rng.integers(0, 1_000_000, n)
    batch = KVBatch(keys, values)
    ref: dict = {}
    for k, v in batch.pairs():
        ref.setdefault(k, []).append(v)
    grouped = columnar_group(batch, order="first-seen")
    assert grouped.items() == list(ref.items())
    by_key = columnar_group(batch, order="key")
    assert by_key.keys.tolist() == sorted(set(keys.tolist()))
    assert dict(by_key.items()) == ref


def test_perf_counters_merge_semantics():
    a, b = PerfCounters(), PerfCounters()
    a.count_move(10, 100)
    b.count_move(5, 50)
    a.phases["sort"] = [1.0, 2.0]
    b.phases["sort"] = [3.0, 1.5]
    total = PerfCounters.merge_ranks([a, None, b])
    assert total.records_moved == 15
    assert total.bytes_moved == 150
    # wall sums (total CPU work), virtual takes the max (critical path)
    assert total.phases["sort"] == [4.0, 2.0]
    assert total.summary()["phases"]["sort"] == {"wall_s": 4.0, "virtual_s": 2.0}


# -- layer 2: engine phases --------------------------------------------------


def _random_case(rng):
    """One randomized scenario: keys, values, ranks, partitioner, combiner."""
    n = int(rng.integers(1, 4000))
    if rng.integers(0, 2):
        keys = rng.integers(0, int(rng.integers(2, 500)), n)
    else:
        keys = np.array(
            [bytes(rng.integers(65, 75, 4).tolist()) for _ in range(n)], dtype="S4"
        )
    values = rng.integers(0, 1000, n)
    ranks = int(rng.choice([1, 4, 8]))
    reducers = int(rng.choice([1, 3, ranks, 2 * ranks + 1]))
    if keys.dtype.kind == "S":
        partitioner = HashPartitioner(reducers)
    else:
        which = int(rng.integers(0, 3))
        if which == 0:
            partitioner = HashPartitioner(reducers)
        elif which == 1:
            bounds = np.sort(rng.integers(0, 500, reducers - 1)).tolist()
            partitioner = RangePartitioner(bounds, reducers)
        else:
            partitioner = FnPartitioner(lambda k, m=reducers: int(k) % m, reducers)
    combiner_name = [None, "count", "sum", "min", "max", "mean"][int(rng.integers(0, 6))]
    return keys, values, ranks, partitioner, combiner_name


def _block_slice(n, rank, size):
    base, extra = divmod(n, size)
    lo = rank * base + min(rank, extra)
    return lo, lo + base + (1 if rank < extra else 0)


def _stage_program(comm, keys, values, use_batch, partitioner, combiner_name, perf_slots):
    perf = PerfCounters()
    eng = MRMPIEngine(comm, perf=perf)
    lo, hi = _block_slice(len(keys), comm.rank, comm.size)
    if use_batch:
        local = KVBatch(keys[lo:hi], values[lo:hi])
    else:
        local = list(zip(keys[lo:hi].tolist(), values[lo:hi].tolist()))
    shuffled = eng.shuffle(local, partitioner)
    grouped = eng.group(shuffled)
    reduce_fn = COMBINERS[combiner_name] if combiner_name else identity_reduce
    reduced = eng.reduce(grouped, reduce_fn)
    perf_slots[comm.rank] = perf
    if use_batch:
        assert isinstance(shuffled, KVBatch)
        assert isinstance(grouped, GroupedKVBatch)
        raw = (
            shuffled.keys.tobytes(),
            shuffled.values.tobytes(),
            str(shuffled.keys.dtype),
            str(shuffled.values.dtype),
        )
        return shuffled.pairs(), grouped.items(), reduced.pairs(), raw
    return list(shuffled), list(grouped), list(reduced), None


@pytest.mark.parametrize("seed", range(8))
def test_engine_columnar_equals_generic(seed):
    rng = np.random.default_rng(seed)
    keys, values, ranks, partitioner, combiner_name = _random_case(rng)

    generic_slots: list = [None] * ranks
    columnar_slots: list = [None] * ranks
    generic = run_mpi(
        _stage_program, ranks,
        args=(keys, values, False, partitioner, combiner_name, generic_slots),
    ).results
    columnar = run_mpi(
        _stage_program, ranks,
        args=(keys, values, True, partitioner, combiner_name, columnar_slots),
    ).results

    for (g_shuf, g_grp, g_red, _), (c_shuf, c_grp, c_red, raw) in zip(generic, columnar):
        assert c_shuf == g_shuf
        assert c_grp == g_grp
        if combiner_name == "mean":
            assert [k for k, _ in c_red] == [k for k, _ in g_red]
            assert [v for _, v in c_red] == pytest.approx([v for _, v in g_red])
        else:
            assert c_red == g_red
        # byte-identical: re-columnarizing the generic shuffle output with the
        # fast path's dtypes reproduces the fast path's buffers bit for bit
        raw_k, raw_v, kdt, vdt = raw
        ref = KVBatch.from_pairs(g_shuf, key_dtype=np.dtype(kdt), value_dtype=np.dtype(vdt))
        assert ref.keys.tobytes() == raw_k
        assert ref.values.tobytes() == raw_v
    for g_perf, c_perf in zip(generic_slots, columnar_slots):
        assert g_perf.records_moved == c_perf.records_moved


@pytest.mark.parametrize("combiner_name", sorted(COMBINERS))
def test_engine_combine_columnar_equals_generic(combiner_name):
    rng = np.random.default_rng(42)
    keys = rng.integers(0, 40, 2500)
    values = rng.integers(0, 1000, 2500)
    combiner = COMBINERS[combiner_name]

    def program(comm, use_batch):
        eng = MRMPIEngine(comm)
        kv = (
            KVBatch(keys, values)
            if use_batch
            else list(zip(keys.tolist(), values.tolist()))
        )
        out = eng.combine(kv, combiner)
        return out.pairs() if isinstance(out, KVBatch) else list(out)

    generic = run_mpi(program, 1, args=(False,)).results[0]
    columnar = run_mpi(program, 1, args=(True,)).results[0]
    assert [k for k, _ in columnar] == [k for k, _ in generic]
    assert [float(v) for _, v in columnar] == pytest.approx(
        [float(v) for _, v in generic]
    )


def test_engine_sort_local_columnar():
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 25, 1000)
    values = np.arange(1000)

    def program(comm, descending):
        eng = MRMPIEngine(comm)
        batch = eng.sort_local(KVBatch(keys, values), descending=descending)
        pairs = eng.sort_local(
            list(zip(keys.tolist(), values.tolist())), descending=descending
        )
        return batch.pairs(), pairs

    for descending in (False, True):
        got, want = run_mpi(program, 1, args=(descending,)).results[0]
        assert got == want


def test_engine_run_job_accepts_batches():
    rng = np.random.default_rng(9)
    keys = rng.integers(0, 30, 2000)

    def program(comm):
        eng = MRMPIEngine(comm)
        lo, hi = _block_slice(len(keys), comm.rank, comm.size)
        out = eng.run_job(
            KVBatch(keys[lo:hi], np.ones(hi - lo, dtype=np.int64)),
            None,
            COMBINERS["count"],
            num_reducers=comm.size,
            sort_keys=True,
        )
        return out.pairs() if isinstance(out, KVBatch) else list(out)

    merged = [pair for r in run_mpi(program, 4).results for pair in r]
    ref: dict = {}
    for k in keys.tolist():
        ref[k] = ref.get(k, 0) + 1
    assert dict(merged) == ref
    assert sum(v for _, v in merged) == len(keys)


# -- layer 3: the case-study workflows ---------------------------------------


def _cluster_for(ranks):
    if ranks == 1:
        return ClusterModel(num_nodes=1, ranks_per_node=1, network=INFINIBAND_QDR)
    return ClusterModel(num_nodes=ranks // 2, ranks_per_node=2, network=INFINIBAND_QDR)


@pytest.fixture(scope="module")
def papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


@pytest.fixture(scope="module")
def blast_data():
    db = generate_database("env_nr", num_sequences=1000, seed=21)
    return Dataset.from_array(BLAST_INDEX_SCHEMA, build_index(db))


@pytest.fixture(scope="module")
def graph_data():
    return generate_graph("google", scale=0.002, seed=13).to_dataset()


def _case_args(case):
    if case == "blast":
        return BLAST_WORKFLOW_XML, {
            "input_path": "/in", "output_path": "/out", "num_partitions": 8,
        }
    return HYBRID_CUT_WORKFLOW_XML, {
        "input_file": "/in", "output_path": "/out",
        "num_partitions": 8, "threshold": 30,
    }


@pytest.mark.parametrize("backend", ["mpi", "mapreduce"])
@pytest.mark.parametrize("ranks", [1, 4, 8])
@pytest.mark.parametrize("case", ["blast", "hybrid"])
def test_workflows_bucketize_equals_scans(
    papar, blast_data, graph_data, backend, ranks, case, monkeypatch
):
    workflow, args = _case_args(case)
    data = blast_data if case == "blast" else graph_data

    fast = papar.run(workflow, args, data=data, backend=backend,
                     num_ranks=ranks, cluster=_cluster_for(ranks))
    monkeypatch.setattr(runtime_mod, "bucketize", scan_bucketize)
    monkeypatch.setattr(mr_runtime_mod, "bucketize", scan_bucketize)
    slow = papar.run(workflow, args, data=data, backend=backend,
                     num_ranks=ranks, cluster=_cluster_for(ranks))

    assert fast.num_partitions == slow.num_partitions == 8
    for ours, theirs in zip(fast.partitions, slow.partitions):
        np.testing.assert_array_equal(ours.to_flat().records, theirs.to_flat().records)
    assert fast.bytes_moved == slow.bytes_moved
    assert fast.messages == slow.messages
    assert fast.elapsed == pytest.approx(slow.elapsed)
    assert fast.perf["records_moved"] == slow.perf["records_moved"]
    assert fast.perf["bytes_moved"] == slow.perf["bytes_moved"]


@pytest.mark.parametrize("backend", ["serial", "mpi", "mapreduce"])
def test_perf_counters_reported(papar, blast_data, backend):
    workflow, args = _case_args("blast")
    kwargs = {} if backend == "serial" else {"num_ranks": 4, "cluster": _cluster_for(4)}
    result = papar.run(workflow, args, data=blast_data, backend=backend, **kwargs)
    perf = result.perf
    assert perf is not None
    assert set(perf) == {"records_moved", "bytes_moved", "phases"}
    assert "sort" in perf["phases"] and "distribute" in perf["phases"]
    if backend != "serial":
        # every record crosses the shuffle once for sort, once for distribute
        assert perf["records_moved"] == 2 * len(blast_data)
        assert perf["bytes_moved"] > 0
        assert perf["phases"]["sort"]["virtual_s"] > 0.0


def test_print_stats_renders(papar, blast_data, capsys):
    from repro.cli import print_stats

    workflow, args = _case_args("blast")
    result = papar.run(workflow, args, data=blast_data, backend="mpi",
                       num_ranks=4, cluster=_cluster_for(4))
    print_stats(result)
    out = capsys.readouterr().out
    assert "records moved" in out
    assert "sort" in out and "distribute" in out
