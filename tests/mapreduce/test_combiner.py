"""Map-side combiners: same results, smaller shuffle."""

from collections import Counter

import pytest

from repro.mapreduce import MRMPIEngine
from repro.mapreduce.hadoop import ListInputFormat
from repro.mapreduce.hadoop_engine import HadoopCluster
from repro.mpi import run_mpi

WORDS = ("a b c a b a a b c d " * 50).split()


def word_map(word, emit):
    emit(word, 1)


def sum_reduce(key, values, emit):
    emit(key, sum(values))


def split_for(rank, size, items):
    n = len(items)
    base, extra = divmod(n, size)
    start = rank * base + min(rank, extra)
    return items[start : start + base + (1 if rank < extra else 0)]


class TestMRMPICombiner:
    def test_results_unchanged(self):
        def prog(comm):
            eng = MRMPIEngine(comm)
            local = split_for(comm.rank, comm.size, WORDS)
            out = eng.run_job(local, word_map, sum_reduce, combiner=sum_reduce)
            return eng.gather_output(out)

        run = run_mpi(prog, 4)
        assert dict(run.results[0]) == dict(Counter(WORDS))

    def test_shuffle_volume_reduced(self):
        def prog_factory(combiner):
            def prog(comm):
                eng = MRMPIEngine(comm)
                local = split_for(comm.rank, comm.size, WORDS)
                eng.run_job(local, word_map, sum_reduce, combiner=combiner)

            return prog

        plain = run_mpi(prog_factory(None), 4)
        combined = run_mpi(prog_factory(sum_reduce), 4)
        assert combined.bytes_moved < plain.bytes_moved / 5

    def test_combine_standalone(self):
        def prog(comm):
            eng = MRMPIEngine(comm)
            kv = [("x", 1)] * 10 + [("y", 2)] * 5
            return sorted(eng.combine(kv, sum_reduce))

        run = run_mpi(prog, 1)
        assert run.results[0] == [("x", 10), ("y", 10)]


class TestHadoopCombiner:
    def test_results_unchanged(self, tmp_path):
        cluster = HadoopCluster(tmp_path / "h", num_mappers=3)
        result = cluster.run_job(
            ListInputFormat(WORDS), word_map, sum_reduce, num_reducers=2,
            combiner=sum_reduce,
        )
        assert dict(result.read_output()) == dict(Counter(WORDS))

    def test_spill_bytes_reduced(self, tmp_path):
        cluster = HadoopCluster(tmp_path / "h2", num_mappers=3)
        plain = cluster.run_job(
            ListInputFormat(WORDS), word_map, sum_reduce, num_reducers=2
        )
        combined = cluster.run_job(
            ListInputFormat(WORDS), word_map, sum_reduce, num_reducers=2,
            combiner=sum_reduce,
        )
        assert combined.counters.spilled_bytes < plain.counters.spilled_bytes / 5
