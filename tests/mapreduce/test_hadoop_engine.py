"""Hadoop-style engine: disk shuffle, counters, job chaining, Figure 9 flow."""

from collections import Counter

import numpy as np
import pytest

from repro.errors import MapReduceError
from repro.mapreduce import ExplicitPartitioner, HashPartitioner, LocalEngine, RangePartitioner
from repro.mapreduce.engine import identity_map, identity_reduce
from repro.mapreduce.hadoop import ListInputFormat
from repro.mapreduce.hadoop_engine import HadoopCluster

WORDS = "the quick brown fox jumps over the lazy dog the end".split()


def word_map(word, emit):
    emit(word, 1)


def sum_reduce(key, values, emit):
    emit(key, sum(values))


@pytest.fixture
def cluster(tmp_path):
    return HadoopCluster(tmp_path / "hadoop", num_mappers=3)


class TestWordCount:
    def test_matches_reference(self, cluster):
        result = cluster.run_job(
            ListInputFormat(WORDS), word_map, sum_reduce, num_reducers=2
        )
        assert dict(result.read_output()) == dict(Counter(WORDS))

    def test_matches_local_engine(self, cluster):
        hadoop_out = cluster.run_job(
            ListInputFormat(WORDS), word_map, sum_reduce, num_reducers=3
        ).read_output()
        local_out = LocalEngine().run_job(
            WORDS, word_map, sum_reduce, partitioner=HashPartitioner(3)
        )
        assert sorted(hadoop_out) == sorted(local_out)

    def test_counters(self, cluster):
        result = cluster.run_job(
            ListInputFormat(WORDS), word_map, sum_reduce, num_reducers=2
        )
        c = result.counters
        assert c.map_tasks == 3
        assert c.reduce_tasks == 2
        assert c.map_input_records == len(WORDS)
        assert c.map_output_records == len(WORDS)
        assert c.reduce_output_records == len(set(WORDS))
        assert c.spilled_bytes > 0

    def test_part_files_on_disk(self, cluster):
        result = cluster.run_job(
            ListInputFormat(WORDS), word_map, sum_reduce, num_reducers=4
        )
        assert len(result.part_files) == 4
        import os

        assert all(os.path.exists(p) for p in result.part_files)


class TestValidation:
    def test_bad_mappers(self, tmp_path):
        with pytest.raises(MapReduceError):
            HadoopCluster(tmp_path, num_mappers=0)

    def test_bad_reducers(self, cluster):
        with pytest.raises(MapReduceError):
            cluster.run_job(ListInputFormat([1]), word_map, sum_reduce, num_reducers=0)

    def test_partitioner_reducer_mismatch(self, cluster):
        with pytest.raises(MapReduceError, match="reducers"):
            cluster.run_job(
                ListInputFormat([1]),
                word_map,
                sum_reduce,
                partitioner=HashPartitioner(2),
                num_reducers=5,
            )


class TestFigure9Flow:
    """The muBLASTP sort + distribute workflow as two chained Hadoop jobs."""

    ROWS = [
        (0, 94, 0, 74),
        (94, 192, 74, 89),
        (286, 99, 163, 109),
        (385, 91, 272, 107),
        (476, 90, 379, 111),
        (566, 51, 490, 120),
        (617, 72, 610, 118),
        (689, 94, 728, 71),
        (783, 64, 799, 91),
        (847, 99, 890, 113),
        (946, 95, 1003, 104),
        (1041, 79, 1107, 76),
    ]

    def test_sort_then_distribute(self, cluster):
        # job 1 (sort): key = seq_size, range partitioner from sampled keys,
        # reducers sort and strip the reduce-key
        keys = sorted(r[1] for r in self.ROWS)
        boundaries = [keys[len(keys) // 3], keys[2 * len(keys) // 3]]

        def sort_map(row, emit):
            emit(row[1], row)

        sort_result = cluster.run_job(
            ListInputFormat(self.ROWS),
            sort_map,
            identity_reduce,
            partitioner=RangePartitioner(boundaries, 3),
            num_reducers=3,
            sort_keys=True,
            job_name="sort",
        )
        sorted_rows = [v for _, v in sort_result.read_output()]
        assert [r[1] for r in sorted_rows] == sorted(r[1] for r in self.ROWS)

        # job 2 (distribute): the partition id is the temporary reduce-key
        enumerated = list(enumerate(sorted_rows))

        def distr_map(item, emit):
            idx, row = item
            emit(idx % 3, row)

        distr_result = cluster.run_job(
            ListInputFormat(enumerated),
            distr_map,
            identity_reduce,
            partitioner=ExplicitPartitioner(3),
            num_reducers=3,
            job_name="distribute",
        )
        # compare with the reference muBLASTP cyclic partitioner
        from repro.blast import mublastp_partition
        from repro.formats import BLAST_INDEX_SCHEMA

        index = BLAST_INDEX_SCHEMA.to_structured(self.ROWS)
        expected = mublastp_partition(index, 3, policy="cyclic")
        for reducer, part_file in enumerate(distr_result.part_files):
            import pickle

            with open(part_file, "rb") as fh:
                rows = [tuple(v) for _, v in pickle.load(fh)]
            assert rows == [tuple(r) for r in expected[reducer]]


class TestChaining:
    def test_chain_input(self, cluster):
        first = cluster.run_job(
            ListInputFormat(WORDS), word_map, sum_reduce, num_reducers=2
        )

        def invert_map(item, emit):
            word, count = item
            emit(count, word)

        def collect_reduce(key, values, emit):
            emit(key, sorted(values))

        second = cluster.run_job(
            cluster.chain_input(first), invert_map, collect_reduce, num_reducers=2
        )
        by_count = dict(second.read_output())
        assert sorted(by_count[3]) == ["the"]
        assert set(by_count[1]) >= {"brown", "dog", "end"}

    def test_cleanup(self, tmp_path):
        cluster = HadoopCluster(tmp_path / "h2", num_mappers=2)
        cluster.run_job(ListInputFormat([1, 2]), word_map, sum_reduce, num_reducers=1)
        cluster.cleanup()
        import os

        assert not os.path.exists(tmp_path / "h2")
