"""Reservoir sampling and range-boundary derivation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MapReduceError
from repro.mapreduce import reservoir_sample, sample_key_ranges
from repro.mapreduce.partitioner import RangePartitioner
from repro.mapreduce.sampling import quantile_boundaries
from repro.mpi import run_mpi


class TestReservoirSample:
    def test_small_input_returned_whole(self):
        assert sorted(reservoir_sample([3, 1, 2], 10)) == [1, 2, 3]

    def test_sample_size_respected(self):
        s = reservoir_sample(list(range(1000)), 32)
        assert len(s) == 32
        assert all(x in range(1000) for x in s)

    def test_deterministic_with_same_rng(self):
        a = reservoir_sample(list(range(100)), 10, np.random.default_rng(7))
        b = reservoir_sample(list(range(100)), 10, np.random.default_rng(7))
        assert a == b

    def test_negative_k_rejected(self):
        with pytest.raises(MapReduceError):
            reservoir_sample([1], -1)

    def test_approximately_uniform(self):
        """Mean of many samples of U[0,1000) should be near 500."""
        rng = np.random.default_rng(0)
        means = [
            np.mean(reservoir_sample(list(range(1000)), 50, rng)) for _ in range(40)
        ]
        assert 400 < np.mean(means) < 600

    @given(st.lists(st.integers(), max_size=200), st.integers(0, 50))
    def test_sample_is_subset(self, items, k):
        s = reservoir_sample(items, k)
        assert len(s) == min(k, len(items))
        remaining = list(items)
        for x in s:
            remaining.remove(x)  # raises if not a sub-multiset


class TestQuantileBoundaries:
    def test_single_reducer_no_boundaries(self):
        assert quantile_boundaries([1, 2, 3], 1) == []

    def test_even_split(self):
        b = quantile_boundaries(list(range(100)), 4)
        assert b == [25, 50, 75]

    def test_empty_sample_rejected(self):
        with pytest.raises(MapReduceError):
            quantile_boundaries([], 2)

    def test_boundaries_ascending(self):
        b = quantile_boundaries([5, 1, 9, 3, 7, 2, 8], 3)
        assert b == sorted(b)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=100), st.integers(2, 10))
    def test_property_valid_for_range_partitioner(self, samples, nred):
        b = quantile_boundaries(samples, nred)
        RangePartitioner(b, nred)  # must construct without error


class TestDistributedSampling:
    def test_all_ranks_agree_on_boundaries(self):
        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            local = list(rng.integers(0, 10_000, size=500))
            return sample_key_ranges(comm, local, num_reducers=4, sample_size=128)

        run = run_mpi(prog, 4)
        assert all(b == run.results[0] for b in run.results)
        assert len(run.results[0]) == 3

    def test_balances_skewed_data(self):
        """Zipf-like keys: sampled ranges beat uniform ranges on reducer skew."""

        def prog(comm):
            rng = np.random.default_rng(100 + comm.rank)
            local = list((rng.pareto(1.5, size=2000) * 100).astype(int))
            boundaries = sample_key_ranges(comm, local, num_reducers=4, sample_size=512)
            part = RangePartitioner(boundaries, 4)
            counts = [0, 0, 0, 0]
            for k in local:
                counts[part(k)] += 1
            return counts

        run = run_mpi(prog, 4)
        totals = np.sum(run.results, axis=0)
        # with sampling, no reducer should hold more than 60% of the data
        assert totals.max() / totals.sum() < 0.6

    def test_empty_everywhere_raises(self):
        def prog(comm):
            return sample_key_ranges(comm, [], num_reducers=2)

        from repro.errors import MPIError

        with pytest.raises((MapReduceError, MPIError)):
            run_mpi(prog, 2)
