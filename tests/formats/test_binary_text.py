"""Binary and text file readers/writers + Hadoop InputFormat contract."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import (
    BLAST_INDEX_SCHEMA,
    EDGE_LIST_SCHEMA,
    BinaryInputFormat,
    Field,
    RecordSchema,
    TextInputFormat,
    read_binary,
    read_text,
    read_text_array,
    write_binary,
    write_partitions,
    write_text,
)
from repro.formats.text import format_line, parse_line


@pytest.fixture
def blast_rows():
    # the 12 index entries of Figure 9
    return [
        (0, 94, 0, 74),
        (94, 192, 74, 89),
        (286, 99, 163, 109),
        (385, 91, 272, 107),
        (476, 90, 379, 111),
        (566, 51, 490, 120),
        (617, 72, 610, 118),
        (689, 94, 728, 71),
        (783, 64, 799, 91),
        (847, 99, 890, 113),
        (946, 95, 1003, 104),
        (1041, 79, 1107, 76),
    ]


@pytest.fixture
def blast_file(tmp_path, blast_rows):
    arr = BLAST_INDEX_SCHEMA.to_structured(blast_rows)
    path = tmp_path / "db.index"
    write_binary(path, arr, BLAST_INDEX_SCHEMA, header=b"\x00" * 32)
    return path


class TestBinaryRoundtrip:
    def test_write_read(self, blast_file, blast_rows):
        arr = read_binary(blast_file, BLAST_INDEX_SCHEMA)
        assert arr.tolist() == blast_rows

    def test_header_size_enforced(self, tmp_path):
        arr = BLAST_INDEX_SCHEMA.to_structured([(0, 1, 2, 3)])
        with pytest.raises(FormatError, match="header"):
            write_binary(tmp_path / "x", arr, BLAST_INDEX_SCHEMA, header=b"short")

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "bad.index"
        path.write_bytes(b"\x00" * 40)  # 32 header + 8 bytes (half a record)
        with pytest.raises(FormatError, match="multiple"):
            read_binary(path, BLAST_INDEX_SCHEMA)

    def test_file_smaller_than_header(self, tmp_path):
        path = tmp_path / "tiny"
        path.write_bytes(b"\x00" * 8)
        with pytest.raises(FormatError, match="smaller"):
            read_binary(path, BLAST_INDEX_SCHEMA)

    def test_text_schema_rejected(self, tmp_path):
        with pytest.raises(FormatError):
            write_binary(tmp_path / "x", np.empty(0), EDGE_LIST_SCHEMA)


class TestBinaryInputFormat:
    def test_record_aligned_splits(self, blast_file):
        fmt = BinaryInputFormat(blast_file, BLAST_INDEX_SCHEMA)
        assert fmt.num_records == 12
        splits = fmt.get_splits(3)
        assert all(s.length % 16 == 0 for s in splits)
        assert splits[0].start == 32
        assert sum(s.length for s in splits) == 12 * 16

    def test_splits_cover_all_records(self, blast_file, blast_rows):
        fmt = BinaryInputFormat(blast_file, BLAST_INDEX_SCHEMA)
        seen = []
        for rank in range(5):
            seen += [tuple(r) for r in fmt.records_for_rank(rank, 5)]
        assert seen == blast_rows

    def test_uneven_split_counts(self, blast_file):
        fmt = BinaryInputFormat(blast_file, BLAST_INDEX_SCHEMA)
        lengths = [s.length // 16 for s in fmt.get_splits(5)]
        assert lengths == [3, 3, 2, 2, 2]

    def test_vectorized_read_split(self, blast_file, blast_rows):
        fmt = BinaryInputFormat(blast_file, BLAST_INDEX_SCHEMA)
        split = fmt.get_splits(2)[1]
        arr = fmt.read_split(split)
        assert arr.tolist() == blast_rows[6:]


class TestWritePartitions:
    def test_one_file_per_partition(self, tmp_path, blast_rows):
        arr = BLAST_INDEX_SCHEMA.to_structured(blast_rows)
        parts = [arr[:4], arr[4:8], arr[8:]]
        paths = write_partitions(tmp_path / "out", parts, BLAST_INDEX_SCHEMA, header=b"\x00" * 32)
        assert [p.endswith(f"part-0000{i}") for i, p in enumerate(paths)] == [True] * 3
        for path, part in zip(paths, parts):
            back = read_binary(path, BLAST_INDEX_SCHEMA)
            assert back.tolist() == part.tolist()


EDGES = [(1, 2), (2, 3), (3, 1), (1, 3)]


class TestTextRoundtrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "edges.txt"
        write_text(path, EDGES, EDGE_LIST_SCHEMA)
        assert read_text(path, EDGE_LIST_SCHEMA) == EDGES

    def test_read_array(self, tmp_path):
        path = tmp_path / "edges.txt"
        write_text(path, EDGES, EDGE_LIST_SCHEMA)
        arr = read_text_array(path, EDGE_LIST_SCHEMA)
        assert arr["vertex_a"].tolist() == [1, 2, 3, 1]

    def test_format_line(self):
        assert format_line((7, 9), EDGE_LIST_SCHEMA) == "7\t9\n"

    def test_parse_line(self):
        assert parse_line("7\t9\n", EDGE_LIST_SCHEMA) == (7, 9)

    def test_parse_missing_delimiter(self):
        with pytest.raises(FormatError, match="delimiter"):
            parse_line("7 9\n", EDGE_LIST_SCHEMA)

    def test_parse_bad_type(self):
        with pytest.raises(FormatError, match="parse"):
            parse_line("a\tb\n", EDGE_LIST_SCHEMA)

    def test_string_fields(self, tmp_path):
        schema = RecordSchema(
            id="names",
            fields=(Field("first", "string"), Field("last", "string")),
            input_format="text",
        )
        path = tmp_path / "names.txt"
        write_text(path, [("ada", "lovelace"), ("alan", "turing")], schema)
        assert read_text(path, schema) == [("ada", "lovelace"), ("alan", "turing")]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1\t2\n\n3\t4\n")
        assert read_text(path, EDGE_LIST_SCHEMA) == [(1, 2), (3, 4)]


class TestTextInputFormat:
    def test_splits(self, tmp_path):
        path = tmp_path / "edges.txt"
        write_text(path, EDGES, EDGE_LIST_SCHEMA)
        fmt = TextInputFormat(path, EDGE_LIST_SCHEMA)
        assert fmt.num_records == 4
        seen = []
        for rank in range(3):
            seen += fmt.records_for_rank(rank, 3)
        assert seen == EDGES

    def test_binary_schema_rejected(self, tmp_path):
        (tmp_path / "x").write_text("")
        with pytest.raises(FormatError):
            TextInputFormat(tmp_path / "x", BLAST_INDEX_SCHEMA)
