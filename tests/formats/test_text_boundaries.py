"""Boundary fuzz for the carry-over buffered text reader.

A record that straddles a raw read boundary must be neither torn nor
dropped nor duplicated, for *any* buffer size — so the sweep covers every
size from 1 (each byte its own read) through 64, which walks the boundary
across every position of every record in the fixture.
"""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.records import EDGE_LIST_SCHEMA
from repro.formats.text import (
    iter_text_lines,
    iter_text_records,
    read_text_array,
    write_text,
)


@pytest.fixture(scope="module")
def edge_file(tmp_path_factory):
    # mixed-width fields (1..7 digit vertex ids) so line lengths vary and
    # buffer boundaries land on delimiters, digits, and terminators alike
    rng = np.random.default_rng(42)
    rows = [
        (int(a), int(b))
        for a, b in zip(
            rng.integers(0, 10**7, 120), rng.integers(0, 10**7, 120)
        )
    ]
    path = tmp_path_factory.mktemp("text") / "edges.txt"
    write_text(path, rows, EDGE_LIST_SCHEMA)
    return str(path), rows


@pytest.mark.parametrize("buffer_size", range(1, 65))
def test_lines_survive_any_buffer_size(edge_file, buffer_size):
    path, _ = edge_file
    whole = open(path, encoding="utf-8").read()
    lines = list(iter_text_lines(path, buffer_size))
    assert "".join(lines) == whole  # nothing torn, dropped, or duplicated
    assert all(line.endswith("\n") for line in lines[:-1])


@pytest.mark.parametrize("buffer_size", range(1, 65))
def test_records_survive_any_buffer_size(edge_file, buffer_size):
    path, rows = edge_file
    assert list(iter_text_records(path, EDGE_LIST_SCHEMA, buffer_size)) == rows


def test_unterminated_final_line_is_kept(tmp_path):
    path = str(tmp_path / "no_newline.txt")
    open(path, "w").write("1\t2\n3\t4")  # no trailing terminator
    for buffer_size in range(1, 12):
        records = list(iter_text_records(path, EDGE_LIST_SCHEMA, buffer_size))
        assert records == [(1, 2), (3, 4)]


def test_blank_lines_are_skipped_at_any_boundary(tmp_path):
    path = str(tmp_path / "blanks.txt")
    open(path, "w").write("1\t2\n\n3\t4\n\n\n5\t6\n")
    for buffer_size in range(1, 20):
        records = list(iter_text_records(path, EDGE_LIST_SCHEMA, buffer_size))
        assert records == [(1, 2), (3, 4), (5, 6)]


def test_offset_resumes_at_a_line_start(edge_file):
    path, _ = edge_file
    whole = open(path, encoding="utf-8").read()
    first = next(iter_text_lines(path, 16))
    resumed = "".join(iter_text_lines(path, 16, offset=len(first)))
    assert first + resumed == whole


def test_invalid_buffer_size_is_rejected(edge_file):
    path, _ = edge_file
    with pytest.raises(FormatError):
        list(iter_text_lines(path, 0))


def test_sweep_agrees_with_array_reader(edge_file):
    path, rows = edge_file
    arr = read_text_array(path, EDGE_LIST_SCHEMA)
    assert [tuple(r) for r in arr.tolist()] == rows
