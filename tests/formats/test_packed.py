"""Packed format and CSR/CSC compression (paper Section III-D)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import (
    EDGE_LIST_SCHEMA,
    CSCBlock,
    Field,
    RecordSchema,
    compression_ratio,
    pack,
    unpack,
)

#: edge schema extended with the count add-on's indegree attribute,
#: as produced by the group job of the hybrid-cut workflow (Figure 11).
EDGE_WITH_DEGREE = EDGE_LIST_SCHEMA.with_field("indegree", "long")


def figure11_records():
    """The packed data of Figure 11 reducer 0: four edges into vertex 1."""
    rows = [(2, 1, 4), (3, 1, 4), (4, 1, 4), (5, 1, 4)]
    return EDGE_WITH_DEGREE.to_structured(rows)


class TestPack:
    def test_groups_by_key(self):
        records = EDGE_WITH_DEGREE.to_structured(
            [(2, 1, 2), (9, 5, 1), (3, 1, 2)]
        )
        packed = pack(records, EDGE_WITH_DEGREE, "vertex_b")
        assert packed.num_groups == 2
        keys = [k for k, _ in packed.groups]
        assert keys == [1, 5]
        g1 = dict(packed.groups)[1]
        assert sorted(g1["vertex_a"].tolist()) == [2, 3]

    def test_wrong_dtype_rejected(self):
        with pytest.raises(FormatError, match="dtype"):
            pack(np.zeros(3, dtype=np.int64), EDGE_WITH_DEGREE, "vertex_b")

    def test_missing_key_field(self):
        records = figure11_records()
        with pytest.raises(FormatError, match="key field"):
            pack(records, EDGE_WITH_DEGREE, "nope")

    def test_inconsistent_group_rejected(self):
        from repro.formats.packed import PackedRecords

        rows = EDGE_WITH_DEGREE.to_structured([(2, 1, 4), (3, 9, 4)])
        with pytest.raises(FormatError, match="different key"):
            PackedRecords(schema=EDGE_WITH_DEGREE, key_field="vertex_b", groups=[(1, rows)])


class TestUnpack:
    def test_roundtrip(self):
        records = figure11_records()
        packed = pack(records, EDGE_WITH_DEGREE, "vertex_b")
        flat = unpack(packed)
        assert sorted(flat.tolist()) == sorted(records.tolist())

    def test_empty(self):
        packed = pack(
            np.empty(0, dtype=EDGE_WITH_DEGREE.dtype), EDGE_WITH_DEGREE, "vertex_b"
        )
        assert len(unpack(packed)) == 0
        assert packed.nbytes == 0


class TestCSC:
    def test_paper_example_structure(self):
        """Figure 11 / Section III-D: {0, {2,3,4,5}, {4,4,4,4}} for in-vertex 1."""
        packed = pack(figure11_records(), EDGE_WITH_DEGREE, "vertex_b")
        csc = packed.to_csc()
        assert csc.indptr.tolist() == [0, 4]
        assert csc.keys.tolist() == [1]
        assert csc.values["vertex_a"].tolist() == [2, 3, 4, 5]
        # the value array is NOT compressed, by design
        assert csc.values["indegree"].tolist() == [4, 4, 4, 4]

    def test_lossless_roundtrip(self):
        records = EDGE_WITH_DEGREE.to_structured(
            [(2, 1, 3), (3, 1, 3), (7, 1, 3), (9, 5, 2), (8, 5, 2), (4, 6, 1)]
        )
        packed = pack(records, EDGE_WITH_DEGREE, "vertex_b")
        back = packed.to_csc().to_packed()
        assert back.num_groups == packed.num_groups
        for (k1, r1), (k2, r2) in zip(packed.groups, back.groups):
            assert k1 == k2
            assert r1.tolist() == r2.tolist()

    def test_compression_saves_bytes_on_redundant_groups(self):
        """Large groups repeat the key; CSC must be strictly smaller."""
        rows = [(i, 1, 1000) for i in range(1000)]
        packed = pack(EDGE_WITH_DEGREE.to_structured(rows), EDGE_WITH_DEGREE, "vertex_b")
        ratio = compression_ratio(packed)
        assert 0.0 < ratio < 1.0
        # one long column of 3 removed: roughly 1/3 of bytes saved
        assert ratio == pytest.approx(1 / 3, abs=0.05)

    def test_compression_ratio_empty(self):
        packed = pack(
            np.empty(0, dtype=EDGE_WITH_DEGREE.dtype), EDGE_WITH_DEGREE, "vertex_b"
        )
        assert compression_ratio(packed) == 0.0

    def test_invalid_indptr_rejected(self):
        with pytest.raises(FormatError):
            CSCBlock(
                schema=EDGE_WITH_DEGREE,
                key_field="vertex_b",
                keys=np.array([1, 2]),
                indptr=np.array([0, 1]),  # needs 3 entries
                values=np.empty(1, dtype=[("vertex_a", "<i8"), ("indegree", "<i8")]),
            )

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 5), st.integers(1, 3)),
            min_size=1,
            max_size=200,
        )
    )
    def test_property_roundtrip_preserves_records(self, rows):
        records = EDGE_WITH_DEGREE.to_structured(rows)
        packed = pack(records, EDGE_WITH_DEGREE, "vertex_b")
        assert packed.num_records == len(rows)
        flat_again = packed.to_csc().to_packed().unpack()
        assert sorted(flat_again.tolist()) == sorted(records.tolist())

    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 3)),
            min_size=1,
            max_size=300,
        )
    )
    def test_property_csc_never_larger_when_groups_nontrivial(self, pairs):
        schema = RecordSchema(
            id="kv",
            fields=(Field("payload", "long"), Field("grp", "long")),
            input_format="binary",
        )
        records = schema.to_structured(pairs)
        packed = pack(records, schema, "grp")
        csc = packed.to_csc()
        # per group CSC trades (count-1) stored keys for one indptr entry, so
        # it wins once every group holds >= 3 records (8B key vs 8B offset + key)
        min_group = min(len(rows) for _, rows in packed.groups)
        if min_group >= 3:
            assert csc.nbytes <= packed.nbytes
        # and is always lossless regardless of size
        assert csc.num_records == packed.num_records
