"""RecordSchema validation and numpy interop."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.formats import BLAST_INDEX_SCHEMA, EDGE_LIST_SCHEMA, Field, RecordSchema


class TestField:
    def test_valid(self):
        f = Field("seq_size", "integer")
        assert f.numpy_dtype == np.dtype("<i4")

    def test_unknown_type(self):
        with pytest.raises(SchemaError, match="unknown type"):
            Field("x", "decimal")

    def test_bad_name(self):
        with pytest.raises(SchemaError):
            Field("9bad", "integer")
        with pytest.raises(SchemaError):
            Field("", "integer")

    def test_string_has_no_binary_width(self):
        with pytest.raises(SchemaError):
            Field("s", "string").numpy_dtype

    def test_parse_text(self):
        assert Field("a", "integer").parse_text("42") == 42
        assert Field("a", "double").parse_text("2.5") == 2.5
        assert Field("a", "string").parse_text("xyz") == "xyz"


class TestBlastIndexSchema:
    def test_paper_layout(self):
        """Figure 4: four integers, 16 bytes per record, 32-byte header."""
        s = BLAST_INDEX_SCHEMA
        assert s.itemsize == 16
        assert s.start_position == 32
        assert s.field_names == ("seq_start", "seq_size", "desc_start", "desc_size")

    def test_structured_roundtrip(self):
        rows = [(0, 94, 0, 74), (94, 100, 74, 89)]
        arr = BLAST_INDEX_SCHEMA.to_structured(rows)
        assert arr["seq_size"].tolist() == [94, 100]


class TestEdgeListSchema:
    def test_paper_layout(self):
        s = EDGE_LIST_SCHEMA
        assert s.input_format == "text"
        assert s.effective_delimiters() == ("\t", "\n")


class TestValidation:
    def test_no_fields(self):
        with pytest.raises(SchemaError, match="no fields"):
            RecordSchema(id="x", fields=())

    def test_duplicate_fields(self):
        with pytest.raises(SchemaError, match="duplicate"):
            RecordSchema(id="x", fields=(Field("a", "integer"), Field("a", "long")))

    def test_binary_rejects_string(self):
        with pytest.raises(SchemaError, match="string"):
            RecordSchema(id="x", fields=(Field("a", "string"),), input_format="binary")

    def test_binary_rejects_delimiters(self):
        with pytest.raises(SchemaError, match="delimiters"):
            RecordSchema(
                id="x", fields=(Field("a", "integer"),), input_format="binary", delimiters=("\t",)
            )

    def test_text_rejects_start_position(self):
        with pytest.raises(SchemaError, match="start_position"):
            RecordSchema(
                id="x", fields=(Field("a", "integer"),), input_format="text", start_position=4
            )

    def test_text_delimiter_count(self):
        with pytest.raises(SchemaError, match="delimiter"):
            RecordSchema(
                id="x",
                fields=(Field("a", "integer"), Field("b", "integer")),
                input_format="text",
                delimiters=("\t",),
            )

    def test_unknown_format(self):
        with pytest.raises(SchemaError):
            RecordSchema(id="x", fields=(Field("a", "integer"),), input_format="csv")

    def test_index_of_missing(self):
        with pytest.raises(SchemaError):
            BLAST_INDEX_SCHEMA.index_of("nope")


class TestSchemaAlgebra:
    def test_with_field_appends(self):
        s = EDGE_LIST_SCHEMA.with_field("indegree", "long")
        assert s.field_names == ("vertex_a", "vertex_b", "indegree")
        assert s.effective_delimiters() == ("\t", "\t", "\n")

    def test_with_field_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            EDGE_LIST_SCHEMA.with_field("vertex_a")

    def test_without_field_removes(self):
        s = EDGE_LIST_SCHEMA.with_field("indegree", "long").without_field("indegree")
        assert s.field_names == EDGE_LIST_SCHEMA.field_names
        assert s.effective_delimiters() == ("\t", "\n")

    def test_roundtrip_add_remove_binary(self):
        s = BLAST_INDEX_SCHEMA.with_field("length_rank", "long")
        assert s.itemsize == 24
        back = s.without_field("length_rank")
        assert back.itemsize == 16
        assert back.dtype == BLAST_INDEX_SCHEMA.dtype
