"""Byte-range text splitting: Hadoop's exactly-once line ownership protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import ByteRangeTextInputFormat, EDGE_LIST_SCHEMA, write_text


def make_file(tmp_path, rows, name="edges.txt"):
    path = tmp_path / name
    write_text(path, rows, EDGE_LIST_SCHEMA)
    return path


ROWS = [(i, i * 2 + 1) for i in range(57)]


class TestExactlyOnce:
    @pytest.mark.parametrize("num_splits", [1, 2, 3, 5, 8, 20])
    def test_every_line_read_exactly_once(self, tmp_path, num_splits):
        path = make_file(tmp_path, ROWS)
        fmt = ByteRangeTextInputFormat(path, EDGE_LIST_SCHEMA)
        seen = []
        for rank in range(num_splits):
            seen += fmt.records_for_rank(rank, num_splits)
        assert seen == ROWS

    def test_splits_are_byte_ranges(self, tmp_path):
        path = make_file(tmp_path, ROWS)
        fmt = ByteRangeTextInputFormat(path, EDGE_LIST_SCHEMA)
        splits = fmt.get_splits(4)
        assert sum(s.length for s in splits) == path.stat().st_size
        # byte ranges need not align to line boundaries
        assert splits[0].start == 0

    def test_more_splits_than_lines(self, tmp_path):
        rows = [(1, 2), (3, 4)]
        path = make_file(tmp_path, rows)
        fmt = ByteRangeTextInputFormat(path, EDGE_LIST_SCHEMA)
        seen = []
        for rank in range(10):
            seen += fmt.records_for_rank(rank, 10)
        assert seen == rows

    def test_single_long_line(self, tmp_path):
        rows = [(123456789012, 987654321098)]
        path = make_file(tmp_path, rows)
        fmt = ByteRangeTextInputFormat(path, EDGE_LIST_SCHEMA)
        seen = []
        for rank in range(4):
            seen += fmt.records_for_rank(rank, 4)
        assert seen == rows

    def test_binary_schema_rejected(self, tmp_path):
        from repro.formats import BLAST_INDEX_SCHEMA

        path = make_file(tmp_path, [(1, 2)])
        with pytest.raises(FormatError):
            ByteRangeTextInputFormat(path, BLAST_INDEX_SCHEMA)

    def test_zero_splits_rejected(self, tmp_path):
        path = make_file(tmp_path, [(1, 2)])
        with pytest.raises(FormatError):
            ByteRangeTextInputFormat(path, EDGE_LIST_SCHEMA).get_splits(0)

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.tuples(st.integers(0, 10**12), st.integers(0, 10**12)),
                        min_size=1, max_size=60),
        num_splits=st.integers(1, 12),
    )
    def test_property_exactly_once(self, tmp_path_factory, values, num_splits):
        tmp = tmp_path_factory.mktemp("brt")
        path = make_file(tmp, values, name="f.txt")
        fmt = ByteRangeTextInputFormat(path, EDGE_LIST_SCHEMA)
        seen = []
        for rank in range(num_splits):
            seen += fmt.records_for_rank(rank, num_splits)
        assert seen == values
