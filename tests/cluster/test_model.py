"""ClusterModel, NetworkModel and CostModel behaviour."""

import math

import pytest

from repro.cluster import (
    ETHERNET_10G,
    INFINIBAND_QDR,
    LOCALHOST,
    ClusterModel,
    CostModel,
    NetworkModel,
    NodeSpec,
)
from repro.cluster.model import calibrate
from repro.errors import ClusterError


class TestNetworkModel:
    def test_transfer_time_alpha_beta(self):
        net = NetworkModel("t", latency_s=1e-3, bandwidth_bps=1e6, intra_latency_s=0, intra_bandwidth_bps=1e9)
        assert net.transfer_time(1_000_000, same_node=False) == pytest.approx(1e-3 + 1.0)

    def test_intra_node_cheaper(self):
        for net in (ETHERNET_10G, INFINIBAND_QDR):
            big = 1 << 20
            assert net.transfer_time(big, same_node=True) < net.transfer_time(big, same_node=False)

    def test_infiniband_beats_ethernet(self):
        """RDMA latency and bandwidth both dominate the socket path."""
        for nbytes in (0, 1 << 10, 1 << 24):
            assert INFINIBAND_QDR.transfer_time(nbytes, same_node=False) < ETHERNET_10G.transfer_time(
                nbytes, same_node=False
            ) or nbytes == 0 and INFINIBAND_QDR.latency_s < ETHERNET_10G.latency_s

    def test_localhost_free(self):
        assert LOCALHOST.transfer_time(1 << 30, same_node=False) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ClusterError):
            ETHERNET_10G.transfer_time(-1, same_node=False)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ClusterError):
            NetworkModel("bad", 0, 0, 0, 1)


class TestNodeSpec:
    def test_paper_node(self):
        node = NodeSpec()
        assert node.cores == 16
        assert node.sockets == 2

    def test_invalid(self):
        with pytest.raises(ClusterError):
            NodeSpec(sockets=0)


class TestCostModel:
    def test_sort_is_n_log_n(self):
        cm = CostModel()
        n = 1 << 20
        assert cm.sort(n) == pytest.approx(cm.sort_per_cmp * n * math.log2(n))
        assert cm.sort(1) == 0.0
        assert cm.sort(0) == 0.0

    def test_parallel_speedup_bounded_by_threads(self):
        cm = CostModel()
        base = cm.sort(1 << 20)
        p8 = cm.parallel(base, 8)
        assert base / p8 <= 8
        assert base / p8 == pytest.approx(8 * cm.parallel_efficiency)

    def test_parallel_single_thread_identity(self):
        cm = CostModel()
        assert cm.parallel(1.0, 1) == 1.0

    def test_parallel_zero_threads_rejected(self):
        with pytest.raises(ClusterError):
            CostModel().parallel(1.0, 0)

    def test_invalid_efficiency(self):
        with pytest.raises(ClusterError):
            CostModel(parallel_efficiency=0.0)
        with pytest.raises(ClusterError):
            CostModel(parallel_efficiency=1.5)

    def test_calibrate_produces_positive_constants(self):
        cm = calibrate(sample_size=1 << 14, repeats=1)
        assert cm.sort_per_cmp > 0
        assert cm.stream_per_rec > 0
        assert cm.pack_per_byte > 0


class TestClusterModel:
    def test_paper_testbed(self):
        cluster = ClusterModel(num_nodes=16, ranks_per_node=2, network=INFINIBAND_QDR)
        assert cluster.size == 32
        assert cluster.node_of(0) == 0
        assert cluster.node_of(1) == 0
        assert cluster.node_of(2) == 1
        assert cluster.same_node(0, 1)
        assert not cluster.same_node(1, 2)

    def test_self_transfer_free(self):
        cluster = ClusterModel(num_nodes=2, network=INFINIBAND_QDR)
        assert cluster.transfer_time(1 << 20, 0, 0) == 0.0

    def test_cross_node_slower_than_intra(self):
        cluster = ClusterModel(num_nodes=2, ranks_per_node=2, network=INFINIBAND_QDR)
        assert cluster.transfer_time(1 << 20, 0, 1) < cluster.transfer_time(1 << 20, 0, 2)

    def test_with_nodes_scaling(self):
        base = ClusterModel(num_nodes=16)
        small = base.with_nodes(4)
        assert small.size == 8
        assert small.network is base.network

    def test_oversubscription_rejected(self):
        with pytest.raises(ClusterError):
            ClusterModel(num_nodes=1, ranks_per_node=4, threads_per_rank=8)

    def test_rank_out_of_range(self):
        with pytest.raises(ClusterError):
            ClusterModel(num_nodes=1).node_of(99)

    def test_compute_uses_rank_threads(self):
        cluster = ClusterModel(num_nodes=1, ranks_per_node=2, threads_per_rank=8)
        single = cluster.cost.sort(1 << 20)
        assert cluster.compute(single) == pytest.approx(cluster.cost.parallel(single, 8))
