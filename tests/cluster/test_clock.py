"""VirtualClock invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import VirtualClock
from repro.errors import ClusterError


def test_starts_at_zero():
    assert VirtualClock().now == 0.0


def test_advance_accumulates():
    c = VirtualClock()
    c.advance(1.5)
    c.advance(0.5)
    assert c.now == pytest.approx(2.0)


def test_negative_advance_rejected():
    with pytest.raises(ClusterError):
        VirtualClock().advance(-1)


def test_negative_start_rejected():
    with pytest.raises(ClusterError):
        VirtualClock(-0.1)


def test_merge_takes_max():
    c = VirtualClock(5.0)
    c.merge(3.0)
    assert c.now == 5.0
    c.merge(7.0)
    assert c.now == 7.0


def test_reset():
    c = VirtualClock(9.0)
    c.reset()
    assert c.now == 0.0


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=30))
def test_clock_is_monotone_under_any_advance_sequence(steps):
    c = VirtualClock()
    last = 0.0
    for s in steps:
        c.advance(s)
        assert c.now >= last
        last = c.now


@given(
    st.floats(min_value=0, max_value=1e6),
    st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=30),
)
def test_merge_never_decreases(start, timestamps):
    c = VirtualClock(start)
    last = c.now
    for ts in timestamps:
        c.merge(ts)
        assert c.now >= last
        assert c.now >= ts or c.now == last
        last = c.now
