"""Virtual-time trace collection and analysis."""

import pytest

from repro.cluster import ClusterModel, INFINIBAND_QDR
from repro.cluster.trace import TraceEvent, Tracer, traced_program
from repro.mpi import run_mpi


class TestTraceEvent:
    def test_duration(self):
        e = TraceEvent(rank=0, kind="compute", start=1.0, end=3.5)
        assert e.duration == 2.5


class TestTracer:
    def test_record_and_summary(self):
        t = Tracer(2)
        t.record(0, "compute", 0.0, 1.0, label="sort")
        t.record(0, "send", 1.0, 1.0, nbytes=128)
        t.record(1, "recv", 0.0, 1.2, nbytes=128)
        t.mark(1, 1.2, "done")
        assert t.timelines[0].busy_time() == 1.0
        assert t.timelines[0].bytes_sent() == 128
        assert t.timelines[1].bytes_received() == 128
        assert t.makespan() == pytest.approx(1.2)
        summary = t.summary()
        assert "makespan" in summary
        assert "rank" in summary

    def test_empty_tracer(self):
        t = Tracer(3)
        assert t.makespan() == 0.0
        assert t.compute_fraction() == 0.0

    def test_compute_fraction(self):
        t = Tracer(2)
        t.record(0, "compute", 0.0, 1.0)
        t.record(1, "compute", 0.0, 0.5)
        # makespan 1.0, 2 ranks -> 1.5 busy over 2.0 rank-time
        assert t.compute_fraction() == pytest.approx(0.75)


class TestTracedProgram:
    def test_traced_mpi_run(self):
        cluster = ClusterModel(num_nodes=2, ranks_per_node=2, network=INFINIBAND_QDR)
        tracer = Tracer(4)
        instrument = traced_program(tracer, label_prefix="phase1")

        def prog(comm):
            comm = instrument(comm)
            comm.charge_compute(0.01)
            if comm.rank == 0:
                comm.send(b"x" * 1000, dest=2)
            elif comm.rank == 2:
                comm.recv(source=0)
            return comm.clock.now

        run_mpi(prog, 4, cluster=cluster)
        # every rank recorded its compute phase
        for tl in tracer.timelines:
            assert any(e.kind == "compute" for e in tl.events)
        sends = [e for e in tracer.timelines[0].events if e.kind == "send"]
        recvs = [e for e in tracer.timelines[2].events if e.kind == "recv"]
        assert len(sends) == 1 and sends[0].nbytes > 1000
        assert len(recvs) == 1 and recvs[0].nbytes == sends[0].nbytes
        assert recvs[0].label == "<-0"
        assert tracer.makespan() > 0.01

    def test_trace_reveals_comm_time(self):
        """The receive event's duration covers the network transfer."""
        cluster = ClusterModel(num_nodes=2, ranks_per_node=1, network=INFINIBAND_QDR)
        tracer = Tracer(2)
        instrument = traced_program(tracer)
        payload = b"y" * 4_000_000

        def prog(comm):
            comm = instrument(comm)
            if comm.rank == 0:
                comm.send(payload, dest=1)
            else:
                comm.recv(source=0)

        run_mpi(prog, 2, cluster=cluster)
        recv_event = next(e for e in tracer.timelines[1].events if e.kind == "recv")
        # the receive spans: sender serialization + transfer + deserialization
        expected = (
            cluster.transfer_time(recv_event.nbytes, 0, 1)
            + 2 * cluster.cost.pack(recv_event.nbytes)
        )
        assert recv_event.duration == pytest.approx(expected, rel=0.1)
