"""Stride permutations L_m^{km} (Figure 6) — index form vs matrix form."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PolicyError
from repro.policies import (
    apply_permutation_matrix,
    block_permutation_indices,
    cyclic_permutation_indices,
    partition_counts,
    stride_permutation_indices,
    stride_permutation_matrix,
)


class TestStridePermutation:
    def test_figure6a_L2_4(self):
        """L_2^4 permutes [x0,x1,x2,x3] -> [x0,x2,x1,x3] (cyclic, 2 partitions)."""
        x = np.array(["x0", "x1", "x2", "x3"])
        perm = stride_permutation_indices(4, 2)
        assert x[perm].tolist() == ["x0", "x2", "x1", "x3"]

    def test_figure6b_L4_4_identity(self):
        """L_4^4 is the identity (block policy)."""
        perm = stride_permutation_indices(4, 4)
        assert perm.tolist() == [0, 1, 2, 3]

    def test_definition_formula(self):
        """y[j*m+i] = x[i*k+j] for all i < m, j < k."""
        n, m = 12, 3
        k = n // m
        x = np.arange(n)
        y = x[stride_permutation_indices(n, m)]
        for i in range(m):
            for j in range(k):
                assert y[j * m + i] == x[i * k + j]

    def test_requires_divisibility(self):
        with pytest.raises(PolicyError, match="requires m"):
            stride_permutation_indices(4, 3)

    def test_empty(self):
        assert len(stride_permutation_indices(0, 3)) == 0

    def test_invalid_args(self):
        with pytest.raises(PolicyError):
            stride_permutation_indices(-1, 2)
        with pytest.raises(PolicyError):
            stride_permutation_indices(4, 0)

    @given(st.integers(1, 12), st.integers(1, 12))
    def test_property_is_permutation(self, m, k):
        n = m * k
        perm = stride_permutation_indices(n, m)
        assert sorted(perm.tolist()) == list(range(n))

    @given(st.integers(1, 8), st.integers(1, 8))
    def test_property_inverse_is_L_k(self, m, k):
        """The inverse of L_m^{mk} is L_k^{mk}."""
        n = m * k
        perm_m = stride_permutation_indices(n, m)
        perm_k = stride_permutation_indices(n, k)
        x = np.arange(n)
        assert np.array_equal(x[perm_m][perm_k], x)


class TestMatrixForm:
    def test_matrix_equals_index_form(self):
        for n, m in [(4, 2), (4, 4), (12, 3), (16, 8)]:
            x = np.arange(n) * 10
            matrix = stride_permutation_matrix(n, m)
            via_matrix = apply_permutation_matrix(matrix, x)
            via_index = x[stride_permutation_indices(n, m)]
            assert np.array_equal(via_matrix, via_index)

    def test_matrix_is_orthogonal_permutation(self):
        P = stride_permutation_matrix(6, 2).toarray()
        assert (P.sum(axis=0) == 1).all()
        assert (P.sum(axis=1) == 1).all()
        assert np.array_equal(P @ P.T, np.eye(6, dtype=P.dtype))

    def test_shape_mismatch_rejected(self):
        matrix = stride_permutation_matrix(4, 2)
        with pytest.raises(PolicyError, match="entries"):
            apply_permutation_matrix(matrix, np.arange(5))


class TestCyclicPermutation:
    def test_figure9_L3_4(self):
        """The paper's L_3^4: 4 entries dealt to 3 partitions round-robin.

        Mapper 0 of Figure 9 sends entries {0, 3} to partition 0, {1} to
        partition 1, {2} to partition 2.
        """
        perm = cyclic_permutation_indices(4, 3)
        assert perm.tolist() == [0, 3, 1, 2]

    def test_reduces_to_stride_permutation_when_divisible(self):
        """Cyclic dealing into P partitions == L_{n/P}^n (gather at stride P)."""
        for n, p in [(4, 2), (12, 3), (16, 4), (9, 9)]:
            assert np.array_equal(
                cyclic_permutation_indices(n, p), stride_permutation_indices(n, n // p)
            )

    def test_L3_3_identity(self):
        """Figure 11: L_3^3 'happens not to permute data'."""
        assert cyclic_permutation_indices(3, 3).tolist() == [0, 1, 2]

    def test_single_partition(self):
        assert cyclic_permutation_indices(5, 1).tolist() == [0, 1, 2, 3, 4]

    @given(st.integers(0, 100), st.integers(1, 10))
    def test_property_round_robin_owners(self, n, p):
        """Entry i must land in partition i % p."""
        perm = cyclic_permutation_indices(n, p)
        counts = partition_counts(n, p, "cyclic")
        offsets = np.concatenate(([0], np.cumsum(counts)))
        for part in range(p):
            for entry in perm[offsets[part] : offsets[part + 1]]:
                assert entry % p == part

    @given(st.integers(0, 100), st.integers(1, 10))
    def test_property_preserves_order_within_partition(self, n, p):
        perm = cyclic_permutation_indices(n, p)
        counts = partition_counts(n, p, "cyclic")
        offsets = np.concatenate(([0], np.cumsum(counts)))
        for part in range(p):
            chunk = perm[offsets[part] : offsets[part + 1]]
            assert np.all(np.diff(chunk) > 0) or len(chunk) <= 1


class TestBlockAndCounts:
    def test_block_identity(self):
        assert block_permutation_indices(5).tolist() == [0, 1, 2, 3, 4]

    def test_counts_balanced(self):
        assert partition_counts(10, 3, "cyclic").tolist() == [4, 3, 3]
        assert partition_counts(10, 3, "block").tolist() == [4, 3, 3]
        assert partition_counts(0, 3, "cyclic").tolist() == [0, 0, 0]

    def test_counts_unknown_policy(self):
        with pytest.raises(PolicyError):
            partition_counts(10, 3, "zigzag")

    @given(st.integers(0, 1000), st.integers(1, 32))
    def test_property_counts_sum_to_n(self, n, p):
        assert partition_counts(n, p, "cyclic").sum() == n

    @given(st.integers(0, 1000), st.integers(1, 32))
    def test_property_counts_max_imbalance_one(self, n, p):
        counts = partition_counts(n, p, "block")
        assert counts.max() - counts.min() <= 1
