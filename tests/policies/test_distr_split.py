"""Distribution policy registry and split policy grammar."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PolicyError
from repro.policies import (
    BlockPolicy,
    CyclicPolicy,
    DistributionPolicy,
    GraphVertexCutPolicy,
    SplitPolicy,
    get_policy,
    register_policy,
)


class TestRegistry:
    def test_lookup_aliases(self):
        assert isinstance(get_policy("cyclic"), CyclicPolicy)
        assert isinstance(get_policy("roundRobin"), CyclicPolicy)  # Figure 8 name
        assert isinstance(get_policy("block"), BlockPolicy)
        assert isinstance(get_policy("graphVertexCut"), GraphVertexCutPolicy)

    def test_unknown(self):
        with pytest.raises(PolicyError, match="unknown"):
            get_policy("mystery")

    def test_register_custom(self):
        class Reverse(DistributionPolicy):
            name = "reverse"

            def permutation(self, n, p):
                return np.arange(n)[::-1].copy()

            def counts(self, n, p):
                base, extra = divmod(n, p)
                return np.array([base + (1 if i < extra else 0) for i in range(p)])

        register_policy("reverse-test", Reverse)
        assert isinstance(get_policy("reverse-test"), Reverse)
        with pytest.raises(PolicyError, match="already"):
            register_policy("reverse-test", Reverse)


class TestAssign:
    def test_cyclic_assign(self):
        owners = CyclicPolicy().assign(7, 3)
        assert owners.tolist() == [0, 1, 2, 0, 1, 2, 0]

    def test_block_assign(self):
        owners = BlockPolicy().assign(7, 3)
        assert owners.tolist() == [0, 0, 0, 1, 1, 2, 2]

    @given(st.integers(0, 200), st.integers(1, 16))
    def test_property_cyclic_owner_is_mod(self, n, p):
        owners = CyclicPolicy().assign(n, p)
        assert np.array_equal(owners, np.arange(n) % p)

    @given(st.integers(0, 200), st.integers(1, 16))
    def test_property_block_owners_nondecreasing(self, n, p):
        owners = BlockPolicy().assign(n, p)
        assert np.all(np.diff(owners) >= 0)


class TestSplitPolicy:
    def test_parse_figure10(self):
        """The hybrid-cut policy after $threshold resolution."""
        policy = SplitPolicy.parse("{>=, 200},{<, 200}")
        assert policy.num_outputs == 2
        routes = policy.route(np.array([500, 3, 200, 199]))
        assert routes.tolist() == [0, 1, 0, 1]

    def test_all_comparisons(self):
        """Each operator routes matches to output 0, the catch-all to output 1."""
        values = np.array([4, 5, 6])
        for op, expected in [
            (">", [1, 1, 0]),
            (">=", [1, 0, 0]),
            ("<", [0, 1, 1]),
            ("<=", [0, 0, 1]),
            ("==", [1, 0, 1]),
            ("!=", [0, 1, 0]),
        ]:
            policy = SplitPolicy.parse(f"{{{op}, 5}},{{!=, -999999}}")
            assert policy.route(values).tolist() == expected, op

    def test_first_match_wins(self):
        policy = SplitPolicy.parse("{>=, 0},{>=, 10}")
        assert policy.route(np.array([50])).tolist() == [0]

    def test_unmatched_entry_raises(self):
        policy = SplitPolicy.parse("{>=, 10}")
        with pytest.raises(PolicyError, match="no split condition"):
            policy.route(np.array([5]))

    def test_parse_garbage(self):
        with pytest.raises(PolicyError, match="parse"):
            SplitPolicy.parse("high or low")

    def test_parse_unresolved_variable(self):
        with pytest.raises(PolicyError, match="numeric"):
            SplitPolicy.parse("{>=, $threshold}")

    def test_bad_comparison(self):
        from repro.policies import SplitCondition

        with pytest.raises(PolicyError):
            SplitCondition("~", 1.0)

    @given(
        st.lists(st.integers(-1000, 1000), min_size=1, max_size=100),
        st.integers(-500, 500),
    )
    def test_property_threshold_binary_split_partitions_data(self, keys, threshold):
        policy = SplitPolicy.parse(f"{{>=, {threshold}}},{{<, {threshold}}}")
        arr = np.array(keys)
        routes = policy.route(arr)
        assert np.all((arr[routes == 0] >= threshold))
        assert np.all((arr[routes == 1] < threshold))
        assert len(routes) == len(keys)
