"""ChunkedDataset: budget-bounded iteration over binary and text inputs."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.errors import FormatError
from repro.formats.binary import read_binary, write_binary
from repro.formats.records import BLAST_INDEX_SCHEMA, EDGE_LIST_SCHEMA
from repro.formats.text import read_text_array, write_text
from repro.ooc.budget import MemoryBudget
from repro.ooc.chunked import ChunkedDataset, iter_dataset_chunks


def make_blast_file(path, n, seed=7):
    rng = np.random.default_rng(seed)
    arr = np.zeros(n, dtype=BLAST_INDEX_SCHEMA.dtype)
    for f in BLAST_INDEX_SCHEMA.field_names:
        arr[f] = rng.integers(0, 1 << 20, n)
    write_binary(path, arr, BLAST_INDEX_SCHEMA, header=b"\0" * 32)
    return arr


def make_edge_file(path, n, seed=11, blank_every=0):
    rng = np.random.default_rng(seed)
    rows = [
        (int(a), int(b))
        for a, b in zip(rng.integers(0, 500, n), rng.integers(0, 500, n))
    ]
    if blank_every:
        with open(path, "w") as fh:
            for i, row in enumerate(rows):
                fh.write(f"{row[0]}\t{row[1]}\n")
                if (i + 1) % blank_every == 0:
                    fh.write("\n")  # blank lines must not shift record indexes
    else:
        write_text(path, rows, EDGE_LIST_SCHEMA)
    return rows


class TestBinary:
    def test_matches_full_read(self, tmp_path):
        path = str(tmp_path / "blast.bin")
        arr = make_blast_file(path, 257)
        data = ChunkedDataset(path, BLAST_INDEX_SCHEMA, MemoryBudget("4KB"))
        assert len(data) == 257
        assert data.nbytes == arr.nbytes
        assert not data.is_packed
        assert np.array_equal(data.materialize().records, read_binary(path, BLAST_INDEX_SCHEMA))

    def test_chunks_are_budget_sized_and_cover_the_file(self, tmp_path):
        path = str(tmp_path / "blast.bin")
        arr = make_blast_file(path, 100)
        budget = MemoryBudget("1KB", chunk_fraction=0.25)
        data = ChunkedDataset(path, BLAST_INDEX_SCHEMA, budget)
        chunks = list(data.chunks())
        expected = budget.chunk_records(BLAST_INDEX_SCHEMA.itemsize)
        assert all(isinstance(c, Dataset) for c in chunks)
        assert all(len(c) <= expected for c in chunks)
        assert sum(len(c) for c in chunks) == 100
        assert np.array_equal(np.concatenate([c.records for c in chunks]), arr)

    def test_slice_view_and_read_rows(self, tmp_path):
        path = str(tmp_path / "blast.bin")
        arr = make_blast_file(path, 64)
        data = ChunkedDataset(path, BLAST_INDEX_SCHEMA, MemoryBudget("1KB"))
        view = data.slice_view(10, 20)
        assert len(view) == 20
        assert np.array_equal(view.materialize().records, arr[10:30])
        # nested views compose offsets
        inner = view.slice_view(5, 4)
        assert np.array_equal(inner.read_rows(0, 4), arr[15:19])
        assert len(view.read_rows(3, 0)) == 0

    def test_out_of_range_access_raises(self, tmp_path):
        path = str(tmp_path / "blast.bin")
        make_blast_file(path, 16)
        data = ChunkedDataset(path, BLAST_INDEX_SCHEMA, MemoryBudget("1KB"))
        with pytest.raises(FormatError):
            data.slice_view(10, 10)
        with pytest.raises(FormatError):
            data.read_rows(12, 8)

    def test_truncated_file_is_rejected(self, tmp_path):
        path = str(tmp_path / "blast.bin")
        make_blast_file(path, 16)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:-3])  # no longer a whole number of records
        with pytest.raises(FormatError):
            ChunkedDataset(path, BLAST_INDEX_SCHEMA, MemoryBudget("1KB"))

    def test_column_matches_materialized_field(self, tmp_path):
        path = str(tmp_path / "blast.bin")
        arr = make_blast_file(path, 90)
        data = ChunkedDataset(path, BLAST_INDEX_SCHEMA, MemoryBudget("512"))
        assert np.array_equal(data.column("seq_size"), arr["seq_size"])


class TestText:
    @pytest.mark.parametrize("blank_every", [0, 7])
    def test_matches_full_read(self, tmp_path, blank_every):
        path = str(tmp_path / "edges.txt")
        make_edge_file(path, 203, blank_every=blank_every)
        full = read_text_array(path, EDGE_LIST_SCHEMA)
        data = ChunkedDataset(path, EDGE_LIST_SCHEMA, MemoryBudget("1KB"))
        assert len(data) == 203
        assert np.array_equal(data.materialize().records, full)
        chunks = list(data.chunks())
        assert len(chunks) > 1  # budget small enough to force several chunks
        assert np.array_equal(np.concatenate([c.records for c in chunks]), full)

    def test_random_access_uses_the_offset_index(self, tmp_path):
        path = str(tmp_path / "edges.txt")
        make_edge_file(path, 150)
        full = read_text_array(path, EDGE_LIST_SCHEMA)
        data = ChunkedDataset(path, EDGE_LIST_SCHEMA, MemoryBudget("256"))
        for start, length in [(0, 5), (37, 11), (149, 1), (60, 90)]:
            assert np.array_equal(data.read_rows(start, length), full[start : start + length])

    def test_slice_view_shares_the_index(self, tmp_path):
        path = str(tmp_path / "edges.txt")
        make_edge_file(path, 80)
        full = read_text_array(path, EDGE_LIST_SCHEMA)
        data = ChunkedDataset(path, EDGE_LIST_SCHEMA, MemoryBudget("256"))
        view = data.slice_view(33, 40)
        assert view._text_index is data._text_index
        assert np.array_equal(view.materialize().records, full[33:73])


class TestIterDatasetChunks:
    def test_in_memory_dataset_is_sliced(self, tmp_path):
        path = str(tmp_path / "blast.bin")
        arr = make_blast_file(path, 50)
        ds = Dataset(schema=BLAST_INDEX_SCHEMA, records=arr)
        chunks = list(iter_dataset_chunks(ds, 7))
        assert [len(c) for c in chunks] == [7] * 7 + [1]
        assert np.array_equal(np.concatenate([c.records for c in chunks]), arr)

    def test_chunked_dataset_streams_its_own_chunks(self, tmp_path):
        path = str(tmp_path / "blast.bin")
        arr = make_blast_file(path, 50)
        data = ChunkedDataset(path, BLAST_INDEX_SCHEMA, MemoryBudget("512"))
        chunks = list(iter_dataset_chunks(data, 999))  # arg ignored for chunked
        assert all(len(c) <= data.chunk_records for c in chunks)
        assert np.array_equal(np.concatenate([c.records for c in chunks]), arr)
