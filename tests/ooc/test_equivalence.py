"""The out-of-core guarantee: a memory budget never changes the answer.

Both case-study workflows (BLAST sort-based partitioning, PowerLyra-style
hybrid-cut) must produce bit-identical partitions with and without a
memory budget, across rank counts and backends, including budgets small
enough that sorts and shuffles genuinely go through spill run files.  A
chaos run with spilling must recover from checkpointed job prefixes, and
a run without a budget must never import ``repro.ooc`` at all.
"""

import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro import PaPar
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.fault import FaultSchedule, MemoryCheckpointStore, RetryPolicy
from repro.formats import BLAST_INDEX_SCHEMA, EDGE_LIST_SCHEMA

RANKS = (1, 4, 8)
BUDGETS = ("1MB", "64KB")

RETRY = RetryPolicy(max_attempts=8, base_delay_s=0.01, jitter=0.5)
GRACE = 0.5


def blast_data(n=8192):
    # 16 B/record -> 128 KiB: over a 64KB budget at 1 rank
    rng = np.random.default_rng(7)
    arr = np.zeros(n, dtype=BLAST_INDEX_SCHEMA.dtype)
    arr["seq_start"] = np.arange(n)
    arr["seq_size"] = rng.integers(10, 800, n)
    arr["desc_start"] = np.arange(n)
    arr["desc_size"] = 40
    return Dataset.from_array(BLAST_INDEX_SCHEMA, arr)


def hybrid_data(n=40_000):
    # 16 B/record -> 625 KiB: over a 64KB budget even split across 8 ranks
    rng = np.random.default_rng(11)
    edges = sorted(
        {
            (int(s), int(t))
            for s, t in zip(
                rng.integers(0, 4000, n), rng.zipf(1.8, size=n) % 600
            )
        }
    )
    return Dataset.from_rows(EDGE_LIST_SCHEMA, edges)


CASES = {
    "blast": dict(
        workflow=BLAST_WORKFLOW_XML,
        args={"input_path": "/in", "output_path": "/out", "num_partitions": 6},
        data=blast_data,
    ),
    "hybrid": dict(
        workflow=HYBRID_CUT_WORKFLOW_XML,
        args={"input_file": "/in", "output_path": "/out",
              "num_partitions": 5, "threshold": 6},
        data=hybrid_data,
    ),
}

_DATA: dict = {}
_BASELINES: dict = {}


def make_papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


def case_data(case):
    if case not in _DATA:
        _DATA[case] = CASES[case]["data"]()
    return _DATA[case]


def run_case(papar, case, backend, ranks, budget=None, **kwargs):
    return papar.run(
        CASES[case]["workflow"], CASES[case]["args"], data=case_data(case),
        backend=backend, num_ranks=ranks, memory_budget=budget, **kwargs,
    )


def baseline_rows(papar, case, backend, ranks):
    key = (case, backend, ranks)
    if key not in _BASELINES:
        result = run_case(papar, case, backend, ranks)
        assert "spill" not in result.extra["perf"]  # no budget, no spill block
        _BASELINES[key] = [p.rows() for p in result.partitions]
    return _BASELINES[key]


class TestBudgetedRunsAreBitIdentical:
    @pytest.mark.parametrize("budget", BUDGETS)
    @pytest.mark.parametrize("ranks", RANKS)
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_mpi_matrix(self, case, ranks, budget):
        papar = make_papar()
        result = run_case(papar, case, "mpi", ranks, budget)
        assert [p.rows() for p in result.partitions] == baseline_rows(
            papar, case, "mpi", ranks
        )

    @pytest.mark.parametrize("budget", BUDGETS)
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_mapreduce_backend(self, case, budget):
        papar = make_papar()
        result = run_case(papar, case, "mapreduce", 4, budget)
        assert [p.rows() for p in result.partitions] == baseline_rows(
            papar, case, "mapreduce", 4
        )

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_serial_backend(self, case):
        papar = make_papar()
        result = run_case(papar, case, "serial", 1, "64KB")
        assert [p.rows() for p in result.partitions] == baseline_rows(
            papar, case, "serial", 1
        )


class TestSpillReallyHappens:
    """Guard against a vacuous matrix: tight budgets must actually spill."""

    def test_blast_spills_at_one_rank(self):
        result = run_case(make_papar(), "blast", "mpi", 1, "64KB")
        spill = result.extra["perf"]["spill"]
        assert spill["runs_written"] > 0
        assert spill["spilled_records"] > 0
        assert spill["spilled_bytes"] > 0
        assert spill["max_merge_fanin"] >= 2

    def test_hybrid_spills_at_eight_ranks(self):
        result = run_case(make_papar(), "hybrid", "mpi", 8, "64KB")
        spill = result.extra["perf"]["spill"]
        # the hybrid path spills through shuffle run files (no k-way merge,
        # so the fan-in gauge stays 0 — that one belongs to the sort path)
        assert spill["runs_written"] > 0
        assert spill["spilled_bytes"] > 0

    def test_roomy_budget_does_not_spill(self):
        # 1MB comfortably holds the 128 KiB blast input: budgeted paths run
        # but the spill decision must keep everything in memory
        result = run_case(make_papar(), "blast", "mpi", 4, "1MB")
        assert "spill" not in result.extra["perf"]

    def test_mapreduce_spills_too(self):
        result = run_case(make_papar(), "blast", "mapreduce", 1, "64KB")
        assert result.extra["perf"]["spill"]["runs_written"] > 0


class TestChaosWithSpilling:
    """Faults + budget: recovery resumes from checkpointed run manifests."""

    @pytest.mark.parametrize("seed", [0, 3, 7, 12, 19])
    def test_seeded_chaos_recovers_bit_identically(self, seed):
        papar = make_papar()
        ranks = RANKS[seed % len(RANKS)]
        plan = papar.plan(CASES["blast"]["workflow"], CASES["blast"]["args"])
        schedule = FaultSchedule.random(seed, size=ranks, num_jobs=len(plan.jobs))
        result = papar.run(
            plan, data=case_data("blast"), backend="mpi", num_ranks=ranks,
            memory_budget="64KB", faults=schedule,
            checkpoint=MemoryCheckpointStore(), retry=RETRY,
            chaos_seed=seed, deadlock_grace=GRACE,
        )
        assert [p.rows() for p in result.partitions] == baseline_rows(
            papar, "blast", "mpi", ranks
        )
        assert result.extra["fault"]["attempts"] <= RETRY.max_attempts

    def test_crash_resumes_past_checkpointed_spill_job(self):
        """Job 0 spills and commits; the crash at job 1 must resume past it,
        and the committed checkpoint must carry the job's run manifests."""
        papar = make_papar()
        plan = papar.plan(CASES["blast"]["workflow"], CASES["blast"]["args"])
        store = MemoryCheckpointStore()
        result = papar.run(
            plan, data=case_data("blast"), backend="mpi", num_ranks=1,
            memory_budget="64KB", faults="crash:rank=0,job=1,when=before",
            checkpoint=store, retry=RETRY, deadlock_grace=GRACE,
        )
        assert [p.rows() for p in result.partitions] == baseline_rows(
            papar, "blast", "mpi", 1
        )
        report = result.extra["fault"]
        assert report["attempts"] == 2
        assert report["recovered_jobs"] == [plan.jobs[0].op_id]
        assert result.extra["perf"]["spill"]["runs_written"] > 0
        manifests = [
            m
            for key in store.keys()
            for m in store.load(key).get("ooc", {}).get("manifests", [])
        ]
        assert manifests, "no checkpoint recorded any run-file manifest"
        assert all("path" in m and "num_records" in m for m in manifests)


ZERO_IMPORT_RUN = textwrap.dedent(
    """
    import sys

    import numpy as np

    from repro import PaPar
    from repro.config import BLAST_INPUT_XML
    from repro.config.examples import BLAST_WORKFLOW_XML
    from repro.core.dataset import Dataset
    from repro.formats import BLAST_INDEX_SCHEMA

    papar = PaPar()
    papar.register_input(BLAST_INPUT_XML)
    rows = [(i, 40 + i, i, 40) for i in range(60)]
    data = Dataset.from_rows(BLAST_INDEX_SCHEMA, rows)
    args = {"input_path": "/in", "output_path": "/out", "num_partitions": 3}
    for backend in ("serial", "mpi", "mapreduce"):
        papar.run(BLAST_WORKFLOW_XML, args, data=data, backend=backend,
                  num_ranks=1 if backend == "serial" else 4)
    leaked = sorted(m for m in sys.modules if m.startswith("repro.ooc"))
    if leaked:
        print("LEAKED:", leaked)
        sys.exit(1)
    print("CLEAN")
    """
)


def test_budget_free_runs_never_import_the_ooc_package():
    """The in-memory fast path must not even import ``repro.ooc``."""
    proc = subprocess.run(
        [sys.executable, "-c", ZERO_IMPORT_RUN],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "CLEAN" in proc.stdout
