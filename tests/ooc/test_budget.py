"""MemoryBudget: spec parsing, accounting, and chunk sizing."""

import pytest

from repro.ooc.budget import (
    MemoryBudget,
    MemoryBudgetError,
    format_budget,
    parse_memory_budget,
)


class TestParseMemoryBudget:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("64MB", 64 * 1024 * 1024),
            ("64mb", 64 * 1024 * 1024),
            ("64 MiB", 64 * 1024 * 1024),
            ("1GB", 1024**3),
            ("1.5KB", 1536),
            ("512", 512),
            ("2k", 2048),
            (4096, 4096),
            (4096.0, 4096),
        ],
    )
    def test_valid_specs(self, spec, expected):
        assert parse_memory_budget(spec) == expected

    @pytest.mark.parametrize(
        "spec", ["", "banana", "-1MB", "0", "12XB", None, True, [64]]
    )
    def test_invalid_specs(self, spec):
        with pytest.raises(MemoryBudgetError):
            parse_memory_budget(spec)

    def test_format_budget_round_trips_the_units(self):
        assert format_budget(64 * 1024 * 1024) == "64MB"
        assert parse_memory_budget(format_budget(1536)) == 1536
        assert parse_memory_budget(format_budget(64 * 1024)) == 64 * 1024


class TestMemoryBudget:
    def test_limit_coerces_string_specs(self):
        assert MemoryBudget("2MB").limit == 2 * 1024 * 1024

    def test_coerce_passthrough_and_none(self):
        b = MemoryBudget(1024)
        assert MemoryBudget.coerce(b) is b
        assert MemoryBudget.coerce(None) is None
        assert MemoryBudget.coerce("1KB").limit == 1024

    def test_reserve_release_tracks_peak(self):
        b = MemoryBudget(1000)
        b.reserve(400)
        b.reserve(500)
        assert b.current == 900
        assert b.peak == 900
        b.release(500)
        b.reserve(100)
        assert b.current == 500
        assert b.peak == 900

    def test_invalid_chunk_fraction_raises(self):
        with pytest.raises(MemoryBudgetError):
            MemoryBudget(100, chunk_fraction=0.0)
        with pytest.raises(MemoryBudgetError):
            MemoryBudget(100, chunk_fraction=1.5)

    def test_chunk_sizing(self):
        b = MemoryBudget(1024, chunk_fraction=0.25)
        assert b.chunk_bytes == 256
        assert b.chunk_records(16) == 16
        # never zero, even for records wider than the chunk
        assert b.chunk_records(10_000) == 1

    def test_exceeds(self):
        b = MemoryBudget(1024)
        assert not b.exceeds(1024)
        assert b.exceeds(1025)
