"""Run files: framed columnar layout, crc32 integrity, spill stats."""

import numpy as np
import pytest

from repro.ooc.runfile import (
    RunCorruptionError,
    RunFileError,
    RunReader,
    RunWriter,
    SpillStats,
    read_run,
)

DT = np.dtype([("a", "<i8"), ("b", "<i4")])


def make_values(n, seed=0):
    rng = np.random.default_rng(seed)
    out = np.zeros(n, dtype=DT)
    out["a"] = rng.integers(0, 1000, n)
    out["b"] = rng.integers(-50, 50, n)
    return out


class TestRoundTrip:
    def test_values_only(self, tmp_path):
        path = str(tmp_path / "r.run")
        writer = RunWriter(path, DT, source=3)
        chunks = [make_values(10, 1), make_values(3, 2), make_values(7, 3)]
        for c in chunks:
            writer.append(c)
        manifest = writer.close()
        assert manifest.num_records == 20
        assert manifest.frames == 3
        assert manifest.source == 3

        frames = list(RunReader(path).frames())
        assert len(frames) == 3
        for frame, expected in zip(frames, chunks):
            assert np.array_equal(frame.values, expected)
            assert frame.keys is None

    def test_keys_and_tags_ride_along(self, tmp_path):
        path = str(tmp_path / "r.run")
        writer = RunWriter(path, DT, key_dtype=np.dtype(np.int64))
        values = make_values(5)
        keys = np.arange(5, dtype=np.int64) * 7
        writer.append(values, keys=keys, tag=42)
        writer.close()
        (frame,) = list(RunReader(path).frames())
        assert frame.tag == 42
        assert np.array_equal(frame.keys, keys)
        assert np.array_equal(frame.values, values)

    def test_read_run_replays_append_order(self, tmp_path):
        path = str(tmp_path / "r.run")
        writer = RunWriter(path, DT)
        a, b = make_values(4, 4), make_values(6, 5)
        writer.append(a)
        writer.append(b)
        writer.close()
        frames = read_run(path)
        assert np.array_equal(
            np.concatenate([f.values for f in frames]), np.concatenate([a, b])
        )

    def test_manifest_as_dict_is_checkpointable(self, tmp_path):
        import json

        path = str(tmp_path / "r.run")
        writer = RunWriter(path, DT)
        writer.append(make_values(5))
        manifest = writer.close()
        d = manifest.as_dict()
        assert d["path"] == path
        assert d["num_records"] == 5
        json.dumps(d)  # must be JSON-serializable for disk checkpoints


class TestCorruption:
    def test_flipped_payload_byte_is_detected(self, tmp_path):
        path = str(tmp_path / "r.run")
        writer = RunWriter(path, DT)
        writer.append(make_values(16))
        writer.close()
        raw = bytearray(open(path, "rb").read())
        raw[-3] ^= 0xFF  # payload byte of the last frame
        open(path, "wb").write(bytes(raw))
        with pytest.raises(RunCorruptionError):
            list(RunReader(path).frames())

    def test_truncated_file_is_detected(self, tmp_path):
        path = str(tmp_path / "r.run")
        writer = RunWriter(path, DT)
        writer.append(make_values(16))
        writer.close()
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:-5])
        with pytest.raises(RunFileError):
            list(RunReader(path).frames())

    def test_bad_magic_is_rejected(self, tmp_path):
        path = str(tmp_path / "r.run")
        open(path, "wb").write(b'{"magic": "other", "version": 1}\n')
        with pytest.raises(RunFileError):
            RunReader(path)


class TestSpillStats:
    def test_record_and_merge_fold_into_a_dict(self, tmp_path):
        stats = SpillStats()
        path = str(tmp_path / "r.run")
        writer = RunWriter(path, DT)
        writer.append(make_values(8))
        manifest = writer.close()
        stats.record_run(manifest)
        stats.record_merge(5)
        stats.record_merge(3)
        d = stats.as_dict()
        assert d["runs_written"] == 1
        assert d["spilled_records"] == 8
        assert d["spilled_bytes"] == manifest.nbytes
        assert d["max_merge_fanin"] == 5
        assert stats.manifests == [manifest]
