"""SpillableShuffle and OOCContext: drain order, counters, manifest log."""

import numpy as np

from repro.mapreduce.columnar import PerfCounters
from repro.ooc.budget import MemoryBudget
from repro.ooc.spill import (
    OOCContext,
    SpillableShuffle,
    concat_manifest_values,
    drain_frames,
)

DT = np.dtype([("v", "<i8")])


def vals(*xs):
    return np.array([(x,) for x in xs], dtype=DT)


def make_ctx(tmp_path, rank=0):
    return OOCContext(MemoryBudget("1KB"), str(tmp_path), rank=rank)


class TestOOCContext:
    def test_run_paths_are_unique_and_rank_scoped(self, tmp_path):
        ctx = make_ctx(tmp_path, rank=3)
        a, b = ctx.new_run_path("sort"), ctx.new_run_path("shuffle")
        assert a != b
        assert "rank003" in a and str(tmp_path) in a

    def test_should_spill_tracks_budget(self, tmp_path):
        ctx = make_ctx(tmp_path)
        assert not ctx.should_spill(1024)
        assert ctx.should_spill(1025)

    def test_manifest_mark_slices_per_job(self, tmp_path):
        ctx = make_ctx(tmp_path)
        shuffle = SpillableShuffle(ctx, 1, DT)
        shuffle.append(0, vals(1, 2))
        shuffle.finish()
        mark = ctx.manifest_mark()
        assert mark == 1
        assert ctx.manifests_since(mark) == []
        shuffle.append(0, vals(3))
        shuffle.finish()
        since = ctx.manifests_since(mark)
        assert len(since) == 1
        assert since[0]["num_records"] == 1
        # full log still intact
        assert len(ctx.manifests_since(0)) == 2

    def test_fold_into_perf_counters(self, tmp_path):
        ctx = make_ctx(tmp_path)
        shuffle = SpillableShuffle(ctx, 2, DT)
        shuffle.append(0, vals(1, 2, 3))
        shuffle.append(1, vals(4))
        shuffle.finish()
        ctx.stats.record_merge(4)
        perf = PerfCounters()
        ctx.fold_into(perf)
        spill = perf.summary()["spill"]
        assert spill["runs_written"] == 2
        assert spill["spilled_records"] == 4
        assert spill["max_merge_fanin"] == 4
        assert spill["spilled_bytes"] > 0


class TestSpillableShuffle:
    def test_empty_destinations_yield_none(self, tmp_path):
        ctx = make_ctx(tmp_path)
        shuffle = SpillableShuffle(ctx, 3, DT)
        shuffle.append(1, vals(7))
        manifests = shuffle.finish()
        assert manifests[0] is None and manifests[2] is None
        assert manifests[1].num_records == 1

    def test_append_order_replays_per_destination(self, tmp_path):
        ctx = make_ctx(tmp_path)
        shuffle = SpillableShuffle(ctx, 2, DT)
        shuffle.append(0, vals(1, 2))
        shuffle.append(1, vals(10))
        shuffle.append(0, vals(3))
        manifests = shuffle.finish()
        dest0 = concat_manifest_values([manifests[0]], DT)
        assert np.array_equal(dest0, vals(1, 2, 3))
        dest1 = concat_manifest_values([manifests[1]], DT)
        assert np.array_equal(dest1, vals(10))

    def test_keys_and_tags_survive_the_round_trip(self, tmp_path):
        ctx = make_ctx(tmp_path)
        shuffle = SpillableShuffle(ctx, 1, DT, key_dtype=np.dtype(np.int64))
        shuffle.append(0, vals(5, 6), keys=np.array([50, 60]), tag=9)
        (manifest,) = shuffle.finish()
        (frame,) = list(drain_frames([manifest]))
        assert frame.tag == 9
        assert np.array_equal(frame.keys, np.array([50, 60]))

    def test_drain_order_is_source_rank_order(self, tmp_path):
        # two senders, one receiver: receiver must see rank 0 before rank 1,
        # mirroring the in-memory alltoall + concat
        ctx0, ctx1 = make_ctx(tmp_path, rank=0), make_ctx(tmp_path, rank=1)
        s0 = SpillableShuffle(ctx0, 1, DT)
        s1 = SpillableShuffle(ctx1, 1, DT)
        s0.append(0, vals(1, 2))
        s1.append(0, vals(3, 4))
        (m0,), (m1,) = s0.finish(), s1.finish()
        received = concat_manifest_values([m0, m1], DT)
        assert np.array_equal(received, vals(1, 2, 3, 4))
        # a None slot (sender with nothing for us) is skipped cleanly
        received = concat_manifest_values([None, m1], DT)
        assert np.array_equal(received, vals(3, 4))

    def test_finish_resets_for_reuse(self, tmp_path):
        ctx = make_ctx(tmp_path)
        shuffle = SpillableShuffle(ctx, 1, DT)
        shuffle.append(0, vals(1))
        first = shuffle.finish()
        second = shuffle.finish()
        assert first[0] is not None
        assert second == [None]

    def test_concat_empty_manifests(self):
        out = concat_manifest_values([None, None], DT)
        assert out.dtype == DT and len(out) == 0
