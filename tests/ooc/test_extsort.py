"""External merge sort: equivalence with the in-memory stable sort."""

import numpy as np
import pytest

from repro.ooc.budget import MemoryBudget
from repro.ooc.extsort import (
    ExternalSorter,
    external_sort_chunks,
    merge_run_frames,
    sort_key_array,
)
from repro.ooc.spill import OOCContext

DT = np.dtype([("key", "<i8"), ("payload", "<i4")])


def make_records(n, seed=0, key_range=50):
    rng = np.random.default_rng(seed)
    out = np.zeros(n, dtype=DT)
    out["key"] = rng.integers(0, key_range, n)  # narrow range -> many ties
    out["payload"] = np.arange(n)  # input ordinal, to observe stability
    return out


def chunked(arr, size):
    for pos in range(0, len(arr), size):
        chunk = arr[pos : pos + size]
        yield chunk["key"].copy(), chunk.copy()


def reference_sort(arr, ascending=True):
    keys = sort_key_array(arr["key"], ascending)
    return arr[np.argsort(keys, kind="stable")]


def make_ctx(tmp_path, budget="1KB", max_fanin=8):
    return OOCContext(MemoryBudget(budget), str(tmp_path), max_fanin=max_fanin)


class TestSortKeyArray:
    def test_descending_negates_instead_of_reversing(self):
        col = np.array([3, 1, 3, 2], dtype=np.int64)
        asc = sort_key_array(col, True)
        desc = sort_key_array(col, False)
        assert np.array_equal(asc, col)
        assert np.array_equal(desc, -col)

    def test_unsigned_keys_widen_before_negation(self):
        col = np.array([0, 2**31 + 5], dtype=np.uint32)
        desc = sort_key_array(col, False)
        assert desc.dtype == np.int64
        assert desc[1] < desc[0]


class TestExternalSorter:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 1000])
    def test_matches_in_memory_stable_sort(self, tmp_path, chunk_size):
        arr = make_records(500, seed=1)
        ctx = make_ctx(tmp_path)
        sorter = external_sort_chunks(chunked(arr, chunk_size), ctx, DT)
        assert np.array_equal(sorter.sorted_values(), reference_sort(arr))

    def test_descending_matches_negated_key_sort(self, tmp_path):
        arr = make_records(300, seed=2)
        ctx = make_ctx(tmp_path)
        keys = sort_key_array(arr["key"], ascending=False)
        sorter = ExternalSorter(ctx, DT)
        for pos in range(0, len(arr), 37):
            sorter.add_chunk(keys[pos : pos + 37], arr[pos : pos + 37])
        assert np.array_equal(sorter.sorted_values(), reference_sort(arr, ascending=False))

    def test_stability_across_runs(self, tmp_path):
        # all-equal keys: output must replay input order exactly
        arr = make_records(200, seed=3, key_range=1)
        ctx = make_ctx(tmp_path)
        sorter = external_sort_chunks(chunked(arr, 13), ctx, DT)
        assert np.array_equal(sorter.sorted_values()["payload"], arr["payload"])

    def test_multi_pass_merge_when_runs_exceed_fanin(self, tmp_path):
        arr = make_records(600, seed=4)
        ctx = make_ctx(tmp_path, max_fanin=3)
        # chunk 20 -> 30 initial runs >> fan-in 3, forcing merge passes
        sorter = external_sort_chunks(chunked(arr, 20), ctx, DT, max_fanin=3)
        assert len(sorter.runs) == 30
        result = sorter.sorted_values()
        assert np.array_equal(result, reference_sort(arr))
        stats = ctx.stats.as_dict()
        assert stats["max_merge_fanin"] == 3
        assert stats["runs_written"] > 30  # intermediate merged runs counted too

    def test_empty_input(self, tmp_path):
        ctx = make_ctx(tmp_path)
        sorter = ExternalSorter(ctx, DT)
        assert len(sorter.sorted_values()) == 0
        assert list(sorter.merged_frames()) == []

    def test_single_run_streams_verbatim(self, tmp_path):
        arr = make_records(40, seed=5)
        ctx = make_ctx(tmp_path, budget="1MB")  # one chunk, one run
        sorter = external_sort_chunks(chunked(arr, 1000), ctx, DT)
        assert len(sorter.runs) == 1
        assert np.array_equal(sorter.sorted_values(), reference_sort(arr))
        assert ctx.stats.as_dict()["max_merge_fanin"] == 0  # no merge happened

    def test_frames_bounded_by_budget(self, tmp_path):
        arr = make_records(400, seed=6)
        ctx = make_ctx(tmp_path, budget="1KB")
        sorter = external_sort_chunks(chunked(arr, 50), ctx, DT)
        for frame in sorter.merged_frames():
            assert len(frame) <= sorter.frame_records


class TestMergeRunFrames:
    def test_merges_presorted_runs_with_tie_break_by_ordinal(self, tmp_path):
        ctx = make_ctx(tmp_path)
        sorter = ExternalSorter(ctx, DT)
        a = make_records(30, seed=7, key_range=5)
        b = make_records(30, seed=8, key_range=5)
        b["payload"] += 1000  # distinguish origin
        sorter.add_sorted_chunk(*_sorted(a))
        sorter.add_sorted_chunk(*_sorted(b))
        merged = np.concatenate(
            [f.values for f in merge_run_frames(sorter.runs, 16)]
        )
        # equal keys: run 0's records must precede run 1's
        for key in np.unique(merged["key"]):
            payloads = merged["payload"][merged["key"] == key]
            from_a = payloads < 1000
            assert not np.any(~from_a[:-1] & from_a[1:])  # no a after b

    def test_empty_manifest_list(self):
        assert list(merge_run_frames([], 16)) == []


def _sorted(arr):
    order = np.argsort(arr["key"], kind="stable")
    return arr["key"][order], arr[order]
