"""The Chrome trace-event exporter: loadable format, one track per rank."""

import json

import pytest

from repro.obs import DRIVER_PID, Recorder, chrome_trace, write_chrome_trace


def seeded_recorder():
    rec = Recorder()
    rec.record_span("plan:wf", "plan", rank=None, start_virtual=0.0, end_virtual=4.0)
    rec.record_span("sort", "job", rank=0, start_virtual=0.0, end_virtual=2.0,
                    attrs={"job_index": 0})
    rec.record_span("sort", "job", rank=1, start_virtual=0.0, end_virtual=3.0)
    rec.instant("crash", category="fault", rank=1, ts_virtual=1.5)
    return rec


class TestChromeTrace:
    def test_top_level_shape(self):
        doc = chrome_trace(seeded_recorder())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["time_basis"] == "virtual"

    def test_spans_become_complete_events_in_microseconds(self):
        doc = chrome_trace(seeded_recorder())
        x = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(x) == 3
        rank0 = next(e for e in x if e["pid"] == 0)
        assert rank0["name"] == "sort"
        assert rank0["cat"] == "job"
        assert rank0["ts"] == 0.0
        assert rank0["dur"] == pytest.approx(2.0 * 1e6)
        assert rank0["args"] == {"job_index": 0}

    def test_one_process_per_rank_and_a_driver_track(self):
        doc = chrome_trace(seeded_recorder())
        x_pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] in ("X", "i")}
        assert x_pids == {0, 1, DRIVER_PID}
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["pid"]: e["args"]["name"] for e in meta
                 if e["name"] == "process_name"}
        assert names == {0: "rank 0", 1: "rank 1", DRIVER_PID: "driver"}
        sort_index = {e["pid"]: e["args"]["sort_index"] for e in meta
                      if e["name"] == "process_sort_index"}
        assert sort_index[DRIVER_PID] == -1  # driver sorts above the ranks

    def test_instants_are_process_scoped(self):
        doc = chrome_trace(seeded_recorder())
        inst = next(e for e in doc["traceEvents"] if e["ph"] == "i")
        assert inst["name"] == "crash"
        assert inst["s"] == "p"
        assert inst["pid"] == 1
        assert inst["ts"] == pytest.approx(1.5 * 1e6)

    def test_wall_fallback_when_no_virtual_time(self):
        rec = Recorder()
        with rec.span("only-wall"):
            pass
        doc = chrome_trace(rec)
        assert doc["otherData"]["time_basis"] == "wall"
        assert doc["traceEvents"][0]["dur"] >= 0.0

    def test_explicit_basis_validated(self):
        with pytest.raises(ValueError, match="time_basis"):
            chrome_trace(Recorder(), time_basis="simulated")

    def test_written_file_is_plain_json(self, tmp_path):
        path = tmp_path / "trace.json"
        returned = write_chrome_trace(str(path), seeded_recorder())
        loaded = json.loads(path.read_text())
        assert loaded == returned
        assert len(loaded["traceEvents"]) > 0
