"""Adapters folding Tracer, PerfCounters and fault reports into a recorder."""

from repro.cluster.trace import Tracer
from repro.obs import Recorder, record_fault_report, record_perf, record_tracer


class TestRecordTracer:
    def test_events_become_spans_and_marks_become_instants(self):
        tracer = Tracer(size=2)
        tracer.record(0, "compute", 0.0, 1.0, label="sort")
        tracer.record(0, "send", 1.0, 1.2, label="->1", nbytes=64)
        tracer.record(1, "recv", 1.0, 1.2, label="<-0", nbytes=64)
        tracer.mark(1, 1.5, "done")
        rec = Recorder()
        record_tracer(rec, tracer)
        assert [(s.name, s.category, s.rank) for s in rec.spans] == [
            ("sort", "compute", 0),
            ("->1", "send", 0),
            ("<-0", "recv", 1),
        ]
        assert rec.spans[1].attrs == {"nbytes": 64}
        assert rec.instants[0].name == "done"
        assert rec.instants[0].ts_virtual == 1.5
        assert rec.counter_total("trace.sent_bytes") == 64
        assert rec.counter_total("trace.recv_bytes") == 64

    def test_parent_handle_adopts_trace_spans(self):
        tracer = Tracer(size=1)
        tracer.record(0, "compute", 0.0, 1.0)
        rec = Recorder()
        with rec.span("root") as root:
            record_tracer(rec, tracer, parent=root)
        assert rec.spans[0].parent_id == root.span_id


class TestRecordPerf:
    def test_summary_becomes_counters_and_gauges(self):
        rec = Recorder()
        record_perf(rec, {
            "records_moved": 10, "bytes_moved": 800,
            "phases": {"sort": {"wall_s": 0.5, "virtual_s": 1.5}},
        })
        assert rec.counter_total("shuffle.records_moved") == 10
        assert rec.gauges[("perf.phase.sort.wall_s", None)] == 0.5
        assert rec.gauges[("perf.phase.sort.virtual_s", None)] == 1.5

    def test_none_summary_is_a_noop(self):
        rec = Recorder()
        record_perf(rec, None)
        assert not rec.counters


class TestRecordFaultReport:
    def test_report_becomes_counters_and_instants(self):
        rec = Recorder()
        record_fault_report(rec, {
            "attempts": 3,
            "backoff_virtual_s": 0.75,
            "recovered_jobs": ["sort"],
            "failures": ["attempt 1: MPIError", "attempt 2: MPIError"],
            "injected": {
                "counts": {"crash": 2},
                "fired": ["crash rank=1 job=0"],
            },
        })
        assert rec.counter_total("fault.attempts") == 3
        assert rec.counter_total("fault.backoff_virtual_s") == 0.75
        assert rec.counter_total("fault.recovered_jobs") == 1
        assert rec.counter_total("fault.injected.crash") == 2
        # failures are recorded live by the recovery loop, not replayed here
        assert [i.category for i in rec.instants] == ["fault.injected"]

    def test_none_report_is_a_noop(self):
        rec = Recorder()
        record_fault_report(rec, None)
        assert not rec.counters and not rec.instants
