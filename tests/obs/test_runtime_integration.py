"""Recorder threading through the runtimes: span trees, counters, faults."""

import numpy as np
import pytest

from repro import PaPar
from repro.cluster import INFINIBAND_QDR, ClusterModel
from repro.config import BLAST_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.fault import MemoryCheckpointStore, RetryPolicy
from repro.formats import BLAST_INDEX_SCHEMA
from repro.obs import Recorder

ARGS = {"input_path": "/in", "output_path": "/out", "num_partitions": 4}


@pytest.fixture
def papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    return p


def blast_data(n=300):
    rng = np.random.default_rng(17)
    rows = [(i, int(s), i, 40) for i, s in enumerate(rng.integers(10, 800, size=n))]
    return Dataset.from_rows(BLAST_INDEX_SCHEMA, rows)


def cluster(ranks):
    return ClusterModel(num_nodes=ranks // 2, ranks_per_node=2,
                        network=INFINIBAND_QDR)


class TestSpanTree:
    @pytest.mark.parametrize("backend", ["mpi", "mapreduce"])
    def test_plan_root_with_per_rank_job_children(self, papar, backend):
        rec = Recorder()
        result = papar.run(BLAST_WORKFLOW_XML, ARGS, data=blast_data(),
                           backend=backend, num_ranks=4, cluster=cluster(4),
                           recorder=rec)
        assert result.observability is rec
        roots = [s for s in rec.spans if s.category == "plan"]
        assert len(roots) == 1
        root = roots[0]
        assert root.rank is None
        assert root.attrs == {"backend": backend, "ranks": 4}
        jobs = [s for s in rec.spans if s.category == "job"]
        # 2 jobs (sort, distr) on each of 4 ranks, all children of the root
        assert len(jobs) == 8
        assert {s.parent_id for s in jobs} == {root.span_id}
        assert sorted({s.rank for s in jobs}) == [0, 1, 2, 3]
        assert {s.attrs["operator"] for s in jobs} == {"sort", "distribute"}

    def test_job_spans_carry_both_clocks(self, papar):
        rec = Recorder()
        papar.run(BLAST_WORKFLOW_XML, ARGS, data=blast_data(), backend="mpi",
                  num_ranks=4, cluster=cluster(4), recorder=rec)
        jobs = [s for s in rec.spans if s.category == "job"]
        assert all(s.virtual_duration > 0.0 for s in jobs)
        assert all(s.wall_duration >= 0.0 for s in jobs)
        assert rec.makespan_virtual() > 0.0

    def test_virtual_time_zero_without_cluster_model(self, papar):
        rec = Recorder()
        papar.run(BLAST_WORKFLOW_XML, ARGS, data=blast_data(), backend="mpi",
                  num_ranks=2, recorder=rec)
        assert rec.makespan_virtual() == 0.0
        assert rec.makespan_wall() > 0.0

    def test_shuffle_spans_nest_inside_jobs(self, papar):
        rec = Recorder()
        papar.run(BLAST_WORKFLOW_XML, ARGS, data=blast_data(), backend="mpi",
                  num_ranks=4, cluster=cluster(4), recorder=rec)
        by_id = {s.span_id: s for s in rec.spans}
        shuffles = [s for s in rec.spans if s.category == "shuffle"]
        assert shuffles, "the Distribute job must record shuffle spans"
        for s in shuffles:
            assert by_id[s.parent_id].category == "job"
            assert by_id[s.parent_id].rank == s.rank

    def test_serial_backend_records_driver_side_jobs(self, papar):
        rec = Recorder()
        papar.run(BLAST_WORKFLOW_XML, ARGS, data=blast_data(),
                  backend="serial", recorder=rec)
        jobs = [s for s in rec.spans if s.category == "job"]
        assert [s.name for s in jobs] == ["sort", "distr"]


class TestCountersAndPerf:
    def test_comm_and_idle_counters(self, papar):
        rec = Recorder()
        papar.run(BLAST_WORKFLOW_XML, ARGS, data=blast_data(), backend="mpi",
                  num_ranks=4, cluster=cluster(4), recorder=rec)
        assert rec.counter_total("comm.sent_bytes") > 0
        assert rec.counter_total("comm.sent_messages") > 0
        assert rec.counter_total("compute.virtual_s") > 0.0
        # data skew means somebody waited at a recv or a barrier
        idle = (rec.counter_total("idle.recv_s")
                + rec.counter_total("idle.barrier_s"))
        assert idle > 0.0

    def test_perf_summary_folded_into_gauges(self, papar):
        rec = Recorder()
        papar.run(BLAST_WORKFLOW_XML, ARGS, data=blast_data(),
                  backend="mapreduce", num_ranks=4, cluster=cluster(4),
                  recorder=rec)
        assert rec.counter_total("shuffle.records_moved") > 0
        names = {n for (n, _r) in rec.gauges}
        assert any(n.startswith("perf.phase.") and n.endswith(".virtual_s")
                   for n in names)


class TestDeterminism:
    @pytest.mark.parametrize("backend", ["mpi", "mapreduce"])
    def test_virtual_span_tree_identical_across_runs(self, papar, backend):
        """The virtual-time shape of the trace is reproducible; wall time is not."""
        def one_run():
            rec = Recorder()
            papar.run(BLAST_WORKFLOW_XML, ARGS, data=blast_data(),
                      backend=backend, num_ranks=4, cluster=cluster(4),
                      recorder=rec)
            return sorted(
                (s.name, s.category, s.rank, s.start_virtual, s.end_virtual)
                for s in rec.spans
            )

        first = one_run()
        assert first == one_run()


class TestFaultIntegration:
    def test_retry_instants_and_fault_counters(self, papar):
        rec = Recorder()
        result = papar.run(
            BLAST_WORKFLOW_XML, ARGS, data=blast_data(), backend="mpi",
            num_ranks=4, cluster=cluster(4), recorder=rec,
            faults="crash:rank=1,job=0,when=before",
            checkpoint=MemoryCheckpointStore(),
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.01),
            deadlock_grace=30.0,
        )
        fault = result.extra["fault"]
        assert fault["attempts"] >= 2
        retries = [i for i in rec.instants if i.category == "retry"]
        assert len(retries) == fault["attempts"] - 1
        assert rec.counter_total("fault.attempts") == fault["attempts"]
        assert rec.counter_total("fault.injected.crash") >= 1
        fired = [i for i in rec.instants if i.category == "fault.injected"]
        assert fired, "injector firings must land as instants"

    def test_checkpoint_restores_recorded(self, papar):
        # single rank, as in the chaos suite: job 0 is guaranteed committed
        # before the crash at job 1, so the retry must restore it
        rec = Recorder()
        papar.run(
            BLAST_WORKFLOW_XML, ARGS, data=blast_data(), backend="mpi",
            num_ranks=1, recorder=rec,
            cluster=ClusterModel(num_nodes=1, ranks_per_node=1,
                                 network=INFINIBAND_QDR),
            faults="crash:rank=0,job=1,when=before",
            checkpoint=MemoryCheckpointStore(),
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.01),
            deadlock_grace=30.0,
        )
        restored = [i for i in rec.instants if i.category == "checkpoint"]
        assert restored, "resume-from-checkpoint must record restore instants"
        assert all(i.name.startswith("restored:") for i in restored)
