"""The terminal Gantt / critical-path renderer."""

from repro.obs import Recorder, print_timeline, render_timeline


def seeded_recorder():
    rec = Recorder()
    rec.record_span("plan:wf", "plan", rank=None, start_virtual=0.0, end_virtual=4.0)
    for rank, (sort_end, distr_end) in enumerate([(2.0, 3.0), (2.5, 4.0)]):
        rec.record_span("sort", "job", rank=rank, start_virtual=0.0,
                        end_virtual=sort_end, attrs={"operator": "sort"})
        rec.record_span("distr", "job", rank=rank, start_virtual=sort_end,
                        end_virtual=distr_end, attrs={"operator": "distribute"})
    rec.count("idle.barrier_s", 0.5, rank=0)
    return rec


class TestRenderTimeline:
    def test_one_gantt_bar_per_rank(self):
        text = render_timeline(seeded_recorder())
        assert "timeline (virtual time, makespan 4.000000s)" in text
        assert "rank   0 |" in text
        assert "rank   1 |" in text
        assert "legend:" in text

    def test_glyphs_reflect_operators(self):
        lines = render_timeline(seeded_recorder()).splitlines()
        rank0 = next(line for line in lines if line.startswith("  rank   0"))
        bar = rank0.split("|")[1]
        assert "s" in bar and "d" in bar

    def test_busiest_and_critical_path(self):
        text = render_timeline(seeded_recorder())
        # rank 1 works 4.0s of a 4.0s makespan and finishes last
        assert "busiest rank: 1" in text
        assert "critical path (rank 1, finishes last):" in text
        assert "62.5% of makespan" in text  # sort: 2.5 / 4.0
        assert "37.5% of makespan" in text  # distr: 1.5 / 4.0

    def test_idle_line_includes_barrier_share(self):
        text = render_timeline(seeded_recorder())
        assert "blocked at barriers" in text

    def test_top_spans_listed(self):
        text = render_timeline(seeded_recorder())
        assert "top spans:" in text
        assert "job:sort" in text

    def test_empty_recorder_degrades_gracefully(self):
        text = render_timeline(Recorder())
        assert "(no rank spans recorded)" in text

    def test_print_timeline_noop_without_recorder(self, capsys):
        print_timeline(None)
        assert capsys.readouterr().out == ""
        print_timeline(seeded_recorder())
        assert "timeline" in capsys.readouterr().out
