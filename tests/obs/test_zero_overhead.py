"""The zero-overhead guarantee: no recorder, no ``repro.obs`` import.

The observability layer must cost nothing when not enabled.  The strongest
cheap proof is that the package is never even imported on the plain path —
every hook in the runtimes, communicator, engine and fault runner is behind
an ``if recorder is not None`` test, and all obs imports are lazy.  A fresh
subprocess makes the check immune to whatever this test session imported.
"""

import subprocess
import sys
import textwrap

PLAIN_RUN = textwrap.dedent(
    """
    import sys

    import numpy as np

    from repro import PaPar
    from repro.cluster import ClusterModel, INFINIBAND_QDR
    from repro.config import BLAST_INPUT_XML
    from repro.config.examples import BLAST_WORKFLOW_XML
    from repro.core.dataset import Dataset
    from repro.fault import MemoryCheckpointStore, RetryPolicy
    from repro.formats import BLAST_INDEX_SCHEMA

    papar = PaPar()
    papar.register_input(BLAST_INPUT_XML)
    rows = [(i, 40 + i, i, 40) for i in range(60)]
    data = Dataset.from_rows(BLAST_INDEX_SCHEMA, rows)
    args = {"input_path": "/in", "output_path": "/out", "num_partitions": 3}
    cluster = ClusterModel(num_nodes=2, ranks_per_node=2, network=INFINIBAND_QDR)
    for backend in ("serial", "mpi", "mapreduce"):
        papar.run(BLAST_WORKFLOW_XML, args, data=data, backend=backend,
                  num_ranks=1 if backend == "serial" else 4,
                  cluster=None if backend == "serial" else cluster)
    # fault-tolerant path too: the recovery loop takes recorder=None
    papar.run(BLAST_WORKFLOW_XML, args, data=data, backend="mpi", num_ranks=4,
              cluster=cluster, faults="crash:rank=1,job=0,when=before",
              checkpoint=MemoryCheckpointStore(),
              retry=RetryPolicy(max_attempts=4, base_delay_s=0.01),
              deadlock_grace=30.0)
    leaked = sorted(m for m in sys.modules if m.startswith("repro.obs"))
    if leaked:
        print("LEAKED:", leaked)
        sys.exit(1)
    print("CLEAN")
    """
)


def test_plain_runs_never_import_the_obs_package():
    proc = subprocess.run(
        [sys.executable, "-c", PLAIN_RUN],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "CLEAN" in proc.stdout
