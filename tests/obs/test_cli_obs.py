"""The CLI observability flags: --trace / --metrics / --timeline round-trip."""

import json

import pytest

from repro.blast import generate_index
from repro.cli import main
from repro.config import BLAST_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML
from repro.formats import BLAST_INDEX_SCHEMA, write_binary
from repro.obs import METRICS_VERSION


@pytest.fixture
def config_files(tmp_path):
    index = generate_index("env_nr", num_sequences=200, seed=2)
    data_path = tmp_path / "db.index"
    write_binary(data_path, index, BLAST_INDEX_SCHEMA, header=b"\x00" * 32)
    input_cfg = tmp_path / "blast_db.xml"
    input_cfg.write_text(BLAST_INPUT_XML)
    wf_cfg = tmp_path / "workflow.xml"
    wf_cfg.write_text(BLAST_WORKFLOW_XML)
    return input_cfg, wf_cfg, data_path


def base_args(config_files, tmp_path):
    input_cfg, wf_cfg, data_path = config_files
    return [
        "run",
        "--input-config", str(input_cfg),
        "--workflow", str(wf_cfg),
        "--arg", f"input_path={data_path}",
        "--arg", f"output_path={tmp_path / 'out'}",
        "--arg", "num_partitions=3",
        "--backend", "mpi", "--ranks", "2",
    ]


class TestCLIObservability:
    def test_trace_and_metrics_round_trip(self, config_files, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        rc = main(base_args(config_files, tmp_path)
                  + ["--trace", str(trace), "--metrics", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"wrote trace {trace}" in out
        assert f"wrote metrics {metrics}" in out

        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} <= {"X", "i", "M"}
        assert {e["pid"] for e in events if e["ph"] == "X" and e["cat"] == "job"} == {0, 1}
        assert all(e["dur"] >= 0 for e in events if e["ph"] == "X")

        m = json.loads(metrics.read_text())
        assert m["schema"] == "papar.metrics"
        assert m["version"] == METRICS_VERSION
        assert m["counters"]["comm.sent_bytes"]["total"] > 0
        assert m["run"]["backend"] == "mpi"
        assert m["run"]["ranks"] == 2
        assert m["run"]["partitions"] == 3

    def test_timeline_printed(self, config_files, tmp_path, capsys):
        rc = main(base_args(config_files, tmp_path) + ["--timeline"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "timeline (" in out
        assert "critical path" in out
        assert "legend:" in out

    def test_flags_off_means_no_artifacts_mentioned(self, config_files, tmp_path, capsys):
        rc = main(base_args(config_files, tmp_path))
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote trace" not in out
        assert "timeline (" not in out
