"""Span recording: nesting, cross-thread parenting, metrics, thread safety."""

import threading

import pytest

from repro.obs import Recorder, maybe_span


class FakeClock:
    """A settable stand-in for the simulated VirtualClock."""

    def __init__(self, now=0.0):
        self.now = now


class TestSpanNesting:
    def test_implicit_nesting_follows_the_thread_stack(self):
        rec = Recorder()
        with rec.span("outer") as outer:
            with rec.span("inner"):
                pass
        inner, done_outer = rec.spans
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert done_outer.parent_id is None

    def test_siblings_share_a_parent(self):
        rec = Recorder()
        with rec.span("root") as root:
            with rec.span("a"):
                pass
            with rec.span("b"):
                pass
        a, b, _ = rec.spans
        assert a.parent_id == b.parent_id == root.span_id

    def test_explicit_parent_overrides_the_stack(self):
        rec = Recorder()
        with rec.span("root") as root:
            with rec.span("unrelated"):
                with rec.span("child", parent=root):
                    pass
        child = next(s for s in rec.spans if s.name == "child")
        assert child.parent_id == root.span_id

    def test_parent_accepts_a_raw_span_id(self):
        rec = Recorder()
        with rec.span("root") as root:
            pass
        with rec.span("late", parent=root.span_id):
            pass
        assert rec.spans[1].parent_id == root.span_id

    def test_handle_annotate_lands_in_attrs(self):
        rec = Recorder()
        with rec.span("job", attrs={"a": 1}) as h:
            h.annotate(records=42)
        assert rec.spans[0].attrs == {"a": 1, "records": 42}

    def test_span_survives_an_exception(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with rec.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in rec.spans] == ["doomed"]

    def test_virtual_clock_read_at_enter_and_exit(self):
        rec = Recorder()
        clock = FakeClock(1.0)
        with rec.span("phase", clock=clock):
            clock.now = 3.5
        span = rec.spans[0]
        assert span.start_virtual == 1.0
        assert span.end_virtual == 3.5
        assert span.virtual_duration == 2.5
        assert span.wall_duration >= 0.0

    def test_no_clock_means_zero_virtual_time(self):
        rec = Recorder()
        with rec.span("wall-only"):
            pass
        assert rec.spans[0].virtual_duration == 0.0
        assert rec.makespan_virtual() == 0.0


class TestConcurrency:
    def test_rank_threads_keep_independent_stacks(self):
        """Each thread's spans nest among themselves, all under one root."""
        rec = Recorder()
        n_threads, n_spans = 8, 25

        def rank_program(rank, root):
            for i in range(n_spans):
                with rec.span(f"job{i}", rank=rank, parent=root):
                    with rec.span(f"phase{i}", rank=rank):
                        pass

        with rec.span("plan") as root:
            threads = [
                threading.Thread(target=rank_program, args=(r, root))
                for r in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert len(rec.spans) == n_threads * n_spans * 2 + 1
        ids = [s.span_id for s in rec.spans]
        assert len(set(ids)) == len(ids)
        by_id = {s.span_id: s for s in rec.spans}
        for rank in range(n_threads):
            spans = rec.rank_spans(rank)
            assert len(spans) == n_spans * 2
            for s in spans:
                if s.name.startswith("phase"):
                    # nested under this rank's own job span, never another rank's
                    assert by_id[s.parent_id].rank == rank
                else:
                    assert s.parent_id == root.span_id

    def test_concurrent_counters_do_not_lose_increments(self):
        rec = Recorder()

        def bump(rank):
            for _ in range(1000):
                rec.count("hits", 1, rank=rank)

        threads = [threading.Thread(target=bump, args=(r,)) for r in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.counter_total("hits") == 6000
        assert rec.counters[("hits", 3)] == 1000


class TestMetricsAndQueries:
    def test_counters_split_by_rank_and_aggregate(self):
        rec = Recorder()
        rec.count("bytes", 10, rank=0)
        rec.count("bytes", 5, rank=1)
        rec.count("bytes", 2)  # global slot
        assert rec.counter_total("bytes") == 17

    def test_gauge_keeps_the_last_value(self):
        rec = Recorder()
        rec.gauge("load", 1.0, rank=0)
        rec.gauge("load", 7.0, rank=0)
        assert rec.gauges[("load", 0)] == 7.0

    def test_histogram_collects_samples(self):
        rec = Recorder()
        for v in (3, 1, 2):
            rec.observe("lat", v)
        assert rec.histograms["lat"] == [3.0, 1.0, 2.0]

    def test_instant_uses_clock_or_explicit_timestamp(self):
        rec = Recorder()
        rec.instant("fired", category="fault", rank=2, clock=FakeClock(4.0))
        rec.instant("marked", ts_virtual=9.0)
        assert rec.instants[0].ts_virtual == 4.0
        assert rec.instants[0].rank == 2
        assert rec.instants[1].ts_virtual == 9.0

    def test_record_span_appends_pre_measured_intervals(self):
        rec = Recorder()
        rec.record_span("compute", "trace", rank=1,
                        start_virtual=0.5, end_virtual=1.5)
        span = rec.spans[0]
        assert (span.rank, span.virtual_duration) == (1, 1.0)

    def test_makespans_and_ranks(self):
        rec = Recorder()
        rec.record_span("a", "job", rank=0, start_virtual=0.0, end_virtual=2.0)
        rec.record_span("b", "job", rank=3, start_virtual=1.0, end_virtual=5.0)
        assert rec.makespan_virtual() == 5.0
        assert rec.ranks() == [0, 3]
        assert [s.name for s in rec.rank_spans(3)] == ["b"]


class TestMaybeSpan:
    def test_none_recorder_is_a_noop_context(self):
        with maybe_span(None, "anything"):
            pass  # must not raise

    def test_real_recorder_records(self):
        rec = Recorder()
        with maybe_span(rec, "real"):
            pass
        assert rec.spans[0].name == "real"
