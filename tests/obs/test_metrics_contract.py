"""The versioned metrics JSON contract (schema "papar.metrics", version 1).

These tests pin the document layout: a version bump is required before any
key here may change shape.
"""

import json

import pytest

from repro.obs import (
    METRICS_VERSION,
    SERVE_METRICS_VERSION,
    Recorder,
    metrics_json,
    record_rebalance,
    record_serve_request,
    serve_metrics_json,
    write_metrics,
)


def seeded_recorder():
    rec = Recorder()
    rec.record_span("plan:wf", "plan", rank=None, start_virtual=0.0, end_virtual=4.0)
    rec.record_span("sort", "job", rank=0, start_virtual=0.0, end_virtual=2.5)
    rec.record_span("distr", "job", rank=0, start_virtual=2.5, end_virtual=4.0)
    rec.instant("crash", category="fault", rank=0, ts_virtual=1.0)
    rec.count("comm.sent_bytes", 100, rank=0)
    rec.count("comm.sent_bytes", 50, rank=1)
    rec.gauge("perf.phase.sort.wall_s", 0.25)
    for v in (1.0, 2.0, 3.0, 4.0):
        rec.observe("shuffle_ms", v)
    return rec


class TestMetricsContract:
    def test_envelope(self):
        doc = metrics_json(seeded_recorder())
        assert doc["schema"] == "papar.metrics"
        assert doc["version"] == METRICS_VERSION == 1
        assert set(doc) == {
            "schema", "version", "time_basis", "counters",
            "gauges", "histograms", "spans", "run",
        }

    def test_counters_carry_total_and_per_rank(self):
        doc = metrics_json(seeded_recorder())
        sent = doc["counters"]["comm.sent_bytes"]
        assert sent["total"] == 150
        assert sent["per_rank"] == {"0": 100, "1": 50}

    def test_gauges_mirror_the_counter_shape(self):
        doc = metrics_json(seeded_recorder())
        assert doc["gauges"]["perf.phase.sort.wall_s"]["total"] == 0.25

    def test_histogram_summary_statistics(self):
        doc = metrics_json(seeded_recorder())
        h = doc["histograms"]["shuffle_ms"]
        assert h["count"] == 4
        assert (h["min"], h["max"]) == (1.0, 4.0)
        assert h["mean"] == pytest.approx(2.5)
        assert h["p50"] == 3.0  # nearest-rank of 4 sorted samples
        assert h["p95"] == 4.0
        assert h["p99"] == 4.0

    def test_span_rollups(self):
        doc = metrics_json(seeded_recorder())
        spans = doc["spans"]
        assert spans["count"] == 3
        assert spans["instants"] == 1
        assert spans["makespan_virtual_s"] == 4.0
        # rank 0's two job spans: 2.5 + 1.5 simulated seconds busy
        assert spans["per_rank_busy_virtual_s"]["0"] == pytest.approx(4.0)

    def test_run_block_passes_through(self):
        doc = metrics_json(seeded_recorder(), run={"backend": "mpi", "ranks": 8})
        assert doc["run"] == {"backend": "mpi", "ranks": 8}
        assert metrics_json(seeded_recorder())["run"] == {}

    def test_time_basis_fallback(self):
        assert metrics_json(seeded_recorder())["time_basis"] == "virtual"
        assert metrics_json(Recorder())["time_basis"] == "wall"

    def test_written_file_round_trips(self, tmp_path):
        path = tmp_path / "metrics.json"
        returned = write_metrics(str(path), seeded_recorder(), run={"ranks": 2})
        assert json.loads(path.read_text()) == returned


def serve_seeded_recorder():
    rec = Recorder()
    record_serve_request(rec, "query")
    record_serve_request(rec, "append", latency_ms=2.0, records=10)
    record_serve_request(rec, "append", latency_ms=6.0, records=30)
    record_serve_request(rec, "append", rejected=True)
    record_rebalance(rec, generation=1, reason="drift", wall_s=0.5, records=40)
    rec.count("serve.snapshots")
    rec.count("serve.coalesced_batches", 3)
    rec.gauge("serve.queue_depth", 2)
    return rec


class TestServeMetricsContract:
    """The "papar.serve" document (version 1): serving-shaped rollups over
    the generic metrics stream.  Layout changes require a version bump."""

    def test_envelope(self):
        doc = serve_metrics_json(serve_seeded_recorder())
        assert doc["schema"] == "papar.serve"
        assert doc["version"] == SERVE_METRICS_VERSION == 1
        assert set(doc) == {
            "schema", "version", "requests", "rejected", "appended_records",
            "coalesced_batches", "rebalances", "snapshots", "queue_depth",
            "append_latency_ms", "server", "metrics",
        }

    def test_per_verb_request_counts(self):
        doc = serve_metrics_json(serve_seeded_recorder())
        assert doc["requests"] == {"query": 1, "append": 3}
        assert doc["rejected"] == 1
        assert doc["appended_records"] == 40
        assert doc["coalesced_batches"] == 3
        assert doc["rebalances"] == 1
        assert doc["snapshots"] == 1
        assert doc["queue_depth"] == 2

    def test_append_latency_distribution(self):
        h = serve_metrics_json(serve_seeded_recorder())["append_latency_ms"]
        assert h["count"] == 2
        assert (h["min"], h["max"]) == (2.0, 6.0)
        assert set(h) == {"count", "min", "max", "mean", "p50", "p95", "p99"}

    def test_empty_recorder_still_has_the_full_shape(self):
        doc = serve_metrics_json(Recorder())
        assert doc["requests"] == {}
        assert doc["append_latency_ms"]["count"] == 0
        assert set(doc["append_latency_ms"]) == {
            "count", "min", "max", "mean", "p50", "p95", "p99",
        }

    def test_server_block_passes_through(self):
        doc = serve_metrics_json(serve_seeded_recorder(),
                                 server={"generation": 4})
        assert doc["server"] == {"generation": 4}

    def test_base_document_is_embedded(self):
        doc = serve_metrics_json(serve_seeded_recorder())
        assert doc["metrics"]["schema"] == "papar.metrics"
        assert "serve.rebalance_wall_s" in doc["metrics"]["histograms"]
