"""Analytic replication estimates vs measured placements."""

import pytest

from repro.errors import PaParError
from repro.graph import edge_cut, generate_powerlaw, hybrid_cut
from repro.graph.replication_theory import (
    expected_random_replication,
    hybrid_low_side_bound,
)


class TestRandomReplicationEstimate:
    @pytest.mark.parametrize("partitions", [4, 8, 16])
    def test_matches_measured_random_placement(self, partitions):
        g = generate_powerlaw(3000, 24000, alpha=2.3, seed=12)
        predicted = expected_random_replication(g, partitions)
        measured = edge_cut(g, partitions).replication_factor()
        assert measured == pytest.approx(predicted, rel=0.05)

    def test_single_partition_is_one(self):
        g = generate_powerlaw(200, 1000, seed=1)
        assert expected_random_replication(g, 1) == pytest.approx(1.0)

    def test_monotone_in_partitions(self):
        g = generate_powerlaw(500, 4000, seed=2)
        values = [expected_random_replication(g, p) for p in (2, 4, 8, 16)]
        assert values == sorted(values)

    def test_validation(self):
        g = generate_powerlaw(50, 200, seed=3)
        with pytest.raises(PaParError):
            expected_random_replication(g, 0)


class TestHybridBound:
    def test_power_law_mostly_low_degree(self):
        g = generate_powerlaw(2000, 16000, alpha=2.2, seed=4)
        assert hybrid_low_side_bound(g, threshold=30) > 0.8

    def test_explains_hybrid_advantage(self):
        """The larger the low-degree fraction, the bigger hybrid's win."""
        g = generate_powerlaw(2000, 16000, alpha=2.2, seed=4)
        low_frac = hybrid_low_side_bound(g, threshold=30)
        hybrid_rf = hybrid_cut(g, 16, threshold=30).replication_factor()
        random_rf = edge_cut(g, 16).replication_factor()
        assert low_frac > 0.5
        assert hybrid_rf < random_rf
