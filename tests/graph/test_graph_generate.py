"""Graph container, synthetic dataset generators, statistics."""

import numpy as np
import pytest

from repro.errors import PaParError
from repro.graph import (
    DATASETS,
    Graph,
    compute_stats,
    count_triangles,
    degree_tail_ratio,
    generate_graph,
    generate_powerlaw,
    is_power_law_like,
)


class TestGraph:
    def test_from_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert g.num_vertices == 3
        assert g.num_edges == 3

    def test_degrees(self):
        g = Graph.from_edges([(0, 1), (2, 1), (1, 0)])
        assert g.in_degrees().tolist() == [1, 2, 0]
        assert g.out_degrees().tolist() == [1, 1, 1]

    def test_dataset_roundtrip(self):
        g = Graph.from_edges([(5, 1), (3, 2)])
        back = Graph.from_dataset(g.to_dataset(), num_vertices=g.num_vertices)
        np.testing.assert_array_equal(back.src, g.src)
        np.testing.assert_array_equal(back.dst, g.dst)

    def test_empty_graph(self):
        g = Graph.from_edges([])
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_invalid_vertices(self):
        with pytest.raises(PaParError):
            Graph.from_edges([(0, 5)], num_vertices=3)
        with pytest.raises(PaParError):
            Graph(np.array([-1]), np.array([0]))

    def test_select(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        sub = g.select(np.array([True, False, True]))
        assert sub.num_edges == 2
        assert sub.num_vertices == g.num_vertices

    def test_adjacency(self):
        g = Graph.from_edges([(0, 1), (0, 1)])  # parallel edges accumulate
        a = g.adjacency()
        assert a[0, 1] == 2.0


class TestGenerators:
    def test_table2_specs(self):
        """The paper's Table II vertex/edge counts."""
        assert DATASETS["google"].vertices == 875_713
        assert DATASETS["google"].edges == 5_105_039
        assert DATASETS["pokec"].vertices == 1_632_803
        assert DATASETS["pokec"].edges == 30_622_564
        assert DATASETS["livejournal"].vertices == 4_847_571
        assert DATASETS["livejournal"].edges == 68_993_773

    @pytest.mark.parametrize("name", ["google", "pokec", "livejournal"])
    def test_scaled_generation_preserves_avg_degree(self, name):
        spec = DATASETS[name]
        g = generate_graph(name, scale=0.005, seed=1)
        # dedup removes some edges; average degree within 40% of the original
        assert g.num_edges / g.num_vertices == pytest.approx(spec.avg_degree, rel=0.4)

    @pytest.mark.parametrize("name", ["google", "pokec", "livejournal"])
    def test_power_law_in_degrees(self, name):
        g = generate_graph(name, scale=0.01, seed=2)
        assert is_power_law_like(g)
        assert degree_tail_ratio(g) > 3.0

    def test_simple_graph(self):
        g = generate_powerlaw(500, 3000, seed=3)
        assert not np.any(g.src == g.dst)  # no self loops
        packed = g.src * g.num_vertices + g.dst
        assert len(np.unique(packed)) == g.num_edges  # no duplicates

    def test_deterministic(self):
        a = generate_powerlaw(200, 800, seed=5)
        b = generate_powerlaw(200, 800, seed=5)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.dst, b.dst)

    def test_different_seeds_differ(self):
        a = generate_powerlaw(200, 800, seed=5)
        b = generate_powerlaw(200, 800, seed=6)
        assert not np.array_equal(a.src, b.src)

    def test_invalid_args(self):
        with pytest.raises(PaParError):
            generate_graph("twitter")
        with pytest.raises(PaParError):
            generate_graph("google", scale=0)
        with pytest.raises(PaParError):
            generate_powerlaw(1, 5)
        with pytest.raises(PaParError):
            generate_powerlaw(10, 5, alpha=0.5)


class TestStats:
    def test_triangle_count_known_graphs(self):
        # a directed 3-cycle is one undirected triangle
        tri = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert count_triangles(tri) == 1
        # K4 has 4 triangles
        k4_edges = [(i, j) for i in range(4) for j in range(4) if i < j]
        assert count_triangles(Graph.from_edges(k4_edges)) == 4
        # a path has none
        assert count_triangles(Graph.from_edges([(0, 1), (1, 2), (2, 3)])) == 0

    def test_reciprocal_edges_not_triangles(self):
        g = Graph.from_edges([(0, 1), (1, 0), (1, 2)])
        assert count_triangles(g) == 0

    def test_triangles_match_networkx(self):
        import networkx as nx

        g = generate_powerlaw(150, 900, seed=7)
        ours = count_triangles(g)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.num_vertices))
        nxg.add_edges_from(zip(g.src.tolist(), g.dst.tolist()))
        theirs = sum(nx.triangles(nxg).values()) // 3
        assert ours == theirs

    def test_compute_stats_row(self):
        g = generate_powerlaw(100, 400, seed=8)
        stats = compute_stats(g, "toy")
        assert stats.vertices == 100
        assert stats.edges == g.num_edges
        assert stats.type == "Directed"
        assert stats.as_row()[0] == "toy"

    def test_power_law_check_rejects_regular(self):
        ring = Graph.from_edges([(i, (i + 1) % 50) for i in range(50)])
        assert not is_power_law_like(ring)
