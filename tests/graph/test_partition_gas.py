"""Partitioning strategies, replication metrics, and the GAS engine."""

import numpy as np
import pytest

from repro.errors import PaParError
from repro.graph import (
    GASEngine,
    PartitionedGraph,
    edge_cut,
    generate_graph,
    generate_powerlaw,
    hybrid_cut,
    pagerank_reference,
    partition_by,
    vertex_cut,
)
from repro.cluster import ClusterModel, ETHERNET_10G, INFINIBAND_QDR


@pytest.fixture(scope="module")
def powerlaw():
    return generate_powerlaw(2000, 16000, alpha=2.2, seed=3)


class TestStrategies:
    def test_every_edge_assigned_once(self, powerlaw):
        for strategy in ("edge-cut", "vertex-cut", "hybrid-cut"):
            pg = partition_by(strategy, powerlaw, 8)
            assert pg.edges_per_partition().sum() == powerlaw.num_edges

    def test_vertex_cut_keeps_in_edges_together(self, powerlaw):
        pg = vertex_cut(powerlaw, 8)
        owners_by_dst = {}
        for d, p in zip(powerlaw.dst.tolist(), pg.edge_owner.tolist()):
            assert owners_by_dst.setdefault(d, p) == p

    def test_hybrid_low_degree_in_edges_together(self, powerlaw):
        threshold = 30
        pg = hybrid_cut(powerlaw, 8, threshold=threshold)
        indeg = powerlaw.in_degrees()
        owners_by_dst = {}
        for d, p in zip(powerlaw.dst.tolist(), pg.edge_owner.tolist()):
            if indeg[d] < threshold:
                assert owners_by_dst.setdefault(d, p) == p

    def test_hybrid_high_degree_spread(self, powerlaw):
        threshold = 30
        pg = hybrid_cut(powerlaw, 8, threshold=threshold)
        indeg = powerlaw.in_degrees()
        hubs = np.flatnonzero(indeg >= max(threshold, 50))
        if len(hubs):
            hub = int(hubs[np.argmax(indeg[hubs])])
            owners = set(pg.edge_owner[powerlaw.dst == hub].tolist())
            assert len(owners) > 1

    def test_hybrid_extremes_match_pure_cuts(self, powerlaw):
        from repro.graph.partition import _hash_assign

        # threshold 0: everything is "high" -> all edges placed by source
        all_high = hybrid_cut(powerlaw, 8, threshold=0)
        np.testing.assert_array_equal(
            all_high.edge_owner, _hash_assign(powerlaw.src, 8)
        )
        # huge threshold: everything is "low" -> pure vertex-cut
        all_low = hybrid_cut(powerlaw, 8, threshold=10**9)
        np.testing.assert_array_equal(all_low.edge_owner, vertex_cut(powerlaw, 8).edge_owner)

    def test_unknown_strategy(self, powerlaw):
        with pytest.raises(PaParError):
            partition_by("spectral", powerlaw, 4)

    def test_invalid_partitioned_graph(self, powerlaw):
        with pytest.raises(PaParError):
            PartitionedGraph(powerlaw, 2, np.zeros(3, dtype=np.int64))
        with pytest.raises(PaParError):
            PartitionedGraph(
                powerlaw, 2, np.full(powerlaw.num_edges, 5, dtype=np.int64)
            )

    def test_cyclic_assigner_deterministic_dealing(self):
        g = generate_powerlaw(100, 500, seed=9)
        pg = vertex_cut(g, 4, assigner="cyclic")
        # distinct targets, ascending, dealt round-robin
        targets = np.unique(g.dst)
        for i, t in enumerate(targets):
            owners = set(pg.edge_owner[g.dst == t].tolist())
            assert owners == {i % 4}


class TestReplication:
    def test_replication_bounds(self, powerlaw):
        for strategy in ("edge-cut", "vertex-cut", "hybrid-cut"):
            pg = partition_by(strategy, powerlaw, 8)
            rf = pg.replication_factor()
            assert 1.0 <= rf <= 8.0

    def test_hybrid_beats_edge_cut_replication(self, powerlaw):
        """The Figure 14 mechanism: hybrid-cut's replication factor is the
        smallest on power-law graphs, edge-cut's the largest."""
        rf = {
            s: partition_by(s, powerlaw, 16, **({"threshold": 30} if s == "hybrid-cut" else {})).replication_factor()
            for s in ("edge-cut", "vertex-cut", "hybrid-cut")
        }
        assert rf["hybrid-cut"] < rf["edge-cut"]
        assert rf["vertex-cut"] < rf["edge-cut"]

    def test_single_partition_no_mirrors(self, powerlaw):
        pg = vertex_cut(powerlaw, 1)
        assert pg.replication_factor() == 1.0
        assert pg.comm_bytes_per_iteration() == 0

    def test_comm_bytes_formula(self, powerlaw):
        pg = hybrid_cut(powerlaw, 8, threshold=30)
        mirrors = int(pg.vertex_replicas().sum()) - powerlaw.num_vertices
        assert pg.comm_bytes_per_iteration(value_bytes=8) == 2 * mirrors * 8


class TestGASEngine:
    def test_pagerank_matches_reference_for_all_cuts(self, powerlaw):
        ref = pagerank_reference(powerlaw, iterations=8)
        for strategy in ("edge-cut", "vertex-cut", "hybrid-cut"):
            pg = partition_by(strategy, powerlaw, 8)
            ranks, report = GASEngine(pg).pagerank(iterations=8)
            np.testing.assert_allclose(ranks, ref, rtol=1e-10)
            assert report.iterations == 8

    def test_pagerank_sums_to_one_ish(self, powerlaw):
        pg = hybrid_cut(powerlaw, 4, threshold=30)
        ranks, _ = GASEngine(pg).pagerank(iterations=20)
        # dangling mass leaks, but ranks stay a proper distribution-ish
        assert 0.5 < ranks.sum() <= 1.0 + 1e-9
        assert (ranks > 0).all()

    def test_connected_components_correct(self):
        # two disjoint triangles plus an isolated vertex
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        g = __import__("repro.graph", fromlist=["Graph"]).Graph.from_edges(
            edges, num_vertices=7
        )
        pg = vertex_cut(g, 3)
        labels, report = GASEngine(pg).connected_components()
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]
        assert labels[6] == 6
        assert report.iterations >= 2

    def test_components_match_networkx(self, powerlaw):
        import networkx as nx

        pg = hybrid_cut(powerlaw, 4, threshold=30)
        labels, _ = GASEngine(pg).connected_components()
        nxg = nx.Graph()
        nxg.add_nodes_from(range(powerlaw.num_vertices))
        nxg.add_edges_from(zip(powerlaw.src.tolist(), powerlaw.dst.tolist()))
        comps = list(nx.connected_components(nxg))
        for comp in comps:
            comp_labels = {int(labels[v]) for v in comp}
            assert len(comp_labels) == 1

    def test_virtual_time_charged_with_cluster(self, powerlaw):
        cluster = ClusterModel(num_nodes=8, ranks_per_node=1, network=ETHERNET_10G)
        pg = hybrid_cut(powerlaw, 8, threshold=30)
        _, report = GASEngine(pg, cluster=cluster).pagerank(iterations=5)
        assert report.elapsed > 0
        assert report.comm_bytes > 0

    def test_hybrid_cut_fastest_modeled_time(self):
        """Figure 14's headline: hybrid-cut executes PageRank fastest."""
        g = generate_graph("google", scale=0.02, seed=4)
        cluster = ClusterModel(num_nodes=8, ranks_per_node=1, network=ETHERNET_10G)
        times = {}
        for strategy in ("edge-cut", "vertex-cut", "hybrid-cut"):
            kwargs = {"threshold": 200} if strategy == "hybrid-cut" else {}
            pg = partition_by(strategy, g, 8, **kwargs)
            _, report = GASEngine(pg, cluster=cluster).pagerank(iterations=10)
            times[strategy] = report.elapsed
        assert times["hybrid-cut"] < times["edge-cut"]
        assert times["hybrid-cut"] <= times["vertex-cut"] * 1.05

    def test_invalid_iterations(self, powerlaw):
        pg = vertex_cut(powerlaw, 2)
        with pytest.raises(PaParError):
            GASEngine(pg).pagerank(iterations=0)

    def test_empty_graph(self):
        from repro.graph import Graph

        g = Graph.from_edges([])
        pg = PartitionedGraph(g, 2, np.empty(0, dtype=np.int64))
        ranks, report = GASEngine(pg).pagerank()
        assert len(ranks) == 0
