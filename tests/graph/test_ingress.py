"""Distributed edge-list ingress."""

import numpy as np
import pytest

from repro.errors import PaParError
from repro.formats import EDGE_LIST_SCHEMA, write_text
from repro.graph import generate_powerlaw
from repro.graph.ingress import load_graph_distributed


@pytest.fixture
def edge_file(tmp_path):
    g = generate_powerlaw(200, 1500, seed=4)
    path = tmp_path / "edges.txt"
    write_text(path, list(zip(g.src.tolist(), g.dst.tolist())), EDGE_LIST_SCHEMA)
    return path, g


class TestDistributedIngress:
    @pytest.mark.parametrize("ranks", [1, 2, 4, 7])
    def test_matches_serial_read(self, edge_file, ranks):
        path, g = edge_file
        loaded = load_graph_distributed(path, num_ranks=ranks)
        np.testing.assert_array_equal(loaded.src, g.src)
        np.testing.assert_array_equal(loaded.dst, g.dst)

    def test_num_vertices_override(self, edge_file):
        path, g = edge_file
        loaded = load_graph_distributed(path, num_ranks=2, num_vertices=500)
        assert loaded.num_vertices == 500

    def test_tiny_file_many_ranks(self, tmp_path):
        path = tmp_path / "tiny.txt"
        write_text(path, [(1, 2)], EDGE_LIST_SCHEMA)
        loaded = load_graph_distributed(path, num_ranks=8)
        assert loaded.num_edges == 1

    def test_validation(self, edge_file):
        path, _ = edge_file
        with pytest.raises(PaParError):
            load_graph_distributed(path, num_ranks=0)


class TestConfigsDirectory:
    """The shipped configs/ files drive the CLI end to end."""

    def test_cli_with_shipped_configs(self, tmp_path):
        from repro.blast import generate_index
        from repro.cli import main
        from repro.formats import BLAST_INDEX_SCHEMA, write_binary

        index = generate_index("env_nr", num_sequences=60, seed=6)
        db_path = tmp_path / "db.index"
        write_binary(db_path, index, BLAST_INDEX_SCHEMA, header=b"\x00" * 32)
        rc = main([
            "run",
            "--input-config", "configs/blast_db.xml",
            "--workflow", "configs/blast_partition.xml",
            "--arg", f"input_path={db_path}",
            "--arg", f"output_path={tmp_path / 'out'}",
            "--arg", "num_partitions=4",
        ])
        assert rc == 0
        assert len(list((tmp_path / "out").iterdir())) == 4

    def test_shipped_configs_parse(self):
        from repro.config import load_input_config, load_workflow_config

        assert load_input_config("configs/blast_db.xml").id == "blast_db"
        assert load_input_config("configs/graph_edge.xml").id == "graph_edge"
        assert load_workflow_config("configs/blast_partition.xml").id == "blast_partition"
        assert load_workflow_config("configs/hybrid_cut.xml").id == "hybrid_cut"
