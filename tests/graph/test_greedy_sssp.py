"""Greedy vertex-cut partitioning and SSSP."""

import numpy as np
import pytest

from repro.errors import PaParError
from repro.graph import Graph, edge_cut, generate_powerlaw, hybrid_cut, vertex_cut
from repro.graph.greedy import greedy_vertex_cut
from repro.graph.sssp import sssp


@pytest.fixture(scope="module")
def powerlaw():
    return generate_powerlaw(1200, 9000, alpha=2.2, seed=8)


class TestGreedyVertexCut:
    def test_every_edge_assigned(self, powerlaw):
        pg = greedy_vertex_cut(powerlaw, 8)
        assert pg.edges_per_partition().sum() == powerlaw.num_edges

    def test_beats_random_edge_placement(self, powerlaw):
        """The PowerGraph result: greedy replication < random replication."""
        greedy_rf = greedy_vertex_cut(powerlaw, 8).replication_factor()
        random_rf = edge_cut(powerlaw, 8).replication_factor()
        assert greedy_rf < random_rf

    def test_reasonable_balance(self, powerlaw):
        pg = greedy_vertex_cut(powerlaw, 8)
        assert pg.edge_balance() < 1.6

    def test_single_partition(self, powerlaw):
        pg = greedy_vertex_cut(powerlaw, 1)
        assert pg.replication_factor() == 1.0

    def test_common_partition_reused(self):
        """Edges sharing endpoints cluster on common partitions (rule 1)."""
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2), (0, 1)])
        pg = greedy_vertex_cut(g, 4)
        # the triangle should not need more than 2 partitions
        assert len(set(pg.edge_owner.tolist())) <= 2

    def test_invalid_partitions(self, powerlaw):
        with pytest.raises(PaParError):
            greedy_vertex_cut(powerlaw, 0)


class TestSSSP:
    def test_matches_networkx(self, powerlaw):
        import networkx as nx

        pg = hybrid_cut(powerlaw, 4, threshold=20)
        dist, report = sssp(pg, source=0)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(powerlaw.num_vertices))
        nxg.add_edges_from(zip(powerlaw.src.tolist(), powerlaw.dst.tolist()))
        expected = nx.single_source_shortest_path_length(nxg, 0)
        for v in range(powerlaw.num_vertices):
            if v in expected:
                assert dist[v] == expected[v], v
            else:
                assert np.isinf(dist[v]), v
        assert report.iterations >= 2

    def test_independent_of_cut(self, powerlaw):
        a, _ = sssp(hybrid_cut(powerlaw, 4, threshold=20), source=3)
        b, _ = sssp(vertex_cut(powerlaw, 7), source=3)
        np.testing.assert_array_equal(a, b)

    def test_weighted(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        weights = np.array([1.0, 1.0, 5.0])
        dist, _ = sssp(vertex_cut(g, 2), source=0, weights=weights)
        assert dist.tolist() == [0.0, 1.0, 2.0]  # via 0->1->2, not 0->2

    def test_unreachable_infinite(self):
        g = Graph.from_edges([(0, 1)], num_vertices=3)
        dist, _ = sssp(vertex_cut(g, 2), source=0)
        assert dist[2] == np.inf

    def test_source_distance_zero(self, powerlaw):
        dist, _ = sssp(vertex_cut(powerlaw, 3), source=42)
        assert dist[42] == 0.0

    def test_validation(self, powerlaw):
        pg = vertex_cut(powerlaw, 2)
        with pytest.raises(PaParError):
            sssp(pg, source=-1)
        with pytest.raises(PaParError):
            sssp(pg, source=0, weights=np.array([1.0]))
        with pytest.raises(PaParError):
            sssp(pg, source=0, weights=-np.ones(powerlaw.num_edges))
