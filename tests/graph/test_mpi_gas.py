"""Distributed PageRank with real MPI message traffic."""

import numpy as np
import pytest

from repro.cluster import ClusterModel, ETHERNET_10G
from repro.errors import PaParError
from repro.graph import GASEngine, generate_powerlaw, hybrid_cut, pagerank_reference, vertex_cut
from repro.graph.mpi_gas import distributed_pagerank


@pytest.fixture(scope="module")
def graph():
    return generate_powerlaw(800, 6000, alpha=2.3, seed=6)


class TestDistributedPageRank:
    def test_matches_reference(self, graph):
        pg = hybrid_cut(graph, 4, threshold=20)
        result = distributed_pagerank(pg, iterations=8)
        ref = pagerank_reference(graph, iterations=8)
        np.testing.assert_allclose(result.ranks, ref, rtol=1e-10)

    def test_matches_serial_gas_engine(self, graph):
        pg = vertex_cut(graph, 3)
        dist = distributed_pagerank(pg, iterations=6)
        serial, _ = GASEngine(pg).pagerank(iterations=6)
        np.testing.assert_allclose(dist.ranks, serial, rtol=1e-12)

    def test_independent_of_cut(self, graph):
        a = distributed_pagerank(hybrid_cut(graph, 4, threshold=10), iterations=5)
        b = distributed_pagerank(vertex_cut(graph, 4), iterations=5)
        np.testing.assert_allclose(a.ranks, b.ranks, rtol=1e-12)

    def test_real_traffic_counted(self, graph):
        pg = hybrid_cut(graph, 4, threshold=20)
        result = distributed_pagerank(pg, iterations=5)
        assert result.bytes_moved > 0

    def test_virtual_time_with_cluster(self, graph):
        cluster = ClusterModel(num_nodes=4, ranks_per_node=1, network=ETHERNET_10G)
        pg = hybrid_cut(graph, 4, threshold=20)
        result = distributed_pagerank(pg, iterations=5, cluster=cluster)
        assert result.elapsed > 0

    def test_cluster_size_mismatch(self, graph):
        cluster = ClusterModel(num_nodes=2, ranks_per_node=1, network=ETHERNET_10G)
        with pytest.raises(PaParError, match="partitions"):
            distributed_pagerank(hybrid_cut(graph, 4, threshold=20), cluster=cluster)

    def test_invalid_iterations(self, graph):
        with pytest.raises(PaParError):
            distributed_pagerank(vertex_cut(graph, 2), iterations=0)
