"""Native PowerLyra baseline: reference hybrid-cut and the Fig 15 time model."""

import numpy as np
import pytest

from repro.errors import PaParError
from repro.graph import (
    DATASETS,
    PartitionerTimeModel,
    generate_powerlaw,
    papar_equivalent_hybrid_cut,
)


class TestReferenceHybridCut:
    def test_partitions_cover_all_edges(self):
        g = generate_powerlaw(300, 2000, seed=2)
        parts = papar_equivalent_hybrid_cut(g, 4, threshold=20)
        total = sum(len(p) for p in parts)
        assert total == g.num_edges
        got = sorted(map(tuple, np.concatenate(parts)[:, :2].tolist()))
        want = sorted(zip(g.src.tolist(), g.dst.tolist()))
        assert got == want

    def test_indegree_attribute_correct(self):
        g = generate_powerlaw(300, 2000, seed=2)
        indeg = g.in_degrees()
        parts = papar_equivalent_hybrid_cut(g, 4, threshold=20)
        for p in parts:
            for s, d, k in p.tolist():
                assert k == indeg[d]

    def test_low_degree_groups_whole(self):
        g = generate_powerlaw(300, 2000, seed=2)
        threshold = 20
        indeg = g.in_degrees()
        parts = papar_equivalent_hybrid_cut(g, 4, threshold=threshold)
        owner = {}
        for i, p in enumerate(parts):
            for _, d, _ in p.tolist():
                if indeg[d] < threshold:
                    assert owner.setdefault(d, i) == i

    def test_empty_and_single_partition(self):
        from repro.graph import Graph

        empty = Graph.from_edges([])
        assert [len(p) for p in papar_equivalent_hybrid_cut(empty, 3, 5)] == [0, 0, 0]
        g = generate_powerlaw(50, 200, seed=1)
        (single,) = papar_equivalent_hybrid_cut(g, 1, threshold=5)
        assert len(single) == g.num_edges

    def test_invalid_partitions(self):
        g = generate_powerlaw(50, 200, seed=1)
        with pytest.raises(PaParError):
            papar_equivalent_hybrid_cut(g, 0, threshold=5)


class TestFigure15TimeModel:
    """The paper's qualitative claims, evaluated at full Table II scale."""

    model = PartitionerTimeModel()

    def times(self, name, nodes):
        spec = DATASETS[name]
        return (
            self.model.papar_time(spec.vertices, spec.edges, nodes),
            self.model.native_time(spec.vertices, spec.edges, nodes),
        )

    def test_powerlyra_wins_google_and_pokec_16_nodes(self):
        for name in ("google", "pokec"):
            papar, native = self.times(name, 16)
            assert native < papar, name

    def test_papar_wins_livejournal_16_nodes(self):
        papar, native = self.times("livejournal", 16)
        assert papar < native
        # the paper reports ~1.2x
        assert 1.05 < native / papar < 1.6

    def test_papar_scales_to_16_nodes_on_all_graphs(self):
        for name in DATASETS:
            spec = DATASETS[name]
            t1 = self.model.papar_time(spec.vertices, spec.edges, 1)
            t16 = self.model.papar_time(spec.vertices, spec.edges, 16)
            assert t16 < t1, name

    def test_powerlyra_does_not_scale_on_google(self):
        """No meaningful speedup at 16 nodes (paper: 'cannot scale')."""
        spec = DATASETS["google"]
        t1 = self.model.native_time(spec.vertices, spec.edges, 1)
        t16 = self.model.native_time(spec.vertices, spec.edges, 16)
        assert t1 / t16 < 1.3

    def test_powerlyra_scales_on_livejournal(self):
        spec = DATASETS["livejournal"]
        t1 = self.model.native_time(spec.vertices, spec.edges, 1)
        t16 = self.model.native_time(spec.vertices, spec.edges, 16)
        assert t16 < t1 / 2

    def test_monotone_in_graph_size(self):
        small = self.model.papar_time(10**5, 10**6, 8)
        big = self.model.papar_time(10**6, 10**7, 8)
        assert big > small
