"""Tests for the Markdown link checker, plus the repo-wide link gate.

``tools/check_links.py`` is what the CI docs job runs; the first test
here runs it over the real repository so a broken cross-reference fails
tier-1 locally too.  The rest exercise the checker itself on synthetic
trees, so we know a green run means "all links valid" and not "checker
matched nothing".
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
CHECKER = REPO_ROOT / "tools" / "check_links.py"

sys.path.insert(0, str(CHECKER.parent))

from check_links import check_repo, github_slug, heading_anchors  # noqa: E402


def test_repo_markdown_links_are_valid():
    """The real repo has no broken relative links or anchors."""
    errors = check_repo(REPO_ROOT)
    assert errors == [], "\n".join(errors)


def test_checker_scans_a_meaningful_number_of_links(capsys):
    """Guard against silent no-op: the repo docs contain many links."""
    proc = subprocess.run(
        [sys.executable, str(CHECKER), "--verbose"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    # e.g. "checked 51 relative links across 16 files (...)"
    words = proc.stdout.split()
    assert int(words[1]) >= 20, proc.stdout


def test_detects_missing_file(tmp_path):
    """A link to a file that does not exist is reported with its line."""
    (tmp_path / "a.md").write_text("see [other](missing.md)\n")
    errors = check_repo(tmp_path)
    assert len(errors) == 1
    assert "a.md:1" in errors[0] and "missing.md" in errors[0]


def test_detects_broken_anchor_cross_file(tmp_path):
    """Anchors are validated against the target file's headings."""
    (tmp_path / "a.md").write_text(
        "[ok](b.md#real-section)\n[bad](b.md#no-such-section)\n"
    )
    (tmp_path / "b.md").write_text("# Real section\n")
    errors = check_repo(tmp_path)
    assert len(errors) == 1
    assert "no-such-section" in errors[0]


def test_detects_broken_anchor_same_file(tmp_path):
    """Bare '#anchor' links resolve within the containing file."""
    (tmp_path / "a.md").write_text("# Top\n\n[up](#top)\n[bad](#nope)\n")
    errors = check_repo(tmp_path)
    assert len(errors) == 1
    assert "#nope" in errors[0]


def test_ignores_links_in_code(tmp_path):
    """Fenced blocks and inline code spans are not link sources."""
    (tmp_path / "a.md").write_text(
        "```\n[not a link](nowhere.md)\n```\n"
        "and `[inline](gone.md)` neither\n"
    )
    assert check_repo(tmp_path) == []


def test_external_links_are_skipped(tmp_path):
    """http(s)/mailto links are never resolved against the filesystem."""
    (tmp_path / "a.md").write_text(
        "[site](https://example.com/x) [mail](mailto:a@b.c)\n"
    )
    assert check_repo(tmp_path) == []


def test_github_slugging_rules(tmp_path):
    """Slugs: lowercase, punctuation dropped, spaces to dashes, dedup -N."""
    seen = {}
    assert github_slug("Reading the critical path", seen) == (
        "reading-the-critical-path"
    )
    assert github_slug("What's `code` here?", {}) == "whats-code-here"
    dup = {}
    assert github_slug("Setup", dup) == "setup"
    assert github_slug("Setup", dup) == "setup-1"

    md = tmp_path / "h.md"
    md.write_text("# One Two\n\n## `spans` & metrics\n")
    assert heading_anchors(md) == {"one-two", "spans--metrics"}
