"""Docstring-coverage audit mirroring the ruff pydocstyle CI rules.

The ruff config in ``pyproject.toml`` selects D100/D104 (module and
package docstrings) for all of ``src/`` and D101/D102/D103 (class,
method, function docstrings) for the audited packages ``repro.obs``,
``repro.fault``, ``repro.analysis`` and ``repro.ooc``.  ruff only runs in CI; this test
enforces the same contract locally with ``ast``, so a missing docstring
fails fast in the tier-1 suite rather than only on the lint job.

Scope notes that mirror pydocstyle semantics:

* names starting with ``_`` are private and exempt (D1xx applies to
  public objects only; dunders are D105/D107, which are not selected);
* functions nested inside other functions are exempt from D103;
* methods of public classes need docstrings (D102) even one-liners.
"""

import ast
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC = REPO_ROOT / "src"

# Packages whose public defs were audited for one-line docstrings.
DEF_AUDITED = ("repro/obs", "repro/fault", "repro/analysis", "repro/ooc",
               "repro/serve")


def _iter_src_files():
    """Yield every Python file under src/."""
    return sorted(SRC.rglob("*.py"))


def _public_defs(tree):
    """Yield (node, qualname) for public defs/classes, skipping nested defs."""

    def walk(node, prefix, inside_function):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child.name.startswith("_"):
                    continue
                if inside_function:
                    continue  # nested defs are exempt from D103
                yield child, f"{prefix}{child.name}"
                yield from walk(child, f"{prefix}{child.name}.", True)
            elif isinstance(child, ast.ClassDef):
                if child.name.startswith("_"):
                    continue
                yield child, f"{prefix}{child.name}"
                yield from walk(child, f"{prefix}{child.name}.", inside_function)
            else:
                yield from walk(child, prefix, inside_function)

    yield from walk(tree, "", False)


def test_every_src_module_has_a_docstring():
    """D100/D104: every module and package under src/ documents itself."""
    missing = []
    for path in _iter_src_files():
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if not ast.get_docstring(tree):
            missing.append(str(path.relative_to(REPO_ROOT)))
    assert not missing, f"modules without docstrings: {missing}"


def test_audited_packages_document_every_public_def():
    """D101-D103: public defs in obs/, fault/, analysis/, ooc/ have docstrings."""
    missing = []
    for path in _iter_src_files():
        rel = path.relative_to(SRC).as_posix()
        if not rel.startswith(DEF_AUDITED):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node, qualname in _public_defs(tree):
            if not ast.get_docstring(node):
                missing.append(f"{rel}:{node.lineno} {qualname}")
    assert not missing, f"public defs without docstrings: {missing}"


def test_audit_actually_scans_the_audited_packages():
    """Guard against the audit silently scanning nothing after a rename."""
    counts = {pkg: 0 for pkg in DEF_AUDITED}
    for path in _iter_src_files():
        rel = path.relative_to(SRC).as_posix()
        for pkg in DEF_AUDITED:
            if rel.startswith(pkg):
                counts[pkg] += 1
    assert all(n >= 2 for n in counts.values()), counts
