"""The process backend is a drop-in: bit-identical partitions across the
full backend matrix for both case-study workflows, composing with memory
budgets — and zero import cost for everyone who does not select it."""

import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro import PaPar
from repro.blast import build_index, generate_database
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.formats import BLAST_INDEX_SCHEMA
from repro.graph import generate_graph


@pytest.fixture(scope="module")
def papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


@pytest.fixture(scope="module")
def blast_data():
    db = generate_database("env_nr", num_sequences=800, seed=11)
    return Dataset.from_array(BLAST_INDEX_SCHEMA, build_index(db))


@pytest.fixture(scope="module")
def graph():
    return generate_graph("google", scale=0.002, seed=13)


def _partitions(result):
    return [p.records for p in result.partitions]


class TestBackendMatrix:
    """{serial, mpi, mapreduce, process} x rank counts, bit-for-bit."""

    @pytest.mark.parametrize("ranks", [1, 4, 8])
    def test_blast_partitions_identical(self, papar, blast_data, ranks):
        args = {"input_path": "/in", "output_path": "/out", "num_partitions": 8}
        reference = _partitions(
            papar.run(BLAST_WORKFLOW_XML, args, data=blast_data)
        )
        for backend in ("mpi", "mapreduce", "process"):
            got = _partitions(papar.run(
                BLAST_WORKFLOW_XML, args, data=blast_data,
                backend=backend, num_ranks=ranks,
            ))
            assert len(got) == len(reference)
            for ours, theirs in zip(got, reference):
                np.testing.assert_array_equal(ours, theirs, err_msg=backend)

    @pytest.mark.parametrize("ranks", [1, 4])
    def test_hybrid_cut_partitions_identical(self, papar, graph, ranks):
        args = {"input_file": "/in", "output_path": "/out",
                "num_partitions": 4, "threshold": 30}
        data = graph.to_dataset()
        reference = _partitions(
            papar.run(HYBRID_CUT_WORKFLOW_XML, args, data=data)
        )
        for backend in ("mpi", "process"):
            got = _partitions(papar.run(
                HYBRID_CUT_WORKFLOW_XML, args, data=data,
                backend=backend, num_ranks=ranks,
            ))
            for ours, theirs in zip(got, reference):
                np.testing.assert_array_equal(ours, theirs, err_msg=backend)


class TestMemoryBudgetInterplay:
    def test_budgeted_process_run_matches_unbudgeted(self, papar, blast_data):
        args = {"input_path": "/in", "output_path": "/out", "num_partitions": 4}
        plain = papar.run(BLAST_WORKFLOW_XML, args, data=blast_data,
                          backend="process", num_ranks=4)
        budgeted = papar.run(BLAST_WORKFLOW_XML, args, data=blast_data,
                             backend="process", num_ranks=4,
                             memory_budget="1MB")
        for ours, theirs in zip(_partitions(budgeted), _partitions(plain)):
            np.testing.assert_array_equal(ours, theirs)

    def test_budgeted_run_still_reports_transport(self, papar, blast_data):
        args = {"input_path": "/in", "output_path": "/out", "num_partitions": 4}
        result = papar.run(BLAST_WORKFLOW_XML, args, data=blast_data,
                           backend="process", num_ranks=4, memory_budget="1MB")
        t = result.extra["perf"]["transport"]
        assert t["kind"] == "shm"
        assert t["pickle_bytes"] == 0


class TestShmHygiene:
    def test_no_shm_segments_survive_a_run(self, papar, blast_data):
        args = {"input_path": "/in", "output_path": "/out", "num_partitions": 4}
        result = papar.run(BLAST_WORKFLOW_XML, args, data=blast_data,
                           backend="process", num_ranks=4)
        from repro.mpi.shm import scan_segments

        prefix = result.extra["perf"]["transport"]["shm_prefix"]
        assert scan_segments(prefix) == []


ZERO_IMPORT_RUN = textwrap.dedent(
    """
    import sys

    from repro import PaPar
    from repro.config import BLAST_INPUT_XML
    from repro.config.examples import BLAST_WORKFLOW_XML
    from repro.core.dataset import Dataset
    from repro.formats import BLAST_INDEX_SCHEMA

    papar = PaPar()
    papar.register_input(BLAST_INPUT_XML)
    rows = [(i, 40 + i, i, 40) for i in range(60)]
    data = Dataset.from_rows(BLAST_INDEX_SCHEMA, rows)
    args = {"input_path": "/in", "output_path": "/out", "num_partitions": 3}
    for backend in ("serial", "mpi", "mapreduce"):
        papar.run(BLAST_WORKFLOW_XML, args, data=data, backend=backend,
                  num_ranks=1 if backend == "serial" else 4)
    leaked = sorted(
        m for m in sys.modules
        if m in ("repro.core.process_runtime", "repro.mpi.process_backend",
                 "repro.mpi.shm", "repro.mpi.supervisor")
    )
    if leaked:
        print("LEAKED:", leaked)
        sys.exit(1)
    print("CLEAN")
    """
)


def test_other_backends_never_import_the_process_machinery():
    """backend != 'process' must not even import the shm transport."""
    proc = subprocess.run(
        [sys.executable, "-c", ZERO_IMPORT_RUN],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "CLEAN" in proc.stdout
