"""End-to-end acceptance: the complete muBLASTP story through every layer.

FASTA database -> binary index file -> CLI-driven PaPar partitioning ->
partition extraction with pointer recalculation -> distributed search with
alignment and e-value reporting — one test that touches every public layer
the way a downstream user would.
"""

import numpy as np
import pytest

from repro.blast import (
    PartitionIndex,
    build_index,
    extract_partition,
    generate_database,
    make_batch,
    mublastp_partition,
    read_fasta,
    write_fasta,
    write_index,
)
from repro.blast.search import best_alignment
from repro.cli import main
from repro.config import BLAST_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML
from repro.formats import BLAST_INDEX_SCHEMA, read_binary

NUM_PARTITIONS = 4


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Run the whole pipeline once; tests inspect its stages."""
    tmp = tmp_path_factory.mktemp("pipeline")

    # 1. the database starts life as FASTA (the real tool chain's input)
    db0 = generate_database("env_nr", num_sequences=150, seed=99, length_clustering=0.9)
    fasta_path = tmp / "db.fasta"
    write_fasta(fasta_path, db0)
    db = read_fasta(fasta_path, name="env_nr")

    # 2. formatdb equivalent: write the binary four-tuple index
    index_path = tmp / "db.index"
    write_index(index_path, db)

    # 3. partition through the CLI (configuration files in, part files out)
    cfg_input = tmp / "blast_db.xml"
    cfg_input.write_text(BLAST_INPUT_XML)
    cfg_wf = tmp / "workflow.xml"
    cfg_wf.write_text(BLAST_WORKFLOW_XML)
    out_dir = tmp / "partitions"
    rc = main([
        "run",
        "--input-config", str(cfg_input),
        "--workflow", str(cfg_wf),
        "--arg", f"input_path={index_path}",
        "--arg", f"output_path={out_dir}",
        "--arg", f"num_partitions={NUM_PARTITIONS}",
        "--backend", "mpi", "--ranks", "2",
    ])
    assert rc == 0

    # 4. load the partition index files back and materialize the databases
    part_indexes = [
        read_binary(out_dir / f"part-{p:05d}", BLAST_INDEX_SCHEMA)
        for p in range(NUM_PARTITIONS)
    ]
    part_dbs = [extract_partition(db, idx) for idx in part_indexes]
    return db, part_indexes, part_dbs


class TestFullPipeline:
    def test_fasta_roundtrip_preserved_database(self, pipeline):
        db, _, _ = pipeline
        assert db.num_sequences == 150

    def test_cli_partitions_equal_native_partitioner(self, pipeline):
        db, part_indexes, _ = pipeline
        native = mublastp_partition(build_index(db), NUM_PARTITIONS, policy="cyclic")
        for got, want in zip(part_indexes, native):
            np.testing.assert_array_equal(got, want)

    def test_partitions_cover_every_sequence(self, pipeline):
        db, _, part_dbs = pipeline
        total = sum(p.num_sequences for p in part_dbs)
        assert total == db.num_sequences
        assert sum(p.total_residues for p in part_dbs) == db.total_residues

    def test_partition_pointers_rebased(self, pipeline):
        _, _, part_dbs = pipeline
        for part in part_dbs:
            assert part.seq_start[0] == 0
            ends = part.seq_start + part.seq_size
            np.testing.assert_array_equal(part.seq_start[1:], ends[:-1])

    def test_search_finds_query_in_owning_partition(self, pipeline):
        db, _, part_dbs = pipeline
        queries = make_batch(db, "mixed", batch_size=3, seed=2)
        db_len = db.total_residues
        for query in queries:
            # the query came from db, so exactly the partitions holding
            # (near-)identical sequences report a significant best hit
            best = None
            for part in part_dbs:
                index = PartitionIndex(part)
                result = index.search(query)
                if best is None or result.best_score > best.best_score:
                    best = result
            assert best is not None
            assert best.is_significant(len(query), db_len)

    def test_alignment_report_for_top_hit(self, pipeline):
        db, _, part_dbs = pipeline
        query = db.sequence(int(np.argmax(db.seq_size))).copy()
        found = False
        for part in part_dbs:
            subject_id, aln = best_alignment(PartitionIndex(part), query)
            if aln is not None and aln.identity_fraction == 1.0:
                assert "Identities" in aln.pretty()
                found = True
        assert found, "the source sequence's partition must align it perfectly"
