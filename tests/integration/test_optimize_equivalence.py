"""`papar run --optimize` is bit-identical, backend by backend.

The optimizer's contract is *observational equivalence*: the rewritten
plan must produce byte-for-byte the same partitions as the original on
every backend and rank count.  This matrix pins that for both case
studies (BLAST index partitioning and hybrid-cut graph partitioning)
across serial / mpi / mapreduce / process at 1, 4, and 8 ranks, and
checks the measured exchange payload actually drops where pruning fires.
"""

import numpy as np
import pytest

from repro import PaPar
from repro.blast import build_index, generate_database
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.formats import BLAST_INDEX_SCHEMA
from repro.graph import generate_graph

BACKENDS = ["serial", "mpi", "mapreduce", "process"]
RANKS = [1, 4, 8]


@pytest.fixture(scope="module")
def papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


@pytest.fixture(scope="module")
def blast_data():
    db = generate_database("env_nr", num_sequences=400, seed=7)
    return Dataset.from_array(BLAST_INDEX_SCHEMA, build_index(db))


@pytest.fixture(scope="module")
def graph_data():
    return generate_graph("google", scale=0.002, seed=13).to_dataset()


def assert_identical(plain, optimized):
    assert optimized.num_partitions == plain.num_partitions
    for ours, theirs in zip(optimized.partitions, plain.partitions):
        np.testing.assert_array_equal(ours.records, theirs.records)


class TestBlastMatrix:
    """BLAST partitioning: pruning fires (two of four columns are dead)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("ranks", RANKS)
    def test_bit_identical(self, papar, blast_data, backend, ranks):
        args = {"input_path": "/in", "output_path": "/out", "num_partitions": 4}
        kw = dict(data=blast_data, backend=backend, num_ranks=ranks)
        plain = papar.run(BLAST_WORKFLOW_XML, args, **kw)
        optimized = papar.run(BLAST_WORKFLOW_XML, args, optimize=True, **kw)
        assert_identical(plain, optimized)
        summary = optimized.extra["optimizer"]
        assert summary["pruning_applied"] is True
        assert summary["pruning"]["live"] == ["seq_size"]

    def test_measured_bytes_drop(self, papar, blast_data):
        """The ≥20% bytes-moved reduction the issue gates on, measured."""
        args = {"input_path": "/in", "output_path": "/out", "num_partitions": 4}
        kw = dict(data=blast_data, backend="mpi", num_ranks=4)
        plain = papar.run(BLAST_WORKFLOW_XML, args, **kw)
        optimized = papar.run(BLAST_WORKFLOW_XML, args, optimize=True, **kw)
        # compare perf counters on both sides: measured_bytes_moved is the
        # perf-counter payload, not the fabric's pickled-wire count
        before = plain.extra["perf"]["bytes_moved"]
        after = optimized.extra["optimizer"]["measured_bytes_moved"]
        assert after <= before * 0.8, (
            f"bytes_moved only dropped {before} -> {after}"
        )


class TestHybridCutMatrix:
    """Hybrid cut: pack-format stages make the plan already minimal —
    the optimizer must change *nothing* and still run identically."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("ranks", RANKS)
    def test_bit_identical(self, papar, graph_data, backend, ranks):
        args = {
            "input_file": "/in",
            "output_path": "/out",
            "num_partitions": 4,
            "threshold": 30,
        }
        kw = dict(data=graph_data, backend=backend, num_ranks=ranks)
        plain = papar.run(HYBRID_CUT_WORKFLOW_XML, args, **kw)
        optimized = papar.run(HYBRID_CUT_WORKFLOW_XML, args, optimize=True, **kw)
        assert_identical(plain, optimized)
        summary = optimized.extra["optimizer"]
        assert summary["changed"] is False
        assert summary["rewrites"] == []
