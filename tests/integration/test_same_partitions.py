"""Section IV correctness claim: "PaPar can produce the same partitions as
the driving applications" — checked bit-for-bit for both case studies,
on both backends, via both the interpreter and the generated code."""

import numpy as np
import pytest

from repro import PaPar
from repro.blast import build_index, generate_database, mublastp_partition
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.formats import BLAST_INDEX_SCHEMA
from repro.graph import generate_graph, papar_equivalent_hybrid_cut

#: a pure-Distribute workflow for the muBLASTP "block" (default) method
BLOCK_WORKFLOW_XML = """\
<workflow id="blast_block" name="BLAST default block partition">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
    <param name="output_path" type="hdfs" format="blast_db"/>
    <param name="num_partitions" type="integer"/>
  </arguments>
  <operators>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="$output_path"/>
      <param name="distrPolicy" type="DistrPolicy" value="block"/>
      <param name="numPartitions" type="integer" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>
"""


@pytest.fixture(scope="module")
def papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


class TestMuBlastpSamePartitions:
    @pytest.fixture(scope="class")
    def db_index(self):
        db = generate_database("env_nr", num_sequences=1000, seed=21)
        return build_index(db)

    @pytest.mark.parametrize("num_partitions", [2, 8, 16, 32])
    def test_cyclic_partitions_identical(self, papar, db_index, num_partitions):
        native = mublastp_partition(db_index, num_partitions, policy="cyclic")
        result = papar.run(
            BLAST_WORKFLOW_XML,
            {"input_path": "/in", "output_path": "/out", "num_partitions": num_partitions},
            data=Dataset.from_array(BLAST_INDEX_SCHEMA, db_index),
        )
        assert result.num_partitions == num_partitions
        for ours, theirs in zip(result.partitions, native):
            np.testing.assert_array_equal(ours.records, theirs)

    @pytest.mark.parametrize("num_partitions", [2, 16])
    def test_cyclic_partitions_identical_mpi(self, papar, db_index, num_partitions):
        native = mublastp_partition(db_index, num_partitions, policy="cyclic")
        result = papar.run(
            BLAST_WORKFLOW_XML,
            {"input_path": "/in", "output_path": "/out", "num_partitions": num_partitions},
            data=Dataset.from_array(BLAST_INDEX_SCHEMA, db_index),
            backend="mpi",
            num_ranks=4,
        )
        for ours, theirs in zip(result.partitions, native):
            np.testing.assert_array_equal(ours.records, theirs)

    @pytest.mark.parametrize("num_partitions", [2, 8, 32])
    def test_block_partitions_identical(self, papar, db_index, num_partitions):
        native = mublastp_partition(db_index, num_partitions, policy="block")
        result = papar.run(
            BLOCK_WORKFLOW_XML,
            {"input_path": "/in", "output_path": "/out", "num_partitions": num_partitions},
            data=Dataset.from_array(BLAST_INDEX_SCHEMA, db_index),
        )
        for ours, theirs in zip(result.partitions, native):
            np.testing.assert_array_equal(ours.records, theirs)

    def test_generated_code_same_partitions(self, papar, db_index):
        plan = papar.plan(
            BLAST_WORKFLOW_XML,
            {"input_path": "/in", "output_path": "/out", "num_partitions": 8},
        )
        module = papar.compile(plan)
        native = mublastp_partition(db_index, 8, policy="cyclic")
        result = module.run(Dataset.from_array(BLAST_INDEX_SCHEMA, db_index))
        for ours, theirs in zip(result.partitions, native):
            np.testing.assert_array_equal(ours.records, theirs)


class TestHybridCutSamePartitions:
    @pytest.fixture(scope="class")
    def graph(self):
        return generate_graph("google", scale=0.002, seed=13)

    @pytest.mark.parametrize("num_partitions,threshold", [(4, 10), (8, 30), (16, 100)])
    def test_hybrid_partitions_identical(self, papar, graph, num_partitions, threshold):
        native = papar_equivalent_hybrid_cut(graph, num_partitions, threshold)
        result = papar.run(
            HYBRID_CUT_WORKFLOW_XML,
            {
                "input_file": "/in",
                "output_path": "/out",
                "num_partitions": num_partitions,
                "threshold": threshold,
            },
            data=graph.to_dataset(),
        )
        assert result.num_partitions == num_partitions
        for ours, theirs in zip(result.partitions, native):
            got = np.column_stack(
                [ours.records["vertex_a"], ours.records["vertex_b"], ours.records["indegree"]]
            )
            np.testing.assert_array_equal(got, theirs)

    def test_hybrid_partitions_identical_mpi(self, papar, graph):
        native = papar_equivalent_hybrid_cut(graph, 8, 30)
        result = papar.run(
            HYBRID_CUT_WORKFLOW_XML,
            {"input_file": "/in", "output_path": "/out", "num_partitions": 8, "threshold": 30},
            data=graph.to_dataset(),
            backend="mpi",
            num_ranks=4,
        )
        for ours, theirs in zip(result.partitions, native):
            got = np.column_stack(
                [ours.records["vertex_a"], ours.records["vertex_b"], ours.records["indegree"]]
            )
            np.testing.assert_array_equal(got, theirs)
