"""Determinism: repeated runs produce identical partitions, traffic, and
virtual time — despite thread scheduling nondeterminism underneath."""

import numpy as np
import pytest

from repro import PaPar
from repro.cluster import ClusterModel, INFINIBAND_QDR
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.formats import BLAST_INDEX_SCHEMA, EDGE_LIST_SCHEMA


@pytest.fixture
def papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


def blast_data(n=500):
    rng = np.random.default_rng(71)
    rows = [(i, int(s), i, 40) for i, s in enumerate(rng.integers(10, 800, size=n))]
    return Dataset.from_rows(BLAST_INDEX_SCHEMA, rows)


class TestDeterminism:
    @pytest.mark.parametrize("backend", ["mpi", "mapreduce"])
    def test_partitions_and_traffic_identical_across_runs(self, papar, backend):
        cluster = ClusterModel(num_nodes=4, ranks_per_node=2, network=INFINIBAND_QDR)
        data = blast_data()
        args = {"input_path": "/in", "output_path": "/out", "num_partitions": 8}
        runs = [
            papar.run(BLAST_WORKFLOW_XML, args, data=data, backend=backend,
                      num_ranks=8, cluster=cluster)
            for _ in range(3)
        ]
        first = runs[0]
        for other in runs[1:]:
            assert [p.rows() for p in other.partitions] == [
                p.rows() for p in first.partitions
            ]
            assert other.bytes_moved == first.bytes_moved
            assert other.messages == first.messages
            # virtual time is a pure function of the message/compute schedule
            assert other.elapsed == pytest.approx(first.elapsed, rel=1e-12)

    def test_hybrid_workflow_virtual_time_deterministic(self, papar):
        cluster = ClusterModel(num_nodes=2, ranks_per_node=2, network=INFINIBAND_QDR)
        rng = np.random.default_rng(5)
        targets = rng.zipf(1.8, size=400) % 30
        sources = rng.integers(30, 150, size=400)
        edges = sorted({(int(s), int(t)) for s, t in zip(sources, targets)})
        data = Dataset.from_rows(EDGE_LIST_SCHEMA, edges)
        args = {"input_file": "/in", "output_path": "/out",
                "num_partitions": 4, "threshold": 6}
        elapsed = {
            papar.run(HYBRID_CUT_WORKFLOW_XML, args, data=data, backend="mpi",
                      num_ranks=4, cluster=cluster).elapsed
            for _ in range(3)
        }
        assert len(elapsed) == 1
