"""Property-based cross-backend equivalence.

For randomly generated inputs and workflow parameters, all execution paths —
serial interpreter, MPI runtime, MapReduce runtime, and the generated code —
must produce identical partitions.  This is the framework's Correctness
requirement (Section II-B) as a property.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import PaPar
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.formats import BLAST_INDEX_SCHEMA, EDGE_LIST_SCHEMA

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


def make_papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


def rows_as_lists(result):
    return [p.rows() for p in result.partitions]


class TestBlastWorkflowProperty:
    @SLOW
    @given(
        sizes=st.lists(st.integers(1, 10_000), min_size=1, max_size=120),
        num_partitions=st.integers(1, 12),
        ranks=st.integers(1, 5),
    )
    def test_all_paths_agree(self, sizes, num_partitions, ranks):
        papar = make_papar()
        rows = []
        pos = 0
        for i, s in enumerate(sizes):
            rows.append((pos, s, pos, 40 + (i % 7)))
            pos += s
        data = Dataset.from_rows(BLAST_INDEX_SCHEMA, rows)
        args = {"input_path": "/in", "output_path": "/out", "num_partitions": num_partitions}

        serial = rows_as_lists(papar.run(BLAST_WORKFLOW_XML, args, data=data))
        mpi = rows_as_lists(
            papar.run(BLAST_WORKFLOW_XML, args, data=data, backend="mpi", num_ranks=ranks)
        )
        mr = rows_as_lists(
            papar.run(BLAST_WORKFLOW_XML, args, data=data, backend="mapreduce", num_ranks=ranks)
        )
        generated = rows_as_lists(
            papar.compile(papar.plan(BLAST_WORKFLOW_XML, args)).run(data)
        )
        assert mpi == serial
        assert mr == serial
        assert generated == serial

    @SLOW
    @given(
        sizes=st.lists(st.integers(1, 1000), min_size=1, max_size=80),
        num_partitions=st.integers(1, 8),
    )
    def test_partitions_form_a_partition_of_the_input(self, sizes, num_partitions):
        """Every record appears in exactly one output partition."""
        papar = make_papar()
        rows = [(i * 7, s, i * 11, 1) for i, s in enumerate(sizes)]
        data = Dataset.from_rows(BLAST_INDEX_SCHEMA, rows)
        result = papar.run(
            BLAST_WORKFLOW_XML,
            {"input_path": "/in", "output_path": "/out", "num_partitions": num_partitions},
            data=data,
        )
        assert result.num_partitions == num_partitions
        all_rows = sorted(r for p in result.partitions for r in p.rows())
        assert all_rows == sorted(tuple(np.int32(x) for x in row) for row in rows)
        counts = [len(p) for p in result.partitions]
        assert max(counts) - min(counts) <= 1  # cyclic balance invariant


class TestHybridWorkflowProperty:
    @SLOW
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(lambda e: e[0] != e[1]),
            min_size=1,
            max_size=150,
            unique=True,
        ),
        num_partitions=st.integers(1, 6),
        threshold=st.integers(1, 10),
        ranks=st.integers(1, 4),
    )
    def test_backends_agree(self, edges, num_partitions, threshold, ranks):
        papar = make_papar()
        data = Dataset.from_rows(EDGE_LIST_SCHEMA, sorted(edges))
        args = {
            "input_file": "/in",
            "output_path": "/out",
            "num_partitions": num_partitions,
            "threshold": threshold,
        }
        serial = rows_as_lists(papar.run(HYBRID_CUT_WORKFLOW_XML, args, data=data))
        mpi = rows_as_lists(
            papar.run(HYBRID_CUT_WORKFLOW_XML, args, data=data, backend="mpi", num_ranks=ranks)
        )
        mr = rows_as_lists(
            papar.run(
                HYBRID_CUT_WORKFLOW_XML, args, data=data, backend="mapreduce", num_ranks=ranks
            )
        )
        assert mpi == serial
        assert mr == serial

    @SLOW
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(lambda e: e[0] != e[1]),
            min_size=1,
            max_size=100,
            unique=True,
        ),
        threshold=st.integers(1, 8),
    )
    def test_low_degree_vertices_never_split(self, edges, threshold):
        """The hybrid-cut invariant holds for arbitrary graphs/thresholds."""
        papar = make_papar()
        data = Dataset.from_rows(EDGE_LIST_SCHEMA, sorted(edges))
        result = papar.run(
            HYBRID_CUT_WORKFLOW_XML,
            {"input_file": "/in", "output_path": "/out", "num_partitions": 3,
             "threshold": threshold},
            data=data,
        )
        indegree = {}
        for _, dst in edges:
            indegree[dst] = indegree.get(dst, 0) + 1
        owner = {}
        for i, p in enumerate(result.partitions):
            for dst in p.records["vertex_b"].tolist():
                if indegree[dst] < threshold:
                    assert owner.setdefault(dst, i) == i
