"""Input-data configuration parsing (Figures 4 and 5)."""

import pytest

from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML, load_input_config, parse_input_config
from repro.errors import ConfigError


class TestBlastConfig:
    def test_figure4(self):
        schema = parse_input_config(BLAST_INPUT_XML)
        assert schema.id == "blast_db"
        assert schema.input_format == "binary"
        assert schema.start_position == 32
        assert schema.field_names == ("seq_start", "seq_size", "desc_start", "desc_size")
        assert schema.itemsize == 16  # 4 bytes/integer * 4 integers


class TestEdgeConfig:
    def test_figure5(self):
        schema = parse_input_config(EDGE_INPUT_XML)
        assert schema.id == "graph_edge"
        assert schema.input_format == "text"
        assert schema.field_names == ("vertex_a", "vertex_b")
        assert schema.effective_delimiters() == ("\t", "\n")

    def test_string_typed_variant(self):
        xml = EDGE_INPUT_XML.replace('type="long"', 'type="String"')
        schema = parse_input_config(xml)
        assert all(f.type == "string" for f in schema.fields)


class TestNestedElements:
    def test_nested_flattened_with_prefix(self):
        xml = """
        <input id="nested">
          <input_format>binary</input_format>
          <element>
            <value name="id" type="integer"/>
            <element name="range">
              <value name="lo" type="integer"/>
              <value name="hi" type="integer"/>
            </element>
          </element>
        </input>
        """
        schema = parse_input_config(xml)
        assert schema.field_names == ("id", "range__lo", "range__hi")
        assert schema.itemsize == 12


class TestErrors:
    def test_malformed_xml(self):
        with pytest.raises(ConfigError, match="malformed"):
            parse_input_config("<input><unclosed>")

    def test_wrong_root(self):
        with pytest.raises(ConfigError, match="root"):
            parse_input_config("<data/>")

    def test_missing_id(self):
        with pytest.raises(ConfigError, match="id"):
            parse_input_config("<input><element><value name='a' type='integer'/></element></input>")

    def test_missing_element(self):
        with pytest.raises(ConfigError, match="element"):
            parse_input_config("<input id='x'><input_format>binary</input_format></input>")

    def test_bad_format(self):
        with pytest.raises(ConfigError, match="input_format"):
            parse_input_config(
                "<input id='x'><input_format>csv</input_format>"
                "<element><value name='a' type='integer'/></element></input>"
            )

    def test_bad_start_position(self):
        with pytest.raises(ConfigError, match="start_position"):
            parse_input_config(
                "<input id='x'><start_position>ten</start_position>"
                "<element><value name='a' type='integer'/></element></input>"
            )

    def test_value_missing_attrs(self):
        with pytest.raises(ConfigError, match="value"):
            parse_input_config("<input id='x'><element><value name='a'/></element></input>")

    def test_unexpected_tag(self):
        with pytest.raises(ConfigError, match="unexpected"):
            parse_input_config(
                "<input id='x'><element><field name='a' type='integer'/></element></input>"
            )


def test_load_from_disk(tmp_path):
    path = tmp_path / "blast.xml"
    path.write_text(BLAST_INPUT_XML)
    schema = load_input_config(path)
    assert schema.id == "blast_db"
