"""Custom operator registration (Figure 7)."""

import pytest

from repro.config import parse_operator_config
from repro.errors import ConfigError, OperatorError

FIGURE7_XML = """\
<prog id="Sort" type="operator" name="MapReduce sort operator">
  <import module="repro.ops.sort" class="Sort"/>
  <arguments>
    <param name="inputPath" type="String"/>
    <param name="outputPath" type="String"/>
    <param name="keyId" type="KeyId"/>
    <param name="ascending" type="boolean" default="true"/>
  </arguments>
</prog>
"""


class TestParse:
    def test_figure7(self):
        reg = parse_operator_config(FIGURE7_XML)
        assert reg.id == "Sort"
        assert reg.module == "repro.ops.sort"
        assert reg.class_name == "Sort"
        assert [a.name for a in reg.arguments] == [
            "inputPath",
            "outputPath",
            "keyId",
            "ascending",
        ]
        assert reg.argument("ascending").default == "true"
        assert not reg.argument("ascending").required
        assert reg.argument("inputPath").required

    def test_package_attribute_accepted(self):
        xml = FIGURE7_XML.replace('module="repro.ops.sort"', 'package="repro.ops.sort"')
        assert parse_operator_config(xml).module == "repro.ops.sort"

    def test_missing_argument_lookup(self):
        reg = parse_operator_config(FIGURE7_XML)
        with pytest.raises(OperatorError):
            reg.argument("nope")


class TestLoadClass:
    def test_loads_real_operator(self):
        reg = parse_operator_config(FIGURE7_XML)
        cls = reg.load_class()
        from repro.ops.base import Operator

        assert issubclass(cls, Operator)

    def test_missing_module(self):
        xml = FIGURE7_XML.replace("repro.ops.sort", "repro.no_such_module")
        with pytest.raises(OperatorError, match="import"):
            parse_operator_config(xml).load_class()

    def test_missing_class(self):
        xml = FIGURE7_XML.replace('class="Sort"', 'class="NoSuchClass"')
        with pytest.raises(OperatorError, match="no class"):
            parse_operator_config(xml).load_class()

    def test_non_operator_class_rejected(self):
        xml = """
        <prog id="X" type="operator">
          <import module="pathlib" class="Path"/>
        </prog>
        """
        with pytest.raises(OperatorError, match="inherit"):
            parse_operator_config(xml).load_class()


class TestErrors:
    def test_wrong_root(self):
        with pytest.raises(ConfigError):
            parse_operator_config("<prog type='job' id='x'/>")

    def test_missing_import(self):
        with pytest.raises(ConfigError, match="import"):
            parse_operator_config("<prog id='x' type='operator'/>")

    def test_missing_class_attr(self):
        with pytest.raises(ConfigError, match="class"):
            parse_operator_config(
                "<prog id='x' type='operator'><import module='m'/></prog>"
            )

    def test_missing_module_attr(self):
        with pytest.raises(ConfigError, match="module"):
            parse_operator_config(
                "<prog id='x' type='operator'><import class='C'/></prog>"
            )
