"""Workflow configuration parsing and $variable resolution (Figures 8, 10)."""

import pytest

from repro.config import (
    Bindings,
    bind_arguments,
    load_workflow_config,
    parse_workflow_config,
)
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.errors import ConfigError, WorkflowError


class TestBlastWorkflow:
    def test_figure8_structure(self):
        wf = parse_workflow_config(BLAST_WORKFLOW_XML)
        assert wf.id == "blast_partition"
        assert set(wf.arguments) == {"input_path", "output_path", "num_partitions", "num_reducers"}
        assert wf.arguments["num_reducers"].value == "3"
        assert [op.id for op in wf.operators] == ["sort", "distr"]
        assert wf.operators[0].operator == "Sort"
        assert wf.operators[0].attrs["num_reducers"] == "$num_reducers"
        assert wf.operator("sort").param_value("key") == "seq_size"
        assert wf.operator("distr").param_value("inputPath") == "$sort.outputPath"

    def test_argument_formats_recorded(self):
        wf = parse_workflow_config(BLAST_WORKFLOW_XML)
        assert wf.arguments["input_path"].format == "blast_db"


class TestHybridCutWorkflow:
    def test_figure10_structure(self):
        wf = parse_workflow_config(HYBRID_CUT_WORKFLOW_XML)
        assert [op.id for op in wf.operators] == ["group", "split", "distr"]
        group = wf.operator("group")
        assert group.addons[0].operator == "count"
        assert group.addons[0].attr == "indegree"
        assert group.params["outputPath"].format == "pack"
        split = wf.operator("split")
        assert split.param_value("key") == "$group.$indegree"
        assert split.params["outputPathList"].format == "unpack,orig"
        assert "{>=, $threshold}" in split.param_value("policy")


class TestBindings:
    def test_plain_reference(self):
        env = Bindings({"input_path": "/data/in"})
        assert env.resolve("$input_path") == "/data/in"

    def test_dotted_reference(self):
        env = Bindings({"sort.outputPath": "/user/sort_output"})
        assert env.resolve("$sort.outputPath") == "/user/sort_output"

    def test_dollar_attr_reference(self):
        env = Bindings({"group.indegree": "indegree"})
        assert env.resolve("$group.$indegree") == "indegree"

    def test_native_type_preserved_for_whole_reference(self):
        env = Bindings({"num_partitions": 16})
        assert env.resolve("$num_partitions") == 16

    def test_embedded_substitution(self):
        env = Bindings({"threshold": 200})
        assert env.resolve("{>=, $threshold},{<, $threshold}") == "{>=, 200},{<, 200}"

    def test_non_string_passthrough(self):
        env = Bindings()
        assert env.resolve(42) == 42
        assert env.resolve(None) is None

    def test_unresolved_raises(self):
        with pytest.raises(WorkflowError, match="unresolved"):
            Bindings().resolve("$missing")

    def test_contains(self):
        env = Bindings({"a.b": 1})
        assert "$a.$b" in env
        assert "a.b" in env
        assert "c" not in env


class TestBindArguments:
    def test_defaults_and_overrides(self):
        wf = parse_workflow_config(BLAST_WORKFLOW_XML)
        env = bind_arguments(
            wf, {"input_path": "/in", "output_path": "/out", "num_partitions": "16"}
        )
        assert env.lookup("num_partitions") == 16  # coerced to integer
        assert env.lookup("num_reducers") == 3  # default from config

    def test_missing_required_argument(self):
        wf = parse_workflow_config(BLAST_WORKFLOW_XML)
        with pytest.raises(WorkflowError, match="no value"):
            bind_arguments(wf, {"input_path": "/in", "output_path": "/out"})

    def test_unknown_argument_rejected(self):
        wf = parse_workflow_config(BLAST_WORKFLOW_XML)
        with pytest.raises(WorkflowError, match="unknown"):
            bind_arguments(wf, {"inputpath_typo": "/in"})

    def test_boolean_coercion(self):
        from repro.config import ParamSpec

        ps = ParamSpec("flag", type="boolean")
        assert ps.coerce("true") is True
        assert ps.coerce("False") is False
        assert ps.coerce(True) is True
        assert ps.coerce(" Yes ") is True
        assert ps.coerce("0") is False

    def test_boolean_typo_rejected(self):
        """'ture' must raise, not silently coerce to False."""
        from repro.config import ParamSpec

        ps = ParamSpec("flag", type="boolean")
        for bad in ("ture", "flase", "enabled", ""):
            with pytest.raises(WorkflowError, match="boolean literal"):
                ps.coerce(bad)

    def test_stringlist_coercion(self):
        from repro.config import ParamSpec

        ps = ParamSpec("paths", type="StringList")
        assert ps.coerce("/a, /b") == ["/a", "/b"]
        assert ps.coerce(["/a"]) == ["/a"]

    def test_bad_integer_coercion(self):
        from repro.config import ParamSpec

        with pytest.raises(WorkflowError, match="coerce"):
            ParamSpec("n", type="integer").coerce("many")


class TestWorkflowErrors:
    def test_malformed(self):
        with pytest.raises(ConfigError, match="malformed"):
            parse_workflow_config("<workflow")

    def test_wrong_root(self):
        with pytest.raises(ConfigError, match="root"):
            parse_workflow_config("<job/>")

    def test_no_operators(self):
        with pytest.raises(ConfigError, match="operators"):
            parse_workflow_config("<workflow id='x'><operators/></workflow>")

    def test_duplicate_operator_id(self):
        xml = """
        <workflow id="x">
          <operators>
            <operator id="a" operator="Sort"/>
            <operator id="a" operator="Sort"/>
          </operators>
        </workflow>
        """
        with pytest.raises(ConfigError, match="duplicate"):
            parse_workflow_config(xml)

    def test_operator_lookup_missing(self):
        wf = parse_workflow_config(BLAST_WORKFLOW_XML)
        with pytest.raises(WorkflowError):
            wf.operator("nope")


def test_load_from_disk(tmp_path):
    path = tmp_path / "wf.xml"
    path.write_text(BLAST_WORKFLOW_XML)
    assert load_workflow_config(path).id == "blast_partition"
