"""Robustness: arbitrary input never crashes the config parsers.

Every failure mode must surface as a :class:`~repro.errors.ConfigError`
subclass (or parse successfully) — no raw ``AttributeError``/``IndexError``
leaking from the XML layer.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import parse_input_config, parse_operator_config, parse_workflow_config
from repro.errors import PaParError

PARSERS = [parse_input_config, parse_workflow_config, parse_operator_config]

xml_fragments = st.text(
    alphabet=st.sampled_from(list("<>/= \"'abcdefinputworkflowparam\n\t")), max_size=300
)


@pytest.mark.parametrize("parser", PARSERS)
@settings(max_examples=80)
@given(text=xml_fragments)
def test_arbitrary_text_never_crashes(parser, text):
    try:
        parser(text)
    except PaParError:
        pass  # the designed failure mode


@pytest.mark.parametrize("parser", PARSERS)
@settings(max_examples=40)
@given(text=st.text(max_size=200))
def test_arbitrary_unicode_never_crashes(parser, text):
    try:
        parser(text)
    except PaParError:
        pass


# structured fuzz: well-formed XML with random tag/attribute soup
@st.composite
def random_xml(draw):
    tag = draw(st.sampled_from(["input", "workflow", "prog", "data", "element"]))
    attrs = draw(
        st.dictionaries(
            st.sampled_from(["id", "name", "type", "operator", "value", "format"]),
            st.text(alphabet="abc123_$.", max_size=10),
            max_size=4,
        )
    )
    children = draw(
        st.lists(
            st.sampled_from(
                [
                    '<param name="x" type="integer"/>',
                    '<value name="f" type="integer"/>',
                    "<element/>",
                    "<operators/>",
                    '<operator id="o" operator="Sort"/>',
                    "<input_format>binary</input_format>",
                    "<start_position>zz</start_position>",
                ]
            ),
            max_size=5,
        )
    )
    attr_text = "".join(f' {k}="{v}"' for k, v in attrs.items())
    return f"<{tag}{attr_text}>{''.join(children)}</{tag}>"


@pytest.mark.parametrize("parser", PARSERS)
@settings(max_examples=60)
@given(xml=random_xml())
def test_wellformed_soup_never_crashes(parser, xml):
    try:
        parser(xml)
    except PaParError:
        pass
