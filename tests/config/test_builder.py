"""Programmatic workflow construction (WorkflowBuilder)."""

import pytest

from repro import PaPar
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML, parse_workflow_config
from repro.config.builder import WorkflowBuilder
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.config.serialize import workflow_to_xml
from repro.core.dataset import Dataset
from repro.errors import WorkflowError
from repro.formats import BLAST_INDEX_SCHEMA, EDGE_LIST_SCHEMA


def build_blast_workflow():
    return (
        WorkflowBuilder("blast_built")
        .argument("input_path", type="hdfs", format="blast_db")
        .argument("output_path", type="hdfs", format="blast_db")
        .argument("num_partitions", type="integer")
        .sort("sort", key="seq_size", input_path="$input_path", output_path="/tmp/sorted")
        .distribute(
            "distr",
            policy="roundRobin",
            num_partitions="$num_partitions",
            input_path="$sort.outputPath",
            output_path="$output_path",
        )
        .build()
    )


def build_hybrid_workflow():
    return (
        WorkflowBuilder("hybrid_built")
        .argument("input_file", type="hdfs", format="graph_edge")
        .argument("output_path", type="hdfs", format="graph_edge")
        .argument("num_partitions", type="integer")
        .argument("threshold", type="integer")
        .group(
            "group",
            key="vertex_b",
            input_path="$input_file",
            output_path="/tmp/group",
            addons=[("count", "indegree", None)],
        )
        .split(
            "split",
            key="$group.$indegree",
            policy="{>=, $threshold},{<, $threshold}",
            output_paths=["/tmp/split/high", "/tmp/split/low"],
            output_formats=["unpack", "orig"],
            input_path="$group.outputPath",
        )
        .distribute(
            "distr",
            policy="graphVertexCut",
            num_partitions="$num_partitions",
            input_path="/tmp/split/",
            output_path="$output_path",
        )
        .build()
    )


@pytest.fixture
def papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


class TestBuilder:
    def test_built_blast_equals_xml_version(self, papar):
        rows = [(i, (i * 37) % 100 + 1, i, 1) for i in range(40)]
        data = Dataset.from_rows(BLAST_INDEX_SCHEMA, rows)
        args = {"input_path": "/in", "output_path": "/out", "num_partitions": 3}
        built = papar.run(build_blast_workflow(), args, data=data)
        xml = papar.run(BLAST_WORKFLOW_XML, args, data=data)
        assert [p.rows() for p in built.partitions] == [p.rows() for p in xml.partitions]

    def test_built_hybrid_equals_xml_version(self, papar):
        edges = [(2, 1), (3, 1), (4, 1), (5, 1), (1, 2), (3, 2), (1, 6)]
        data = Dataset.from_rows(EDGE_LIST_SCHEMA, edges)
        args = {
            "input_file": "/in", "output_path": "/out",
            "num_partitions": 3, "threshold": 4,
        }
        built = papar.run(build_hybrid_workflow(), args, data=data)
        xml = papar.run(HYBRID_CUT_WORKFLOW_XML, args, data=data)
        assert [p.rows() for p in built.partitions] == [p.rows() for p in xml.partitions]

    def test_serializes_and_reparses(self):
        spec = build_blast_workflow()
        xml = workflow_to_xml(spec)
        back = parse_workflow_config(xml)
        assert back.id == spec.id
        assert [op.id for op in back.operators] == ["sort", "distr"]

    def test_descending_sort_flag(self):
        spec = (
            WorkflowBuilder("w")
            .sort("s", key="k", descending=True)
            .build()
        )
        assert spec.operator("s").param_value("flag") == "1"

    def test_num_reducers_attribute(self):
        spec = WorkflowBuilder("w").sort("s", key="k", num_reducers="$n").build()
        assert spec.operator("s").attrs["num_reducers"] == "$n"

    def test_duplicate_argument_rejected(self):
        b = WorkflowBuilder("w").argument("a")
        with pytest.raises(WorkflowError, match="twice"):
            b.argument("a")

    def test_duplicate_operator_rejected(self):
        b = WorkflowBuilder("w").sort("s", key="k")
        with pytest.raises(WorkflowError, match="twice"):
            b.sort("s", key="k2")

    def test_empty_build_rejected(self):
        with pytest.raises(WorkflowError, match="no operators"):
            WorkflowBuilder("w").build()

    def test_empty_id_rejected(self):
        with pytest.raises(WorkflowError):
            WorkflowBuilder("")
