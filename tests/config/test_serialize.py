"""XML serialization round trips for schemas and workflows."""

from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML, parse_input_config, parse_workflow_config
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.config.serialize import schema_to_xml, workflow_to_xml


class TestSchemaRoundTrip:
    def test_blast_schema(self):
        schema = parse_input_config(BLAST_INPUT_XML)
        back = parse_input_config(schema_to_xml(schema, name="BLAST Database file"))
        assert back == schema

    def test_edge_schema_with_delimiters(self):
        schema = parse_input_config(EDGE_INPUT_XML)
        xml = schema_to_xml(schema)
        assert "\\t" in xml  # delimiters escaped, not literal tabs
        back = parse_input_config(xml)
        assert back.field_names == schema.field_names
        assert back.effective_delimiters() == schema.effective_delimiters()

    def test_programmatic_schema(self):
        from repro.formats import Field, RecordSchema

        schema = RecordSchema(
            id="custom",
            fields=(Field("a", "long"), Field("b", "double")),
            input_format="binary",
            start_position=8,
        )
        back = parse_input_config(schema_to_xml(schema))
        assert back == schema


class TestWorkflowRoundTrip:
    def _roundtrip(self, xml):
        spec = parse_workflow_config(xml)
        return spec, parse_workflow_config(workflow_to_xml(spec))

    def test_blast_workflow(self):
        spec, back = self._roundtrip(BLAST_WORKFLOW_XML)
        assert back.id == spec.id
        assert set(back.arguments) == set(spec.arguments)
        assert [op.id for op in back.operators] == [op.id for op in spec.operators]
        assert back.operator("sort").param_value("key") == "seq_size"
        assert back.operator("sort").attrs == spec.operator("sort").attrs

    def test_hybrid_workflow_with_addons(self):
        spec, back = self._roundtrip(HYBRID_CUT_WORKFLOW_XML)
        assert back.operator("group").addons == spec.operator("group").addons
        assert (
            back.operator("split").params["outputPathList"].format
            == spec.operator("split").params["outputPathList"].format
        )
        assert back.operator("split").param_value("policy") == spec.operator(
            "split"
        ).param_value("policy")

    def test_roundtrip_plans_identically(self):
        """The re-parsed workflow must plan to the same job sequence."""
        from repro.core.planner import Planner

        spec, back = self._roundtrip(BLAST_WORKFLOW_XML)
        args = {"input_path": "/in", "output_path": "/out", "num_partitions": 4}
        plan_a = Planner().plan(spec, args)
        plan_b = Planner().plan(back, args)
        assert [j.op_id for j in plan_a.jobs] == [j.op_id for j in plan_b.jobs]
        assert plan_a.jobs[1].operator.num_partitions == plan_b.jobs[1].operator.num_partitions
