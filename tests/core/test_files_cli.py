"""File-based partitioning and the command-line driver."""

import subprocess
import sys

import numpy as np
import pytest

from repro import PaPar
from repro.blast import generate_index, mublastp_partition
from repro.cli import main
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.core.files import find_io_arguments
from repro.errors import WorkflowError
from repro.formats import BLAST_INDEX_SCHEMA, read_binary, write_binary, write_text


@pytest.fixture
def blast_index_file(tmp_path):
    index = generate_index("env_nr", num_sequences=200, seed=2)
    path = tmp_path / "db.index"
    write_binary(path, index, BLAST_INDEX_SCHEMA, header=b"\x00" * 32)
    return path, index


@pytest.fixture
def papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


class TestPartitionFiles:
    def test_binary_roundtrip_matches_native(self, papar, blast_index_file, tmp_path):
        path, index = blast_index_file
        out_dir = tmp_path / "parts"
        result = papar.partition_files(
            BLAST_WORKFLOW_XML,
            {"input_path": str(path), "output_path": str(out_dir), "num_partitions": 4},
        )
        assert len(result.output_paths) == 4
        native = mublastp_partition(index, 4, policy="cyclic")
        for file_path, expected in zip(result.output_paths, native):
            back = read_binary(file_path, BLAST_INDEX_SCHEMA)
            np.testing.assert_array_equal(back, expected)

    def test_text_workflow_files(self, papar, tmp_path):
        edges = [(2, 1), (3, 1), (4, 1), (5, 1), (1, 2), (3, 2), (1, 6)]
        in_path = tmp_path / "edges.txt"
        from repro.formats import EDGE_LIST_SCHEMA

        write_text(in_path, edges, EDGE_LIST_SCHEMA)
        out_dir = tmp_path / "parts"
        result = papar.partition_files(
            HYBRID_CUT_WORKFLOW_XML,
            {
                "input_file": str(in_path),
                "output_path": str(out_dir),
                "num_partitions": 3,
                "threshold": 4,
            },
        )
        assert len(result.output_paths) == 3
        # output lines carry the indegree attribute added by the count add-on
        content = (out_dir / "part-00000").read_text()
        first_line = content.splitlines()[0]
        assert len(first_line.split("\t")) == 3

    def test_missing_path_args_rejected(self, papar):
        with pytest.raises(WorkflowError, match="needs"):
            papar.partition_files(BLAST_WORKFLOW_XML, {"num_partitions": 2})

    def test_find_io_arguments(self, papar):
        spec = papar.load_workflow(BLAST_WORKFLOW_XML)
        assert find_io_arguments(spec) == ("input_path", "output_path")

    def test_find_io_arguments_missing(self, papar):
        spec = papar.load_workflow(
            "<workflow id='x'><operators>"
            "<operator id='a' operator='Sort'><param name='key' value='k'/></operator>"
            "</operators></workflow>"
        )
        with pytest.raises(WorkflowError, match="path arguments"):
            find_io_arguments(spec)


class TestCLI:
    @pytest.fixture
    def config_files(self, tmp_path, blast_index_file):
        path, index = blast_index_file
        input_cfg = tmp_path / "blast_db.xml"
        input_cfg.write_text(BLAST_INPUT_XML)
        wf_cfg = tmp_path / "workflow.xml"
        wf_cfg.write_text(BLAST_WORKFLOW_XML)
        return input_cfg, wf_cfg, path, index

    def base_args(self, config_files, tmp_path):
        input_cfg, wf_cfg, data_path, _ = config_files
        return [
            "--input-config", str(input_cfg),
            "--workflow", str(wf_cfg),
            "--arg", f"input_path={data_path}",
            "--arg", f"output_path={tmp_path / 'out'}",
            "--arg", "num_partitions=3",
        ]

    def test_plan_command(self, config_files, tmp_path, capsys):
        assert main(["plan"] + self.base_args(config_files, tmp_path)) == 0
        out = capsys.readouterr().out
        assert "2 job(s)" in out
        assert "sort (Sort)" in out
        assert "distr (Distribute)" in out

    def test_codegen_command_to_file(self, config_files, tmp_path, capsys):
        out_file = tmp_path / "partitioner.py"
        rc = main(
            ["codegen"] + self.base_args(config_files, tmp_path) + ["-o", str(out_file)]
        )
        assert rc == 0
        source = out_file.read_text()
        compile(source, str(out_file), "exec")
        assert "blast_partition" in source

    def test_codegen_command_to_stdout(self, config_files, tmp_path, capsys):
        assert main(["codegen"] + self.base_args(config_files, tmp_path)) == 0
        assert "def run(" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", ["serial", "mpi", "mapreduce"])
    def test_run_command(self, config_files, tmp_path, capsys, backend):
        rc = main(
            ["run"] + self.base_args(config_files, tmp_path)
            + ["--backend", backend, "--ranks", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote 3 partition(s)" in out
        _, _, _, index = config_files
        native = mublastp_partition(index, 3, policy="cyclic")
        back = read_binary(tmp_path / "out" / "part-00001", BLAST_INDEX_SCHEMA)
        np.testing.assert_array_equal(back, native[1])

    def test_run_process_gang_restart(self, config_files, tmp_path, capsys):
        """End-to-end CLI chaos: a --crash-agent kill must be survived via
        --checkpoint-dir / --max-attempts gang-restart, with the classified
        crash in the printed fault report."""
        marker = tmp_path / "crash-fired"
        rc = main(
            ["run"] + self.base_args(config_files, tmp_path) + [
                "--backend", "process", "--ranks", "2",
                "--checkpoint-dir", str(tmp_path / "ckpt"),
                "--max-attempts", "3",
                "--crash-agent", f"kill:rank=1,job=1,marker={marker}",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote 3 partition(s)" in out
        assert "fault tolerance: 2 attempt(s)" in out
        assert "s wall" in out
        assert "crash: attempt 1 rank 1 signal (SIGKILL)" in out
        assert marker.exists()
        import os

        assert "PAPAR_CRASH_AGENT" not in os.environ
        _, _, _, index = config_files
        native = mublastp_partition(index, 3, policy="cyclic")
        back = read_binary(tmp_path / "out" / "part-00001", BLAST_INDEX_SCHEMA)
        np.testing.assert_array_equal(back, native[1])

    def test_run_bad_crash_agent_spec(self, config_files, tmp_path, capsys):
        rc = main(
            ["run"] + self.base_args(config_files, tmp_path) + [
                "--backend", "process", "--ranks", "2",
                "--crash-agent", "explode:rank=1",
            ]
        )
        assert rc == 2
        assert "crash-agent" in capsys.readouterr().err

    def test_bad_arg_pair(self, config_files, tmp_path, capsys):
        rc = main(
            ["plan"] + self.base_args(config_files, tmp_path) + ["--arg", "oops"]
        )
        assert rc == 2
        assert "name=value" in capsys.readouterr().err

    def test_subprocess_entry_point(self, config_files, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "plan"] + self.base_args(config_files, tmp_path),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "2 job(s)" in proc.stdout
