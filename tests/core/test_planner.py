"""Planner unit tests: operator instantiation, dataflow wiring, errors."""

import pytest

from repro.config import parse_workflow_config
from repro.core.planner import Planner
from repro.errors import WorkflowError


def plan_xml(xml, args=None):
    return Planner().plan(parse_workflow_config(xml), args or {})


class TestSortPlanning:
    def test_flag_parameter_table1(self):
        xml = """
        <workflow id="w">
          <arguments/>
          <operators>
            <operator id="s" operator="Sort">
              <param name="inputPath" value="/in"/>
              <param name="outputPath" value="/o"/>
              <param name="key" value="k"/>
              <param name="flag" type="integer" value="1"/>
            </operator>
            <operator id="d" operator="Distribute">
              <param name="inputPath" value="/o"/>
              <param name="numPartitions" type="integer" value="2"/>
            </operator>
          </operators>
        </workflow>
        """
        plan = plan_xml(xml)
        assert plan.jobs[0].operator.ascending is False  # flag 1 = descending

    def test_ascending_parameter(self):
        xml = """
        <workflow id="w">
          <arguments/>
          <operators>
            <operator id="s" operator="Sort">
              <param name="key" value="k"/>
              <param name="ascending" type="boolean" value="false"/>
            </operator>
          </operators>
        </workflow>
        """
        plan = plan_xml(xml)
        assert plan.jobs[0].operator.ascending is False

    def test_missing_key_rejected(self):
        xml = """
        <workflow id="w">
          <arguments/>
          <operators>
            <operator id="s" operator="Sort">
              <param name="inputPath" value="/in"/>
            </operator>
          </operators>
        </workflow>
        """
        with pytest.raises(WorkflowError, match="key"):
            plan_xml(xml)

    def test_default_output_path(self):
        xml = """
        <workflow id="w">
          <arguments/>
          <operators>
            <operator id="mysort" operator="Sort">
              <param name="key" value="k"/>
            </operator>
          </operators>
        </workflow>
        """
        plan = plan_xml(xml)
        assert plan.jobs[0].output_paths == ["/tmp/mysort"]

    def test_paper_typo_ouputPath_accepted(self):
        """Figure 8 spells it 'ouputPath'; the planner accepts both."""
        xml = """
        <workflow id="w">
          <arguments/>
          <operators>
            <operator id="s" operator="Sort">
              <param name="key" value="k"/>
              <param name="ouputPath" value="/user/sorted"/>
            </operator>
          </operators>
        </workflow>
        """
        plan = plan_xml(xml)
        assert plan.jobs[0].output_paths == ["/user/sorted"]


class TestGroupPlanning:
    def test_addon_attr_bound_for_later_references(self):
        xml = """
        <workflow id="w">
          <arguments/>
          <operators>
            <operator id="g" operator="Group">
              <param name="key" value="vertex_b"/>
              <param name="outputPath" value="/g" format="pack"/>
              <addon operator="count" key="vertex_b" attr="indeg"/>
            </operator>
            <operator id="s" operator="Split">
              <param name="inputPath" value="/g"/>
              <param name="outputPathList" type="StringList" value="/a,/b"/>
              <param name="key" value="$g.$indeg"/>
              <param name="policy" value="{&gt;=, 5},{&lt;, 5}"/>
            </operator>
          </operators>
        </workflow>
        """
        plan = plan_xml(xml)
        assert plan.jobs[1].operator.key == "indeg"
        assert plan.jobs[1].source == "g"

    def test_numeric_addon_value_field(self):
        xml = """
        <workflow id="w">
          <arguments/>
          <operators>
            <operator id="g" operator="Group">
              <param name="key" value="k"/>
              <addon operator="mean" value="weight" attr="avg_w"/>
            </operator>
          </operators>
        </workflow>
        """
        plan = plan_xml(xml)
        addons = plan.jobs[0].operator.addons
        assert len(addons) == 1
        op, attr, field = addons[0]
        assert op.name == "mean"
        assert attr == "avg_w"
        assert field == "weight"

    def test_group_missing_key(self):
        xml = """
        <workflow id="w"><arguments/>
          <operators><operator id="g" operator="Group"/></operators>
        </workflow>
        """
        with pytest.raises(WorkflowError, match="key"):
            plan_xml(xml)


class TestSplitPlanning:
    BASE = """
    <workflow id="w">
      <arguments/>
      <operators>
        <operator id="s" operator="Split">
          <param name="inputPath" value="/in"/>
          <param name="outputPathList" type="StringList" value="{paths}"/>
          <param name="key" value="k"/>
          <param name="policy" value="{policy}"/>
        </operator>
      </operators>
    </workflow>
    """

    def test_condition_path_count_mismatch(self):
        xml = self.BASE.format(paths="/a,/b,/c", policy="{&gt;=, 5},{&lt;, 5}")
        with pytest.raises(WorkflowError, match="output paths"):
            plan_xml(xml)

    def test_missing_policy(self):
        xml = """
        <workflow id="w"><arguments/>
          <operators>
            <operator id="s" operator="Split">
              <param name="key" value="k"/>
              <param name="outputPathList" type="StringList" value="/a,/b"/>
            </operator>
          </operators>
        </workflow>
        """
        with pytest.raises(WorkflowError, match="policy"):
            plan_xml(xml)

    def test_missing_output_list(self):
        xml = """
        <workflow id="w"><arguments/>
          <operators>
            <operator id="s" operator="Split">
              <param name="key" value="k"/>
              <param name="policy" value="{&gt;=, 5}"/>
            </operator>
          </operators>
        </workflow>
        """
        with pytest.raises(WorkflowError, match="outputPathList"):
            plan_xml(xml)

    def test_three_way_split(self):
        xml = self.BASE.format(
            paths="/hi,/mid,/lo",
            policy="{&gt;=, 100},{&gt;=, 10},{&lt;, 10}",
        )
        plan = plan_xml(xml)
        assert plan.jobs[0].operator.policy.num_outputs == 3
        assert plan.jobs[0].output_paths == ["/hi", "/mid", "/lo"]


class TestDistributePlanning:
    def test_missing_num_partitions(self):
        xml = """
        <workflow id="w"><arguments/>
          <operators>
            <operator id="d" operator="Distribute">
              <param name="inputPath" value="/in"/>
            </operator>
          </operators>
        </workflow>
        """
        with pytest.raises(WorkflowError, match="numPartitions"):
            plan_xml(xml)

    def test_default_policy_cyclic(self):
        xml = """
        <workflow id="w"><arguments/>
          <operators>
            <operator id="d" operator="Distribute">
              <param name="numPartitions" type="integer" value="3"/>
            </operator>
          </operators>
        </workflow>
        """
        plan = plan_xml(xml)
        assert plan.jobs[0].operator.policy.name == "cyclic"


class TestWiring:
    def test_unknown_operator_type(self):
        xml = """
        <workflow id="w"><arguments/>
          <operators><operator id="x" operator="Teleport"/></operators>
        </workflow>
        """
        with pytest.raises(WorkflowError, match="unknown operator type"):
            plan_xml(xml)

    def test_chain_falls_back_to_previous_job(self):
        """A job without a matching input path chains from its predecessor."""
        xml = """
        <workflow id="w"><arguments/>
          <operators>
            <operator id="s" operator="Sort">
              <param name="key" value="k"/>
              <param name="outputPath" value="/s"/>
            </operator>
            <operator id="d" operator="Distribute">
              <param name="inputPath" value="/elsewhere"/>
              <param name="numPartitions" type="integer" value="2"/>
            </operator>
          </operators>
        </workflow>
        """
        plan = plan_xml(xml)
        # '/elsewhere' matches nothing produced -> treated as workflow input,
        # and the serial runtime chains it from the previous job at execution
        assert plan.jobs[1].source is None

    def test_directory_prefix_consumes_all_outputs(self):
        xml = """
        <workflow id="w"><arguments/>
          <operators>
            <operator id="sp" operator="Split">
              <param name="inputPath" value="/in"/>
              <param name="outputPathList" type="StringList" value="/tmp/sp/x,/tmp/sp/y"/>
              <param name="key" value="k"/>
              <param name="policy" value="{&gt;=, 5},{&lt;, 5}"/>
            </operator>
            <operator id="d" operator="Distribute">
              <param name="inputPath" value="/tmp/sp/"/>
              <param name="numPartitions" type="integer" value="2"/>
            </operator>
          </operators>
        </workflow>
        """
        plan = plan_xml(xml)
        assert plan.jobs[1].source == "sp"
        assert plan.jobs[1].source_outputs == [0, 1]

    def test_job_lookup(self):
        xml = """
        <workflow id="w"><arguments/>
          <operators>
            <operator id="s" operator="Sort"><param name="key" value="k"/></operator>
          </operators>
        </workflow>
        """
        plan = plan_xml(xml)
        assert plan.job("s").op_id == "s"
        with pytest.raises(WorkflowError):
            plan.job("nope")

    def test_num_reducers_attr_resolution(self):
        xml = """
        <workflow id="w">
          <arguments>
            <param name="nred" type="integer" value="5"/>
          </arguments>
          <operators>
            <operator id="s" operator="Sort" num_reducers="$nred">
              <param name="key" value="k"/>
            </operator>
          </operators>
        </workflow>
        """
        plan = plan_xml(xml)
        assert plan.jobs[0].num_reducers == 5
