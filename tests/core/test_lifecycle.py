"""The graceful-shutdown helper shared by the process backend and the
streaming daemon: first signal is polite (cleanup runs), handlers are
restored, off-main-thread use is a no-op, and the async variant fires its
drain callback exactly once."""

import asyncio
import signal
import threading

import pytest

from repro.lifecycle import (
    ShutdownRequested,
    graceful_teardown,
    install_async_shutdown,
)


class TestGracefulTeardown:
    def test_first_signal_raises_so_finally_blocks_run(self):
        cleaned = []
        with pytest.raises(ShutdownRequested) as excinfo:
            with graceful_teardown() as requested:
                try:
                    assert requested() is False
                    signal.raise_signal(signal.SIGTERM)
                    pytest.fail("signal should have raised")  # pragma: no cover
                finally:
                    cleaned.append(requested())
        assert cleaned == [True]
        assert excinfo.value.signum == signal.SIGTERM
        assert "SIGTERM" in str(excinfo.value)

    def test_handlers_are_restored_on_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with graceful_teardown():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_handlers_are_restored_after_a_signal(self):
        before = signal.getsignal(signal.SIGINT)
        with pytest.raises(ShutdownRequested):
            with graceful_teardown():
                signal.raise_signal(signal.SIGINT)
        assert signal.getsignal(signal.SIGINT) is before

    def test_off_main_thread_is_a_noop(self):
        seen = {}

        def worker():
            with graceful_teardown() as requested:
                seen["requested"] = requested()
                seen["handler"] = signal.getsignal(signal.SIGTERM)

        before = signal.getsignal(signal.SIGTERM)
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["requested"] is False
        assert seen["handler"] is before  # nothing was installed

    def test_shutdown_requested_escapes_broad_except(self):
        # like KeyboardInterrupt: `except Exception` must not swallow it
        assert not issubclass(ShutdownRequested, Exception)
        assert issubclass(ShutdownRequested, BaseException)


class TestInstallAsyncShutdown:
    def test_callback_fires_exactly_once(self):
        fired = []

        async def go():
            loop = asyncio.get_running_loop()
            remove = install_async_shutdown(loop, fired.append)
            signal.raise_signal(signal.SIGTERM)
            await asyncio.sleep(0.05)
            signal.raise_signal(signal.SIGTERM)  # drain already under way
            await asyncio.sleep(0.05)
            remove()
            remove()  # idempotent

        asyncio.run(go())
        assert fired == [signal.SIGTERM]

    def test_remover_uninstalls_the_loop_handlers(self):
        async def go():
            loop = asyncio.get_running_loop()
            remove = install_async_shutdown(loop, lambda s: None)
            remove()
            # a fresh install must succeed after removal
            install_async_shutdown(loop, lambda s: None)()

        asyncio.run(go())
