"""Plan-time key validation against registered input schemas."""

import pytest

from repro import PaPar
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.errors import WorkflowError

ARGS = {"input_path": "/in", "output_path": "/out", "num_partitions": 2}


@pytest.fixture
def papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


class TestKeyValidation:
    def test_valid_workflows_plan(self, papar):
        papar.plan(BLAST_WORKFLOW_XML, ARGS)
        papar.plan(
            HYBRID_CUT_WORKFLOW_XML,
            {"input_file": "/in", "output_path": "/out", "num_partitions": 2, "threshold": 4},
        )

    def test_sort_key_typo_fails_at_plan_time(self, papar):
        xml = BLAST_WORKFLOW_XML.replace('value="seq_size"', 'value="seq_sizze"')
        with pytest.raises(WorkflowError, match="seq_sizze"):
            papar.plan(xml, ARGS)

    def test_error_lists_known_fields(self, papar):
        xml = BLAST_WORKFLOW_XML.replace('value="seq_size"', 'value="nope"')
        with pytest.raises(WorkflowError, match="seq_start"):
            papar.plan(xml, ARGS)

    def test_addon_attribute_is_available_downstream(self, papar):
        """The split keys on 'indegree', which only the count add-on adds."""
        papar.plan(
            HYBRID_CUT_WORKFLOW_XML,
            {"input_file": "/in", "output_path": "/out", "num_partitions": 2, "threshold": 4},
        )

    def test_split_on_unknown_attribute_fails(self, papar):
        xml = HYBRID_CUT_WORKFLOW_XML.replace(
            'attr="indegree"', 'attr="fanin"'
        )
        with pytest.raises(WorkflowError, match="indegree"):
            papar.plan(
                xml,
                {"input_file": "/in", "output_path": "/out", "num_partitions": 2,
                 "threshold": 4},
            )

    def test_unregistered_format_skips_validation(self):
        """Without a registered schema the plan succeeds (validated at run)."""
        papar = PaPar()  # nothing registered
        plan = papar.plan(
            BLAST_WORKFLOW_XML.replace('value="seq_size"', 'value="whatever"'), ARGS
        )
        assert plan.jobs[0].operator.key == "whatever"
