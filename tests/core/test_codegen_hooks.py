"""Code generation for user-defined operators (codegen_expr hook)."""

import numpy as np
import pytest

from repro.core.codegen import compile_partitioner, generate_partitioner_source
from repro.core.dataset import Dataset
from repro.core.planner import PlannedJob, WorkflowPlan
from repro.config.workflow import Bindings
from repro.errors import CodegenError
from repro.formats import EDGE_LIST_SCHEMA
from repro.ops import Distribute
from repro.ops.base import BasicOperator


class EveryOther(BasicOperator):
    """A user operator with codegen support (keeps even-positioned entries)."""

    name = "EveryOther"

    def __init__(self, offset: int = 0) -> None:
        self.offset = offset

    def apply_local(self, data: Dataset) -> Dataset:
        return data.take(np.arange(self.offset, len(data), 2))

    def codegen_expr(self) -> str:
        return f"EveryOther(offset={self.offset!r})"

    def codegen_imports(self) -> list[str]:
        return ["from tests.core.test_codegen_hooks import EveryOther"]


class NoHooks(BasicOperator):
    name = "NoHooks"

    def apply_local(self, data):
        return data


def make_plan(op) -> WorkflowPlan:
    jobs = [
        PlannedJob(op_id="pick", operator_name=type(op).__name__, operator=op,
                   source=None, output_paths=["/tmp/pick"]),
        PlannedJob(op_id="distr", operator_name="Distribute",
                   operator=Distribute("cyclic", 2), source="pick",
                   source_outputs=[0], output_paths=["/out"]),
    ]
    return WorkflowPlan(workflow_id="custom", jobs=jobs, env=Bindings())


class TestCodegenHooks:
    def test_source_includes_custom_expr_and_import(self):
        source = generate_partitioner_source(make_plan(EveryOther(offset=1)))
        assert "EveryOther(offset=1)" in source
        assert "from tests.core.test_codegen_hooks import EveryOther" in source
        compile(source, "<gen>", "exec")

    def test_generated_module_runs(self):
        module = compile_partitioner(make_plan(EveryOther(offset=0)))
        data = Dataset.from_rows(EDGE_LIST_SCHEMA, [(i, i + 1) for i in range(8)])
        result = module.run(data)
        kept = sorted(r[0] for p in result.partitions for r in p.rows())
        assert kept == [0, 2, 4, 6]

    def test_missing_hook_raises(self):
        with pytest.raises(CodegenError, match="codegen_expr"):
            generate_partitioner_source(make_plan(NoHooks()))

    def test_non_string_expr_rejected(self):
        class Bad(BasicOperator):
            name = "Bad"

            def apply_local(self, data):
                return data

            def codegen_expr(self):
                return 42

        with pytest.raises(CodegenError, match="string"):
            generate_partitioner_source(make_plan(Bad()))
