"""Property-based tests on the Dataset abstraction and schema algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import Dataset, concat
from repro.formats import EDGE_LIST_SCHEMA, Field, RecordSchema

edge_rows = st.lists(
    st.tuples(st.integers(0, 1000), st.integers(0, 50)), min_size=0, max_size=150
)


class TestDatasetProperties:
    @given(rows=edge_rows)
    def test_pack_unpack_preserves_records(self, rows):
        ds = Dataset.from_rows(EDGE_LIST_SCHEMA, rows) if rows else Dataset.from_array(
            EDGE_LIST_SCHEMA, np.empty(0, dtype=EDGE_LIST_SCHEMA.dtype)
        )
        flat_again = ds.to_packed("vertex_b").to_flat()
        assert sorted(flat_again.rows()) == sorted(ds.rows())
        assert flat_again.num_records == len(rows)

    @given(rows=edge_rows, k=st.integers(1, 10))
    def test_take_concat_roundtrip(self, rows, k):
        if not rows:
            return
        ds = Dataset.from_rows(EDGE_LIST_SCHEMA, rows)
        # split into k interleaved selections, then concatenate
        pieces = [ds.take(np.arange(i, len(ds), k)) for i in range(k)]
        merged = concat(pieces)
        assert sorted(merged.rows()) == sorted(ds.rows())

    @given(rows=edge_rows)
    def test_nbytes_consistent(self, rows):
        if not rows:
            return
        ds = Dataset.from_rows(EDGE_LIST_SCHEMA, rows)
        assert ds.nbytes == len(rows) * EDGE_LIST_SCHEMA.itemsize

    @given(rows=edge_rows)
    def test_column_matches_records(self, rows):
        if not rows:
            return
        ds = Dataset.from_rows(EDGE_LIST_SCHEMA, rows)
        np.testing.assert_array_equal(ds.column("vertex_a"), [r[0] for r in rows])


names = st.text(alphabet="abcdefgh_", min_size=1, max_size=8).filter(
    lambda s: s.isidentifier()
)


class TestSchemaAlgebraProperties:
    @settings(max_examples=50)
    @given(name=names)
    def test_with_without_field_roundtrip(self, name):
        base = EDGE_LIST_SCHEMA
        if base.has_field(name):
            return
        extended = base.with_field(name, "long")
        assert extended.has_field(name)
        assert extended.itemsize == base.itemsize + 8
        back = extended.without_field(name)
        assert back.dtype == base.dtype
        assert back.effective_delimiters() == base.effective_delimiters()

    @settings(max_examples=30)
    @given(field_names=st.lists(names, min_size=1, max_size=6, unique=True))
    def test_structured_roundtrip(self, field_names):
        schema = RecordSchema(
            id="gen",
            fields=tuple(Field(n, "long") for n in field_names),
            input_format="binary",
        )
        rows = [tuple(range(i, i + len(field_names))) for i in range(5)]
        arr = schema.to_structured(rows)
        assert [tuple(r) for r in arr] == rows
        assert schema.itemsize == 8 * len(field_names)
