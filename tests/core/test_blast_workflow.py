"""End-to-end muBLASTP partitioning workflow (Figures 8 and 9)."""

import numpy as np
import pytest

from repro import PaPar
from repro.cluster import ClusterModel, INFINIBAND_QDR
from repro.config import BLAST_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.formats import BLAST_INDEX_SCHEMA

#: the 12 index entries on the left of Figure 9
FIGURE9_INPUT = [
    (0, 94, 0, 74),
    (94, 192, 74, 89),
    (286, 99, 163, 109),
    (385, 91, 272, 107),
    (476, 90, 379, 111),
    (566, 51, 490, 120),
    (617, 72, 610, 118),
    (689, 94, 728, 71),
    (783, 64, 799, 91),
    (847, 99, 890, 113),
    (946, 95, 1003, 104),
    (1041, 79, 1107, 76),
]

#: the three output partitions on the right of Figure 9 (reducers of job 2)
FIGURE9_PARTITIONS = [
    [
        (566, 51, 490, 120),
        (1041, 79, 1107, 76),
        (0, 94, 0, 74),
        (286, 99, 163, 109),
    ],
    [
        (783, 64, 799, 91),
        (476, 90, 379, 111),
        (689, 94, 728, 71),
        (847, 99, 890, 113),
    ],
    [
        (617, 72, 610, 118),
        (385, 91, 272, 107),
        (946, 95, 1003, 104),
        (94, 192, 74, 89),
    ],
]


@pytest.fixture
def papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    return p


@pytest.fixture
def input_ds():
    return Dataset.from_rows(BLAST_INDEX_SCHEMA, FIGURE9_INPUT)


ARGS = {"input_path": "/in", "output_path": "/out", "num_partitions": 3}


class TestPlan:
    def test_two_jobs_wired(self, papar):
        plan = papar.plan(BLAST_WORKFLOW_XML, ARGS)
        assert [j.op_id for j in plan.jobs] == ["sort", "distr"]
        sort, distr = plan.jobs
        assert sort.operator_name == "Sort"
        assert sort.operator.key == "seq_size"
        assert sort.num_reducers == 3  # from the $num_reducers default
        assert distr.source == "sort"
        assert distr.operator.num_partitions == 3
        assert distr.operator.policy.name == "cyclic"  # roundRobin alias

    def test_num_partitions_flows_from_args(self, papar):
        plan = papar.plan(BLAST_WORKFLOW_XML, {**ARGS, "num_partitions": 7})
        assert plan.jobs[1].operator.num_partitions == 7

    def test_input_format_recorded(self, papar):
        plan = papar.plan(BLAST_WORKFLOW_XML, ARGS)
        assert plan.input_format_id == "blast_db"


class TestFigure9Serial:
    def test_exact_paper_partitions(self, papar, input_ds):
        result = papar.run(BLAST_WORKFLOW_XML, ARGS, data=input_ds)
        assert result.num_partitions == 3
        got = [p.rows() for p in result.partitions]
        assert got == FIGURE9_PARTITIONS


class TestFigure9MPI:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4])
    def test_mpi_matches_paper_partitions(self, papar, input_ds, ranks):
        result = papar.run(
            BLAST_WORKFLOW_XML, ARGS, data=input_ds, backend="mpi", num_ranks=ranks
        )
        got = [p.rows() for p in result.partitions]
        assert got == FIGURE9_PARTITIONS

    def test_virtual_time_reported_with_cluster(self, papar, input_ds):
        cluster = ClusterModel(num_nodes=2, ranks_per_node=2, network=INFINIBAND_QDR)
        result = papar.run(
            BLAST_WORKFLOW_XML,
            ARGS,
            data=input_ds,
            backend="mpi",
            num_ranks=4,
            cluster=cluster,
        )
        assert result.elapsed > 0
        assert result.bytes_moved > 0


class TestGeneratedCode:
    def test_source_is_valid_python_with_literals(self, papar):
        plan = papar.plan(BLAST_WORKFLOW_XML, ARGS)
        source = papar.generate_code(plan)
        compile(source, "<gen>", "exec")
        assert "Sort(key='seq_size', ascending=True)" in source
        assert "num_partitions=3" in source

    def test_generated_equals_interpreted_serial(self, papar, input_ds):
        plan = papar.plan(BLAST_WORKFLOW_XML, ARGS)
        module = papar.compile(plan)
        gen = module.run(input_ds, backend="serial")
        ref = papar.run(BLAST_WORKFLOW_XML, ARGS, data=input_ds)
        assert [p.rows() for p in gen.partitions] == [p.rows() for p in ref.partitions]

    def test_generated_equals_interpreted_mpi(self, papar, input_ds):
        plan = papar.plan(BLAST_WORKFLOW_XML, ARGS)
        module = papar.compile(plan)
        gen = module.run(input_ds, backend="mpi", num_ranks=3)
        assert [p.rows() for p in gen.partitions] == FIGURE9_PARTITIONS

    def test_unknown_backend_rejected(self, papar, input_ds):
        plan = papar.plan(BLAST_WORKFLOW_XML, ARGS)
        module = papar.compile(plan)
        with pytest.raises(ValueError):
            module.run(input_ds, backend="quantum")

    def test_write_partitioner(self, papar, tmp_path):
        from repro.core import write_partitioner

        plan = papar.plan(BLAST_WORKFLOW_XML, ARGS)
        out = tmp_path / "partitioner.py"
        source = write_partitioner(plan, out)
        assert out.read_text() == source


class TestScaleInvariance:
    """Partitions must not depend on rank count (paper: same partitions)."""

    @pytest.mark.parametrize("ranks", [2, 5, 8])
    def test_partitions_identical_across_rank_counts(self, papar, ranks):
        rng = np.random.default_rng(7)
        rows = []
        pos = 0
        for i in range(200):
            size = int(rng.integers(20, 500))
            rows.append((pos, size, pos, 50))
            pos += size
        ds = Dataset.from_rows(BLAST_INDEX_SCHEMA, rows)
        args = {**ARGS, "num_partitions": 8}
        ref = papar.run(BLAST_WORKFLOW_XML, args, data=ds)
        mpi = papar.run(BLAST_WORKFLOW_XML, args, data=ds, backend="mpi", num_ranks=ranks)
        assert [p.rows() for p in mpi.partitions] == [p.rows() for p in ref.partitions]
