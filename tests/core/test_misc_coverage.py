"""Coverage for remaining framework paths: input_format getter, custom
operators through the distributed runtimes, search significance."""

import numpy as np
import pytest

from repro import PaPar
from repro.blast import PartitionIndex, generate_database, generate_index, write_index
from repro.config import BLAST_INPUT_XML
from repro.config.workflow import Bindings
from repro.core.dataset import Dataset
from repro.core.planner import PlannedJob, WorkflowPlan
from repro.core.runtime import MPIRuntime
from repro.errors import ConfigError
from repro.formats import BLAST_INDEX_SCHEMA, EDGE_LIST_SCHEMA
from repro.ops import Distribute
from repro.ops.base import BasicOperator


class TestFrameworkHelpers:
    def test_input_format_getter(self, tmp_path):
        index = generate_index("env_nr", num_sequences=50, seed=1)
        path = tmp_path / "db.index"
        from repro.blast.database import SequenceDatabase  # noqa: F401 - context

        from repro.formats import write_binary

        write_binary(path, index, BLAST_INDEX_SCHEMA, header=b"\x00" * 32)
        papar = PaPar()
        papar.register_input(BLAST_INPUT_XML)
        fmt = papar.input_format(path, "blast_db")
        assert fmt.num_records == 50

    def test_schema_lookup_unknown(self):
        with pytest.raises(ConfigError, match="registered"):
            PaPar().schema("nothing")

    def test_register_schema_programmatically(self):
        papar = PaPar()
        papar.register_schema(EDGE_LIST_SCHEMA)
        assert papar.schema("graph_edge") is EDGE_LIST_SCHEMA

    def test_write_index_roundtrip(self, tmp_path):
        db = generate_database("env_nr", num_sequences=20, seed=2)
        path = tmp_path / "db.index"
        write_index(path, db)
        from repro.formats import read_binary

        back = read_binary(path, BLAST_INDEX_SCHEMA)
        np.testing.assert_array_equal(back["seq_size"], db.seq_size)


class Head(BasicOperator):
    """Custom operator: keep the first n entries."""

    name = "Head"

    def __init__(self, n: int) -> None:
        self.n = n

    def apply_local(self, data: Dataset) -> Dataset:
        return data.take(np.arange(min(self.n, len(data))))


class TestCustomOperatorThroughRuntimes:
    def make_plan(self):
        jobs = [
            PlannedJob(op_id="head", operator_name="Head", operator=Head(4),
                       source=None, output_paths=["/tmp/head"]),
            PlannedJob(op_id="distr", operator_name="Distribute",
                       operator=Distribute("cyclic", 2), source="head",
                       source_outputs=[0], output_paths=["/out"]),
        ]
        return WorkflowPlan(workflow_id="custom", jobs=jobs, env=Bindings())

    def test_custom_op_mpi_runtime(self):
        data = Dataset.from_rows(EDGE_LIST_SCHEMA, [(i, i) for i in range(10)])
        result = MPIRuntime(num_ranks=2).execute(self.make_plan(), data)
        # each rank keeps its local head(4): with 5+5 split, 4+4 survive
        total = sum(p.num_records for p in result.partitions)
        assert total == 8

    def test_custom_op_serial_runtime(self):
        from repro.core.runtime import SerialRuntime

        data = Dataset.from_rows(EDGE_LIST_SCHEMA, [(i, i) for i in range(10)])
        result = SerialRuntime().execute(self.make_plan(), data)
        assert sum(p.num_records for p in result.partitions) == 4


class TestSearchSignificance:
    def test_self_match_significant(self):
        db = generate_database("env_nr", num_sequences=60, seed=3)
        index = PartitionIndex(db)
        query = db.sequence(int(np.argmax(db.seq_size))).copy()
        result = index.search(query)
        assert result.is_significant(len(query), db.total_residues)
        assert result.e_value(len(query), db.total_residues) < 1e-6

    def test_no_hit_not_significant(self):
        from repro.blast import encode

        db = generate_database("env_nr", num_sequences=5, seed=4)
        index = PartitionIndex(db)
        result = index.search(encode("WWW"))
        assert not result.is_significant(3, db.total_residues)
