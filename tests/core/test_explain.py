"""Plan DOT rendering and cost prediction."""

import re
from types import SimpleNamespace

import numpy as np
import pytest

from repro import PaPar
from repro.blast import generate_index
from repro.cluster import ClusterModel, INFINIBAND_QDR
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.core.explain import estimate_plan_cost, plan_to_dot
from repro.errors import WorkflowError
from repro.formats import BLAST_INDEX_SCHEMA

ARGS = {"input_path": "/in", "output_path": "/out", "num_partitions": 8}


@pytest.fixture
def papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


class TestDot:
    def test_blast_plan_dot(self, papar):
        plan = papar.plan(BLAST_WORKFLOW_XML, ARGS)
        dot = plan_to_dot(plan)
        assert dot.startswith('digraph "blast_partition"')
        assert '"input" -> "sort"' in dot
        assert '"sort" -> "distr"' in dot
        assert '"distr" -> partitions' in dot

    def test_hybrid_plan_dot(self, papar):
        plan = papar.plan(
            HYBRID_CUT_WORKFLOW_XML,
            {"input_file": "/in", "output_path": "/out", "num_partitions": 4,
             "threshold": 4},
        )
        dot = plan_to_dot(plan)
        assert '"group" -> "split"' in dot
        assert '"split" -> "distr"' in dot

    def test_ids_with_quotes_and_backslashes_are_escaped(self):
        """Hostile ids must not break out of DOT string literals."""
        job = SimpleNamespace(
            op_id='so"rt', operator_name="Sort\\Stable", source=None
        )
        plan = SimpleNamespace(
            workflow_id='w"f\\1', jobs=[job], final_job=job
        )
        dot = plan_to_dot(plan)
        assert dot.startswith('digraph "w\\"f\\\\1"')
        assert '"so\\"rt"' in dot
        assert 'label="so\\"rt\\n(Sort\\\\Stable)"' in dot
        # every quote inside a string literal is escaped
        for line in dot.splitlines():
            body = line.strip()
            unescaped = re.sub(r'\\.', "", body)
            assert unescaped.count('"') % 2 == 0, line


class TestCostEstimate:
    def test_breakdown_renders(self, papar):
        plan = papar.plan(BLAST_WORKFLOW_XML, ARGS)
        cluster = ClusterModel(num_nodes=4, ranks_per_node=2, network=INFINIBAND_QDR)
        est = estimate_plan_cost(plan, num_records=1_000_000, record_bytes=16,
                                 cluster=cluster)
        assert len(est.jobs) == 2
        assert est.total_s > 0
        text = est.breakdown()
        assert "sort" in text and "TOTAL" in text

    def test_estimate_tracks_measured_virtual_time(self, papar):
        """The prediction lands within a small factor of an actual run."""
        n = 400_000
        index = generate_index("env_nr", num_sequences=n, seed=9)
        cluster = ClusterModel(num_nodes=4, ranks_per_node=2, network=INFINIBAND_QDR)
        plan = papar.plan(BLAST_WORKFLOW_XML, ARGS)
        est = estimate_plan_cost(plan, num_records=n, record_bytes=16, cluster=cluster)
        measured = papar.run(
            plan,
            data=Dataset.from_array(BLAST_INDEX_SCHEMA, index),
            backend="mpi",
            num_ranks=8,
            cluster=cluster,
        ).elapsed
        assert est.total_s == pytest.approx(measured, rel=1.5)
        assert 0.2 < est.total_s / measured < 5.0

    def test_more_nodes_less_predicted_time(self, papar):
        plan = papar.plan(BLAST_WORKFLOW_XML, ARGS)
        small = ClusterModel(num_nodes=1, ranks_per_node=2, network=INFINIBAND_QDR)
        big = ClusterModel(num_nodes=16, ranks_per_node=2, network=INFINIBAND_QDR)
        t_small = estimate_plan_cost(plan, 4_000_000, 16, small).total_s
        t_big = estimate_plan_cost(plan, 4_000_000, 16, big).total_s
        assert t_big < t_small

    def test_validation(self, papar):
        plan = papar.plan(BLAST_WORKFLOW_XML, ARGS)
        cluster = ClusterModel(num_nodes=1)
        with pytest.raises(WorkflowError):
            estimate_plan_cost(plan, -1, 16, cluster)
        with pytest.raises(WorkflowError):
            estimate_plan_cost(plan, 10, 0, cluster)
