"""`papar optimize` and the `--optimize` flags, end to end over the CLI.

These tests drive the same entry point a user does (``repro.cli.main``)
on the shipped configurations: the optimize report in text and JSON, the
``plan --optimize`` preamble, ``run --optimize`` writing bit-identical
part files while ``--stats`` reports the pruned shuffle, and
``lint --explain`` teaching the applied rewrite for every PAP08x code.
"""

import json
from pathlib import Path

import pytest

from repro.blast import generate_index
from repro.cli import main
from repro.formats import BLAST_INDEX_SCHEMA, write_binary

REPO = Path(__file__).resolve().parents[2]
WORKFLOW = str(REPO / "configs" / "blast_partition.xml")
INPUT_CFG = str(REPO / "configs" / "blast_db.xml")


@pytest.fixture
def blast_file(tmp_path):
    index = generate_index("env_nr", num_sequences=300, seed=5)
    path = tmp_path / "db.index"
    write_binary(path, index, BLAST_INDEX_SCHEMA, header=b"\x00" * 32)
    return path


def optimize_args(extra=()):
    return ["optimize", WORKFLOW, "--input", INPUT_CFG,
            "--assume-records", "1000"] + list(extra)


class TestOptimizeCommand:
    def test_text_report_on_shipped_blast(self, capsys):
        assert main(optimize_args()) == 0
        out = capsys.readouterr().out
        assert "optimize workflow 'blast_partition'" in out
        assert "PAP083 column-pruning" in out
        assert "== original plan ==" in out
        assert "== optimized plan ==" in out

    def test_json_report_on_shipped_blast(self, capsys):
        assert main(optimize_args(["--format", "json"])) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["tool"] == "papar-optimize"
        assert doc["workflow"] == "blast_partition"
        summary = doc["summary"]
        # the shipped pipeline is structurally minimal but prunable
        assert summary["rewrites"] == []
        assert summary["pruning"]["live"] == ["seq_size"]
        assert summary["est_bytes_after"] < summary["est_bytes_before"]

    def test_hybrid_cut_is_already_minimal(self, capsys):
        rc = main([
            "optimize", str(REPO / "configs" / "hybrid_cut.xml"),
            "--input", str(REPO / "configs" / "graph_edge.xml"),
            "--assume-records", "1000", "--format", "json",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["changed"] is False
        assert doc["summary"]["rewrites"] == []

    def test_memory_budget_refuses_pruning(self, capsys):
        assert main(optimize_args(["--memory-budget", "64MB"])) == 0
        out = capsys.readouterr().out
        assert "plan already minimal: no rewrite fired" in out
        assert "out-of-core" in out


class TestPlanRunOptimize:
    def base_args(self, blast_file, tmp_path):
        return [
            "--workflow", WORKFLOW,
            "--input-config", INPUT_CFG,
            "--arg", f"input_path={blast_file}",
            "--arg", f"output_path={tmp_path / 'out'}",
            "--arg", "num_partitions=4",
        ]

    def test_plan_optimize_prints_summary(self, blast_file, tmp_path, capsys):
        rc = main(["plan"] + self.base_args(blast_file, tmp_path) + ["--optimize"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimizer: 0 rewrite(s), 0 exchange(s) removed, columns pruned" in out
        assert "2 job(s)" in out

    @pytest.mark.parametrize("backend", ["serial", "mpi", "mapreduce", "process"])
    def test_run_optimize_bit_identical_part_files(
        self, blast_file, tmp_path, capsys, backend
    ):
        plain_dir = tmp_path / "plain"
        opt_dir = tmp_path / "opt"
        base = [
            "--workflow", WORKFLOW,
            "--input-config", INPUT_CFG,
            "--arg", f"input_path={blast_file}",
            "--arg", "num_partitions=4",
            "--backend", backend, "--ranks", "2",
        ]
        assert main(["run"] + base + ["--arg", f"output_path={plain_dir}"]) == 0
        assert main(["run"] + base + ["--arg", f"output_path={opt_dir}",
                                      "--optimize"]) == 0
        plain = sorted(p.name for p in plain_dir.iterdir())
        assert plain == sorted(p.name for p in opt_dir.iterdir())
        for name in plain:
            assert (plain_dir / name).read_bytes() == (opt_dir / name).read_bytes()

    def test_run_optimize_stats_reports_pruning(self, blast_file, tmp_path, capsys):
        rc = main(
            ["run"] + self.base_args(blast_file, tmp_path)
            + ["--optimize", "--stats", "--backend", "mpi", "--ranks", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote 4 partition(s)" in out
        assert "optimizer: passes fired: column-pruning" in out
        assert "PAP083 column-pruning (applied)" in out
        assert "measured shuffle payload:" in out


class TestLintExplainAdvisories:
    @pytest.mark.parametrize("code", ["PAP080", "PAP081", "PAP082", "PAP083"])
    def test_explain_shows_applied_rewrite(self, capsys, code):
        assert main(["lint", "--explain", code]) == 0
        out = capsys.readouterr().out
        assert "applied rewrite" in out

    def test_explain_pap084_points_at_optimizer(self, capsys):
        assert main(["lint", "--explain", "PAP084"]) == 0
        assert "papar optimize" in capsys.readouterr().out
