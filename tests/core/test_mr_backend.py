"""The MapReduce backend: same partitions as the serial and MPI backends."""

import numpy as np
import pytest

from repro import PaPar
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.core import MapReduceRuntime
from repro.core.dataset import Dataset
from repro.errors import WorkflowError
from repro.formats import BLAST_INDEX_SCHEMA, EDGE_LIST_SCHEMA


@pytest.fixture
def papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


@pytest.fixture
def blast_data():
    rng = np.random.default_rng(3)
    rows = []
    pos = 0
    for _ in range(300):
        size = int(rng.integers(20, 400))
        rows.append((pos, size, pos, 50))
        pos += size
    return Dataset.from_rows(BLAST_INDEX_SCHEMA, rows)


@pytest.fixture
def edge_data():
    rng = np.random.default_rng(5)
    targets = rng.zipf(1.9, size=600) % 40
    sources = rng.integers(40, 200, size=600)
    edges = sorted({(int(s), int(t)) for s, t in zip(sources, targets)})
    return Dataset.from_rows(EDGE_LIST_SCHEMA, edges)


BLAST_ARGS = {"input_path": "/in", "output_path": "/out", "num_partitions": 6}
HYBRID_ARGS = {
    "input_file": "/in",
    "output_path": "/out",
    "num_partitions": 5,
    "threshold": 8,
}


class TestThreeBackendEquivalence:
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_blast_workflow(self, papar, blast_data, ranks):
        serial = papar.run(BLAST_WORKFLOW_XML, BLAST_ARGS, data=blast_data)
        mr = papar.run(
            BLAST_WORKFLOW_XML, BLAST_ARGS, data=blast_data,
            backend="mapreduce", num_ranks=ranks,
        )
        assert [p.rows() for p in mr.partitions] == [p.rows() for p in serial.partitions]

    @pytest.mark.parametrize("ranks", [1, 3, 4])
    def test_hybrid_workflow(self, papar, edge_data, ranks):
        serial = papar.run(HYBRID_CUT_WORKFLOW_XML, HYBRID_ARGS, data=edge_data)
        mr = papar.run(
            HYBRID_CUT_WORKFLOW_XML, HYBRID_ARGS, data=edge_data,
            backend="mapreduce", num_ranks=ranks,
        )
        assert [p.rows() for p in mr.partitions] == [p.rows() for p in serial.partitions]

    def test_mapreduce_equals_mpi(self, papar, blast_data):
        mpi = papar.run(
            BLAST_WORKFLOW_XML, BLAST_ARGS, data=blast_data, backend="mpi", num_ranks=3
        )
        mr = papar.run(
            BLAST_WORKFLOW_XML, BLAST_ARGS, data=blast_data,
            backend="mapreduce", num_ranks=3,
        )
        assert [p.rows() for p in mr.partitions] == [p.rows() for p in mpi.partitions]


class TestMapReduceRuntimeDetails:
    def test_virtual_time_with_cluster(self, papar, blast_data):
        from repro.cluster import ClusterModel, INFINIBAND_QDR

        cluster = ClusterModel(num_nodes=2, ranks_per_node=2, network=INFINIBAND_QDR)
        result = papar.run(
            BLAST_WORKFLOW_XML, BLAST_ARGS, data=blast_data,
            backend="mapreduce", num_ranks=4, cluster=cluster,
        )
        assert result.elapsed > 0
        assert result.bytes_moved > 0

    def test_cluster_size_mismatch(self):
        from repro.cluster import ClusterModel

        with pytest.raises(WorkflowError, match="cluster"):
            MapReduceRuntime(num_ranks=3, cluster=ClusterModel(num_nodes=2, ranks_per_node=2))

    def test_unknown_backend_rejected(self, papar, blast_data):
        with pytest.raises(WorkflowError, match="backend"):
            papar.run(BLAST_WORKFLOW_XML, BLAST_ARGS, data=blast_data, backend="spark")

    @pytest.mark.parametrize("num_reducers", [1, 3, 7])
    def test_num_reducers_does_not_change_partitions(self, papar, blast_data, num_reducers):
        """Figure 8 pins num_reducers=3; partitions must not depend on it."""
        xml = BLAST_WORKFLOW_XML.replace('value="3"', f'value="{num_reducers}"')
        serial = papar.run(BLAST_WORKFLOW_XML, BLAST_ARGS, data=blast_data)
        mr = papar.run(xml, BLAST_ARGS, data=blast_data, backend="mapreduce", num_ranks=4)
        assert [p.rows() for p in mr.partitions] == [p.rows() for p in serial.partitions]

    def test_block_policy_through_mapreduce(self, papar, blast_data):
        from tests.integration.test_same_partitions import BLOCK_WORKFLOW_XML

        serial = papar.run(BLOCK_WORKFLOW_XML, BLAST_ARGS, data=blast_data)
        mr = papar.run(
            BLOCK_WORKFLOW_XML, BLAST_ARGS, data=blast_data,
            backend="mapreduce", num_ranks=4,
        )
        assert [p.rows() for p in mr.partitions] == [p.rows() for p in serial.partitions]
