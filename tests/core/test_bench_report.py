"""Experiment harness and report aggregation."""

import pytest

from repro.bench import Experiment, Reporter, format_table, shape
from repro.bench.report import load_experiments, render_report
from repro.errors import PaParError


class TestFormatTable:
    def test_alignment(self):
        rows = [{"name": "a", "value": 1.23456}, {"name": "longer", "value": 2}]
        table = format_table(rows)
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in table  # 4 significant digits

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]


class TestExperimentAndReporter:
    def test_record_writes_artifacts(self, tmp_path):
        reporter = Reporter(str(tmp_path))
        exp = Experiment("Figure X", "demo")
        exp.add(metric=1.0, label="one")
        exp.note("a note")
        text = reporter.record(exp)
        assert "Figure X" in text
        assert (tmp_path / "figure_x.txt").exists()
        assert (tmp_path / "figure_x.json").exists()

    def test_shape_helper(self):
        shape(True, "fine")
        with pytest.raises(PaParError, match="violation"):
            shape(False, "broken claim")


class TestReport:
    def test_roundtrip_through_json(self, tmp_path):
        reporter = Reporter(str(tmp_path))
        for i in range(3):
            exp = Experiment(f"Exp {i}", f"title {i}")
            exp.add(x=i)
            reporter.record(exp)
        loaded = load_experiments(str(tmp_path))
        assert [e.id for e in loaded] == ["Exp 0", "Exp 1", "Exp 2"]
        report = render_report(str(tmp_path))
        assert "3 experiments" in report
        assert "title 2" in report

    def test_missing_dir(self, tmp_path):
        report = render_report(str(tmp_path / "nope"))
        assert "no recorded experiments" in report
