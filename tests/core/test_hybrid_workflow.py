"""End-to-end PowerLyra hybrid-cut workflow (Figures 10 and 11)."""

import numpy as np
import pytest

from repro import PaPar
from repro.config import EDGE_INPUT_XML
from repro.config.examples import HYBRID_CUT_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.formats import EDGE_LIST_SCHEMA

#: toy graph in the spirit of Figures 2/11: vertex 1 is high-degree
#: (in-edges from 2,3,4,5), vertices 2, 6 and 7 are low-degree.
EDGES = [
    (2, 1),
    (3, 1),
    (4, 1),
    (5, 1),
    (1, 2),
    (3, 2),
    (1, 6),
    (4, 7),
]

ARGS = {
    "input_file": "/in",
    "output_path": "/out",
    "num_partitions": 3,
    "threshold": 4,
}


@pytest.fixture
def papar():
    p = PaPar()
    p.register_input(EDGE_INPUT_XML)
    return p


@pytest.fixture
def edges_ds():
    return Dataset.from_rows(EDGE_LIST_SCHEMA, EDGES)


class TestPlan:
    def test_three_jobs_wired(self, papar):
        plan = papar.plan(HYBRID_CUT_WORKFLOW_XML, ARGS)
        assert [j.op_id for j in plan.jobs] == ["group", "split", "distr"]
        group, split, distr = plan.jobs
        assert group.operator.key == "vertex_b"
        assert group.operator.output_format == "pack"
        assert group.operator.added_attrs == ["indegree"]
        # split consumes the group output and routes on the added attribute
        assert split.source == "group"
        assert split.operator.key == "indegree"
        assert split.operator.policy.num_outputs == 2
        # distribute consumes BOTH split outputs via the /tmp/split/ directory
        assert distr.source == "split"
        assert distr.source_outputs == [0, 1]
        assert distr.operator.policy.name == "graphVertexCut"

    def test_threshold_resolved_into_policy(self, papar):
        plan = papar.plan(HYBRID_CUT_WORKFLOW_XML, {**ARGS, "threshold": 200})
        conditions = plan.jobs[1].operator.policy.conditions
        assert conditions[0].op == ">=" and conditions[0].operand == 200
        assert conditions[1].op == "<" and conditions[1].operand == 200


class TestHybridCutSemantics:
    def test_partitions_cover_all_edges(self, papar, edges_ds):
        result = papar.run(HYBRID_CUT_WORKFLOW_XML, ARGS, data=edges_ds)
        assert result.num_partitions == 3
        all_rows = sorted(
            tuple(r)[:2] for p in result.partitions for r in p.to_flat().records
        )
        assert all_rows == sorted(EDGES)

    def test_low_degree_vertices_kept_whole(self, papar, edges_ds):
        """Low-cut: a vertex and ALL its in-edges land on one partition."""
        result = papar.run(HYBRID_CUT_WORKFLOW_XML, ARGS, data=edges_ds)
        for vertex in (2, 6, 7):  # indegree < 4
            owners = [
                i
                for i, p in enumerate(result.partitions)
                if vertex in p.to_flat().records["vertex_b"]
            ]
            assert len(owners) == 1, f"low-degree vertex {vertex} was split"

    def test_high_degree_vertex_spread(self, papar, edges_ds):
        """High-cut: vertex 1's four in-edges spread across partitions."""
        result = papar.run(HYBRID_CUT_WORKFLOW_XML, ARGS, data=edges_ds)
        owners = {
            i
            for i, p in enumerate(result.partitions)
            if 1 in p.to_flat().records["vertex_b"]
        }
        assert len(owners) == 3  # 4 edges dealt over 3 partitions

    def test_output_is_unpacked_original_format(self, papar, edges_ds):
        """The final output has the input's flat edge format."""
        result = papar.run(HYBRID_CUT_WORKFLOW_XML, ARGS, data=edges_ds)
        for p in result.partitions:
            assert not p.is_packed

    def test_everything_low_degree_with_huge_threshold(self, papar, edges_ds):
        result = papar.run(
            HYBRID_CUT_WORKFLOW_XML, {**ARGS, "threshold": 1000}, data=edges_ds
        )
        for vertex in set(e[1] for e in EDGES):
            owners = [
                i
                for i, p in enumerate(result.partitions)
                if vertex in p.to_flat().records["vertex_b"]
            ]
            assert len(owners) == 1


class TestMPIEquivalence:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4])
    def test_mpi_matches_serial(self, papar, edges_ds, ranks):
        ref = papar.run(HYBRID_CUT_WORKFLOW_XML, ARGS, data=edges_ds)
        mpi = papar.run(
            HYBRID_CUT_WORKFLOW_XML, ARGS, data=edges_ds, backend="mpi", num_ranks=ranks
        )
        assert [p.rows() for p in mpi.partitions] == [p.rows() for p in ref.partitions]

    def test_larger_powerlaw_graph(self, papar):
        rng = np.random.default_rng(11)
        # skewed in-degrees: a few hubs, many leaves
        targets = rng.zipf(1.8, size=800) % 50
        sources = rng.integers(50, 300, size=800)
        edges = list({(int(s), int(t)) for s, t in zip(sources, targets)})
        edges.sort()
        ds = Dataset.from_rows(EDGE_LIST_SCHEMA, edges)
        args = {**ARGS, "threshold": 10, "num_partitions": 8}
        ref = papar.run(HYBRID_CUT_WORKFLOW_XML, args, data=ds)
        mpi = papar.run(HYBRID_CUT_WORKFLOW_XML, args, data=ds, backend="mpi", num_ranks=4)
        assert [p.rows() for p in mpi.partitions] == [p.rows() for p in ref.partitions]


class TestGeneratedCode:
    def test_generated_source_content(self, papar):
        plan = papar.plan(HYBRID_CUT_WORKFLOW_XML, ARGS)
        source = papar.generate_code(plan)
        compile(source, "<gen>", "exec")
        assert "get_addon('count')" in source
        assert "SplitPolicy.parse" in source
        assert "graphVertexCut" in source

    def test_generated_equals_interpreted(self, papar, edges_ds):
        plan = papar.plan(HYBRID_CUT_WORKFLOW_XML, ARGS)
        module = papar.compile(plan)
        gen = module.run(edges_ds, backend="serial")
        ref = papar.run(HYBRID_CUT_WORKFLOW_XML, ARGS, data=edges_ds)
        assert [p.rows() for p in gen.partitions] == [p.rows() for p in ref.partitions]
