"""The chaos harness: seeded fault schedules must never change the answer.

For each case-study workflow (BLAST sort-based partitioning, hybrid-cut
graph partitioning) and 20 seeded random fault schedules — spanning rank
crashes, message drops / duplicates / delays / corruption, and stragglers —
the retried, checkpoint-resumed run must complete and produce partitions
bit-identical to a fault-free run at the same rank count.  A fault-free run
with fault tolerance merely *configured* must show zero overhead in its
perf counters and simulated time.
"""

import numpy as np
import pytest

from repro import PaPar
from repro.cluster import ClusterModel, INFINIBAND_QDR
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.fault import FaultSchedule, MemoryCheckpointStore, RetryPolicy

NUM_SEEDS = 20
RANK_CYCLE = (1, 4, 8)
#: generous retry budget: every random fault has a finite firing cap, so a
#: handful of attempts always reaches a fault-free execution
RETRY = RetryPolicy(max_attempts=8, base_delay_s=0.01, jitter=0.5)
#: short blocked-wait budget so dropped messages fail fast (wall-clock)
GRACE = 0.5


def blast_data(n=200):
    rng = np.random.default_rng(71)
    from repro.core.dataset import Dataset
    from repro.formats import BLAST_INDEX_SCHEMA

    rows = [(i, int(s), i, 40) for i, s in enumerate(rng.integers(10, 800, size=n))]
    return Dataset.from_rows(BLAST_INDEX_SCHEMA, rows)


def hybrid_data(n=200):
    rng = np.random.default_rng(5)
    from repro.core.dataset import Dataset
    from repro.formats import EDGE_LIST_SCHEMA

    targets = rng.zipf(1.8, size=n) % 30
    sources = rng.integers(30, 150, size=n)
    edges = sorted({(int(s), int(t)) for s, t in zip(sources, targets)})
    return Dataset.from_rows(EDGE_LIST_SCHEMA, edges)


CASES = {
    "blast": dict(
        workflow=BLAST_WORKFLOW_XML,
        args={"input_path": "/in", "output_path": "/out", "num_partitions": 6},
        data=blast_data,
    ),
    "hybrid": dict(
        workflow=HYBRID_CUT_WORKFLOW_XML,
        args={"input_file": "/in", "output_path": "/out",
              "num_partitions": 5, "threshold": 6},
        data=hybrid_data,
    ),
}

#: fault-free reference partitions, cached per (case, ranks) — 6 combinations
_BASELINES: dict = {}
_DATA: dict = {}


def make_papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


def case_data(case):
    if case not in _DATA:
        _DATA[case] = CASES[case]["data"]()
    return _DATA[case]


def baseline_rows(papar, case, ranks):
    key = (case, ranks)
    if key not in _BASELINES:
        result = papar.run(
            CASES[case]["workflow"], CASES[case]["args"], data=case_data(case),
            backend="mpi", num_ranks=ranks,
        )
        _BASELINES[key] = [p.rows() for p in result.partitions]
    return _BASELINES[key]


class TestChaosHarness:
    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("seed", range(NUM_SEEDS))
    def test_seeded_fault_schedule_recovers_bit_identically(self, case, seed):
        papar = make_papar()
        ranks = RANK_CYCLE[seed % len(RANK_CYCLE)]
        plan = papar.plan(CASES[case]["workflow"], CASES[case]["args"])
        schedule = FaultSchedule.random(seed, size=ranks, num_jobs=len(plan.jobs))
        result = papar.run(
            plan, data=case_data(case), backend="mpi", num_ranks=ranks,
            faults=schedule, checkpoint=MemoryCheckpointStore(), retry=RETRY,
            chaos_seed=seed, deadlock_grace=GRACE,
        )
        assert [p.rows() for p in result.partitions] == baseline_rows(
            papar, case, ranks
        )
        report = result.extra["fault"]
        assert report["attempts"] >= 1
        assert report["attempts"] <= RETRY.max_attempts
        assert len(report["failures"]) == report["attempts"] - 1
        assert report["backoff_virtual_s"] >= 0.0
        assert report["injected"]["seed"] == seed
        if report["attempts"] > 1:
            # every retry was caused by something: a fired fault or a deadlock
            assert report["failures"]

    def test_harness_is_not_vacuous(self):
        """Across the seed range, faults really fire and retries really happen."""
        fired = 0
        retried = 0
        papar = make_papar()
        for seed in range(NUM_SEEDS):
            ranks = RANK_CYCLE[seed % len(RANK_CYCLE)]
            plan = papar.plan(CASES["blast"]["workflow"], CASES["blast"]["args"])
            schedule = FaultSchedule.random(seed, size=ranks, num_jobs=len(plan.jobs))
            result = papar.run(
                plan, data=case_data("blast"), backend="mpi", num_ranks=ranks,
                faults=schedule, checkpoint=MemoryCheckpointStore(), retry=RETRY,
                chaos_seed=seed, deadlock_grace=GRACE,
            )
            report = result.extra["fault"]
            fired += sum(report["injected"]["counts"].values())
            retried += report["attempts"] - 1
        assert fired > 0, "no fault ever fired: the chaos harness tests nothing"
        assert retried > 0, "no run ever needed a retry"


class TestDeterministicRecovery:
    def test_crash_recovers_from_checkpointed_prefix(self):
        """Single rank: job 0 commits, the crash at job 1 resumes past it."""
        papar = make_papar()
        plan = papar.plan(CASES["blast"]["workflow"], CASES["blast"]["args"])
        result = papar.run(
            plan, data=case_data("blast"), backend="mpi", num_ranks=1,
            faults="crash:rank=0,job=1,when=before",
            checkpoint=MemoryCheckpointStore(),
            retry=RETRY, deadlock_grace=GRACE,
        )
        assert [p.rows() for p in result.partitions] == baseline_rows(
            papar, "blast", 1
        )
        report = result.extra["fault"]
        assert report["attempts"] == 2
        assert report["recovered_jobs"] == [plan.jobs[0].op_id]
        assert report["injected"]["counts"] == {"crash": 1}
        assert report["backoff_virtual_s"] > 0.0
        # the backoff is charged to the simulated makespan
        assert result.elapsed >= report["backoff_virtual_s"]

    def test_multirank_crash_recovers(self):
        papar = make_papar()
        result = papar.run(
            CASES["hybrid"]["workflow"], CASES["hybrid"]["args"],
            data=case_data("hybrid"), backend="mpi", num_ranks=4,
            faults="crash:rank=2,job=1,when=after",
            checkpoint=MemoryCheckpointStore(),
            retry=RETRY, deadlock_grace=GRACE,
        )
        assert [p.rows() for p in result.partitions] == baseline_rows(
            papar, "hybrid", 4
        )
        assert result.extra["fault"]["attempts"] == 2

    @pytest.mark.parametrize("seed", [1, 2, 3, 5, 8])
    def test_mapreduce_backend_survives_chaos(self, seed):
        papar = make_papar()
        plan = papar.plan(CASES["blast"]["workflow"], CASES["blast"]["args"])
        schedule = FaultSchedule.random(seed, size=4, num_jobs=len(plan.jobs))
        baseline = papar.run(
            plan, data=case_data("blast"), backend="mapreduce", num_ranks=4,
        )
        result = papar.run(
            plan, data=case_data("blast"), backend="mapreduce", num_ranks=4,
            faults=schedule, checkpoint=MemoryCheckpointStore(), retry=RETRY,
            chaos_seed=seed, deadlock_grace=GRACE,
        )
        assert [p.rows() for p in result.partitions] == [
            p.rows() for p in baseline.partitions
        ]
        assert result.extra["fault"]["attempts"] >= 1


class TestZeroOverheadWhenFaultFree:
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_configured_but_faultless_run_matches_plain_run(self, case):
        """Retry + checkpointing with no faults must not change the physics:
        identical traffic, identical perf counters, identical virtual time."""
        papar = make_papar()
        cluster = ClusterModel(num_nodes=2, ranks_per_node=2,
                               network=INFINIBAND_QDR)
        kwargs = dict(
            data=case_data(case), backend="mpi", num_ranks=4, cluster=cluster,
        )
        plain = papar.run(CASES[case]["workflow"], CASES[case]["args"], **kwargs)
        guarded = papar.run(
            CASES[case]["workflow"], CASES[case]["args"], **kwargs,
            checkpoint=MemoryCheckpointStore(), retry=RetryPolicy(),
        )
        assert [p.rows() for p in guarded.partitions] == [
            p.rows() for p in plain.partitions
        ]
        assert guarded.bytes_moved == plain.bytes_moved
        assert guarded.messages == plain.messages
        assert guarded.elapsed == pytest.approx(plain.elapsed, rel=1e-12)
        p_perf, g_perf = plain.extra["perf"], guarded.extra["perf"]
        assert g_perf["records_moved"] == p_perf["records_moved"]
        assert g_perf["bytes_moved"] == p_perf["bytes_moved"]
        for phase, t in p_perf["phases"].items():
            assert g_perf["phases"][phase]["virtual_s"] == pytest.approx(
                t["virtual_s"], rel=1e-12
            )
        report = guarded.extra["fault"]
        assert report["attempts"] == 1
        assert report["recovered_jobs"] == []
        assert report["backoff_virtual_s"] == 0.0
        assert "injected" not in report

    def test_plain_run_has_no_fault_report(self):
        papar = make_papar()
        result = papar.run(
            CASES["blast"]["workflow"], CASES["blast"]["args"],
            data=case_data("blast"), backend="mpi", num_ranks=2,
        )
        assert "fault" not in result.extra
