"""FaultSpec/FaultSchedule parsing and seeded chaos generation."""

import pytest

from repro.errors import FaultToleranceError
from repro.fault import FaultSchedule, FaultSpec, parse_fault_spec


class TestParsing:
    def test_parse_crash(self):
        spec = parse_fault_spec("crash:rank=1,job=2,when=after")
        assert spec.kind == "crash"
        assert (spec.rank, spec.job, spec.when) == (1, 2, "after")
        assert spec.times == 1

    def test_parse_drop_with_aliases(self):
        spec = parse_fault_spec("drop:src=0,dst=3,p=0.5,times=2")
        assert spec.kind == "drop"
        assert (spec.src, spec.dst) == (0, 3)
        assert spec.probability == 0.5
        assert spec.times == 2

    def test_parse_delay_seconds(self):
        spec = parse_fault_spec("delay:seconds=0.25,p=0.1")
        assert spec.delay_s == 0.25
        assert spec.probability == 0.1

    def test_parse_straggler(self):
        spec = parse_fault_spec("straggler:rank=3,factor=4")
        assert spec.kind == "straggler"
        assert spec.factor == 4.0

    def test_parse_bare_kind(self):
        assert parse_fault_spec("duplicate").kind == "duplicate"

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:rank=1",
            "drop:notafield=3",
            "drop:src",
            "crash:when=sometimes",
            "drop:p=1.5",
            "drop:times=-1",
        ],
    )
    def test_parse_rejects_invalid(self, bad):
        with pytest.raises(FaultToleranceError):
            parse_fault_spec(bad)

    def test_coerce_accepts_many_shapes(self):
        one = FaultSpec(kind="drop")
        assert FaultSchedule.coerce(None) is None
        assert FaultSchedule.coerce("drop:src=0").specs[0].src == 0
        assert FaultSchedule.coerce(one).specs == (one,)
        sched = FaultSchedule.coerce([one, "crash:rank=0"])
        assert [s.kind for s in sched] == ["drop", "crash"]
        assert FaultSchedule.coerce(sched) is sched

    def test_matches_link_filters(self):
        spec = parse_fault_spec("drop:src=1")
        assert spec.matches_link(1, 0) and spec.matches_link(1, 3)
        assert not spec.matches_link(0, 1)
        assert not parse_fault_spec("crash:rank=1").matches_link(1, 0)


class TestRandomSchedules:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.random(seed=7, size=4, num_jobs=2)
        b = FaultSchedule.random(seed=7, size=4, num_jobs=2)
        assert a == b

    def test_different_seeds_differ_somewhere(self):
        schedules = {FaultSchedule.random(seed=s, size=8, num_jobs=3) for s in range(30)}
        assert len(schedules) > 1

    def test_all_faults_are_survivable(self):
        """Every generated fault has a finite firing cap and valid targets."""
        for seed in range(50):
            for spec in FaultSchedule.random(seed=seed, size=4, num_jobs=2):
                assert spec.times >= 1, "chaos schedules must not inject forever"
                if spec.kind == "crash":
                    assert 0 <= spec.rank < 4
                    assert 0 <= spec.job < 2
                if spec.kind == "straggler":
                    assert spec.factor > 1.0
