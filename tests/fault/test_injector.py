"""FaultInjector decisions and their effect at the fabric level."""

import pytest

from repro.errors import CorruptMessageError, DeadlockError, InjectedFault, MPIError
from repro.fault import FaultInjector, FaultSchedule
from repro.mpi import run_mpi
from repro.mpi.fabric import Fabric, Message


def make_injector(*specs, seed=0):
    return FaultInjector(FaultSchedule.parse(specs), seed=seed)


def msg(payload=b"hello world", source=0, tag=0):
    return Message(source=source, tag=tag, payload=payload, nbytes=len(payload))


class TestDecisions:
    def test_same_seed_same_decisions(self):
        decisions = []
        for _ in range(2):
            inj = make_injector("drop:p=0.5,times=0", seed=13)
            inj.begin_attempt()
            decisions.append(
                [len(inj.on_deliver(0, 1, msg())) for _ in range(40)]
            )
        assert decisions[0] == decisions[1]
        assert 0 in decisions[0] and 1 in decisions[0]

    def test_decisions_rekeyed_per_attempt(self):
        inj = make_injector("drop:p=0.5,times=0", seed=13)
        inj.begin_attempt()
        first = [len(inj.on_deliver(0, 1, msg())) for _ in range(40)]
        inj.begin_attempt()
        second = [len(inj.on_deliver(0, 1, msg())) for _ in range(40)]
        assert first != second, "a retried attempt must not replay the same draws"

    def test_firing_cap_persists_across_attempts(self):
        inj = make_injector("drop:p=1.0,times=2")
        inj.begin_attempt()
        assert inj.on_deliver(0, 1, msg()) == []
        inj.begin_attempt()
        assert inj.on_deliver(0, 1, msg()) == []
        inj.begin_attempt()
        assert len(inj.on_deliver(0, 1, msg())) == 1, "cap of 2 reached"
        assert inj.counts["drop"] == 2

    def test_link_filter(self):
        inj = make_injector("drop:src=0,dst=1")
        inj.begin_attempt()
        assert len(inj.on_deliver(1, 0, msg(source=1))) == 1
        assert inj.on_deliver(0, 1, msg()) == []


class TestMessageFaultsAtFabricLevel:
    def test_drop_surfaces_as_deadlock_with_pending_state(self):
        inj = make_injector("drop:src=0,dst=1")
        inj.begin_attempt()
        fabric = Fabric(2, deadlock_grace=0.1, injector=inj)
        fabric.deliver(1, msg())
        with pytest.raises(DeadlockError) as err:
            fabric.collect(dest=1, source=0, tag=0)
        assert err.value.rank == 1
        assert err.value.pending == {1: (0, 0)}

    def test_duplicate_suppressed_by_seq_dedup(self):
        inj = make_injector("duplicate:src=0")
        inj.begin_attempt()
        fabric = Fabric(2, deadlock_grace=0.1, injector=inj)
        fabric.deliver(1, msg())
        got = fabric.collect(dest=1, source=0, tag=0)
        assert got.payload == b"hello world"
        # the duplicated copy never reaches the mailbox
        assert fabric.probe(1, source=0, tag=0) is None
        assert inj.counts == {"duplicate": 1, "duplicates_suppressed": 1}

    def test_delay_slips_virtual_timestamp_only(self):
        inj = make_injector("delay:seconds=0.25")
        inj.begin_attempt()
        fabric = Fabric(2, deadlock_grace=0.1, injector=inj)
        m = msg()
        m.timestamp = 1.0
        fabric.deliver(1, m)
        got = fabric.collect(dest=1, source=0, tag=0)
        assert got.timestamp == pytest.approx(1.25)
        assert got.payload == b"hello world"

    def test_corrupt_detected_by_transport_checksum(self):
        inj = make_injector("corrupt:src=0")
        inj.begin_attempt()
        fabric = Fabric(2, deadlock_grace=0.1, injector=inj)
        fabric.deliver(1, msg())
        with pytest.raises(CorruptMessageError):
            fabric.collect(dest=1, source=0, tag=0)

    def test_untouched_messages_skip_verification(self):
        inj = make_injector("corrupt:src=0,times=1")
        inj.begin_attempt()
        fabric = Fabric(2, deadlock_grace=0.1, injector=inj)
        fabric.deliver(1, msg())  # corrupted (fires the cap)
        fabric.deliver(1, msg(payload=b"second"))
        with pytest.raises(CorruptMessageError):
            fabric.collect(dest=1, source=0, tag=0)
        fabric2 = Fabric(2, deadlock_grace=0.1, injector=inj)
        fabric2.deliver(1, msg(payload=b"third"))
        assert fabric2.collect(dest=1, source=0, tag=0).payload == b"third"


class TestCrashAndStraggler:
    def test_crash_fires_once_at_its_boundary(self):
        inj = make_injector("crash:rank=1,job=0,when=after")
        inj.begin_attempt()
        inj.check_crash(0, 0, "after")  # wrong rank: no fire
        inj.check_crash(1, 0, "before")  # wrong boundary: no fire
        with pytest.raises(InjectedFault):
            inj.check_crash(1, 0, "after")
        inj.begin_attempt()
        inj.check_crash(1, 0, "after")  # firing cap reached: survives
        assert inj.counts == {"crash": 1}

    def test_straggler_scales_compute(self):
        inj = make_injector("straggler:rank=2,factor=4")
        assert inj.scale_compute(2, 1.5) == pytest.approx(6.0)
        assert inj.scale_compute(0, 1.5) == pytest.approx(1.5)
        assert inj.straggler_ranks == {2: 4.0}

    def test_summary_reports_counters(self):
        inj = make_injector("drop:p=1.0")
        inj.begin_attempt()
        inj.on_deliver(0, 1, msg())
        s = inj.summary()
        assert s["seed"] == 0
        assert s["attempts"] == 1
        assert s["counts"] == {"drop": 1}
        assert any("drop" in line for line in s["fired"])


class TestEndToEnd:
    def test_duplicate_fault_is_transparent_to_mpi_programs(self):
        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(comm.rank * 10, dest=right, tag=7)
            return comm.recv(source=left, tag=7)

        inj = make_injector("duplicate:times=0")
        inj.begin_attempt()
        run = run_mpi(program, 4, fault_injector=inj)
        assert run.results == [30, 0, 10, 20]
        assert inj.counts["duplicate"] == inj.counts["duplicates_suppressed"]
        assert inj.counts["duplicate"] >= 4

    def test_drop_aborts_the_whole_run(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("ping", dest=1, tag=3)
                return "sent"
            return comm.recv(source=0, tag=3)

        inj = make_injector("drop:src=0,dst=1")
        inj.begin_attempt()
        with pytest.raises(MPIError):
            run_mpi(program, 2, fault_injector=inj, deadlock_grace=0.15)
