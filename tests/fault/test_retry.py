"""RetryPolicy math and the execute_with_recovery loop."""

from types import SimpleNamespace

import pytest

from repro.errors import FaultToleranceError, MPIError
from repro.fault import (
    MemoryCheckpointStore,
    RetryPolicy,
    execute_with_recovery,
    job_key,
)


def fake_plan(num_jobs=2):
    jobs = [SimpleNamespace(op_id=f"op{i}") for i in range(num_jobs)]
    return SimpleNamespace(workflow_id="wf", jobs=jobs)


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"backoff_factor": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(FaultToleranceError):
            RetryPolicy(**kwargs)

    def test_should_retry_counts_the_first_attempt(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1) and policy.should_retry(2)
        assert not policy.should_retry(3)
        assert not RetryPolicy(max_attempts=1).should_retry(1)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay_s=1.0, backoff_factor=2.0, jitter=0.0,
                             max_delay_s=5.0)
        delays = [policy.delay_s(a) for a in (1, 2, 3, 4)]
        assert delays == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.5)
        assert policy.delay_s(1, seed=9) == policy.delay_s(1, seed=9)
        assert policy.delay_s(1, seed=9) != policy.delay_s(1, seed=10)
        assert 1.0 <= policy.delay_s(1, seed=9) <= 1.5


class TestRecoveryLoop:
    def test_succeeds_first_try(self):
        result, report = execute_with_recovery(
            lambda resume, start: ("ok", resume, start),
            plan=fake_plan(), fingerprint="fp", size=2,
        )
        assert result == ("ok", 0, 0.0)
        assert report["attempts"] == 1
        assert report["recovered_jobs"] == []
        assert report["backoff_virtual_s"] == 0.0
        assert report["failures"] == []

    def test_retries_mpi_errors_and_charges_backoff(self):
        calls = []

        def attempt(resume, start):
            calls.append((resume, start))
            if len(calls) < 3:
                raise MPIError(f"boom {len(calls)}")
            return "survived"

        result, report = execute_with_recovery(
            attempt, plan=fake_plan(), fingerprint="fp", size=2,
            retry=RetryPolicy(max_attempts=5, base_delay_s=0.5, jitter=0.0),
        )
        assert result == "survived"
        assert report["attempts"] == 3
        assert len(report["failures"]) == 2
        # 0.5 then 1.0 of accumulated backoff, charged as the next start time
        assert [start for _, start in calls] == [0.0, 0.5, 1.5]
        assert report["backoff_virtual_s"] == pytest.approx(1.5)

    def test_exhausted_budget_raises_fault_tolerance_error(self):
        def attempt(resume, start):
            raise MPIError("always failing")

        with pytest.raises(FaultToleranceError) as err:
            execute_with_recovery(
                attempt, plan=fake_plan(), fingerprint="fp", size=2,
                retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
            )
        assert "2 attempt(s)" in str(err.value)
        assert isinstance(err.value.__cause__, MPIError)

    def test_programming_errors_are_not_retried(self):
        calls = []

        def attempt(resume, start):
            calls.append(1)
            raise KeyError("bug, not a fault")

        with pytest.raises(KeyError):
            execute_with_recovery(
                attempt, plan=fake_plan(), fingerprint="fp", size=2,
            )
        assert len(calls) == 1

    def test_resume_follows_the_committed_prefix(self):
        plan = fake_plan(2)
        store = MemoryCheckpointStore()
        resumes = []

        def attempt(resume, start):
            resumes.append(resume)
            if len(resumes) == 1:
                # attempt 1 commits job 0 on both ranks, then dies
                for rank in range(2):
                    store.save(job_key("fp", 0, "op0", rank), {"output": rank})
                raise MPIError("crash after job 0")
            return "done"

        result, report = execute_with_recovery(
            attempt, plan=plan, fingerprint="fp", size=2, store=store,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
        )
        assert result == "done"
        assert resumes == [0, 1]
        assert report["recovered_jobs"] == ["op0"]
