"""Real-fault chaos: the process backend's checkpointed gang-restart.

Unlike :mod:`tests.fault.test_chaos` (simulated faults on the threaded
fabric), these faults are *real*: a :class:`~repro.mpi.supervisor.CrashAgent`
SIGKILLs, hangs, or exit(N)s a forked rank at a job boundary.  For each
case-study workflow × {kill, hang, exit} × {4, 8} ranks the retried,
checkpoint-resumed gang must produce partitions bit-identical to a
fault-free process run — with no shared-memory segments or child processes
left behind.
"""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro import PaPar
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.core.process_runtime import ProcessRuntime
from repro.errors import ConfigError, FaultToleranceError
from repro.fault import DiskCheckpointStore, MemoryCheckpointStore, RetryPolicy
from repro.mpi.shm import scan_segments
from repro.obs import Recorder

#: quick real sleeps between attempts — this backoff is wall-clock
RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter=0.0)
#: heartbeat-silence budget for the hang cases (keeps detection fast)
HANG_TIMEOUT = 2.0
RANK_COUNTS = (4, 8)
MODES = ("kill", "hang", "exit")


def blast_data(n=200):
    rng = np.random.default_rng(71)
    from repro.core.dataset import Dataset
    from repro.formats import BLAST_INDEX_SCHEMA

    rows = [(i, int(s), i, 40) for i, s in enumerate(rng.integers(10, 800, size=n))]
    return Dataset.from_rows(BLAST_INDEX_SCHEMA, rows)


def hybrid_data(n=200):
    rng = np.random.default_rng(5)
    from repro.core.dataset import Dataset
    from repro.formats import EDGE_LIST_SCHEMA

    targets = rng.zipf(1.8, size=n) % 30
    sources = rng.integers(30, 150, size=n)
    edges = sorted({(int(s), int(t)) for s, t in zip(sources, targets)})
    return Dataset.from_rows(EDGE_LIST_SCHEMA, edges)


CASES = {
    "blast": dict(
        workflow=BLAST_WORKFLOW_XML,
        args={"input_path": "/in", "output_path": "/out", "num_partitions": 6},
        data=blast_data,
    ),
    "hybrid": dict(
        workflow=HYBRID_CUT_WORKFLOW_XML,
        args={"input_file": "/in", "output_path": "/out",
              "num_partitions": 5, "threshold": 6},
        data=hybrid_data,
    ),
}

#: fault-free process-backend reference partitions, cached per (case, ranks)
_BASELINES: dict = {}
_DATA: dict = {}


def make_papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


def case_data(case):
    if case not in _DATA:
        _DATA[case] = CASES[case]["data"]()
    return _DATA[case]


def baseline_rows(papar, case, ranks):
    key = (case, ranks)
    if key not in _BASELINES:
        result = papar.run(
            CASES[case]["workflow"], CASES[case]["args"], data=case_data(case),
            backend="process", num_ranks=ranks,
        )
        _BASELINES[key] = [p.rows() for p in result.partitions]
    return _BASELINES[key]


def arm(monkeypatch, tmp_path, mode, rank=1, job=1, when="before"):
    """Arm a fire-once CrashAgent for the next gang via the environment."""
    marker = tmp_path / "crash-fired"
    spec = f"{mode}:rank={rank},job={job},when={when},marker={marker}"
    if mode == "exit":
        spec += ",code=9"
    monkeypatch.setenv("PAPAR_CRASH_AGENT", spec)
    return marker


def run_recovering(papar, case, ranks, tmp_path, recorder=None):
    """One FT process run: disk checkpoints, wall-clock retry, fast hang cap."""
    plan = papar.plan(CASES[case]["workflow"], CASES[case]["args"])
    runtime = ProcessRuntime(
        num_ranks=ranks,
        checkpoint=DiskCheckpointStore(tmp_path / "ckpt"),
        retry=RETRY,
        recorder=recorder,
        hang_timeout=HANG_TIMEOUT,
    )
    return plan, runtime.execute(plan, case_data(case))


def _assert_hygiene(shm_before):
    assert set(scan_segments("pp")) - shm_before == set()
    deadline = time.monotonic() + 5.0
    while mp.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert mp.active_children() == []


EXPECTED_KIND = {"kill": "signal", "hang": "hang", "exit": "exit"}


class TestGangRestartMatrix:
    @pytest.mark.parametrize("ranks", RANK_COUNTS)
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_real_crash_recovers_bit_identically(
        self, case, mode, ranks, tmp_path, monkeypatch
    ):
        papar = make_papar()
        baseline = baseline_rows(papar, case, ranks)
        shm_before = set(scan_segments("pp"))
        marker = arm(monkeypatch, tmp_path, mode)
        _plan, result = run_recovering(papar, case, ranks, tmp_path)
        assert [p.rows() for p in result.partitions] == baseline
        assert marker.exists(), "the armed fault never fired"
        report = result.extra["fault"]
        assert report["attempts"] == 2
        assert len(report["failures"]) == 1
        assert report["backoff_wall_s"] > 0.0
        assert report["backoff_virtual_s"] == 0.0
        (crash,) = report["crashes"]
        assert crash["rank"] == 1
        assert crash["kind"] == EXPECTED_KIND[mode]
        assert crash["attempt"] == 1
        if mode == "kill":
            assert crash["signal"] == "SIGKILL"
        _assert_hygiene(shm_before)

    def test_restart_resumes_from_committed_prefix(self, tmp_path, monkeypatch):
        """Single rank: job 0's checkpoint commits before the kill at job 1,
        so the second gang replays only the uncommitted suffix."""
        papar = make_papar()
        baseline = baseline_rows(papar, "blast", 1)
        arm(monkeypatch, tmp_path, "kill", rank=0, job=1, when="before")
        plan, result = run_recovering(papar, "blast", 1, tmp_path)
        assert [p.rows() for p in result.partitions] == baseline
        report = result.extra["fault"]
        assert report["attempts"] == 2
        assert report["recovered_jobs"] == [plan.jobs[0].op_id]

    def test_crash_and_restart_land_in_observability(self, tmp_path, monkeypatch):
        recorder = Recorder()
        papar = make_papar()
        arm(monkeypatch, tmp_path, "kill")
        _plan, result = run_recovering(
            papar, "blast", 4, tmp_path, recorder=recorder
        )
        assert result.extra["fault"]["attempts"] == 2
        assert recorder.counter_total("fault.restarts") == 1
        assert recorder.counter_total("fault.backoff_wall_s") > 0.0
        categories = {e.category for e in recorder.instants}
        assert {"crash", "restart"} <= categories

    def test_retries_exhausted_raises_with_crash_context(
        self, tmp_path, monkeypatch
    ):
        papar = make_papar()
        arm(monkeypatch, tmp_path, "kill")
        plan = papar.plan(CASES["blast"]["workflow"], CASES["blast"]["args"])
        runtime = ProcessRuntime(
            num_ranks=4,
            checkpoint=DiskCheckpointStore(tmp_path / "ckpt"),
            retry=RetryPolicy(max_attempts=1),
        )
        shm_before = set(scan_segments("pp"))
        with pytest.raises(FaultToleranceError, match="1 attempt"):
            runtime.execute(plan, case_data("blast"))
        _assert_hygiene(shm_before)

    def test_framework_run_wires_gang_restart(self, tmp_path, monkeypatch):
        """The public papar.run(backend='process', checkpoint=, retry=) path."""
        papar = make_papar()
        baseline = baseline_rows(papar, "hybrid", 4)
        arm(monkeypatch, tmp_path, "kill")
        result = papar.run(
            CASES["hybrid"]["workflow"], CASES["hybrid"]["args"],
            data=case_data("hybrid"), backend="process", num_ranks=4,
            checkpoint=DiskCheckpointStore(tmp_path / "ckpt"), retry=RETRY,
        )
        assert [p.rows() for p in result.partitions] == baseline
        assert result.extra["fault"]["attempts"] == 2


class TestFaultFreeGuardedRun:
    def test_configured_but_faultless_run_matches_plain(self, tmp_path):
        papar = make_papar()
        _plan, result = run_recovering(papar, "blast", 4, tmp_path)
        assert [p.rows() for p in result.partitions] == baseline_rows(
            papar, "blast", 4
        )
        report = result.extra["fault"]
        assert report["attempts"] == 1
        assert report["recovered_jobs"] == []
        assert report["backoff_wall_s"] == 0.0
        assert "crashes" not in report


class TestProcessBackendRestrictions:
    def test_faults_still_rejected(self):
        with pytest.raises(ConfigError, match="does not support faults"):
            ProcessRuntime(num_ranks=2, faults="crash:rank=0,job=0")

    def test_faults_rejected_via_framework(self):
        papar = make_papar()
        with pytest.raises(ConfigError, match="backend='mpi'"):
            papar.run(
                CASES["blast"]["workflow"], CASES["blast"]["args"],
                data=case_data("blast"), backend="process", num_ranks=2,
                faults="crash:rank=0,job=0",
            )

    def test_memory_checkpoint_store_rejected(self):
        with pytest.raises(ConfigError, match="process-safe"):
            ProcessRuntime(num_ranks=2, checkpoint=MemoryCheckpointStore())

    def test_disk_store_accepted(self, tmp_path):
        runtime = ProcessRuntime(
            num_ranks=2, checkpoint=DiskCheckpointStore(tmp_path), retry=RETRY
        )
        assert runtime.fault_tolerant
