"""Checkpoint stores, key derivation, and the committed-prefix rule."""

from types import SimpleNamespace

import pytest

from repro.errors import FaultToleranceError
from repro.fault import (
    DiskCheckpointStore,
    MemoryCheckpointStore,
    committed_prefix,
    job_key,
    plan_fingerprint,
)


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryCheckpointStore()
    return DiskCheckpointStore(tmp_path / "ckpt")


class TestStores:
    def test_round_trip(self, store):
        value = {"output": [1, 2, 3], "clock": 4.5}
        store.save("wf/job0/rank0", value)
        assert store.load("wf/job0/rank0") == value
        assert "wf/job0/rank0" in store
        assert "wf/job0/rank1" not in store

    def test_missing_key_raises(self, store):
        with pytest.raises(FaultToleranceError):
            store.load("nothing/here")

    def test_keys_round_trip_awkward_characters(self, store):
        key = "wf id/2jobs/4ranks/100rec-800B/job0-sort%1/rank0"
        store.save(key, 1)
        assert store.keys() == [key]

    def test_overwrite_and_clear(self, store):
        store.save("k", 1)
        store.save("k", 2)
        assert store.load("k") == 2
        assert len(store) == 1
        store.clear()
        assert store.keys() == []

    def test_snapshot_isolated_from_later_mutation(self, store):
        value = {"output": [1, 2]}
        store.save("k", value)
        value["output"].append(3)
        assert store.load("k") == {"output": [1, 2]}


class TestDiskStore:
    def test_persists_across_instances(self, tmp_path):
        DiskCheckpointStore(tmp_path).save("k", {"v": 7})
        assert DiskCheckpointStore(tmp_path).load("k") == {"v": 7}

    def test_no_torn_tmp_files_left(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save("a", 1)
        store.save("b", 2)
        leftovers = [p for p in tmp_path.iterdir() if not p.name.endswith(".ckpt")]
        assert leftovers == []

    def test_process_safe_contract(self, tmp_path):
        """Only the disk store may cross the fork boundary (gang-restart)."""
        assert DiskCheckpointStore(tmp_path).process_safe is True
        assert MemoryCheckpointStore().process_safe is False


class TestTornFiles:
    """A half-written checkpoint must read as *missing*, never as committed."""

    def _file(self, tmp_path, key="k"):
        store = DiskCheckpointStore(tmp_path)
        store.save(key, {"output": list(range(50))})
        (path,) = tmp_path.iterdir()
        return store, path

    def test_truncated_file_is_missing(self, tmp_path):
        store, path = self._file(tmp_path)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert "k" not in store
        with pytest.raises(FaultToleranceError, match="no checkpoint"):
            store.load("k")

    def test_flipped_payload_byte_fails_crc(self, tmp_path):
        store, path = self._file(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # footer intact, payload corrupt
        path.write_bytes(bytes(raw))
        assert "k" not in store

    def test_footerless_legacy_file_is_missing(self, tmp_path):
        import pickle

        store, path = self._file(tmp_path)
        path.write_bytes(pickle.dumps({"output": [1]}))  # pre-footer format
        assert "k" not in store

    def test_empty_file_is_missing(self, tmp_path):
        store, path = self._file(tmp_path)
        path.write_bytes(b"")
        assert "k" not in store

    def test_save_over_torn_file_recommits(self, tmp_path):
        store, path = self._file(tmp_path)
        path.write_bytes(b"garbage")
        store.save("k", 42)
        assert store.load("k") == 42

    def test_torn_checkpoint_breaks_committed_prefix(self, tmp_path):
        """The prefix rule re-runs a job whose snapshot did not fully commit."""
        store = DiskCheckpointStore(tmp_path)
        plan = fake_plan(2)
        for job_index in range(2):
            for rank in range(2):
                store.save(job_key("fp", job_index, f"op{job_index}", rank), 1)
        assert committed_prefix(store, "fp", plan.jobs, 2) == 2
        victim = store._path(job_key("fp", 1, "op1", 0))
        with open(victim, "r+b") as fh:  # tear one rank's job-1 snapshot
            fh.truncate(3)
        assert committed_prefix(store, "fp", plan.jobs, 2) == 1


def fake_plan(num_jobs=3):
    jobs = [SimpleNamespace(op_id=f"op{i}") for i in range(num_jobs)]
    return SimpleNamespace(workflow_id="wf", jobs=jobs)


class TestCommittedPrefix:
    def test_fingerprint_binds_plan_input_and_ranks(self):
        plan = fake_plan(2)
        data = SimpleNamespace(num_records=100, nbytes=800)
        fp4 = plan_fingerprint(plan, data, 4)
        fp8 = plan_fingerprint(plan, data, 8)
        assert fp4 != fp8
        other = SimpleNamespace(num_records=101, nbytes=808)
        assert plan_fingerprint(plan, other, 4) != fp4

    def test_prefix_requires_every_rank(self):
        store = MemoryCheckpointStore()
        plan = fake_plan(3)
        assert committed_prefix(store, "fp", plan.jobs, 2) == 0
        store.save(job_key("fp", 0, "op0", 0), 1)
        assert committed_prefix(store, "fp", plan.jobs, 2) == 0, (
            "one rank's checkpoint is not a commit"
        )
        store.save(job_key("fp", 0, "op0", 1), 1)
        assert committed_prefix(store, "fp", plan.jobs, 2) == 1

    def test_prefix_stops_at_first_gap(self):
        store = MemoryCheckpointStore()
        plan = fake_plan(3)
        # job 0 and job 2 committed, job 1 not: prefix must stop at 1
        for job_index in (0, 2):
            for rank in range(2):
                store.save(job_key("fp", job_index, f"op{job_index}", rank), 1)
        assert committed_prefix(store, "fp", plan.jobs, 2) == 1

    def test_full_commit_returns_job_count(self):
        store = MemoryCheckpointStore()
        plan = fake_plan(2)
        for job_index in range(2):
            for rank in range(3):
                store.save(job_key("fp", job_index, f"op{job_index}", rank), 1)
        assert committed_prefix(store, "fp", plan.jobs, 3) == 2

    def test_different_fingerprints_do_not_mix(self):
        store = MemoryCheckpointStore()
        plan = fake_plan(1)
        store.save(job_key("fpA", 0, "op0", 0), 1)
        assert committed_prefix(store, "fpB", plan.jobs, 1) == 0
