"""The skew/drift rebalance trigger."""

import numpy as np
import pytest

from repro.formats import BLAST_INDEX_SCHEMA
from repro.serve import BalanceMonitor, PartitionGeneration, ServeState


def records(n):
    return BLAST_INDEX_SCHEMA.to_structured([(i, 40, i, 40) for i in range(n)])


def state_with_counts(*counts, rebuilt=None, log=None):
    total = sum(counts)
    state = ServeState()
    state.append_log(records(log if log is not None else total))
    state.current = PartitionGeneration.from_partitions(
        0, [records(c) for c in counts],
        rebuilt if rebuilt is not None else state.log_records,
    )
    return state


class TestSkew:
    def test_balanced_counts_have_zero_skew(self):
        assert BalanceMonitor.skew(np.array([5, 5, 5, 5])) == 0.0

    def test_spread_over_mean(self):
        # counts 2..8, mean 5: (8 - 2) / 5
        assert BalanceMonitor.skew(np.array([2, 8])) == pytest.approx(1.2)

    def test_empty_and_zero_counts(self):
        assert BalanceMonitor.skew(np.array([], dtype=np.int64)) == 0.0
        assert BalanceMonitor.skew(np.array([0, 0])) == 0.0


class TestDecision:
    def test_balanced_and_rebuilt_is_not_due(self):
        decision = BalanceMonitor(0.5).check(state_with_counts(5, 5))
        assert not decision.due
        assert decision.reason is None

    def test_skew_crossing_triggers(self):
        decision = BalanceMonitor(0.5).check(state_with_counts(1, 9))
        assert decision.due and decision.reason == "skew"

    def test_drift_crossing_triggers(self):
        # level counts (cyclic dealing) but 60% of the log never rebuilt
        decision = BalanceMonitor(0.5).check(
            state_with_counts(5, 5, rebuilt=4, log=10)
        )
        assert decision.due and decision.reason == "drift"
        assert decision.drift == pytest.approx(0.6)

    def test_no_generation_yet_is_never_due(self):
        assert not BalanceMonitor(0.5).check(ServeState()).due

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="> 0"):
            BalanceMonitor(0.0)
