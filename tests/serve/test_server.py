"""The daemon end to end: admission control, drain semantics, atomic
generation swaps, warm restart, the TCP socket path, and the metrics doc."""

import asyncio
import threading

import numpy as np
import pytest

from repro.config.examples import BLAST_WORKFLOW_XML
from repro.serve import ServeClient, ServeConfig, run_server
from repro.serve.server import PartitionServer

from tests.serve._driver import dispatch, fold_tail, run_scenario, settle
from tests.serve.conftest import rows_of


def blast_args(blast_file, tmp_path, parts=4):
    path, _ = blast_file
    return {"input_path": path, "output_path": str(tmp_path / "out"),
            "num_partitions": parts}


class TestVerbs:
    def test_append_then_query(self, papar, blast_file, blast_index, tmp_path):
        extra = rows_of(blast_index[100:120])

        async def scenario(server):
            r = await dispatch(server, {"op": "append", "rows": extra})
            assert r["ok"] and r["records"] == 20
            assert r["total_records"] == 120
            await settle(server)
            q = await dispatch(server, {"op": "query"})
            assert q["ok"]
            assert q["total_records"] == sum(
                p["records"] for p in q["partitions"]
            )
            assert q["log_records"] == 120
            assert q["router"]["kind"] == "range"
            return q

        server, q = run_scenario(
            papar, BLAST_WORKFLOW_XML, blast_args(blast_file, tmp_path),
            scenario,
        )
        assert not server.restored

    def test_query_routes_a_key(self, papar, blast_file, tmp_path):
        async def scenario(server):
            q = await dispatch(server, {"op": "query", "key": 45})
            assert q["key_partition"] in range(4)

        run_scenario(papar, BLAST_WORKFLOW_XML,
                     blast_args(blast_file, tmp_path), scenario)

    def test_unknown_op_and_bad_rows_are_400(self, papar, blast_file, tmp_path):
        async def scenario(server):
            bad_verb = await dispatch(server, {"op": "restart"})
            assert (bad_verb["ok"], bad_verb["code"]) == (False, 400)
            bad_rows = await dispatch(
                server, {"op": "append", "rows": [["x"]]}
            )
            assert (bad_rows["ok"], bad_rows["code"]) == (False, 400)
            assert "schema" in bad_rows["error"]

        run_scenario(papar, BLAST_WORKFLOW_XML,
                     blast_args(blast_file, tmp_path), scenario)


class TestAdmissionControl:
    def test_full_queue_rejects_429(self, papar, blast_file, blast_index,
                                    tmp_path):
        rows = rows_of(blast_index[100:105])

        async def scenario(server):
            r = await dispatch(server, {"op": "append", "rows": rows})
            assert (r["ok"], r["code"]) == (False, 429)
            assert server.metrics_doc()["rejected"] == 1

        run_scenario(papar, BLAST_WORKFLOW_XML,
                     blast_args(blast_file, tmp_path), scenario,
                     max_pending=0)

    def test_draining_rejects_503(self, papar, blast_file, blast_index,
                                  tmp_path):
        rows = rows_of(blast_index[100:105])

        async def scenario(server):
            server._draining = True
            r = await dispatch(server, {"op": "append", "rows": rows})
            assert (r["ok"], r["code"]) == (False, 503)

        run_scenario(papar, BLAST_WORKFLOW_XML,
                     blast_args(blast_file, tmp_path), scenario)


class TestAtomicSwap:
    def test_queries_never_observe_a_torn_generation(
        self, papar, blast_file, blast_index, tmp_path
    ):
        """Interleave appends (with a hair-trigger rebalance threshold) and
        queries: every response must be internally consistent and the
        generation counter must only move forward."""
        batches = [rows_of(blast_index[i:i + 10])
                   for i in range(100, 160, 10)]

        async def scenario(server):
            seen = []
            for rows in batches:
                r = await dispatch(server, {"op": "append", "rows": rows})
                assert r["ok"]
                q = await dispatch(server, {"op": "query"})
                assert q["total_records"] == sum(
                    p["records"] for p in q["partitions"]
                )
                seen.append(q["generation"])
            await settle(server)
            return seen

        server, generations = run_scenario(
            papar, BLAST_WORKFLOW_XML, blast_args(blast_file, tmp_path),
            scenario, rebalance_threshold=0.01,
        )
        assert generations == sorted(generations)
        assert server.rebalance_events  # the hair trigger actually fired
        assert server.state.current.generation >= 1

    def test_rebalanced_generation_covers_the_whole_log(
        self, papar, blast_file, blast_index, tmp_path
    ):
        rows = rows_of(blast_index[100:140])

        async def scenario(server):
            await dispatch(server, {"op": "append", "rows": rows})
            await fold_tail(server)
            assert server.state.drift_fraction == 0.0
            q = await dispatch(server, {"op": "query"})
            assert q["drift"] == 0.0
            assert q["total_records"] == q["log_records"] == 140

        run_scenario(papar, BLAST_WORKFLOW_XML,
                     blast_args(blast_file, tmp_path), scenario,
                     rebalance_threshold=1e9)


class TestSnapshotAndRestart:
    def test_snapshot_verb_requires_a_store(self, papar, blast_file, tmp_path):
        async def scenario(server):
            r = await dispatch(server, {"op": "snapshot"})
            assert (r["ok"], r["code"]) == (False, 400)
            assert "--snapshot-dir" in r["error"]

        run_scenario(papar, BLAST_WORKFLOW_XML,
                     blast_args(blast_file, tmp_path), scenario)

    def test_warm_restart_restores_the_published_state(
        self, papar, blast_file, blast_index, tmp_path
    ):
        args = blast_args(blast_file, tmp_path)
        snap_dir = str(tmp_path / "snaps")
        rows = rows_of(blast_index[100:130])

        async def first(server):
            await dispatch(server, {"op": "append", "rows": rows})
            await fold_tail(server)
            r = await dispatch(server, {"op": "snapshot"})
            assert r["ok"]
            return (r["snapshot"], server.state.log_records,
                    [server.state.current.partition_records(p)
                     for p in range(4)])

        _, (sid, log_records, parts) = run_scenario(
            papar, BLAST_WORKFLOW_XML, args, first,
            snapshot_dir=snap_dir, rebalance_threshold=1e9,
        )

        async def second(server):
            q = await dispatch(server, {"op": "query"})
            assert q["snapshot"] == sid
            return [server.state.current.partition_records(p)
                    for p in range(4)]

        server, restored = run_scenario(
            papar, BLAST_WORKFLOW_XML, args, second,
            snapshot_dir=snap_dir, rebalance_threshold=1e9,
        )
        assert server.restored
        assert server.state.log_records == log_records
        for ours, theirs in zip(restored, parts):
            np.testing.assert_array_equal(ours, theirs)

    def test_drain_flushes_a_final_snapshot(self, papar, blast_file, tmp_path):
        snap_dir = str(tmp_path / "snaps")

        async def scenario(server):
            assert server.snapshots.current_generation() is None
            r = await dispatch(server, {"op": "drain"})
            assert r["ok"] and r["generation"] == 0

        server, _ = run_scenario(
            papar, BLAST_WORKFLOW_XML, blast_args(blast_file, tmp_path),
            scenario, snapshot_dir=snap_dir,
        )
        assert server.snapshots.current_generation() == 0


class TestSocketLifecycle:
    def test_tcp_roundtrip_with_the_blocking_client(
        self, papar, blast_file, blast_index, tmp_path
    ):
        """The real wire path: server on a thread, ServeClient over TCP."""
        args = blast_args(blast_file, tmp_path)
        addr, ready = {}, threading.Event()
        holder = {}

        def serve():
            holder["server"] = asyncio.run(run_server(
                papar, BLAST_WORKFLOW_XML, args,
                config=ServeConfig(),
                ready=lambda h, p: (addr.update(hp=(h, p)), ready.set()),
            ))

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert ready.wait(60), "daemon never came up"
        with ServeClient(*addr["hp"]) as client:
            r = client.append_ok(rows_of(blast_index[100:110]))
            assert r["records"] == 10
            assert client.query()["log_records"] == 110
            d = client.drain()
            assert d["ok"]
        thread.join(60)
        assert not thread.is_alive()
        assert holder["server"].state.log_records == 110


class TestMetricsDoc:
    def test_server_block_and_counters(self, papar, blast_file, blast_index,
                                       tmp_path):
        rows = rows_of(blast_index[100:110])

        async def scenario(server):
            await dispatch(server, {"op": "append", "rows": rows})
            await dispatch(server, {"op": "query"})
            await settle(server)

        server, _ = run_scenario(
            papar, BLAST_WORKFLOW_XML, blast_args(blast_file, tmp_path),
            scenario,
        )
        doc = server.metrics_doc()
        assert doc["schema"] == "papar.serve"
        assert doc["requests"]["append"] == 1
        assert doc["requests"]["query"] == 1
        assert doc["appended_records"] == 10
        assert doc["append_latency_ms"]["count"] == 1
        assert doc["server"]["log_records"] == 110
        assert doc["server"]["max_pending"] == 64
