"""The line-JSON wire protocol: envelope validation and response shapes."""

import json

import pytest

from repro.serve import protocol


class TestDecode:
    def test_valid_verbs_decode(self):
        for op in ("query", "snapshot", "drain"):
            assert protocol.decode_request(
                json.dumps({"op": op}).encode()
            )["op"] == op

    def test_append_needs_rows(self):
        ok = protocol.decode_request(b'{"op": "append", "rows": [[1, 2]]}')
        assert ok["rows"] == [[1, 2]]
        for bad in (b'{"op": "append"}', b'{"op": "append", "rows": []}',
                    b'{"op": "append", "rows": "x"}'):
            with pytest.raises(protocol.ProtocolError, match="rows"):
                protocol.decode_request(bad)

    def test_not_json(self):
        with pytest.raises(protocol.ProtocolError, match="not valid JSON"):
            protocol.decode_request(b"hello\n")

    def test_not_an_object(self):
        with pytest.raises(protocol.ProtocolError, match="JSON object"):
            protocol.decode_request(b"[1, 2]")

    def test_unknown_op(self):
        with pytest.raises(protocol.ProtocolError, match="unknown op"):
            protocol.decode_request(b'{"op": "restart"}')


class TestEncode:
    def test_response_is_one_newline_terminated_line(self):
        line = protocol.encode_response(protocol.ok("query", generation=3))
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert json.loads(line) == {"ok": True, "op": "query", "generation": 3}

    def test_error_envelope_carries_code(self):
        err = protocol.error(protocol.OVERLOADED, "full", op="append")
        assert err == {"ok": False, "code": 429, "error": "full", "op": "append"}

    def test_rejection_codes_are_distinct(self):
        assert len({protocol.BAD_REQUEST, protocol.OVERLOADED,
                    protocol.DRAINING}) == 3
