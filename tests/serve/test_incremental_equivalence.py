"""The streaming bit-identity contract: N incremental appends plus a
drift-triggered online rebalance produce exactly the partitions of one cold
batch run over the concatenated input — across rank counts and both
case-study workflows.  The log-as-ground-truth design makes this hold: a
rebalance reruns the full workflow over the accumulated log, which *is* the
concatenated input in arrival order."""

import numpy as np
import pytest

from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.formats import BLAST_INDEX_SCHEMA, EDGE_LIST_SCHEMA

from tests.serve._driver import dispatch, fold_tail, run_scenario
from tests.serve.conftest import rows_of

RANKS = [1, 4, 8]


def stream(papar, workflow, args, append_batches, ranks):
    """Warm-start, append every batch, rebalance, return final partitions."""

    async def scenario(server):
        for rows in append_batches:
            response = await dispatch(server, {"op": "append", "rows": rows})
            assert response["ok"], response
        await fold_tail(server)
        assert server.state.drift_fraction == 0.0
        gen = server.state.current
        return [gen.partition_records(pid)
                for pid in range(gen.num_partitions)]

    server, parts = run_scenario(
        papar, workflow, args, scenario,
        backend="mpi", num_ranks=ranks,
        # low enough that appending ~40% of the corpus trips the drift
        # trigger organically; fold_tail only covers the final sliver
        rebalance_threshold=0.05,
    )
    assert server.rebalance_events, "no online rebalance ever triggered"
    return parts


def cold(papar, workflow, args, schema, full_records):
    result = papar.run(
        workflow, args, data=Dataset.from_array(schema, full_records)
    )
    return [np.asarray(p.to_flat().records) for p in result.partitions]


class TestBlastEquivalence:
    @pytest.mark.parametrize("ranks", RANKS)
    def test_appends_match_cold_batch(
        self, papar, blast_file, blast_index, tmp_path, ranks
    ):
        path, initial = blast_file
        args = {"input_path": path, "output_path": str(tmp_path / "out"),
                "num_partitions": 8}
        appended = blast_index[100:]
        batches = [rows_of(appended[i:i + 20])
                   for i in range(0, len(appended), 20)]
        streamed = stream(papar, BLAST_WORKFLOW_XML, args, batches, ranks)
        reference = cold(
            papar, BLAST_WORKFLOW_XML, args, BLAST_INDEX_SCHEMA,
            np.concatenate([initial, appended]),
        )
        assert len(streamed) == len(reference) == 8
        for ours, theirs in zip(streamed, reference):
            np.testing.assert_array_equal(ours, theirs, err_msg=f"ranks={ranks}")


class TestHybridCutEquivalence:
    @pytest.mark.parametrize("ranks", RANKS)
    def test_appends_match_cold_batch(
        self, papar, edges_file, graph_edges, tmp_path, ranks
    ):
        path, initial = edges_file
        args = {"input_file": path, "output_path": str(tmp_path / "out"),
                "num_partitions": 4, "threshold": 30}
        appended = graph_edges[len(initial):]
        third = max(1, len(appended) // 3)
        batches = [rows_of(appended[i:i + third])
                   for i in range(0, len(appended), third)]
        streamed = stream(papar, HYBRID_CUT_WORKFLOW_XML, args, batches, ranks)
        reference = cold(
            papar, HYBRID_CUT_WORKFLOW_XML, args, EDGE_LIST_SCHEMA,
            np.concatenate([initial, appended]),
        )
        assert len(streamed) == len(reference) == 4
        for ours, theirs in zip(streamed, reference):
            np.testing.assert_array_equal(ours, theirs, err_msg=f"ranks={ranks}")
