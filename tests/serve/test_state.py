"""Generations, the append log, and the atomic-swap discipline."""

import numpy as np
import pytest

from repro.formats import BLAST_INDEX_SCHEMA
from repro.serve import PartitionGeneration, ServeError, ServeState


def records(n, start=0):
    return BLAST_INDEX_SCHEMA.to_structured(
        [(start + i, 40 + i, i, 40) for i in range(n)]
    )


class TestPartitionGeneration:
    def test_from_partitions_counts(self):
        gen = PartitionGeneration.from_partitions(
            0, [records(3), records(5)], rebuilt_records=8
        )
        assert gen.num_partitions == 2
        assert gen.total_records == 8
        assert list(gen.counts) == [3, 5]

    def test_append_updates_counts_and_materializes(self):
        gen = PartitionGeneration.from_partitions(0, [records(3)], 3)
        gen.append(0, records(2, start=100))
        assert gen.total_records == 5
        out = gen.partition_records(0)
        assert len(out) == 5
        assert out["seq_start"][-1] == 101

    def test_append_empty_batch_is_a_noop(self):
        gen = PartitionGeneration.from_partitions(0, [records(3)], 3)
        gen.append(0, records(0))
        assert len(gen.chunks[0]) == 1

    def test_mixed_schema_chunks_refuse_to_materialize(self):
        other = np.array([(1, 2)], dtype=[("a", "i8"), ("b", "i8")])
        gen = PartitionGeneration.from_partitions(0, [records(3)], 3)
        gen.append(0, other)
        with pytest.raises(ServeError, match="mixed-schema"):
            gen.partition_records(0)

    def test_key_range_and_stats(self):
        gen = PartitionGeneration.from_partitions(
            0, [records(4), records(0)], 4
        )
        assert gen.key_range(0, "seq_size") == (40, 43)
        assert gen.key_range(1, "seq_size") is None
        stats = gen.stats("seq_size")
        assert stats[0] == {"id": 0, "records": 4, "key_min": 40, "key_max": 43}
        assert stats[1] == {"id": 1, "records": 0}


class TestServeState:
    def test_log_is_ground_truth(self):
        state = ServeState()
        state.append_log(records(10))
        state.append_log(records(5))
        assert state.log_records == 15
        frozen, count = state.freeze_log()
        state.append_log(records(1))
        assert (len(frozen), count) == (2, 15)  # the copy pinned the prefix

    def test_swap_must_advance_the_generation(self):
        state = ServeState()
        state.swap(PartitionGeneration.from_partitions(1, [records(1)], 1))
        with pytest.raises(ServeError, match="must advance"):
            state.swap(PartitionGeneration.from_partitions(1, [records(1)], 1))
        state.swap(PartitionGeneration.from_partitions(2, [records(1)], 1))
        assert state.current.generation == 2

    def test_drift_fraction(self):
        state = ServeState()
        assert state.drift_fraction == 0.0
        state.append_log(records(8))
        state.swap(PartitionGeneration.from_partitions(1, [records(8)], 8))
        assert state.drift_fraction == 0.0
        state.append_log(records(2))
        assert state.drift_fraction == pytest.approx(0.2)
