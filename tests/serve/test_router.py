"""Router selection per workflow shape, and the vectorized routing itself."""

import numpy as np
import pytest

from repro.config.examples import BLAST_WORKFLOW_XML, HYBRID_CUT_WORKFLOW_XML
from repro.serve import ServeError, build_router
from repro.serve.router import KeyedRouter, PositionalRouter

BLAST_ARGS = {"input_path": "/in", "output_path": "/out", "num_partitions": 4}
EDGE_ARGS = {"input_file": "/in", "output_path": "/out",
             "num_partitions": 4, "threshold": 30}

DEAL_ONLY_XML = """\
<workflow id="deal" name="deal">
  <arguments>
    <param name="input_path" type="String" format="blast_db"/>
    <param name="output_path" type="String"/>
    <param name="num_partitions" type="Integer"/>
  </arguments>
  <operators>
    <operator id="dist" operator="Distribute">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="$output_path"/>
      <param name="distrPolicy" value="cyclic"/>
      <param name="numPartitions" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>
"""

SORT_ONLY_XML = """\
<workflow id="sortonly" name="sortonly">
  <arguments>
    <param name="input_path" type="String" format="blast_db"/>
    <param name="output_path" type="String"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort">
      <param name="inputPath" value="$input_path"/>
      <param name="outputPath" value="/tmp/sorted"/>
      <param name="key" value="seq_size"/>
    </operator>
  </operators>
</workflow>
"""


def blast_log(papar, n=64):
    from repro.blast import generate_index

    return [np.asarray(generate_index("env_nr", num_sequences=n, seed=5))]


class TestRouterSelection:
    def test_sort_fed_distribute_gets_a_range_router(self, papar):
        plan = papar.plan(BLAST_WORKFLOW_XML, BLAST_ARGS)
        router = build_router(
            plan, papar.schema("blast_db"), blast_log(papar), 64
        )
        assert isinstance(router, KeyedRouter)
        assert router.describe() == {"kind": "range", "partitions": 4,
                                     "key": "seq_size"}

    def test_group_fed_distribute_gets_a_hash_router(self, papar):
        plan = papar.plan(HYBRID_CUT_WORKFLOW_XML, EDGE_ARGS)
        router = build_router(plan, papar.schema("graph_edge"), [], 0)
        assert router.kind == "hash"
        assert router.key_field is not None

    def test_bare_distribute_gets_a_positional_router(self, papar):
        plan = papar.plan(DEAL_ONLY_XML, BLAST_ARGS)
        router = build_router(plan, papar.schema("blast_db"), [], 10)
        assert isinstance(router, PositionalRouter)
        assert router.next_index == 10

    def test_sort_with_empty_log_falls_back_to_positional(self, papar):
        plan = papar.plan(BLAST_WORKFLOW_XML, BLAST_ARGS)
        router = build_router(plan, papar.schema("blast_db"), [], 0)
        assert isinstance(router, PositionalRouter)

    def test_non_distribute_tail_is_refused(self, papar):
        plan = papar.plan(SORT_ONLY_XML,
                          {"input_path": "/in", "output_path": "/out"})
        with pytest.raises(ServeError, match="ending in a distribute"):
            build_router(plan, papar.schema("blast_db"), [], 0)


class TestRouting:
    def test_range_router_routes_by_key_order(self, papar):
        plan = papar.plan(BLAST_WORKFLOW_XML, BLAST_ARGS)
        log = blast_log(papar, n=256)
        router = build_router(plan, papar.schema("blast_db"), log, 256)
        owners = router.route(log[0])
        assert owners.shape == (256,)
        assert set(np.unique(owners)) <= set(range(4))
        # larger keys never land in a lower-ranked partition
        order = np.argsort(log[0]["seq_size"], kind="stable")
        assert (np.diff(owners[order]) >= 0).all()
        key = int(log[0]["seq_size"][0])
        assert router.partition_for_key(key) == owners[0]

    def test_hash_router_is_consistent_per_key(self, papar):
        plan = papar.plan(HYBRID_CUT_WORKFLOW_XML, EDGE_ARGS)
        schema = papar.schema("graph_edge")
        router = build_router(plan, schema, [], 0)
        batch = schema.to_structured([(5, 1), (6, 1), (5, 1), (7, 2)])
        owners = router.route(batch)
        assert owners[0] == owners[2]  # same key, same partition
        assert router.partition_for_key(1) in range(4)

    def test_positional_router_continues_the_global_index(self, papar):
        plan = papar.plan(DEAL_ONLY_XML, BLAST_ARGS)
        schema = papar.schema("blast_db")
        router = build_router(plan, schema, [], 6)
        batch = schema.to_structured([(i, 40, i, 40) for i in range(5)])
        # cyclic dealing: partition = global arrival index mod 4
        assert list(router.route(batch)) == [2, 3, 0, 1, 2]
        assert list(router.route(batch[:2])) == [3, 0]
        assert router.describe()["next_index"] == 13

    def test_missing_key_field_is_a_serve_error(self, papar):
        plan = papar.plan(BLAST_WORKFLOW_XML, BLAST_ARGS)
        router = build_router(
            plan, papar.schema("blast_db"), blast_log(papar), 64
        )
        other = np.array([(1, 2)], dtype=[("a", "i8"), ("b", "i8")])
        with pytest.raises(ServeError, match="routing key"):
            router.route(other)
