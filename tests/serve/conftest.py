"""Fixtures shared by the streaming-service tests: a framework with both
case-study schemas registered, and real on-disk input files for the warm
start (the daemon loads its initial state from the workflow's input path)."""

import numpy as np
import pytest

from repro import PaPar
from repro.blast import generate_index
from repro.config import BLAST_INPUT_XML, EDGE_INPUT_XML
from repro.formats import BLAST_INDEX_SCHEMA, EDGE_LIST_SCHEMA, write_binary, write_text
from repro.graph import generate_graph


@pytest.fixture(scope="module")
def papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    p.register_input(EDGE_INPUT_XML)
    return p


@pytest.fixture(scope="module")
def blast_index():
    """One BLAST index split into a warm-start part and append batches."""
    return generate_index("env_nr", num_sequences=160, seed=7)


@pytest.fixture
def blast_file(tmp_path, blast_index):
    """The first 100 index entries written as the daemon's input file."""
    initial = blast_index[:100]
    path = tmp_path / "db.index"
    write_binary(path, initial, BLAST_INDEX_SCHEMA, header=b"\x00" * 32)
    return str(path), initial


@pytest.fixture(scope="module")
def graph_edges():
    """Graph edge records split the same way for the hybrid-cut workflow."""
    graph = generate_graph("google", scale=0.002, seed=13)
    return np.asarray(graph.to_dataset().to_flat().records)


@pytest.fixture
def edges_file(tmp_path, graph_edges):
    split = int(len(graph_edges) * 0.7)
    initial = graph_edges[:split]
    path = tmp_path / "edges.txt"
    write_text(path, [tuple(r) for r in initial.tolist()], EDGE_LIST_SCHEMA)
    return str(path), initial


def rows_of(records: np.ndarray) -> list:
    """Record-array rows as plain JSON-safe lists (the wire format)."""
    return [list(r) for r in records.tolist()]
