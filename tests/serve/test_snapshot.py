"""Versioned snapshots: publish order, restore fidelity, pruning."""

import numpy as np
import pytest

from repro.fault import MemoryCheckpointStore
from repro.formats import BLAST_INDEX_SCHEMA
from repro.serve import PartitionGeneration, ServeError, ServeState, SnapshotStore
from repro.serve.snapshot import CURRENT_KEY, snapshot_id


def records(n, start=0):
    return BLAST_INDEX_SCHEMA.to_structured(
        [(start + i, 40 + i, i, 40) for i in range(n)]
    )


def make_state(generation=0, counts=(3, 5)):
    state = ServeState()
    state.append_log(records(sum(counts)))
    state.current = PartitionGeneration.from_partitions(
        generation, [records(c, start=100 * i) for i, c in enumerate(counts)],
        state.log_records,
    )
    return state


class TestPublishRestore:
    def test_roundtrip_is_bit_identical(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        state = make_state()
        sid = store.publish(state, "wf")
        assert sid == snapshot_id(0)
        restored, meta = store.load_latest()
        assert meta["workflow_id"] == "wf"
        assert meta["log_records"] == state.log_records
        assert restored.log_records == state.log_records
        assert restored.current.generation == 0
        for pid in range(2):
            np.testing.assert_array_equal(
                restored.current.partition_records(pid),
                state.current.partition_records(pid),
            )

    def test_no_snapshot_yet_restores_none(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        assert store.current_generation() is None
        assert store.load_latest() is None

    def test_nothing_live_refuses_to_publish(self, tmp_path):
        with pytest.raises(ServeError, match="no generation"):
            SnapshotStore(str(tmp_path)).publish(ServeState(), "wf")

    def test_torn_generation_is_reported(self):
        backing = MemoryCheckpointStore()
        store = SnapshotStore(backing)
        store.publish(make_state(), "wf")
        backing.delete(f"serve/{snapshot_id(0)}/part00001")
        with pytest.raises(ServeError, match="incomplete"):
            store.load_latest()

    def test_current_pointer_tracks_the_newest(self):
        backing = MemoryCheckpointStore()
        store = SnapshotStore(backing, retain=10)
        store.publish(make_state(generation=0), "wf")
        store.publish(make_state(generation=3), "wf")
        assert store.current_generation() == 3
        assert backing.load(CURRENT_KEY) == {"generation": 3}


class TestPruning:
    def test_retention_window(self):
        store = SnapshotStore(MemoryCheckpointStore(), retain=2)
        for gen in range(4):
            store.publish(make_state(generation=gen), "wf")
        kept = {g for g in range(4)
                if f"serve/{snapshot_id(g)}/meta" in store.store}
        assert kept == {2, 3}
        # the survivors still restore
        assert store.load_latest()[1]["generation"] == 3

    def test_retain_floor_is_one(self):
        store = SnapshotStore(MemoryCheckpointStore(), retain=0)
        assert store.retain == 1
