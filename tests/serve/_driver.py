"""Shared helpers for driving a :class:`PartitionServer` under test.

Tests run scenarios directly on the daemon's event loop (deterministic, no
socket timing) via :func:`run_scenario`; the socket path itself is covered
by ``test_server.py``'s TCP lifecycle test and the CI serve-smoke job.
"""

import asyncio
import json

from repro.serve import ServeConfig
from repro.serve.server import PartitionServer


def request_line(payload: dict) -> bytes:
    """Encode one request dict as its wire line."""
    return (json.dumps(payload) + "\n").encode("utf-8")


async def dispatch(server: PartitionServer, payload: dict) -> dict:
    """Run one request through the server's real dispatch path."""
    return await server._dispatch(request_line(payload))


async def settle(server: PartitionServer) -> None:
    """Wait until the append queue is drained and no rebalance is in flight."""
    await server._queue.join()
    if server._rebalance_task is not None:
        await asyncio.gather(server._rebalance_task, return_exceptions=True)


async def fold_tail(server: PartitionServer) -> None:
    """Force a final rebalance so the generation covers the whole log."""
    await settle(server)
    if server.state.drift_fraction > 0:
        await server._rebalance("final")


def run_scenario(papar, workflow, args, scenario, **config_kw):
    """Start a daemon, run ``await scenario(server)``, drain, and return
    ``(server, result)`` for post-mortem assertions."""

    async def go():
        server = PartitionServer(
            papar, workflow, args, config=ServeConfig(**config_kw)
        )
        await server.start()
        try:
            result = await scenario(server)
        finally:
            await server._drain_and_stop()
        return server, result

    return asyncio.run(go())
