"""Smith-Waterman traceback alignments."""

import numpy as np
import pytest

from repro.blast import encode
from repro.blast.align import smith_waterman
from repro.blast.gapped import banded_gapped_score
from repro.blast.scoring import BLOSUM62
from repro.errors import PaParError


class TestSmithWaterman:
    def test_identical(self):
        seq = encode("MKVLAARNDW")
        aln = smith_waterman(seq, seq)
        assert aln.score == int(BLOSUM62[seq, seq].sum())
        assert aln.identity_fraction == 1.0
        assert aln.gaps == 0
        assert aln.query_aligned == "MKVLAARNDW"
        assert aln.match_line == "|" * 10

    def test_substitution_marked(self):
        q = encode("MKVL")
        s = encode("MKIL")  # V->I is a positive BLOSUM62 substitution (+3)
        aln = smith_waterman(q, s)
        assert aln.identities == 3
        assert aln.positives == 4
        assert "+" in aln.match_line

    def test_gap_in_alignment(self):
        q = encode("MKVLAARNDW")
        s = encode("MKVLARNDW")  # one 'A' deleted
        aln = smith_waterman(q, s)
        assert aln.gaps == 1
        assert "-" in aln.subject_aligned
        assert len(aln.query_aligned) == len(aln.subject_aligned)

    def test_local_alignment_clips_ends(self):
        q = encode("PPPP" + "MKVLAARNDW" + "GGGG")
        s = encode("MKVLAARNDW")
        aln = smith_waterman(q, s)
        assert aln.query_aligned == "MKVLAARNDW"
        assert aln.query_start == 4

    def test_score_at_least_banded(self):
        """The unrestricted DP dominates the banded approximation."""
        rng = np.random.default_rng(1)
        q = rng.integers(0, 20, size=50).astype(np.uint8)
        s = rng.integers(0, 20, size=60).astype(np.uint8)
        assert smith_waterman(q, s).score >= banded_gapped_score(q, s, band=4)

    def test_pretty_renders_blocks(self):
        seq = encode("MKVLAARNDW" * 8)
        text = smith_waterman(seq, seq).pretty(width=30)
        assert "Score =" in text
        assert text.count("Query") == (80 + 29) // 30

    def test_alignment_lines_consistent(self):
        rng = np.random.default_rng(2)
        q = rng.integers(0, 20, size=40).astype(np.uint8)
        s = rng.integers(0, 20, size=40).astype(np.uint8)
        aln = smith_waterman(q, s)
        assert len(aln.query_aligned) == len(aln.match_line) == len(aln.subject_aligned)
        # gap characters never face each other
        for qc, sc in zip(aln.query_aligned, aln.subject_aligned):
            assert not (qc == "-" and sc == "-")

    def test_empty_rejected(self):
        with pytest.raises(PaParError):
            smith_waterman(encode(""), encode("MK"))
