"""best_alignment: the search index's full-report path."""

import numpy as np
import pytest

from repro.blast import PartitionIndex, generate_database
from repro.blast.search import best_alignment


@pytest.fixture(scope="module")
def db():
    return generate_database("env_nr", num_sequences=80, seed=55)


class TestBestAlignment:
    def test_self_query_aligns_to_itself(self, db):
        index = PartitionIndex(db)
        i = int(np.argmax(db.seq_size))
        subject_id, aln = best_alignment(index, db.sequence(i).copy())
        assert subject_id == i
        assert aln.identity_fraction == 1.0
        assert aln.gaps == 0
        assert "Score =" in aln.pretty()

    def test_mutated_query_still_finds_source(self, db):
        index = PartitionIndex(db)
        i = int(np.argmax(db.seq_size))
        query = db.sequence(i).copy()
        # mutate 5% of residues
        rng = np.random.default_rng(1)
        pos = rng.choice(len(query), size=max(1, len(query) // 20), replace=False)
        query[pos] = (query[pos] + 1) % 20
        subject_id, aln = best_alignment(index, query)
        assert subject_id == i
        assert aln.identity_fraction > 0.85

    def test_no_seeds_returns_none(self):
        from repro.blast import build_index, encode, extract_partition

        db = generate_database("env_nr", num_sequences=1, seed=0)
        empty = extract_partition(db, build_index(db)[:0])
        index = PartitionIndex(empty)
        subject_id, aln = best_alignment(index, encode("MKVLAARNDW"))
        assert subject_id is None and aln is None
