"""muBLASTP partitioners, the search kernel, and the Figure 12 skew effect."""

import numpy as np
import pytest

from repro.blast import (
    PartitionIndex,
    baseline_partition_time,
    build_index,
    count_balance,
    decode,
    encode,
    extract_partition,
    generate_database,
    length_mixing,
    make_batch,
    mublastp_partition,
    partition_makespan,
    size_balance,
)
from repro.blast.scoring import ALPHABET, BLOSUM62
from repro.cluster.model import CostModel
from repro.errors import PaParError


@pytest.fixture(scope="module")
def db():
    return generate_database("env_nr", num_sequences=400, seed=5)


@pytest.fixture(scope="module")
def index(db):
    return build_index(db)


class TestScoring:
    def test_blosum62_symmetric(self):
        np.testing.assert_array_equal(BLOSUM62, BLOSUM62.T)

    def test_blosum62_diagonal_positive(self):
        diag = np.diag(BLOSUM62)[:20]
        assert (diag > 0).all()
        assert BLOSUM62[ALPHABET.index("W"), ALPHABET.index("W")] == 11

    def test_known_values(self):
        a, r = ALPHABET.index("A"), ALPHABET.index("R")
        assert BLOSUM62[a, a] == 4
        assert BLOSUM62[a, r] == -1

    def test_encode_decode_roundtrip(self):
        seq = "MKVLAARNDW"
        assert decode(encode(seq)) == seq

    def test_encode_rejects_unknown(self):
        with pytest.raises(PaParError):
            encode("MKB1")


class TestMuBlastpPartition:
    def test_cyclic_matches_paper_goals(self, index):
        parts = mublastp_partition(index, 8, policy="cyclic")
        assert count_balance(parts) <= 1.01  # goal 1: similar counts
        assert size_balance(parts) < 1.1  # goal 3: similar encoded sizes
        assert length_mixing(parts) < 1.1  # goal 2: similar length profiles

    def test_block_keeps_input_order(self, index):
        parts = mublastp_partition(index, 4, policy="block")
        reassembled = np.concatenate(parts)
        np.testing.assert_array_equal(reassembled, index)

    def test_cyclic_covers_all_sequences(self, index):
        parts = mublastp_partition(index, 5, policy="cyclic")
        got = sorted(int(s) for p in parts for s in p["seq_start"])
        assert got == sorted(int(s) for s in index["seq_start"])

    def test_block_skews_on_clustered_database(self):
        """The default method inherits the database's length clustering."""
        db = generate_database("nr", num_sequences=2000, seed=7, length_clustering=0.95)
        index = build_index(db)
        block = mublastp_partition(index, 8, policy="block")
        cyclic = mublastp_partition(index, 8, policy="cyclic")
        assert length_mixing(block) > length_mixing(cyclic) * 1.2
        assert size_balance(block) > size_balance(cyclic)

    def test_unknown_policy(self, index):
        with pytest.raises(PaParError):
            mublastp_partition(index, 4, policy="zigzag")

    def test_baseline_time_scales_with_threads(self):
        t1 = baseline_partition_time(1 << 20, threads=1)
        t16 = baseline_partition_time(1 << 20, threads=16)
        assert t16 < t1
        assert t1 / t16 <= 16

    def test_baseline_time_monotone_in_size(self):
        cost = CostModel()
        assert baseline_partition_time(1 << 22, cost=cost) > baseline_partition_time(
            1 << 18, cost=cost
        )


class TestSearchKernel:
    def test_exact_self_match_found(self, db):
        index = PartitionIndex(db)
        query = db.sequence(3).copy()
        result = index.search(query)
        assert result.num_hits > 0
        # self-alignment score is at least the sum of diagonal BLOSUM values
        self_score = int(BLOSUM62[query, query].sum())
        assert result.best_score >= self_score * 0.5

    def test_no_hits_for_impossible_query(self):
        db = generate_database("env_nr", num_sequences=20, seed=8)
        index = PartitionIndex(db)
        # all-tryptophan query: W runs are vanishingly rare in random data
        query = encode("W" * 30)
        result = index.search(query)
        assert result.extension_columns >= 0  # well-formed even with few hits

    def test_work_grows_with_database_size(self):
        small = generate_database("env_nr", num_sequences=50, seed=9)
        large = generate_database("env_nr", num_sequences=500, seed=9)
        query = small.sequence(0).copy()
        w_small = PartitionIndex(small).search(query).work
        w_large = PartitionIndex(large).search(query).work
        assert w_large > w_small

    def test_work_grows_with_query_length(self, db):
        index = PartitionIndex(db)
        lengths = db.seq_size
        short_q = db.sequence(int(np.argmin(lengths))).copy()
        long_q = db.sequence(int(np.argmax(lengths))).copy()
        assert index.search(long_q).work > index.search(short_q).work

    def test_batch_accumulates(self, db):
        index = PartitionIndex(db)
        queries = make_batch(db, "100", batch_size=5, seed=1)
        total = index.search_batch(queries)
        individual = sum((index.search(q) for q in queries), start=type(total)(0, 0, 0))
        assert total.work == individual.work

    def test_empty_partition_index(self):
        db = generate_database("env_nr", num_sequences=1, seed=0)
        sub = extract_partition(db, build_index(db)[:0])
        index = PartitionIndex(sub)
        assert index.num_kmers == 0
        result = index.search(db.sequence(0).copy())
        assert result.work == 0


class TestBatches:
    def test_batch_length_limits(self, db):
        for kind, limit in [("100", 100), ("500", 500)]:
            batch = make_batch(db, kind, batch_size=20, seed=3)
            assert all(len(q) < limit for q in batch)

    def test_mixed_unrestricted(self, db):
        batch = make_batch(db, "mixed", batch_size=20, seed=3)
        assert len(batch) == 20

    def test_unknown_kind(self, db):
        with pytest.raises(PaParError):
            make_batch(db, "1000")

    def test_deterministic(self, db):
        a = make_batch(db, "mixed", batch_size=10, seed=4)
        b = make_batch(db, "mixed", batch_size=10, seed=4)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestFigure12Effect:
    """Cyclic partitioning beats block on makespan for skewed databases."""

    def test_cyclic_beats_block_makespan(self):
        db = generate_database("nr", num_sequences=600, seed=11, length_clustering=0.95)
        index = build_index(db)
        queries = make_batch(db, "mixed", batch_size=10, seed=2)
        results = {}
        for policy in ("cyclic", "block"):
            parts_idx = mublastp_partition(index, 8, policy=policy)
            parts_db = [extract_partition(db, p) for p in parts_idx]
            makespan, times = partition_makespan(parts_db, queries)
            results[policy] = (makespan, times)
        assert results["cyclic"][0] < results["block"][0]

    def test_cyclic_balances_per_partition_times_better_than_block(self):
        db = generate_database("nr", num_sequences=600, seed=11, length_clustering=0.95)
        index = build_index(db)
        queries = make_batch(db, "mixed", batch_size=10, seed=2)

        def imbalance(policy):
            parts_idx = mublastp_partition(index, 8, policy=policy)
            parts_db = [extract_partition(db, p) for p in parts_idx]
            _, times = partition_makespan(parts_db, queries)
            times = np.array(times)
            return float(times.max() / times.mean())

        assert imbalance("cyclic") < imbalance("block")
