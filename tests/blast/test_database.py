"""Synthetic database generation and the four-tuple index."""

import numpy as np
import pytest

from repro.blast import (
    build_index,
    extract_partition,
    fraction_under,
    generate_database,
    index_dataset,
    recalculate_pointers,
    write_index,
)
from repro.blast.database import ENV_NR_PROFILE, NR_PROFILE
from repro.errors import PaParError
from repro.formats import BLAST_INDEX_SCHEMA, read_binary


@pytest.fixture(scope="module")
def db():
    return generate_database("env_nr", num_sequences=500, seed=1)


class TestGeneration:
    def test_extents_consistent(self, db):
        assert db.num_sequences == 500
        assert db.seq_start[0] == 0
        ends = db.seq_start + db.seq_size
        np.testing.assert_array_equal(db.seq_start[1:], ends[:-1])
        assert ends[-1] == len(db.residues)

    def test_description_extents_consistent(self, db):
        ends = db.desc_start + db.desc_size
        np.testing.assert_array_equal(db.desc_start[1:], ends[:-1])
        assert ends[-1] == len(db.descriptions)
        assert db.description(0).startswith(">env_nr|")

    def test_residue_codes_valid(self, db):
        assert db.residues.max() < 20  # only the 20 standard amino acids

    def test_deterministic(self):
        a = generate_database("env_nr", num_sequences=50, seed=9)
        b = generate_database("env_nr", num_sequences=50, seed=9)
        np.testing.assert_array_equal(a.residues, b.residues)
        np.testing.assert_array_equal(a.seq_size, b.seq_size)

    def test_env_nr_mostly_short(self, db):
        """Paper: 'most of the sequences ... are less than 100 letters'."""
        assert fraction_under(db, 100) > 0.5

    def test_nr_heavier_tail_than_env_nr(self):
        env = generate_database("env_nr", num_sequences=3000, seed=2)
        nr = generate_database("nr", num_sequences=3000, seed=2)
        assert nr.seq_size.mean() > env.seq_size.mean()
        assert np.percentile(nr.seq_size, 99) > np.percentile(env.seq_size, 99)

    def test_length_clustering_correlates_neighbours(self):
        clustered = generate_database("env_nr", num_sequences=2000, seed=3, length_clustering=0.95)
        shuffled = generate_database("env_nr", num_sequences=2000, seed=3, length_clustering=0.0)

        def neighbour_corr(lengths):
            return np.corrcoef(lengths[:-1], lengths[1:])[0, 1]

        assert neighbour_corr(clustered.seq_size) > 0.5
        assert abs(neighbour_corr(shuffled.seq_size)) < 0.2

    def test_invalid_args(self):
        with pytest.raises(PaParError):
            generate_database("swissprot")
        with pytest.raises(PaParError):
            generate_database("nr", num_sequences=0)
        with pytest.raises(PaParError):
            generate_database("nr", length_clustering=2.0)

    def test_profiles_bounds(self):
        for prof in (ENV_NR_PROFILE, NR_PROFILE):
            rng = np.random.default_rng(0)
            lengths = prof.sample(1000, rng)
            assert lengths.min() >= prof.min_len
            assert lengths.max() <= prof.max_len


class TestIndex:
    def test_index_matches_db(self, db):
        index = build_index(db)
        assert index.dtype == BLAST_INDEX_SCHEMA.dtype
        np.testing.assert_array_equal(index["seq_size"], db.seq_size)
        np.testing.assert_array_equal(index["seq_start"], db.seq_start)

    def test_index_dataset(self, db):
        ds = index_dataset(db)
        assert len(ds) == db.num_sequences
        assert ds.schema.id == "blast_db"

    def test_write_read_roundtrip(self, db, tmp_path):
        path = tmp_path / "db.index"
        write_index(path, db)
        back = read_binary(path, BLAST_INDEX_SCHEMA)
        np.testing.assert_array_equal(back["seq_size"], db.seq_size)

    def test_recalculate_pointers(self, db):
        index = build_index(db)
        part = index[::3].copy()  # every third sequence
        rebased = recalculate_pointers(part)
        assert rebased["seq_start"][0] == 0
        np.testing.assert_array_equal(
            rebased["seq_start"][1:],
            np.cumsum(rebased["seq_size"])[:-1],
        )
        np.testing.assert_array_equal(rebased["seq_size"], part["seq_size"])

    def test_recalculate_rejects_wrong_dtype(self):
        with pytest.raises(PaParError):
            recalculate_pointers(np.zeros(3, dtype=np.int64))

    def test_extract_partition_preserves_sequences(self, db):
        index = build_index(db)
        part_idx = index[[5, 17, 200]].copy()
        part_db = extract_partition(db, part_idx)
        assert part_db.num_sequences == 3
        for out_i, src_i in enumerate([5, 17, 200]):
            np.testing.assert_array_equal(part_db.sequence(out_i), db.sequence(src_i))
            assert part_db.description(out_i) == db.description(src_i)
