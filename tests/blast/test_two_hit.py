"""The two-hit seeding heuristic of the search kernel."""

import numpy as np
import pytest

from repro.blast import PartitionIndex, generate_database
from repro.blast.scoring import BLOSUM62


@pytest.fixture(scope="module")
def db():
    return generate_database("env_nr", num_sequences=200, seed=33)


class TestTwoHit:
    def test_fewer_extensions_than_one_hit(self, db):
        index = PartitionIndex(db)
        query = db.sequence(10).copy()
        one = index.search(query, two_hit=False)
        two = index.search(query, two_hit=True)
        assert two.extension_columns < one.extension_columns
        # raw hit counting is unchanged (seeding differs, scanning does not)
        assert two.num_hits == one.num_hits

    def test_self_match_still_found(self, db):
        """A true alignment produces many same-diagonal hits, so the two-hit
        filter must not lose the self match."""
        index = PartitionIndex(db)
        # pick a reasonably long sequence so the self-diagonal has >= 2 hits
        i = int(np.argmax(db.seq_size))
        query = db.sequence(i).copy()
        result = index.search(query, two_hit=True)
        self_score = int(BLOSUM62[query, query].sum())
        assert result.best_score >= self_score * 0.3

    def test_window_zero_blocks_everything(self, db):
        index = PartitionIndex(db)
        query = db.sequence(5).copy()
        # window smaller than the word size can never satisfy the two-hit rule
        result = index.search(query, two_hit=True, window=1)
        assert result.extension_columns == 0

    def test_two_hit_makespan_ordering_preserved(self, db):
        """Cyclic still beats block under the two-hit cost profile."""
        from repro.blast import build_index, extract_partition, make_batch, mublastp_partition

        db2 = generate_database("nr", num_sequences=400, seed=34, length_clustering=0.95)
        index = build_index(db2)
        queries = make_batch(db2, "mixed", batch_size=6, seed=1)

        def makespan(policy):
            parts = [
                extract_partition(db2, p) for p in mublastp_partition(index, 6, policy)
            ]
            times = []
            for part in parts:
                pidx = PartitionIndex(part)
                total = 0.0
                for q in queries:
                    total += pidx.search(q, two_hit=True).modeled_seconds
                times.append(total)
            return max(times)

        assert makespan("cyclic") < makespan("block")
