"""Karlin-Altschul statistics, gapped extension, FASTA round trips."""

import math

import numpy as np
import pytest

from repro.blast import encode, generate_database
from repro.blast.fasta import read_fasta, write_fasta
from repro.blast.gapped import banded_gapped_score, gapped_extend_seed
from repro.blast.statistics import (
    K_UNGAPPED,
    LAMBDA_UNGAPPED,
    bit_score,
    e_value,
    karlin_lambda,
    significant,
)
from repro.errors import PaParError


class TestKarlinAltschul:
    def test_lambda_matches_published_value(self):
        """Deriving lambda from BLOSUM62 + background frequencies must land
        near the NCBI ungapped value 0.3176."""
        lam = karlin_lambda()
        assert lam == pytest.approx(LAMBDA_UNGAPPED, abs=0.02)

    def test_lambda_requires_negative_drift(self):
        good = np.ones((2, 2))
        with pytest.raises(PaParError, match="negative"):
            karlin_lambda(scores=good, freqs=np.array([0.5, 0.5]))

    def test_bit_score_monotone(self):
        assert bit_score(100) > bit_score(50) > bit_score(10)

    def test_e_value_decreases_with_score(self):
        e1 = e_value(30, 100, 1_000_000)
        e2 = e_value(60, 100, 1_000_000)
        assert e2 < e1

    def test_e_value_grows_with_search_space(self):
        assert e_value(50, 100, 10_000_000) > e_value(50, 100, 10_000)

    def test_known_magnitude(self):
        """A raw score of 52 is ~27 bits under the ungapped parameters."""
        bits = bit_score(52)
        assert 25 < bits < 29
        e = e_value(52, 100, 1_000_000)
        assert math.isclose(e, 100 * 1e6 * 2**-bits, rel_tol=1e-12)

    def test_significance_threshold(self):
        assert significant(100, 100, 1_000_000)
        assert not significant(10, 100, 1_000_000)

    def test_invalid_lengths(self):
        with pytest.raises(PaParError):
            e_value(50, 0, 100)


class TestGappedExtension:
    def test_identical_sequences_score_diagonal(self):
        seq = encode("MKVLAARNDWQRHGG")
        from repro.blast.scoring import BLOSUM62

        expected = int(BLOSUM62[seq, seq].sum())
        assert banded_gapped_score(seq, seq) == expected

    def test_gap_recovered(self):
        """A single deletion must not destroy the alignment score."""
        q = encode("MKVLAARNDWQRHGGFFPPK")
        s = encode("MKVLAARNDQRHGGFFPPK")  # 'W' deleted
        gapped = banded_gapped_score(q, s, band=8)
        # ungapped same-diagonal score collapses after the indel
        from repro.blast.scoring import BLOSUM62

        n = min(len(q), len(s))
        ungapped = 0
        best_prefix = 0
        for i in range(n):
            ungapped += int(BLOSUM62[q[i], s[i]])
            best_prefix = max(best_prefix, ungapped)
        assert gapped > best_prefix

    def test_unrelated_sequences_low_score(self):
        q = encode("WWWWWWWWWW")
        s = encode("PPPPPPPPPP")
        assert banded_gapped_score(q, s) == 0

    def test_band_limits_offsets(self):
        """A shift larger than the band is invisible to the kernel."""
        core = "MKVLAARNDWQRHGG"
        q = encode(core)
        s = encode("A" * 40 + core)  # shifted far outside the band
        assert banded_gapped_score(q, s, band=4) < 15

    def test_seed_window_extension(self):
        db_seq = encode("PPPPP" + "MKVLAARNDW" + "GGGGG")
        query = encode("MKVLAARNDW")
        score = gapped_extend_seed(query, db_seq, q_pos=0, d_pos=5)
        from repro.blast.scoring import BLOSUM62

        assert score >= int(BLOSUM62[query, query].sum())

    def test_invalid_band(self):
        with pytest.raises(PaParError):
            banded_gapped_score(encode("MK"), encode("MK"), band=0)

    def test_empty_sequences(self):
        assert banded_gapped_score(encode(""), encode("MK")) == 0


class TestFasta:
    def test_roundtrip(self, tmp_path):
        db = generate_database("env_nr", num_sequences=25, seed=44)
        path = tmp_path / "db.fasta"
        write_fasta(path, db)
        back = read_fasta(path, name="env_nr")
        assert back.num_sequences == db.num_sequences
        np.testing.assert_array_equal(back.seq_size, db.seq_size)
        for i in range(db.num_sequences):
            np.testing.assert_array_equal(back.sequence(i), db.sequence(i))
            assert back.description(i) == db.description(i)

    def test_long_lines_wrapped(self, tmp_path):
        db = generate_database("nr", num_sequences=3, seed=45)
        path = tmp_path / "db.fasta"
        write_fasta(path, db)
        assert all(len(l) <= 61 for l in path.read_text().splitlines())

    def test_empty_record_rejected(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text(">a\n>b\nMKV\n")
        with pytest.raises(PaParError, match="empty"):
            read_fasta(path)

    def test_data_before_header_rejected(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text("MKV\n>a\nMKV\n")
        with pytest.raises(PaParError, match="header"):
            read_fasta(path)

    def test_no_records(self, tmp_path):
        path = tmp_path / "empty.fasta"
        path.write_text("\n\n")
        with pytest.raises(PaParError, match="no FASTA"):
            read_fasta(path)

    def test_trailing_empty_record_rejected(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text(">a\nMKV\n>b\n")
        with pytest.raises(PaParError, match="empty"):
            read_fasta(path)
