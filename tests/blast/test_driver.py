"""Distributed muBLASTP search driver."""

import numpy as np
import pytest

from repro.blast import generate_database, make_batch
from repro.blast.driver import distributed_search
from repro.cluster import ClusterModel, INFINIBAND_QDR
from repro.errors import PaParError


@pytest.fixture(scope="module")
def db():
    return generate_database("nr", num_sequences=300, seed=19, length_clustering=0.95)


@pytest.fixture(scope="module")
def queries(db):
    return make_batch(db, "mixed", batch_size=6, seed=4)


class TestDistributedSearch:
    def test_results_independent_of_partitioning(self, db, queries):
        """Hit totals are a property of the database, not its partitioning."""
        a = distributed_search(db, queries, num_partitions=4, policy="cyclic")
        b = distributed_search(db, queries, num_partitions=4, policy="block")
        c = distributed_search(db, queries, num_partitions=8, policy="cyclic")
        assert a.total.num_hits == b.total.num_hits == c.total.num_hits
        assert a.total.best_score == b.total.best_score == c.total.best_score

    def test_makespan_is_slowest_partition(self, db, queries):
        result = distributed_search(db, queries, num_partitions=4)
        assert result.makespan == pytest.approx(max(result.per_partition_seconds))

    def test_cyclic_beats_block_makespan(self, db, queries):
        cyc = distributed_search(db, queries, num_partitions=8, policy="cyclic")
        blk = distributed_search(db, queries, num_partitions=8, policy="block")
        assert cyc.makespan < blk.makespan

    def test_virtual_time_with_cluster(self, db, queries):
        cluster = ClusterModel(num_nodes=2, ranks_per_node=2, network=INFINIBAND_QDR)
        result = distributed_search(db, queries, num_partitions=4, cluster=cluster)
        assert result.makespan > 0
        # the cluster's per-rank threads shrink the virtual search time
        serial = distributed_search(db, queries, num_partitions=4)
        assert result.makespan < max(serial.per_partition_seconds)

    def test_validation(self, db, queries):
        with pytest.raises(PaParError):
            distributed_search(db, queries, num_partitions=0)
        with pytest.raises(PaParError):
            distributed_search(db, [], num_partitions=2)
