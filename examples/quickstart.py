#!/usr/bin/env python
"""PaPar quickstart: describe data, describe a workflow, get partitions.

Covers the three-step user experience of the paper's Figure 3:

1. an input-data configuration describing the record layout (Figure 4 style),
2. a workflow configuration naming the operators (Figure 8 style),
3. PaPar plans the workflow, generates the partitioner, and runs it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PaPar
from repro.core.dataset import Dataset

# -- 1. describe the input data ---------------------------------------------
# Records of four integers: an id, a size, and two payload fields.
INPUT_XML = """
<input id="my_records" name="quickstart record layout">
  <input_format>binary</input_format>
  <element>
    <value name="record_id" type="integer"/>
    <value name="size" type="integer"/>
    <value name="payload_a" type="integer"/>
    <value name="payload_b" type="integer"/>
  </element>
</input>
"""

# -- 2. describe the partitioning workflow ----------------------------------
# Sort records by size, then deal them round-robin into N partitions: the
# same shape as the muBLASTP workflow of Figure 8.
WORKFLOW_XML = """
<workflow id="quickstart" name="sort + cyclic distribution">
  <arguments>
    <param name="input_path" type="hdfs" format="my_records"/>
    <param name="output_path" type="hdfs" format="my_records"/>
    <param name="num_partitions" type="integer"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/tmp/sorted"/>
      <param name="key" type="KeyId" value="size"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$sort.outputPath"/>
      <param name="outputPath" type="String" value="$output_path"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>
"""


def main() -> None:
    papar = PaPar()
    schema = papar.register_input(INPUT_XML)
    print(f"registered schema {schema.id!r}: {schema.field_names}, "
          f"{schema.itemsize} bytes/record")

    # some skewed in-memory records (PaPar supports in-memory partitioning)
    rng = np.random.default_rng(0)
    sizes = (rng.pareto(1.5, size=24) * 50 + 10).astype(int)
    rows = [(i, int(s), i * 2, i * 3) for i, s in enumerate(sizes)]
    data = Dataset.from_rows(schema, rows)

    args = {"input_path": "/in", "output_path": "/out", "num_partitions": 3}

    # -- 3a. run interpreted, serial backend -------------------------------
    result = papar.run(WORKFLOW_XML, args, data=data)
    print(f"\nserial backend produced {result.num_partitions} partitions:")
    for p, part in enumerate(result.partitions):
        print(f"  partition {p}: sizes {[int(r[1]) for r in part.rows()]}")

    # -- 3b. the same thing through the generated code ----------------------
    plan = papar.plan(WORKFLOW_XML, args)
    print("\ngenerated partitioner source (first 12 lines):")
    for line in papar.generate_code(plan).splitlines()[:12]:
        print(f"  {line}")
    module = papar.compile(plan)
    gen = module.run(data, backend="serial")
    assert [p.rows() for p in gen.partitions] == [p.rows() for p in result.partitions]
    print("\ngenerated code reproduces the interpreted partitions exactly")

    # -- 3c. distributed (simulated MPI) backend ------------------------------
    mpi = papar.run(WORKFLOW_XML, args, data=data, backend="mpi", num_ranks=4)
    assert [p.rows() for p in mpi.partitions] == [p.rows() for p in result.partitions]
    print("MPI backend (4 ranks) produces the same partitions")


if __name__ == "__main__":
    main()
