#!/usr/bin/env python
"""PowerLyra-style hybrid-cut graph partitioning (paper Sections II-A, IV-C).

Generates a power-law graph, partitions it with the PaPar-generated
hybrid-cut workflow (Figure 10: group by in-vertex with a count add-on,
threshold split, per-stream cyclic distribution), cross-checks against the
independent reference implementation, then runs PageRank under the three
cuts of Figure 14 and reports replication factors and modeled times.

Run:  python examples/graph_hybrid_cut.py
"""

import numpy as np

from repro import PaPar
from repro.cluster import ClusterModel, ETHERNET_10G
from repro.config import EDGE_INPUT_XML
from repro.config.examples import HYBRID_CUT_WORKFLOW_XML
from repro.graph import (
    GASEngine,
    generate_powerlaw,
    pagerank_reference,
    papar_equivalent_hybrid_cut,
    partition_by,
)

NUM_PARTITIONS = 8
THRESHOLD = 20


def main() -> None:
    g = generate_powerlaw(4000, 40_000, alpha=2.2, seed=11)
    indeg = g.in_degrees()
    print(
        f"graph: {g.num_vertices} vertices, {g.num_edges} edges, "
        f"max in-degree {int(indeg.max())} (power-law tail)"
    )

    # -- PaPar-generated hybrid-cut (Figure 10 workflow) ---------------------
    papar = PaPar()
    papar.register_input(EDGE_INPUT_XML)
    result = papar.run(
        HYBRID_CUT_WORKFLOW_XML,
        {
            "input_file": "/in",
            "output_path": "/out",
            "num_partitions": NUM_PARTITIONS,
            "threshold": THRESHOLD,
        },
        data=g.to_dataset(),
        backend="mpi",
        num_ranks=4,
    )
    sizes = [p.num_records for p in result.partitions]
    print(f"PaPar hybrid-cut partition sizes: {sizes}")

    # -- identical to the independent reference ------------------------------
    reference = papar_equivalent_hybrid_cut(g, NUM_PARTITIONS, THRESHOLD)
    for ours, theirs in zip(result.partitions, reference):
        got = np.column_stack(
            [ours.records["vertex_a"], ours.records["vertex_b"], ours.records["indegree"]]
        )
        np.testing.assert_array_equal(got, theirs)
    print("partitions identical to the reference hybrid-cut implementation")

    # -- Figure 14: PageRank under the three cuts -----------------------------
    cluster = ClusterModel(num_nodes=NUM_PARTITIONS, ranks_per_node=1, network=ETHERNET_10G)
    ref_ranks = pagerank_reference(g, iterations=10)
    print(f"\n{'cut':12s} {'replication':>11s} {'edge balance':>12s} {'modeled time':>12s}")
    for strategy in ("hybrid-cut", "vertex-cut", "edge-cut"):
        kwargs = {"threshold": THRESHOLD} if strategy == "hybrid-cut" else {}
        pg = partition_by(strategy, g, NUM_PARTITIONS, **kwargs)
        ranks, report = GASEngine(pg, cluster=cluster).pagerank(iterations=10)
        np.testing.assert_allclose(ranks, ref_ranks, rtol=1e-10)
        print(
            f"{strategy:12s} {pg.replication_factor():11.2f} "
            f"{pg.edge_balance():12.2f} {report.elapsed * 1e3:9.2f} ms"
        )
    print("\nall cuts compute identical PageRank values; hybrid-cut costs least")


if __name__ == "__main__":
    main()
