#!/usr/bin/env python
"""muBLASTP database partitioning end to end (paper Sections II-A, IV-B).

Builds a synthetic protein database, partitions its four-tuple index with
the PaPar-generated workflow (Figure 8: sort by encoded sequence length +
cyclic distribution), verifies the partitions equal muBLASTP's own
partitioner, rebases the index pointers (the user-defined add-on of Section
III-C), and demonstrates the Figure 12 effect: cyclic partitioning balances
search makespan, block partitioning does not.

Run:  python examples/blast_partitioning.py
"""

import numpy as np

from repro import PaPar
from repro.blast import (
    build_index,
    extract_partition,
    generate_database,
    make_batch,
    mublastp_partition,
    partition_makespan,
    recalculate_pointers,
)
from repro.config import BLAST_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.formats import BLAST_INDEX_SCHEMA

NUM_SEQUENCES = 1200
NUM_PARTITIONS = 8


def main() -> None:
    db = generate_database(
        "nr", num_sequences=NUM_SEQUENCES, seed=3, length_clustering=0.9
    )
    index = build_index(db)
    print(
        f"database: {db.num_sequences} sequences, {db.total_residues} residues, "
        f"median length {int(np.median(db.seq_size))}"
    )

    # -- partition through PaPar (Figure 8 workflow) ------------------------
    papar = PaPar()
    papar.register_input(BLAST_INPUT_XML)
    result = papar.run(
        BLAST_WORKFLOW_XML,
        {"input_path": "/in", "output_path": "/out", "num_partitions": NUM_PARTITIONS},
        data=Dataset.from_array(BLAST_INDEX_SCHEMA, index),
        backend="mpi",
        num_ranks=4,
    )
    print(f"PaPar produced {result.num_partitions} partitions on 4 simulated ranks")

    # -- same partitions as the application's own method ----------------------
    native = mublastp_partition(index, NUM_PARTITIONS, policy="cyclic")
    for ours, theirs in zip(result.partitions, native):
        np.testing.assert_array_equal(ours.records, theirs)
    print("partitions are identical to muBLASTP's own partitioner")

    # -- the pointer-recalculation add-on -------------------------------------
    rebased = recalculate_pointers(result.partitions[0].records)
    print(
        f"partition 0 pointers rebased: first seq_start {rebased['seq_start'][0]}, "
        f"sizes preserved: {np.array_equal(rebased['seq_size'], result.partitions[0].records['seq_size'])}"
    )

    # -- the Figure 12 effect: search makespan under cyclic vs block -----------
    queries = make_batch(db, "mixed", batch_size=10, seed=1)
    for policy in ("cyclic", "block"):
        parts_idx = mublastp_partition(index, NUM_PARTITIONS, policy=policy)
        parts_db = [extract_partition(db, p) for p in parts_idx]
        makespan, times = partition_makespan(parts_db, queries)
        imbalance = max(times) / (sum(times) / len(times))
        print(
            f"{policy:6s}: makespan {makespan * 1e3:.3f} ms, "
            f"partition imbalance {imbalance:.2f}x"
        )
    print("cyclic balances the per-partition search load; block inherits the skew")


if __name__ == "__main__":
    main()
