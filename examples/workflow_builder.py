#!/usr/bin/env python
"""Building, explaining, and cost-predicting workflows without XML.

Shows the programmatic side of the framework: construct the hybrid-cut
workflow with :class:`~repro.config.builder.WorkflowBuilder`, render the
planned dataflow as Graphviz DOT, predict its cost on the paper's testbed
before running, then run it and compare prediction to measurement.

Run:  python examples/workflow_builder.py
"""

from repro import PaPar
from repro.cluster import ClusterModel, INFINIBAND_QDR
from repro.config import EDGE_INPUT_XML
from repro.config.builder import WorkflowBuilder
from repro.config.serialize import workflow_to_xml
from repro.core.explain import estimate_plan_cost, plan_to_dot
from repro.graph import generate_powerlaw

NUM_PARTITIONS = 8


def main() -> None:
    # -- build the Figure 10 workflow fluently --------------------------------
    wf = (
        WorkflowBuilder("hybrid_cut_built", name="Hybrid-cut (built fluently)")
        .argument("input_file", type="hdfs", format="graph_edge")
        .argument("output_path", type="hdfs", format="graph_edge")
        .argument("num_partitions", type="integer")
        .argument("threshold", type="integer")
        .group("group", key="vertex_b", input_path="$input_file",
               output_path="/tmp/group", addons=[("count", "indegree", None)])
        .split("split", key="$group.$indegree",
               policy="{>=, $threshold},{<, $threshold}",
               output_paths=["/tmp/split/high", "/tmp/split/low"],
               output_formats=["unpack", "orig"],
               input_path="$group.outputPath")
        .distribute("distr", policy="graphVertexCut",
                    num_partitions="$num_partitions",
                    input_path="/tmp/split/", output_path="$output_path")
        .build()
    )
    print("equivalent XML (first 10 lines):")
    for line in workflow_to_xml(wf).splitlines()[:10]:
        print(" ", line)

    papar = PaPar()
    papar.register_input(EDGE_INPUT_XML)
    args = {"input_file": "/in", "output_path": "/out",
            "num_partitions": NUM_PARTITIONS, "threshold": 20}
    plan = papar.plan(wf, args)

    # -- explain: dataflow + predicted cost ------------------------------------
    print("\nplanned dataflow (Graphviz DOT):")
    print(plan_to_dot(plan))

    g = generate_powerlaw(20_000, 200_000, alpha=2.3, seed=2)
    cluster = ClusterModel(num_nodes=4, ranks_per_node=2, network=INFINIBAND_QDR)
    est = estimate_plan_cost(plan, num_records=g.num_edges, record_bytes=16,
                             cluster=cluster)
    print("predicted cost on 4 nodes:")
    print(est.breakdown())

    # -- run it and compare -----------------------------------------------------
    result = papar.run(plan, data=g.to_dataset(), backend="mpi",
                       num_ranks=cluster.size, cluster=cluster)
    print(f"\nmeasured virtual time: {result.elapsed:.6f}s "
          f"(predicted {est.total_s:.6f}s)")
    print(f"partitions: {[p.num_records for p in result.partitions]}")


if __name__ == "__main__":
    main()
