#!/usr/bin/env python
"""Extending PaPar with a user-defined operator (paper Figure 7).

"PaPar allows users to define their own operators.  Users need to inherit
one of these three operator classes, and provide a configuration file to
describe the operator."

This example defines a ``Sample`` basic operator (keep every k-th entry),
registers it both programmatically and through a Figure-7-style registration
file, and uses it from a workflow next to the built-in operators.

Run:  python examples/custom_operator.py
"""

import numpy as np

from repro import PaPar
from repro.config import parse_operator_config
from repro.core.dataset import Dataset
from repro.ops import Distribute
from repro.ops.base import BasicOperator, register_basic


# -- 1. implement the operator by inheriting a base class ---------------------
@register_basic
class Sample(BasicOperator):
    """Keep every ``stride``-th entry (a deterministic down-sampler)."""

    name = "Sample"

    def __init__(self, stride: int = 2) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride

    def apply_local(self, data: Dataset) -> Dataset:
        return data.take(np.arange(0, len(data), self.stride))


# -- 2. the Figure-7-style registration file ---------------------------------
REGISTRATION_XML = """
<prog id="Sample" type="operator" name="deterministic down-sampler">
  <import module="examples.custom_operator" class="Sample"/>
  <arguments>
    <param name="inputPath" type="String"/>
    <param name="outputPath" type="String"/>
    <param name="stride" type="integer" default="2"/>
  </arguments>
</prog>
"""


def main() -> None:
    papar = PaPar()
    schema = papar.register_input(
        """
        <input id="points" name="numbered points">
          <input_format>binary</input_format>
          <element>
            <value name="point_id" type="integer"/>
            <value name="weight" type="integer"/>
          </element>
        </input>
        """
    )

    # parse the registration and check the operator contract
    registration = parse_operator_config(REGISTRATION_XML)
    print(
        f"registered operator {registration.id!r} from module "
        f"{registration.module!r}, arguments "
        f"{[a.name for a in registration.arguments]}"
    )
    assert registration.argument("stride").default == "2"

    # the registry now resolves the new operator by name
    from repro.ops.base import get_basic

    cls = get_basic("sample")
    assert cls is Sample
    print("registry lookup by name works (case-insensitive)")

    # -- 3. use it alongside the built-in operators --------------------------
    data = Dataset.from_rows(schema, [(i, i * 10) for i in range(12)])
    sampled = Sample(stride=3).apply_local(data)
    print(f"sampled entries: {[int(r[0]) for r in sampled.rows()]}")

    partitions = Distribute("cyclic", 2).apply_local(sampled)
    for p, part in enumerate(partitions):
        print(f"partition {p}: {[int(r[0]) for r in part.rows()]}")


if __name__ == "__main__":
    main()
