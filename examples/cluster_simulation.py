#!/usr/bin/env python
"""Virtual-time cluster experiments and execution tracing.

Shows the machinery behind the paper's scalability figures: run the same
PaPar partitioner on simulated clusters of 1-16 nodes, compare InfiniBand
against Ethernet, and inspect a per-rank execution trace.

Run:  python examples/cluster_simulation.py
"""

from repro import PaPar
from repro.blast import generate_index
from repro.cluster import ClusterModel, ETHERNET_10G, INFINIBAND_QDR
from repro.cluster.trace import Tracer, traced_program
from repro.config import BLAST_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.formats import BLAST_INDEX_SCHEMA
from repro.mpi import SUM, run_mpi

NUM_SEQUENCES = 400_000


def partition_elapsed(data, nodes: int, network) -> float:
    cluster = ClusterModel(num_nodes=nodes, ranks_per_node=2, network=network)
    papar = PaPar()
    papar.register_input(BLAST_INPUT_XML)
    result = papar.run(
        BLAST_WORKFLOW_XML,
        {"input_path": "/in", "output_path": "/out", "num_partitions": nodes * 2},
        data=data,
        backend="mpi",
        num_ranks=cluster.size,
        cluster=cluster,
    )
    return result.elapsed


def main() -> None:
    index = generate_index("env_nr", num_sequences=NUM_SEQUENCES, seed=8)
    data = Dataset.from_array(BLAST_INDEX_SCHEMA, index)
    print(f"partitioning a {NUM_SEQUENCES}-sequence index (virtual time)\n")

    # -- strong scaling on two interconnects --------------------------------
    print(f"{'nodes':>5}  {'InfiniBand':>11}  {'10GbE':>11}")
    base_ib = base_eth = None
    for nodes in (1, 2, 4, 8, 16):
        t_ib = partition_elapsed(data, nodes, INFINIBAND_QDR)
        t_eth = partition_elapsed(data, nodes, ETHERNET_10G)
        base_ib = base_ib or t_ib
        base_eth = base_eth or t_eth
        print(
            f"{nodes:>5}  {t_ib * 1e3:>8.2f} ms  {t_eth * 1e3:>8.2f} ms"
            f"   (speedup {base_ib / t_ib:4.1f}x / {base_eth / t_eth:4.1f}x)"
        )
    print("\nRDMA wins once the shuffle dominates — the Figure 15 mechanism.\n")

    # -- execution trace of a small run --------------------------------------
    cluster = ClusterModel(num_nodes=2, ranks_per_node=2, network=INFINIBAND_QDR)
    tracer = Tracer(4)
    instrument = traced_program(tracer, label_prefix="allreduce-demo")

    def prog(comm):
        comm = instrument(comm)
        comm.charge_compute(0.002 * (comm.rank + 1))  # imbalanced compute
        return comm.allreduce(comm.rank, SUM)

    run_mpi(prog, 4, cluster=cluster)
    print("per-rank trace of an imbalanced allreduce:")
    print(tracer.summary())


if __name__ == "__main__":
    main()
