"""Kernel timings of the simulated MPI runtime itself.

Not a paper figure — infrastructure health: wall-clock throughput of the
thread-backed runtime's primitives, so regressions in the substrate that
every experiment runs on are visible.
"""

import numpy as np
import pytest

from repro.mpi import SUM, run_mpi


def test_point_to_point_throughput(benchmark):
    payload = np.zeros(1 << 16, dtype=np.int64)

    def prog(comm):
        if comm.rank == 0:
            for _ in range(20):
                comm.Send(payload, dest=1)
        else:
            buf = np.empty_like(payload)
            for _ in range(20):
                comm.Recv(buf, source=0)

    result = benchmark(run_mpi, prog, 2)
    assert result.messages == 20


def test_alltoall_objects(benchmark):
    def prog(comm):
        chunks = [list(range(200)) for _ in range(comm.size)]
        return comm.alltoall(chunks)

    result = benchmark(run_mpi, prog, 8)
    assert len(result.results) == 8


def test_allreduce_array(benchmark):
    def prog(comm):
        return comm.Allreduce(np.ones(1 << 14), SUM)

    result = benchmark(run_mpi, prog, 8)
    np.testing.assert_array_equal(result.results[0], np.full(1 << 14, 8.0))


def test_barrier_rounds(benchmark):
    def prog(comm):
        for _ in range(10):
            comm.barrier()

    result = benchmark(run_mpi, prog, 8)
    assert result.messages > 0


def test_launcher_overhead(benchmark):
    """Cost of spinning an SPMD world up and down."""
    result = benchmark(run_mpi, lambda comm: comm.rank, 8)
    assert result.results == list(range(8))
