"""Wall-clock parallel speedup on the process backend.

All cluster-scale figures use virtual time (DESIGN.md §6); this bench is
the honesty check on real hardware, in two parts:

* **Process parallelism** — the distributed sample-sort kernel on 1 vs N
  rank processes; the speedup is bounded by shuffle serialization but must
  be real (> 1) on multicore hosts.
* **Process shuffle** — the headline gate for the zero-copy transport: a
  1M-record columnar shuffle+group through :class:`MRMPIEngine`, threaded
  fabric vs forked ranks over shared memory.  On a >= 4-core host the
  process backend must win by >= 2.5x at 4 workers; the smoke mode
  (``PAPAR_BENCH_SMOKE=1``) shrinks the input and asserts > 1.0x at 2
  workers.  Either way the run pins ``pickle_bytes == 0`` (every array
  byte travelled out-of-band) and that no ``/dev/shm`` segment survives.

Artifact: ``results/process_shuffle.{txt,json}`` (guide:
``docs/process-backend.md``).
"""

import os
import time

import numpy as np
import pytest

from repro.bench import Experiment, shape
from repro.mpi import run_mpi
from repro.mpi.process_backend import run_mpi_processes
from tests.mpi.test_process_backend import _sort_prog

SMOKE = bool(os.environ.get("PAPAR_BENCH_SMOKE"))

N = 2_000_000
RANKS = min(4, os.cpu_count() or 1)

#: the shuffle gate's shape: records, workers, required speedup
SHUFFLE_N = 200_000 if SMOKE else 1_000_000
SHUFFLE_WORKERS = 2 if SMOKE else 4
SHUFFLE_ROUNDS = 2 if SMOKE else 3
SHUFFLE_GATE = 1.0 if SMOKE else 2.5


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(3)
    return rng.integers(0, 1 << 40, size=N)


def run_scaling(data):
    exp = Experiment(
        "Process parallelism", "wall-clock distributed sort, 1 vs N rank processes"
    )
    walls = {}
    for ranks in (1, RANKS):
        t0 = time.perf_counter()
        run = run_mpi_processes(_sort_prog, ranks, args=(data,))
        walls[ranks] = time.perf_counter() - t0
        merged = np.concatenate(run.results)
        assert len(merged) == N
        exp.add(ranks=ranks, wall_s=walls[ranks], records=N)
    exp.note(f"host has {os.cpu_count()} cpus; speedup includes process startup + shuffle")
    return exp, walls


def test_process_parallel_speedup(benchmark, data, reporter):
    if RANKS < 2:
        pytest.skip("single-core host")
    exp, walls = benchmark.pedantic(run_scaling, args=(data,), rounds=1, iterations=1)
    reporter.record(exp)
    shape(
        walls[RANKS] < walls[1],
        f"{RANKS} rank processes beat 1 in wall clock "
        f"({walls[RANKS]:.2f}s < {walls[1]:.2f}s)",
    )


def test_numpy_sort_baseline(benchmark, data):
    out = benchmark(np.sort, data, kind="stable")
    assert len(out) == N


# -- the zero-copy shuffle gate ---------------------------------------------


def _shuffle_prog(comm, keys, values, rounds):
    """One rank of the MR shuffle: columnar hash-shuffle + group + reduce."""
    from repro.mapreduce.columnar import COMBINERS, KVBatch
    from repro.mapreduce.engine import MRMPIEngine
    from repro.mapreduce.partitioner import HashPartitioner

    eng = MRMPIEngine(comm)
    n = len(keys)
    base, extra = divmod(n, comm.size)
    lo = comm.rank * base + min(comm.rank, extra)
    hi = lo + base + (1 if comm.rank < extra else 0)
    local = KVBatch(keys[lo:hi], values[lo:hi])
    checksum = 0
    for _ in range(rounds):
        shuffled = eng.shuffle(local, HashPartitioner(comm.size))
        reduced = eng.reduce(eng.group(shuffled), COMBINERS["sum"])
        checksum += int(np.asarray(reduced.values).sum())
    return checksum


def _timed(launcher, workers, keys, values):
    t0 = time.perf_counter()
    run = launcher(
        _shuffle_prog, workers, args=(keys, values, SHUFFLE_ROUNDS), kwargs=None
    )
    wall = time.perf_counter() - t0
    total = int(values.sum()) * SHUFFLE_ROUNDS
    assert sum(run.results) == total  # every round conserves the values
    return wall, run


def run_shuffle_gate():
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 10_000, size=SHUFFLE_N)
    values = rng.integers(0, 1_000, size=SHUFFLE_N)

    thread_wall, _ = _timed(run_mpi, SHUFFLE_WORKERS, keys, values)
    process_wall, proc_run = _timed(run_mpi_processes, SHUFFLE_WORKERS, keys, values)
    speedup = thread_wall / process_wall

    t = proc_run.extra["transport"]
    exp = Experiment(
        "Process shuffle",
        f"{SHUFFLE_N:,}-record MR shuffle x{SHUFFLE_ROUNDS}, "
        f"threaded fabric vs {SHUFFLE_WORKERS} forked ranks over shared memory",
    )
    exp.add(fabric="threaded", workers=SHUFFLE_WORKERS, wall_s=thread_wall,
            records=SHUFFLE_N, shm_bytes=0, pickle_bytes=0)
    exp.add(fabric="process", workers=SHUFFLE_WORKERS, wall_s=process_wall,
            records=SHUFFLE_N, shm_bytes=t["shm_bytes"],
            pickle_bytes=t["pickle_bytes"])
    exp.note(f"speedup {speedup:.2f}x on {os.cpu_count()} cpu(s); "
             f"segments created {t['segments_created']}, "
             f"reused {t['segments_reused']}, unlinked {t['segments_unlinked']}")
    if SMOKE:
        exp.note("smoke mode: shrunken input, relaxed gate")
    return exp, speedup, t


def test_process_shuffle_speedup(benchmark, reporter):
    exp, speedup, transport = benchmark.pedantic(
        run_shuffle_gate, rounds=1, iterations=1
    )
    reporter.record(exp)
    # the zero-copy pin holds regardless of core count
    shape(
        transport["pickle_bytes"] == 0,
        "numpy payloads travel via shared memory, never the pickle lane",
    )
    from repro.mpi.shm import scan_segments

    shape(
        scan_segments(transport["shm_prefix"]) == [],
        "no /dev/shm segment survives the run",
    )
    cpus = os.cpu_count() or 1
    if cpus < SHUFFLE_WORKERS:
        pytest.skip(
            f"speedup gate needs >= {SHUFFLE_WORKERS} cpus (host has {cpus}); "
            "transport pins still checked"
        )
    shape(
        speedup >= SHUFFLE_GATE,
        f"process backend >= {SHUFFLE_GATE}x over threaded at "
        f"{SHUFFLE_WORKERS} workers (got {speedup:.2f}x)",
    )
