"""Wall-clock parallel speedup on the process backend.

All cluster-scale figures use virtual time (DESIGN.md §6); this bench is the
honesty check on real hardware: the same distributed sample-sort kernel run
on 1 vs N rank *processes*, measured in wall-clock seconds.  The speedup is
bounded by shuffle serialization, but it must be real (> 1) on multicore
hosts — demonstrating the runtime is a working parallel substrate, not only
a simulator.
"""

import os
import time

import numpy as np
import pytest

from repro.bench import Experiment, shape
from repro.mpi.process_backend import run_mpi_processes
from tests.mpi.test_process_backend import _sort_prog

N = 2_000_000
RANKS = min(4, os.cpu_count() or 1)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(3)
    return rng.integers(0, 1 << 40, size=N)


def run_scaling(data):
    exp = Experiment(
        "Process parallelism", "wall-clock distributed sort, 1 vs N rank processes"
    )
    walls = {}
    for ranks in (1, RANKS):
        t0 = time.perf_counter()
        run = run_mpi_processes(_sort_prog, ranks, args=(data,))
        walls[ranks] = time.perf_counter() - t0
        merged = np.concatenate(run.results)
        assert len(merged) == N
        exp.add(ranks=ranks, wall_s=walls[ranks], records=N)
    exp.note(f"host has {os.cpu_count()} cpus; speedup includes process startup + shuffle")
    return exp, walls


def test_process_parallel_speedup(benchmark, data, reporter):
    if RANKS < 2:
        pytest.skip("single-core host")
    exp, walls = benchmark.pedantic(run_scaling, args=(data,), rounds=1, iterations=1)
    reporter.record(exp)
    shape(
        walls[RANKS] < walls[1],
        f"{RANKS} rank processes beat 1 in wall clock "
        f"({walls[RANKS]:.2f}s < {walls[1]:.2f}s)",
    )


def test_numpy_sort_baseline(benchmark, data):
    out = benchmark(np.sort, data, kind="stable")
    assert len(out) == N
