"""Shared fixtures for the table/figure reproduction benchmarks.

Every benchmark runs its figure computation exactly once via
``benchmark.pedantic(..., rounds=1)`` — the interesting output is the
reproduced table (written to ``benchmarks/results/``), not statistical
timing of the experiment driver itself.  Kernel-level timing benchmarks
(sort throughput, permutation forms, search kernel) use normal
``benchmark(...)`` calls.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import Reporter

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def reporter() -> Reporter:
    return Reporter(RESULTS_DIR)


@pytest.fixture(scope="session")
def paper_cluster():
    """The Table II testbed: 16 nodes x 2 sockets, QDR InfiniBand."""
    from repro.cluster import ClusterModel, INFINIBAND_QDR

    return ClusterModel(num_nodes=16, ranks_per_node=2, network=INFINIBAND_QDR)
