"""Columnar fast path vs per-pair loops: shuffle+group throughput.

Runs the ``MRMPIEngine`` shuffle+group sequence twice over the same keys —
once feeding Python ``(key, value)`` pairs through the generic per-pair
loops, once feeding a :class:`KVBatch` through the vectorized kernels
(``partition_array`` + ``bucketize`` + argsort grouping) — and records
records/s for both at 1e5 and 1e6 records, single node.

Shape gate: the columnar path is at least 5x faster at 1e6 records.

``PAPAR_BENCH_SMOKE=1`` shrinks the sweep to one small size for CI, where
only "columnar is faster" is asserted (absolute speedups are noisy on
shared runners).
"""

import os
import time

import numpy as np

from repro.bench import Experiment, shape
from repro.mapreduce import HashPartitioner, KVBatch, MRMPIEngine
from repro.mpi import run_mpi

SMOKE = bool(int(os.environ.get("PAPAR_BENCH_SMOKE", "0")))
SIZES = [20_000] if SMOKE else [100_000, 1_000_000]
TARGET_SPEEDUP = 5.0


def _shuffle_group_seconds(keys, values, use_batch):
    """Wall seconds for shuffle+group on one rank, plus the group count."""

    def program(comm):
        eng = MRMPIEngine(comm)
        if use_batch:
            local = KVBatch(keys, values)
        else:
            local = list(zip(keys.tolist(), values.tolist()))
        t0 = time.perf_counter()
        shuffled = eng.shuffle(local, HashPartitioner(comm.size))
        grouped = eng.group(shuffled)
        return time.perf_counter() - t0, len(grouped)

    return run_mpi(program, 1).results[0]


def test_columnar_shuffle_speedup(benchmark, reporter):
    exp = Experiment(
        "Columnar shuffle", "KVBatch fast path vs per-pair shuffle+group, single node"
    )

    def run():
        rows = []
        for n in SIZES:
            rng = np.random.default_rng(1234)
            keys = rng.integers(0, n // 8, n)
            values = rng.integers(0, 1_000_000, n)
            generic_s, generic_groups = _shuffle_group_seconds(keys, values, False)
            columnar_s, columnar_groups = _shuffle_group_seconds(keys, values, True)
            assert generic_groups == columnar_groups
            rows.append((n, generic_s, columnar_s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = 0.0
    for n, generic_s, columnar_s in rows:
        speedup = generic_s / columnar_s
        exp.add(records=n, path="generic", seconds=generic_s,
                records_per_s=n / generic_s)
        exp.add(records=n, path="columnar", seconds=columnar_s,
                records_per_s=n / columnar_s, speedup=round(speedup, 2))
    exp.note(f"smoke mode: {SMOKE}")
    exp.note(f"speedup at {SIZES[-1]} records: {speedup:.1f}x (target >= {TARGET_SPEEDUP}x)")
    reporter.record(exp)
    if SMOKE:
        shape(speedup > 1.0, "columnar shuffle+group beats per-pair even at smoke size")
    else:
        shape(
            speedup >= TARGET_SPEEDUP,
            f"columnar shuffle+group >= {TARGET_SPEEDUP}x per-pair at {SIZES[-1]} "
            f"records (got {speedup:.1f}x)",
        )
