"""The optimizer's measured effect: fewer bytes over every exchange.

Two workloads, one claim each:

* the **fused-exchange** workflow (sort → sort → distribute) is the
  PAP081 showcase — the optimizer removes a whole exchange *and* prunes
  dead columns, and the measured shuffle payload must drop by at least
  20% while the partitions stay bit-identical;
* the **shipped BLAST** pipeline is structurally minimal, so every
  saving comes from column pruning alone — the same ≥20% gate holds
  (three of four index columns are dead until materialization).

``PAPAR_BENCH_SMOKE=1`` shrinks the input for CI; the gate itself is
identical in both modes because it is a ratio, not a wall-clock number.
"""

import os

import numpy as np
import pytest

from repro import PaPar
from repro.bench import Experiment, shape
from repro.blast import generate_index
from repro.config import BLAST_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.formats import BLAST_INDEX_SCHEMA

SMOKE = bool(int(os.environ.get("PAPAR_BENCH_SMOKE", "0")))
N = 2_000 if SMOKE else 100_000
RANKS = 4
ARGS = {"input_path": "/in", "output_path": "/out", "num_partitions": 4}

#: the minimum measured bytes-moved reduction the optimizer must deliver
MIN_REDUCTION = 0.20

#: a workload with a genuinely redundant exchange: the second sort keys on
#: the same column, so the first sort's entire shuffle is wasted motion
FUSED_WORKFLOW_XML = """\
<workflow id="fused_exchange" name="fused exchange workload">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
    <param name="output_path" type="hdfs" format="blast_db"/>
    <param name="num_partitions" type="integer"/>
  </arguments>
  <operators>
    <operator id="sort1" operator="Sort">
      <param name="key" type="KeyId" value="seq_size"/>
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/user/s1"/>
    </operator>
    <operator id="sort2" operator="Sort">
      <param name="key" type="KeyId" value="seq_size"/>
      <param name="inputPath" type="String" value="$sort1.outputPath"/>
      <param name="outputPath" type="String" value="/user/s2"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$sort2.outputPath"/>
      <param name="outputPath" type="String" value="$output_path"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>
"""


@pytest.fixture(scope="module")
def papar():
    p = PaPar()
    p.register_input(BLAST_INPUT_XML)
    return p


@pytest.fixture(scope="module")
def data():
    return Dataset.from_array(
        BLAST_INDEX_SCHEMA, generate_index("env_nr", num_sequences=N, seed=61)
    )


def measure(papar, workflow_xml, data):
    """Run plain and optimized on the mpi runtime; return both results."""
    kw = dict(data=data, backend="mpi", num_ranks=RANKS)
    plain = papar.run(workflow_xml, ARGS, **kw)
    optimized = papar.run(workflow_xml, ARGS, optimize=True, **kw)
    return plain, optimized


def shuffle_payload(result):
    """The perf-counter shuffle payload (what ``--stats`` reports).

    ``result.bytes_moved`` is the fabric's wire count — pickled bytes of
    rows that changed ranks — while the optimizer summary's
    ``measured_bytes_moved`` is the perf counter: the logical payload of
    every routed row.  The gate must compare like with like, so both
    sides read the perf counter.
    """
    return result.extra.get("perf", {}).get("bytes_moved", result.bytes_moved)


def check_identical(plain, optimized):
    for ours, theirs in zip(optimized.partitions, plain.partitions):
        np.testing.assert_array_equal(ours.records, theirs.records)


@pytest.mark.parametrize(
    "name,workflow_xml,want_rewrite",
    [
        pytest.param("fused_exchange", FUSED_WORKFLOW_XML, True,
                     id="fused_exchange"),
        pytest.param("blast_shipped", BLAST_WORKFLOW_XML, False,
                     id="blast_shipped"),
    ],
)
def test_optimizer_bytes_moved_gate(
    benchmark, papar, data, reporter, name, workflow_xml, want_rewrite
):
    plain, optimized = benchmark.pedantic(
        measure, args=(papar, workflow_xml, data), rounds=1, iterations=1
    )
    check_identical(plain, optimized)
    summary = optimized.extra["optimizer"]
    before = shuffle_payload(plain)
    after = summary["measured_bytes_moved"]
    reduction = 1.0 - after / before
    exp = Experiment(
        f"Optimizer gate {name}",
        "measured shuffle payload, plain vs --optimize (mpi backend)",
    )
    exp.add(
        workload=name,
        records=len(data),
        ranks=RANKS,
        bytes_moved_plain=before,
        bytes_moved_optimized=after,
        reduction_pct=round(100 * reduction, 1),
        rewrites=len(summary["rewrites"]),
        exchanges_removed=summary["exchanges_removed"],
        pruning_applied=bool(summary.get("pruning_applied")),
    )
    exp.note(f"partitions bit-identical; payload {before} -> {after} bytes")
    reporter.record(exp)
    if want_rewrite:
        shape(summary["exchanges_removed"] >= 1,
              "the fused workload loses at least one exchange")
    shape(summary.get("pruning_applied") is True, "column pruning applied")
    shape(
        reduction >= MIN_REDUCTION,
        f"bytes_moved must drop >= {MIN_REDUCTION:.0%}, got {reduction:.1%}",
    )
