"""Hybrid-cut threshold sweep (the paper's tunable, Section IV-A).

The paper fixes ``threshold = 200`` "to divide the vertices into the
low-cut or high-cut group".  This ablation sweeps the threshold across the
degree distribution and records replication factor, edge balance and
modeled PageRank time — showing the U-shape that makes a mid-range
threshold the right choice: threshold 0 degenerates to pure source-spread
(high replication), a huge threshold degenerates to pure vertex-cut
(hub-imbalanced), and the optimum sits where only the power-law tail is
spread.
"""

import numpy as np
import pytest

from repro.bench import Experiment, shape
from repro.cluster import ClusterModel, ETHERNET_10G
from repro.graph import GASEngine, generate_graph, hybrid_cut

NODES = 16
THRESHOLDS = (0, 1, 2, 4, 8, 16, 32, 64, 10**9)


@pytest.fixture(scope="module")
def graph():
    return generate_graph("google", scale=0.02, seed=77)


def run_sweep(graph):
    cluster = ClusterModel(num_nodes=NODES, ranks_per_node=1, network=ETHERNET_10G)
    exp = Experiment("Threshold sweep", "hybrid-cut threshold vs replication and time")
    results = {}
    for threshold in THRESHOLDS:
        pg = hybrid_cut(graph, NODES, threshold=threshold)
        _, report = GASEngine(pg, cluster=cluster).pagerank(iterations=10)
        results[threshold] = (pg.replication_factor(), pg.edge_balance(), report.elapsed)
        exp.add(
            threshold=threshold,
            high_degree_fraction=float((graph.in_degrees() >= threshold).mean()),
            replication=results[threshold][0],
            edge_balance=results[threshold][1],
            pagerank_s=results[threshold][2],
        )
    exp.note("paper fixes threshold=200 at full scale; the sweep shows the trade-off")
    return exp, results


def test_threshold_sweep(benchmark, graph, reporter):
    exp, results = benchmark.pedantic(run_sweep, args=(graph,), rounds=1, iterations=1)
    reporter.record(exp)
    rf = {t: r[0] for t, r in results.items()}
    times = {t: r[2] for t, r in results.items()}
    # both degenerate extremes replicate more than a mid-range threshold
    mid = min(THRESHOLDS[2:-1], key=lambda t: rf[t])
    shape(rf[mid] < rf[0], "mid threshold replicates less than all-high (t=0)")
    shape(rf[mid] <= rf[10**9], "mid threshold replicates no more than all-low")
    # and the best modeled PageRank time is at an interior threshold
    best = min(THRESHOLDS, key=lambda t: times[t])
    shape(best not in (0,), f"optimum threshold ({best}) is not the all-high extreme")


def test_hybrid_cut_kernel(benchmark, graph):
    pg = benchmark(hybrid_cut, graph, NODES, 4)
    assert pg.edges_per_partition().sum() == graph.num_edges
