"""Section III-D ablation — CSR/CSC compression of packed data.

The paper: the group operator's packed output carries redundant key/add-on
data; compressing it with CSC "can improve the data communication
performance, while it highly depends on the input data.  We have observed up
to 13% improvement for the graph datasets in our evaluation."

This bench packs each synthetic dataset's edges by in-vertex (with the
indegree add-on, exactly the hybrid-cut intermediate of Figure 11), measures
the byte saving of CSC compression, and converts it to shuffle-time saving
under the cluster network model.
"""

import pytest

from repro.bench import Experiment, shape
from repro.cluster import INFINIBAND_QDR
from repro.core.dataset import Dataset
from repro.formats import compression_ratio, pack
from repro.graph import DATASETS, generate_graph
from repro.ops import Count, Group

SCALE = 0.01


@pytest.fixture(scope="module")
def packed_intermediates():
    out = {}
    for name in DATASETS:
        g = generate_graph(name, scale=SCALE, seed=37)
        grouped = Group(
            "vertex_b", addons=[(Count(), "indegree", None)], output_format="pack"
        ).apply_local(g.to_dataset())
        out[name] = grouped.packed
    return out


def run_ablation(packed_intermediates):
    exp = Experiment(
        "Compression ablation", "CSC compression of the packed hybrid-cut intermediate"
    )
    savings = {}
    for name, packed in packed_intermediates.items():
        ratio = compression_ratio(packed)
        csc = packed.to_csc()
        shuffle_plain = INFINIBAND_QDR.transfer_time(packed.nbytes, same_node=False)
        shuffle_csc = INFINIBAND_QDR.transfer_time(csc.nbytes, same_node=False)
        savings[name] = ratio
        exp.add(
            graph=name,
            groups=packed.num_groups,
            records=packed.num_records,
            packed_bytes=packed.nbytes,
            csc_bytes=csc.nbytes,
            saving=ratio,
            shuffle_time_saving=1.0 - shuffle_csc / max(shuffle_plain, 1e-30),
        )
    exp.note("paper: up to 13% communication improvement, data-dependent")
    return exp, savings


def test_compression_ablation(benchmark, packed_intermediates, reporter):
    exp, savings = benchmark.pedantic(
        run_ablation, args=(packed_intermediates,), rounds=1, iterations=1
    )
    reporter.record(exp)
    # compression always helps on grouped graph data, and is data-dependent
    for name, saving in savings.items():
        shape(0.0 < saving < 0.5, f"{name}: CSC saves a data-dependent fraction ({saving:.1%})")
    shape(
        max(savings.values()) > 0.05,
        f"peak saving is material (paper: up to 13%; ours: {max(savings.values()):.1%})",
    )


def test_pack_kernel(benchmark, packed_intermediates):
    """Kernel timing: packing the google edge set by in-vertex."""
    g = generate_graph("google", scale=SCALE, seed=37)
    ds = g.to_dataset()
    result = benchmark(pack, ds.records, ds.schema, "vertex_b")
    assert result.num_records == g.num_edges


def test_csc_roundtrip_kernel(benchmark, packed_intermediates):
    """Kernel timing: CSC compress + decompress of the packed intermediate."""
    packed = packed_intermediates["google"]

    def roundtrip():
        return packed.to_csc().to_packed()

    back = benchmark(roundtrip)
    assert back.num_records == packed.num_records
