"""Figure 6 / Section III-B ablation — permutation-matrix distribution.

The paper formalizes distribution policies as stride-permutation matrices
applied by matrix-vector multiplication.  This bench measures the literal
sparse-matrix form against the O(n) index form (both produce identical
partitions — tested in tests/policies) and the end-to-end Distribute
operator under both modes.
"""

import numpy as np
import pytest

from repro.bench import Experiment, shape
from repro.core.dataset import Dataset
from repro.formats import BLAST_INDEX_SCHEMA
from repro.ops import Distribute
from repro.policies import (
    apply_permutation_matrix,
    cyclic_permutation_indices,
    stride_permutation_matrix,
)

N = 1 << 18
PARTS = 32


@pytest.fixture(scope="module")
def vector():
    return np.arange(N, dtype=np.int64)


@pytest.fixture(scope="module")
def matrix():
    return stride_permutation_matrix(N, N // PARTS)


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(0)
    records = np.empty(N // 16, dtype=BLAST_INDEX_SCHEMA.dtype)
    for name in records.dtype.names:
        records[name] = rng.integers(0, 1 << 20, size=len(records))
    return Dataset.from_array(BLAST_INDEX_SCHEMA, records)


def test_index_form_kernel(benchmark, vector):
    perm = benchmark(cyclic_permutation_indices, N, PARTS)
    assert len(perm) == N


def test_matrix_form_kernel(benchmark, vector, matrix):
    out = benchmark(apply_permutation_matrix, matrix, vector)
    assert len(out) == N


def test_distribute_operator_both_modes(benchmark, dataset, reporter):
    def run():
        import time

        exp = Experiment(
            "Figure 6 ablation", "Distribution as matrix-vector product vs index form"
        )
        for use_matrix in (False, True):
            op = Distribute("cyclic", PARTS, use_matrix=use_matrix)
            t0 = time.perf_counter()
            parts = op.apply_local(dataset)
            elapsed = time.perf_counter() - t0
            exp.add(
                mode="matrix-vector" if use_matrix else "index",
                entries=len(dataset),
                partitions=len(parts),
                seconds=elapsed,
            )
        matrix_parts = Distribute("cyclic", PARTS, use_matrix=True).apply_local(dataset)
        index_parts = Distribute("cyclic", PARTS, use_matrix=False).apply_local(dataset)
        identical = all(
            np.array_equal(a.records, b.records) for a, b in zip(matrix_parts, index_parts)
        )
        exp.note(f"partitions identical across modes: {identical}")
        return exp, identical

    exp, identical = benchmark.pedantic(run, rounds=1, iterations=1)
    reporter.record(exp)
    shape(identical, "matrix-vector and index forms produce identical partitions")
