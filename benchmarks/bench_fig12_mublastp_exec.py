"""Figure 12 — muBLASTP search time: cyclic vs block partitioning.

Normalized execution time of the (simplified) BLASTP search for three query
batches on 8 and 16 nodes (16 and 32 partitions — one MPI rank per socket),
for env_nr-like and nr-like synthetic databases.  The paper's claims:

* cyclic is the clear winner for every database/batch combination;
* the benefit grows with the batch ("500" > "100") because longer queries
  amplify the length skew;
* the skew is stronger on nr (heavier length tail).
"""

import pytest

from repro.bench import Experiment, shape
from repro.blast import (
    build_index,
    extract_partition,
    generate_database,
    make_batch,
    mublastp_partition,
    partition_makespan,
)

#: scaled database sizes (full nr is 85M sequences; shapes, not volume)
DB_SIZES = {"env_nr": 1600, "nr": 2400}
BATCH_SIZE = 16
NODES = (8, 16)


@pytest.fixture(scope="module")
def databases():
    return {
        profile: generate_database(
            profile, num_sequences=size, seed=31, length_clustering=0.9
        )
        for profile, size in DB_SIZES.items()
    }


def run_figure12(databases):
    exp = Experiment(
        "Figure 12", "muBLASTP search time, block normalized to cyclic (>1 = cyclic wins)"
    )
    ratios = {}
    for profile, db in databases.items():
        index = build_index(db)
        for nodes in NODES:
            num_partitions = nodes * 2  # one MPI rank per socket
            parts_db = {}
            for policy in ("cyclic", "block"):
                parts_idx = mublastp_partition(index, num_partitions, policy=policy)
                parts_db[policy] = [extract_partition(db, p) for p in parts_idx]
            for kind in ("100", "500", "mixed"):
                queries = make_batch(db, kind, batch_size=BATCH_SIZE, seed=7)
                makespans = {
                    policy: partition_makespan(parts_db[policy], queries)[0]
                    for policy in ("cyclic", "block")
                }
                ratio = makespans["block"] / makespans["cyclic"]
                ratios[(profile, nodes, kind)] = ratio
                exp.add(
                    database=profile,
                    nodes=nodes,
                    partitions=num_partitions,
                    batch=kind,
                    cyclic_s=makespans["cyclic"],
                    block_s=makespans["block"],
                    block_over_cyclic=ratio,
                )
    exp.note("paper: cyclic wins every combination; larger batches benefit more")
    return exp, ratios


def test_figure12_cyclic_vs_block(benchmark, databases, reporter):
    exp, ratios = benchmark.pedantic(run_figure12, args=(databases,), rounds=1, iterations=1)
    reporter.record(exp)

    # cyclic is the clear winner in every combination
    for key, ratio in ratios.items():
        shape(ratio > 1.0, f"cyclic beats block for {key} (ratio {ratio:.2f})")

    # longer queries amplify the benefit on env_nr (paper's secondary claim);
    # at our scaled size nr inverts this ordering because its extreme length
    # tail already dominates the makespan for short queries — recorded as a
    # deviation in EXPERIMENTS.md
    for nodes in NODES:
        shape(
            ratios[("env_nr", nodes, "500")] >= ratios[("env_nr", nodes, "100")],
            f"env_nr, {nodes} nodes: batch 500 benefits at least as much as batch 100",
        )


def test_search_kernel(benchmark, databases):
    """Kernel timing: one mixed batch against one cyclic partition."""
    from repro.blast import PartitionIndex

    db = databases["env_nr"]
    index = build_index(db)
    part = extract_partition(db, mublastp_partition(index, 16, "cyclic")[0])
    pidx = PartitionIndex(part)
    queries = make_batch(db, "100", batch_size=4, seed=3)
    result = benchmark(pidx.search_batch, queries)
    assert result.work > 0
