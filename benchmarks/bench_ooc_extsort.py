"""In-memory sort vs external merge sort under a memory budget.

Sorts the same record array twice — once with numpy's stable in-memory
argsort (the unbudgeted ``Sort`` path), once streamed through the
out-of-core :class:`ExternalSorter` under a budget far smaller than the
input — and measures wall time plus **peak tracked allocation**
(``tracemalloc``) for both.

Shape gates: the external sort's streamed output is byte-identical to the
in-memory sort, and its peak tracked allocation stays within a small
constant of the budget (``PEAK_FACTOR``x, covering argsort temporaries,
frame buffers, and merge cursors) while the in-memory path's peak scales
with the input.  ``PAPAR_BENCH_SMOKE=1`` shrinks the sweep for CI.
"""

import os
import tempfile
import time
import tracemalloc
import zlib

import numpy as np

from repro.bench import Experiment, shape
from repro.ooc.budget import MemoryBudget, parse_memory_budget
from repro.ooc.extsort import ExternalSorter
from repro.ooc.spill import OOCContext

SMOKE = bool(int(os.environ.get("PAPAR_BENCH_SMOKE", "0")))
SIZES = [30_000] if SMOKE else [100_000, 400_000]
BUDGET = "64KB" if SMOKE else "256KB"
#: budget multiple the external sort's tracked peak must stay under
PEAK_FACTOR = 8

DT = np.dtype([("key", "<i8"), ("payload", "<i8")])


def make_records(n):
    rng = np.random.default_rng(97)
    out = np.zeros(n, dtype=DT)
    out["key"] = rng.integers(0, n, n)
    out["payload"] = np.arange(n)
    return out


def in_memory_sort(arr):
    """(seconds, peak tracked bytes, crc32 of the sorted bytes)."""
    tracemalloc.start()
    t0 = time.perf_counter()
    result = arr[np.argsort(arr["key"], kind="stable")]
    seconds = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return seconds, peak, zlib.crc32(result.tobytes())


def external_sort(arr, budget, spill_dir):
    """Same measurements for the streamed external sort.

    The input array is allocated *before* tracing starts and the sorted
    stream is checksummed frame by frame, so the tracked peak is the
    sorter's own working set — chunk copies, sorted runs in flight, and
    merge cursors — not the input or a materialized output.
    """
    chunk = MemoryBudget(budget).chunk_records(DT.itemsize)
    tracemalloc.start()
    t0 = time.perf_counter()
    ctx = OOCContext(MemoryBudget(budget), spill_dir)
    sorter = ExternalSorter(ctx, DT)
    for pos in range(0, len(arr), chunk):
        piece = arr[pos : pos + chunk]
        sorter.add_chunk(piece["key"], piece)
    crc = 0
    for frame in sorter.merged_frames():
        crc = zlib.crc32(frame.values.tobytes(), crc)
    seconds = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return seconds, peak, crc, ctx.stats.as_dict()


def test_external_sort_stays_inside_the_budget(benchmark, reporter):
    exp = Experiment(
        "OOC external sort",
        f"in-memory vs external merge sort under a {BUDGET} budget",
    )
    limit = parse_memory_budget(BUDGET)

    def run():
        rows = []
        for n in SIZES:
            arr = make_records(n)
            with tempfile.TemporaryDirectory(prefix="papar-bench-spill-") as d:
                mem_s, mem_peak, mem_crc = in_memory_sort(arr)
                ext_s, ext_peak, ext_crc, spill = external_sort(arr, BUDGET, d)
            rows.append((n, arr.nbytes, mem_s, mem_peak, mem_crc,
                         ext_s, ext_peak, ext_crc, spill))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for n, nbytes, mem_s, mem_peak, mem_crc, ext_s, ext_peak, ext_crc, spill in rows:
        exp.add(records=n, input_kib=round(nbytes / 1024, 1), path="in-memory",
                seconds=round(mem_s, 4), peak_kib=round(mem_peak / 1024, 1))
        exp.add(records=n, input_kib=round(nbytes / 1024, 1), path="external",
                seconds=round(ext_s, 4), peak_kib=round(ext_peak / 1024, 1),
                runs_written=spill["runs_written"],
                merge_fanin=spill["max_merge_fanin"])
        shape(ext_crc == mem_crc,
              f"external sort stream differs from the in-memory sort at {n} records")
        shape(ext_peak < limit * PEAK_FACTOR,
              f"external sort peak {ext_peak / 1024:.0f} KiB exceeds "
              f"{PEAK_FACTOR}x the {BUDGET} budget at {n} records")
        shape(mem_peak >= nbytes,
              "in-memory sort peak no longer scales with the input "
              "(the comparison is vacuous)")
        shape(spill["runs_written"] > 1, "external sort never spilled a run")
    n, nbytes = rows[-1][0], rows[-1][1]
    exp.note(f"smoke mode: {SMOKE}; budget {BUDGET} vs {nbytes / 1024:.0f} KiB input")
    exp.note(f"external peak {rows[-1][6] / 1024:.0f} KiB < "
             f"{PEAK_FACTOR}x budget; in-memory peak {rows[-1][3] / 1024:.0f} KiB")
    reporter.record(exp)
