"""Graph algorithms under the three cuts (Section II-A: "PageRank,
Connected Components, etc.").

Figure 14 measures PageRank; the paper credits the hybrid-cut with
accelerating the other GraphLab algorithms too.  This bench extends the
comparison to Connected Components and SSSP under the same modeled cluster,
checking that the replication-driven ordering carries over.
"""

import pytest

from repro.bench import Experiment, shape
from repro.cluster import ClusterModel, ETHERNET_10G
from repro.graph import GASEngine, generate_graph, partition_by
from repro.graph.sssp import sssp

NODES = 8
THRESHOLD = 3
STRATEGIES = ("hybrid-cut", "vertex-cut", "edge-cut")


@pytest.fixture(scope="module")
def graph():
    return generate_graph("google", scale=0.01, seed=61)


def run_algorithms(graph):
    cluster = ClusterModel(num_nodes=NODES, ranks_per_node=1, network=ETHERNET_10G)
    exp = Experiment(
        "Graph algorithms", "CC and SSSP comm volume / modeled time by cut"
    )
    cc_times = {}
    for strategy in STRATEGIES:
        kwargs = {"threshold": THRESHOLD} if strategy == "hybrid-cut" else {}
        pg = partition_by(strategy, graph, NODES, **kwargs)
        engine = GASEngine(pg, cluster=cluster)
        _, cc_report = engine.connected_components()
        _, sssp_report = sssp(pg, source=0)
        cc_times[strategy] = cc_report.elapsed
        exp.add(
            strategy=strategy,
            replication=pg.replication_factor(),
            cc_iterations=cc_report.iterations,
            cc_time_s=cc_report.elapsed,
            cc_comm_bytes=cc_report.comm_bytes,
            sssp_iterations=sssp_report.iterations,
            sssp_comm_bytes=sssp_report.comm_bytes,
        )
    exp.note("same ordering mechanism as Figure 14: lower replication, less sync")
    return exp, cc_times


def test_graph_algorithms(benchmark, graph, reporter):
    exp, cc_times = benchmark.pedantic(run_algorithms, args=(graph,), rounds=1, iterations=1)
    reporter.record(exp)
    shape(
        cc_times["hybrid-cut"] <= cc_times["edge-cut"],
        "hybrid-cut CC no slower than edge-cut",
    )
    rows = {r["strategy"]: r for r in exp.rows}
    shape(
        rows["hybrid-cut"]["cc_comm_bytes"] < rows["edge-cut"]["cc_comm_bytes"],
        "hybrid-cut syncs fewer bytes than edge-cut",
    )
    # all cuts agree on the answer (checked in unit tests; counts here)
    iters = {r["strategy"]: r["cc_iterations"] for r in exp.rows}
    shape(len(set(iters.values())) == 1, "iteration counts identical across cuts")


def test_cc_kernel(benchmark, graph):
    pg = partition_by("hybrid-cut", graph, NODES, threshold=THRESHOLD)
    engine = GASEngine(pg)
    labels, _ = benchmark(engine.connected_components)
    assert len(labels) == graph.num_vertices
