"""Section I/II motivation — runtime skew mechanisms vs partitioning.

The paper's opening argument: speculative scheduling (Hadoop/LATE/Mantri)
mitigates stragglers at runtime "to a certain extent", but application-
specific partitioning removes the skew at its source and therefore wins.
This bench quantifies that argument with the deterministic scheduler
simulation: skewed task durations (what block partitioning of a clustered
database produces) under (a) plain scheduling, (b) speculative scheduling,
and (c) balanced durations with the same total work (what the cyclic policy
produces).
"""

import numpy as np
import pytest

from repro.bench import Experiment, shape
from repro.mapreduce.speculative import (
    balanced_task_durations,
    simulate_job,
    skewed_task_durations,
)

TASKS = 64
SLOTS = 32


def run_motivation():
    exp = Experiment(
        "Motivation", "job makespan: plain vs speculative vs balanced partitions"
    )
    outcomes = {}
    for skew in (2.0, 4.0, 8.0):
        durations = skewed_task_durations(TASKS, skew=skew, seed=5)
        total = float(durations.sum())
        plain = simulate_job(durations, slots=SLOTS)
        spec = simulate_job(
            durations, slots=SLOTS, speculative=True, speculative_threshold=8,
            backup_speedup=2.0,
        )
        balanced = simulate_job(balanced_task_durations(TASKS, total), slots=SLOTS)
        outcomes[skew] = (plain.makespan, spec.makespan, balanced.makespan)
        exp.add(
            straggler_skew=skew,
            plain_makespan=plain.makespan,
            speculative_makespan=spec.makespan,
            speculative_copies=spec.speculative_copies,
            wasted_work=spec.wasted_work,
            balanced_makespan=balanced.makespan,
            partitioning_win=spec.makespan / balanced.makespan,
        )
    exp.note("balanced = the cyclic policy's outcome; paper: partitioning > runtime fixes")
    return exp, outcomes


def test_motivation(benchmark, reporter):
    exp, outcomes = benchmark.pedantic(run_motivation, rounds=1, iterations=1)
    reporter.record(exp)
    for skew, (plain, spec, balanced) in outcomes.items():
        shape(spec <= plain, f"skew={skew}: speculation never hurts the makespan")
        shape(
            balanced < spec,
            f"skew={skew}: balanced partitions beat speculative scheduling "
            f"({balanced:.2f} < {spec:.2f})",
        )
    # the gap widens with skew — the motivation for application-specific methods
    wins = {skew: spec / balanced for skew, (_, spec, balanced) in outcomes.items()}
    shape(wins[8.0] > wins[2.0], "partitioning's advantage grows with the skew")


def test_scheduler_kernel(benchmark):
    durations = skewed_task_durations(256, skew=4.0, seed=7)
    report = benchmark(simulate_job, durations, 64, True, 16, 2.0)
    assert report.tasks_run == 256
