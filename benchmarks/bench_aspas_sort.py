"""Single-node sort ablation — the ASPaS claim of Section IV-B.

"Note that even on a single compute node, PaPar is faster, thanks to ASPaS,
a highly optimized mergesort implementation on multicore processors.  We
used it in the sort operator implementation."

This bench compares the sort operator's two local kernels (numpy stable
sort vs the ASPaS-style blocked mergesort) on the muBLASTP index sort, and
verifies both kernels order the index identically.
"""

import numpy as np
import pytest

from repro.bench import Experiment, shape
from repro.blast import generate_index
from repro.core.dataset import Dataset
from repro.formats import BLAST_INDEX_SCHEMA
from repro.ops import Sort
from repro.ops.aspas import aspas_argsort

N = 500_000


@pytest.fixture(scope="module")
def index():
    return generate_index("env_nr", num_sequences=N, seed=41)


def test_numpy_kernel(benchmark, index):
    keys = index["seq_size"]
    out = benchmark(np.argsort, keys, kind="stable")
    assert len(out) == N


def test_aspas_kernel(benchmark, index):
    keys = index["seq_size"]
    out = benchmark(aspas_argsort, keys)
    assert len(out) == N


def test_kernels_identical_through_sort_operator(benchmark, index, reporter):
    def run():
        import time

        exp = Experiment("ASPaS ablation", "Sort operator local kernels on the index sort")
        ds = Dataset.from_array(BLAST_INDEX_SCHEMA, index)
        outputs = {}
        for kernel in ("numpy", "aspas"):
            op = Sort("seq_size", kernel=kernel)
            t0 = time.perf_counter()
            outputs[kernel] = op.apply_local(ds)
            exp.add(kernel=kernel, sequences=N, seconds=time.perf_counter() - t0)
        identical = np.array_equal(outputs["numpy"].records, outputs["aspas"].records)
        exp.note(f"outputs identical: {identical}")
        return exp, identical

    exp, identical = benchmark.pedantic(run, rounds=1, iterations=1)
    reporter.record(exp)
    shape(identical, "both sort kernels produce the identical sorted index")
