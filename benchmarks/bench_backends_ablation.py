"""Backend ablation — one formalization, three mappings.

The paper maps PaPar onto Hadoop, MR-MPI, and raw MPI (Section III-D).
This bench runs the muBLASTP workflow through this repo's counterparts —
the serial reference, the raw-MPI runtime, and the MapReduce runtime —
checks the partitions are identical, and records each backend's simulated
time and shuffle traffic.  The Hadoop-style disk engine is exercised on the
equivalent two-job flow.
"""

import numpy as np
import pytest

from repro import PaPar
from repro.bench import Experiment, shape
from repro.blast import generate_index
from repro.cluster import ClusterModel, INFINIBAND_QDR
from repro.config import BLAST_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.formats import BLAST_INDEX_SCHEMA

N = 200_000
RANKS = 8
ARGS = {"input_path": "/in", "output_path": "/out", "num_partitions": 8}


@pytest.fixture(scope="module")
def data():
    return Dataset.from_array(
        BLAST_INDEX_SCHEMA, generate_index("env_nr", num_sequences=N, seed=51)
    )


def run_backends(data):
    papar = PaPar()
    papar.register_input(BLAST_INPUT_XML)
    cluster = ClusterModel(num_nodes=4, ranks_per_node=2, network=INFINIBAND_QDR)
    exp = Experiment("Backend ablation", "muBLASTP workflow on the three backends")
    outputs = {}
    for backend in ("serial", "mpi", "mapreduce"):
        kwargs = {} if backend == "serial" else {"num_ranks": RANKS, "cluster": cluster}
        result = papar.run(BLAST_WORKFLOW_XML, ARGS, data=data, backend=backend, **kwargs)
        outputs[backend] = [p.rows() for p in result.partitions]
        exp.add(
            backend=backend,
            ranks=1 if backend == "serial" else RANKS,
            virtual_s=result.elapsed,
            bytes_moved=result.bytes_moved,
            messages=result.messages,
        )
    identical = outputs["mpi"] == outputs["serial"] and outputs["mapreduce"] == outputs["serial"]
    exp.note(f"partitions identical across backends: {identical}")
    return exp, identical


def test_backend_ablation(benchmark, data, reporter):
    exp, identical = benchmark.pedantic(run_backends, args=(data,), rounds=1, iterations=1)
    reporter.record(exp)
    shape(identical, "all backends produce identical partitions")


def run_fused_ablation(data):
    """The fused-exchange workload (sort -> sort -> distribute), plain vs
    ``optimize=True``, on every backend: same partitions, fewer bytes."""
    from bench_optimizer import FUSED_WORKFLOW_XML, shuffle_payload

    papar = PaPar()
    papar.register_input(BLAST_INPUT_XML)
    cluster = ClusterModel(num_nodes=4, ranks_per_node=2, network=INFINIBAND_QDR)
    exp = Experiment(
        "Fused-exchange ablation",
        "redundant sort removed by the optimizer, per backend",
    )
    identical = True
    for backend in ("serial", "mpi", "mapreduce"):
        kwargs = {} if backend == "serial" else {"num_ranks": RANKS, "cluster": cluster}
        plain = papar.run(FUSED_WORKFLOW_XML, ARGS, data=data, backend=backend, **kwargs)
        optimized = papar.run(
            FUSED_WORKFLOW_XML, ARGS, data=data, backend=backend, optimize=True, **kwargs
        )
        for ours, theirs in zip(optimized.partitions, plain.partitions):
            identical &= bool(np.array_equal(ours.records, theirs.records))
        summary = optimized.extra["optimizer"]
        exp.add(
            backend=backend,
            ranks=1 if backend == "serial" else RANKS,
            bytes_moved_plain=shuffle_payload(plain),
            bytes_moved_optimized=summary["measured_bytes_moved"],
            exchanges_removed=summary["exchanges_removed"],
            pruning_applied=bool(summary.get("pruning_applied")),
        )
    exp.note(f"optimized partitions identical to plain: {identical}")
    return exp, identical


def test_fused_exchange_ablation(benchmark, data, reporter):
    exp, identical = benchmark.pedantic(
        run_fused_ablation, args=(data,), rounds=1, iterations=1
    )
    reporter.record(exp)
    shape(identical, "optimize=True is bit-identical on every backend")


def test_hadoop_engine_flow(benchmark, reporter):
    """The same sort+distribute flow through the disk-shuffle Hadoop engine."""
    from repro.blast import mublastp_partition
    from repro.mapreduce import ExplicitPartitioner, RangePartitioner
    from repro.mapreduce.engine import identity_reduce
    from repro.mapreduce.hadoop import ListInputFormat
    from repro.mapreduce.hadoop_engine import HadoopCluster

    import tempfile

    index = generate_index("env_nr", num_sequences=5_000, seed=52)
    rows = [tuple(r) for r in index]

    def run():
        with tempfile.TemporaryDirectory() as work:
            cluster = HadoopCluster(work, num_mappers=4)
            keys = sorted(r[1] for r in rows)
            boundaries = [keys[i * len(keys) // 4] for i in range(1, 4)]
            sort_out = cluster.run_job(
                ListInputFormat(rows),
                lambda row, emit: emit(row[1], row),
                identity_reduce,
                partitioner=RangePartitioner(boundaries, 4),
                num_reducers=4,
                sort_keys=True,
                job_name="sort",
            )
            sorted_rows = [v for _, v in sort_out.read_output()]
            distr_out = cluster.run_job(
                ListInputFormat(list(enumerate(sorted_rows))),
                lambda item, emit: emit(item[0] % 8, item[1]),
                identity_reduce,
                partitioner=ExplicitPartitioner(8),
                num_reducers=8,
                job_name="distribute",
            )
            parts = []
            import pickle

            for pf in distr_out.part_files:
                with open(pf, "rb") as fh:
                    parts.append([tuple(v) for _, v in pickle.load(fh)])
            spilled = sort_out.counters.spilled_bytes + distr_out.counters.spilled_bytes
            return parts, spilled

    parts, spilled = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = mublastp_partition(index, 8, policy="cyclic")
    for got, want in zip(parts, expected):
        assert got == [tuple(r) for r in want]
    exp = Experiment("Hadoop engine check", "disk-shuffle flow equals the reference")
    exp.add(records=len(rows), partitions=8, spilled_bytes=spilled, identical=True)
    reporter.record(exp)
