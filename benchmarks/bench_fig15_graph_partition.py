"""Figure 15 — hybrid-cut partitioning time: PaPar vs native PowerLyra.

(a) Partitioning time on 16 nodes for the three datasets.  Paper: PowerLyra
    wins on Google and Pokec; PaPar delivers 1.2x on LiveJournal.
(b) Strong scalability 1-16 nodes.  Paper: PaPar scales to 16 nodes on all
    three datasets; PowerLyra does not scale on Google.

Both systems are evaluated with the analytic :class:`PartitionerTimeModel`
at the full Table II sizes (the mechanisms behind the model are documented
in repro/graph/powerlyra.py), and the PaPar side is cross-checked against a
*measured* virtual-time run of the actual generated partitioner on a scaled
synthetic graph.
"""

import pytest

from repro import PaPar
from repro.bench import Experiment, shape
from repro.cluster import ClusterModel, INFINIBAND_QDR
from repro.config import EDGE_INPUT_XML
from repro.config.examples import HYBRID_CUT_WORKFLOW_XML
from repro.graph import DATASETS, PartitionerTimeModel, generate_graph

NODE_COUNTS = (1, 2, 4, 8, 16)
MODEL = PartitionerTimeModel()


def run_figure15():
    exp_a = Experiment(
        "Figure 15a", "Hybrid-cut partitioning time on 16 nodes (full Table II scale)"
    )
    exp_b = Experiment("Figure 15b", "Strong scalability of both partitioners")
    ratios = {}
    scaling = {}
    for name, spec in DATASETS.items():
        papar16 = MODEL.papar_time(spec.vertices, spec.edges, 16)
        native16 = MODEL.native_time(spec.vertices, spec.edges, 16)
        ratios[name] = native16 / papar16
        exp_a.add(
            graph=name,
            papar_s=papar16,
            powerlyra_s=native16,
            papar_speedup=ratios[name],
        )
        for nodes in NODE_COUNTS:
            p = MODEL.papar_time(spec.vertices, spec.edges, nodes)
            n = MODEL.native_time(spec.vertices, spec.edges, nodes)
            scaling[(name, nodes)] = (p, n)
            exp_b.add(graph=name, nodes=nodes, papar_s=p, powerlyra_s=n)
    exp_a.note("paper: PowerLyra faster on Google/Pokec; PaPar 1.2x on LiveJournal")
    exp_b.note("paper: PaPar scales to 16 nodes on all graphs; PowerLyra flat on Google")
    return exp_a, exp_b, ratios, scaling


def measured_papar_run(data, nodes: int):
    """Virtual-time measurement of the real generated partitioner (scaled graph)."""
    cluster = ClusterModel(num_nodes=nodes, ranks_per_node=2, network=INFINIBAND_QDR)
    papar = PaPar()
    papar.register_input(EDGE_INPUT_XML)
    return papar.run(
        HYBRID_CUT_WORKFLOW_XML,
        {"input_file": "/in", "output_path": "/out", "num_partitions": nodes * 2,
         "threshold": 50},
        data=data,
        backend="mpi",
        num_ranks=cluster.size,
        cluster=cluster,
    )


def test_figure15_partitioning(benchmark, reporter):
    exp_a, exp_b, ratios, scaling = benchmark.pedantic(run_figure15, rounds=1, iterations=1)
    reporter.record(exp_a)
    reporter.record(exp_b)

    # (a) who wins where
    shape(ratios["google"] < 1.0, "PowerLyra faster on Google at 16 nodes")
    shape(ratios["pokec"] < 1.0, "PowerLyra faster on Pokec at 16 nodes")
    shape(1.05 < ratios["livejournal"] < 1.6, "PaPar ~1.2x faster on LiveJournal")

    # (b) scalability shapes
    for name in DATASETS:
        p1, _ = scaling[(name, 1)]
        p16, _ = scaling[(name, 16)]
        shape(p1 / p16 > 2.0, f"PaPar scales on {name} (speedup {p1 / p16:.1f}x)")
    _, n1 = scaling[("google", 1)]
    _, n16 = scaling[("google", 16)]
    shape(n1 / n16 < 1.3, "PowerLyra does not scale on Google")
    _, lj1 = scaling[("livejournal", 1)]
    _, lj16 = scaling[("livejournal", 16)]
    shape(lj1 / lj16 > 2.0, "PowerLyra does scale on LiveJournal")


def test_figure15_model_consistency_with_measured_run(benchmark, reporter):
    """The analytic PaPar model must agree with measured virtual time on the
    property Figure 15(b) relies on: more nodes -> faster partitioning."""

    def run():
        from repro.graph import generate_powerlaw

        exp = Experiment(
            "Figure 15 check", "Measured virtual-time PaPar runs (scaled power-law graph)"
        )
        data = generate_powerlaw(100_000, 1_200_000, alpha=2.4, seed=29).to_dataset()
        elapsed = {}
        for nodes in (1, 4, 16):
            result = measured_papar_run(data, nodes)
            elapsed[nodes] = result.elapsed
            exp.add(nodes=nodes, measured_s=result.elapsed, bytes_moved=result.bytes_moved)
        return exp, elapsed

    exp, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    reporter.record(exp)
    shape(elapsed[16] < elapsed[1], "measured PaPar partitioning scales with nodes")
