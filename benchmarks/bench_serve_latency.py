"""Append latency and throughput of the streaming partition daemon.

Runs a real daemon (``run_server`` on its own thread, the blocking
:class:`ServeClient` over TCP) against the BLAST case-study workflow,
appends a stream of batches, and measures the client-observed wall time
of every append — including the rebalances a hair-trigger drift
threshold forces mid-stream.  Reports p50/p95/p99 latency and sustained
throughput, then cross-checks the daemon's own ``papar.serve`` metrics
document against the client-side accounting.

Shape gates: the final generation covers every appended record exactly
(no loss, no duplication), the tail latency stays under a deliberately
generous bound (this is a functional gate against pathological stalls,
not a hardware claim), throughput clears a floor far below any healthy
run, and at least one online rebalance actually fired so the numbers
include the swap path.  ``PAPAR_BENCH_SMOKE=1`` shrinks the stream for
CI.
"""

import asyncio
import os
import threading
import time

from repro.bench import Experiment, shape
from repro.blast import generate_index
from repro.config import BLAST_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML
from repro.formats import BLAST_INDEX_SCHEMA, write_binary
from repro.serve import ServeClient, ServeConfig, run_server

from repro import PaPar

SMOKE = bool(int(os.environ.get("PAPAR_BENCH_SMOKE", "0")))
WARM_RECORDS = 200 if SMOKE else 2_000
APPENDS = 25 if SMOKE else 200
BATCH = 20 if SMOKE else 50
#: ceiling on client-observed p99 append latency — generous on purpose;
#: a healthy run sits orders of magnitude below, so tripping it means a
#: stall (event-loop blockage, runaway rebalance), not a slow machine
P99_CEILING_MS = 5_000.0
#: floor on sustained append throughput, records per second
THROUGHPUT_FLOOR = 20.0


def percentile(sorted_ms, q):
    """Nearest-rank percentile of an ascending latency list."""
    rank = max(1, round(q / 100.0 * len(sorted_ms)))
    return sorted_ms[rank - 1]


def rows_of(records):
    return [list(r) for r in records.tolist()]


def start_daemon(papar, args, config):
    """Daemon on a thread; returns (host, port, thread, holder)."""
    addr, ready, holder = {}, threading.Event(), {}

    def serve():
        holder["server"] = asyncio.run(run_server(
            papar, BLAST_WORKFLOW_XML, args, config=config,
            ready=lambda h, p: (addr.update(hp=(h, p)), ready.set()),
        ))

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    if not ready.wait(120):
        raise RuntimeError("daemon never came up")
    host, port = addr["hp"]
    return host, port, thread, holder


def test_serve_append_latency(benchmark, reporter, tmp_path):
    exp = Experiment(
        id="serve-latency",
        title="Streaming daemon append latency and throughput (BLAST workflow)",
    )
    index = generate_index("env_nr", num_sequences=WARM_RECORDS + APPENDS * BATCH,
                           seed=11)
    input_path = tmp_path / "db.index"
    write_binary(input_path, index[:WARM_RECORDS], BLAST_INDEX_SCHEMA,
                 header=b"\x00" * 32)
    papar = PaPar()
    papar.register_input(BLAST_INPUT_XML)
    args = {"input_path": str(input_path),
            "output_path": str(tmp_path / "out"), "num_partitions": 8}
    batches = [rows_of(index[WARM_RECORDS + i * BATCH:
                             WARM_RECORDS + (i + 1) * BATCH])
               for i in range(APPENDS)]

    def run():
        # low threshold so the stream trips several online rebalances and
        # the latency distribution includes the atomic-swap path
        host, port, thread, holder = start_daemon(
            papar, args, ServeConfig(rebalance_threshold=0.05))
        latencies_ms = []
        t0 = time.perf_counter()
        with ServeClient(host, port) as client:
            for rows in batches:
                t = time.perf_counter()
                client.append_ok(rows)
                latencies_ms.append((time.perf_counter() - t) * 1e3)
            elapsed = time.perf_counter() - t0
            final = client.query()
            client.drain()
        thread.join(120)
        assert not thread.is_alive()
        return latencies_ms, elapsed, final, holder["server"]

    latencies_ms, elapsed, final, server = benchmark.pedantic(
        run, rounds=1, iterations=1)

    appended = APPENDS * BATCH
    ordered = sorted(latencies_ms)
    p50, p95, p99 = (percentile(ordered, q) for q in (50, 95, 99))
    throughput = appended / elapsed
    doc = server.metrics_doc()

    exp.add(appends=APPENDS, batch=BATCH, appended_records=appended,
            p50_ms=round(p50, 3), p95_ms=round(p95, 3), p99_ms=round(p99, 3),
            records_per_s=round(throughput, 1),
            rebalances=doc["rebalances"],
            final_generation=final["generation"])
    exp.note(f"smoke mode: {SMOKE}; warm start {WARM_RECORDS} records, "
             f"then {APPENDS} appends of {BATCH}")
    exp.note(f"daemon-side append latency p99 "
             f"{doc['append_latency_ms']['p99']:.3f} ms over "
             f"{doc['append_latency_ms']['count']} samples")

    shape(final["log_records"] == WARM_RECORDS + appended,
          "the final log does not account for every appended record")
    shape(final["total_records"] == sum(p["records"]
                                        for p in final["partitions"]),
          "published partitions disagree with their own total")
    shape(doc["appended_records"] == appended,
          "the daemon's appended-record counter drifted from the client's")
    shape(doc["rebalances"] >= 1,
          "no online rebalance fired; the latency numbers are vacuous")
    shape(p99 < P99_CEILING_MS,
          f"p99 append latency {p99:.1f} ms breaches the "
          f"{P99_CEILING_MS:.0f} ms stall ceiling")
    shape(throughput > THROUGHPUT_FLOOR,
          f"throughput {throughput:.1f} records/s is below the "
          f"{THROUGHPUT_FLOOR:.0f}/s floor")
    reporter.record(exp)
