"""Figure 14 — PageRank execution time under the three cuts.

Normalized execution time of PageRank (GAS engine) with hybrid-cut,
edge-cut, and vertex-cut on 8 and 16 nodes for the three (synthetic)
datasets.  Paper claims: hybrid-cut delivers the best performance, and
because the datasets are power-law, vertex-cut — not edge-cut — is the
closer competitor.
"""

import pytest

from repro.bench import Experiment, shape
from repro.cluster import ClusterModel, ETHERNET_10G
from repro.graph import DATASETS, GASEngine, generate_graph, partition_by

SCALE = 0.01
THRESHOLD = 200  # the paper's hybrid-cut threshold
ITERATIONS = 10
STRATEGIES = ("hybrid-cut", "edge-cut", "vertex-cut")


@pytest.fixture(scope="module")
def graphs():
    return {name: generate_graph(name, scale=SCALE, seed=23) for name in DATASETS}


def run_figure14(graphs):
    exp = Experiment(
        "Figure 14", "PageRank time by cut, normalized to hybrid-cut (>1 = hybrid wins)"
    )
    normalized = {}
    for nodes in (8, 16):
        cluster = ClusterModel(num_nodes=nodes, ranks_per_node=1, network=ETHERNET_10G)
        for name, g in graphs.items():
            # threshold scales with the graph: the paper's 200 applies to
            # full-size datasets; keep the same quantile of the degree tail
            threshold = max(int(THRESHOLD * SCALE), 3)
            times = {}
            for strategy in STRATEGIES:
                kwargs = {"threshold": threshold} if strategy == "hybrid-cut" else {}
                pg = partition_by(strategy, g, nodes, **kwargs)
                _, report = GASEngine(pg, cluster=cluster).pagerank(iterations=ITERATIONS)
                times[strategy] = report.elapsed
            for strategy in STRATEGIES:
                ratio = times[strategy] / times["hybrid-cut"]
                normalized[(name, nodes, strategy)] = ratio
            exp.add(
                graph=name,
                nodes=nodes,
                hybrid_s=times["hybrid-cut"],
                edge_norm=normalized[(name, nodes, "edge-cut")],
                vertex_norm=normalized[(name, nodes, "vertex-cut")],
            )
    exp.note("paper: hybrid-cut best; vertex-cut closer to hybrid than edge-cut")
    return exp, normalized


def test_figure14_pagerank(benchmark, graphs, reporter):
    exp, normalized = benchmark.pedantic(run_figure14, args=(graphs,), rounds=1, iterations=1)
    reporter.record(exp)

    for (name, nodes, strategy), ratio in normalized.items():
        if strategy != "hybrid-cut":
            shape(
                ratio >= 0.98,
                f"hybrid-cut at least matches {strategy} on {name}/{nodes} nodes "
                f"(normalized {ratio:.2f})",
            )
    # on power-law graphs, vertex-cut is the closer competitor
    for name in graphs:
        for nodes in (8, 16):
            shape(
                normalized[(name, nodes, "vertex-cut")]
                <= normalized[(name, nodes, "edge-cut")],
                f"vertex-cut closer to hybrid than edge-cut on {name}/{nodes}",
            )


def test_pagerank_kernel(benchmark, graphs):
    """Kernel timing: 3 PageRank iterations over the hybrid-cut google graph."""
    g = graphs["google"]
    pg = partition_by("hybrid-cut", g, 8, threshold=3)
    engine = GASEngine(pg)
    ranks, _ = benchmark(engine.pagerank, 3)
    assert len(ranks) == g.num_vertices
