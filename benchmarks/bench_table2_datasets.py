"""Table II — statistics of the (synthetic stand-in) graph datasets.

Regenerates the Vertices / Edges / Type / Triangles columns on the scaled
synthetic graphs, alongside the paper's full-scale numbers for reference.
"""

import pytest

from repro.bench import Experiment, shape
from repro.graph import DATASETS, compute_stats, count_triangles, generate_graph

SCALE = 0.005
#: the published Table II rows (full-scale SNAP datasets)
PAPER_ROWS = {
    "google": (875713, 5105039, 13391903),
    "pokec": (1632803, 30622564, 32557458),
    "livejournal": (4847571, 68993773, 177820130),
}


@pytest.fixture(scope="module")
def graphs():
    return {name: generate_graph(name, scale=SCALE, seed=42) for name in DATASETS}


def run_table2(graphs):
    exp = Experiment("Table II", f"Graph dataset statistics (synthetic, scale={SCALE})")
    for name, g in graphs.items():
        stats = compute_stats(g, name)
        pv, pe, pt = PAPER_ROWS[name]
        exp.add(
            graph=name,
            vertices=stats.vertices,
            edges=stats.edges,
            type=stats.type,
            triangles=stats.triangles,
            paper_vertices=pv,
            paper_edges=pe,
            paper_triangles=pt,
        )
    exp.note("synthetic power-law stand-ins preserve V:E ratios, not absolute sizes")
    return exp


def test_table2_statistics(benchmark, graphs, reporter):
    exp = benchmark.pedantic(run_table2, args=(graphs,), rounds=1, iterations=1)
    reporter.record(exp)
    rows = {r["graph"]: r for r in exp.rows}
    # relative ordering of the datasets is preserved
    shape(
        rows["google"]["edges"] < rows["pokec"]["edges"] < rows["livejournal"]["edges"],
        "edge counts order google < pokec < livejournal",
    )
    shape(
        rows["google"]["vertices"] < rows["pokec"]["vertices"] < rows["livejournal"]["vertices"],
        "vertex counts order google < pokec < livejournal",
    )
    for name, r in rows.items():
        ratio = r["edges"] / r["vertices"]
        paper_ratio = r["paper_edges"] / r["paper_vertices"]
        shape(
            abs(ratio - paper_ratio) / paper_ratio < 0.4,
            f"{name}: average degree within 40% of the paper's ({ratio:.1f} vs {paper_ratio:.1f})",
        )
    shape(all(r["triangles"] > 0 for r in rows.values()), "all graphs contain triangles")


def test_triangle_counting_kernel(benchmark, graphs):
    """Kernel timing: undirected triangle count on the Google stand-in."""
    g = graphs["google"]
    result = benchmark(count_triangles, g)
    assert result > 0
