"""Figure 13 — BLAST database partitioning time and strong scalability.

(a) Partitioning time of the PaPar-generated cyclic partitioner on 16 nodes
    vs muBLASTP's own multithreaded (single-node) partitioner — the paper
    reports 8.6x (env_nr) and 20.2x (nr) speedups.
(b) Strong scalability of the PaPar partitioner from 1 to 16 nodes — the
    paper reports 14.3x (env_nr) and 7.9x (nr) self-speedups at 16 nodes.

Timing methodology: both sides run under the shared virtual-time cost model
(DESIGN.md §6).  The PaPar side is *measured* from real SPMD runs on the
simulated MPI runtime (message volumes and per-phase costs are charged as
they happen); the baseline is the analytic single-node multithreaded model.
Database sizes are scaled down; the paper's speedups come from nr being ~14x
more sequences than env_nr, which the scaled sizes preserve.
"""

import numpy as np
import pytest

from repro import PaPar
from repro.bench import Experiment, shape
from repro.blast import baseline_partition_time, generate_index
from repro.cluster import ClusterModel, INFINIBAND_QDR
from repro.config import BLAST_INPUT_XML
from repro.config.examples import BLAST_WORKFLOW_XML
from repro.core.dataset import Dataset
from repro.formats import BLAST_INDEX_SCHEMA

#: env_nr has ~6M sequences, nr ~85M (4x fewer here, ratio preserved in spirit;
#: partitioning operates on the index alone, so realistic sequence *counts*
#: are feasible without materializing residue data)
DB_SIZES = {"env_nr": 1_500_000, "nr": 6_000_000}
NODE_COUNTS = (1, 2, 4, 8, 16)


@pytest.fixture(scope="module")
def indexes():
    return {
        profile: generate_index(profile, num_sequences=size, seed=17)
        for profile, size in DB_SIZES.items()
    }


def papar_partition_elapsed(index: np.ndarray, nodes: int) -> float:
    """Virtual seconds of the PaPar-generated partitioner on ``nodes`` nodes."""
    cluster = ClusterModel(num_nodes=nodes, ranks_per_node=2, network=INFINIBAND_QDR)
    papar = PaPar()
    papar.register_input(BLAST_INPUT_XML)
    result = papar.run(
        BLAST_WORKFLOW_XML,
        {"input_path": "/in", "output_path": "/out", "num_partitions": nodes * 2},
        data=Dataset.from_array(BLAST_INDEX_SCHEMA, index),
        backend="mpi",
        num_ranks=cluster.size,
        cluster=cluster,
    )
    return result.elapsed


def run_figure13(indexes):
    exp_a = Experiment(
        "Figure 13a", "Partitioning time on 16 nodes: PaPar vs muBLASTP multithreaded"
    )
    exp_b = Experiment("Figure 13b", "PaPar partitioner strong scalability (1-16 nodes)")
    speedups_vs_baseline = {}
    self_speedups = {}
    for profile, index in indexes.items():
        baseline = baseline_partition_time(len(index), threads=16)
        elapsed = {nodes: papar_partition_elapsed(index, nodes) for nodes in NODE_COUNTS}
        speedups_vs_baseline[profile] = baseline / elapsed[16]
        self_speedups[profile] = elapsed[1] / elapsed[16]
        exp_a.add(
            database=profile,
            sequences=len(index),
            baseline_s=baseline,
            papar_16nodes_s=elapsed[16],
            speedup=speedups_vs_baseline[profile],
            paper_speedup={"env_nr": 8.6, "nr": 20.2}[profile],
        )
        for nodes in NODE_COUNTS:
            exp_b.add(
                database=profile,
                nodes=nodes,
                papar_s=elapsed[nodes],
                self_speedup=elapsed[1] / elapsed[nodes],
            )
    exp_b.note("paper self-speedups at 16 nodes: env_nr 14.3x, nr 7.9x")
    return exp_a, exp_b, speedups_vs_baseline, self_speedups


def test_figure13_partitioning(benchmark, indexes, reporter):
    exp_a, exp_b, vs_baseline, self_speedup = benchmark.pedantic(
        run_figure13, args=(indexes,), rounds=1, iterations=1
    )
    reporter.record(exp_a)
    reporter.record(exp_b)

    # (a) PaPar on 16 nodes beats the single-node baseline on both databases,
    # and the bigger database gains more (paper: 20.2x nr vs 8.6x env_nr)
    shape(vs_baseline["env_nr"] > 2.0, "PaPar speeds up env_nr partitioning (>2x)")
    shape(vs_baseline["nr"] > 4.0, "PaPar speeds up nr partitioning (>4x)")
    shape(
        vs_baseline["nr"] > vs_baseline["env_nr"],
        "the larger database (nr) gains more from scaling out",
    )

    # (b) strong scaling: meaningful self-speedup at 16 nodes on both
    for profile, s in self_speedup.items():
        shape(s > 3.0, f"{profile}: PaPar scales to 16 nodes (self-speedup {s:.1f}x)")


def test_sort_kernel(benchmark, indexes):
    """Kernel timing: the index sort at the heart of the cyclic partitioner."""
    index = indexes["env_nr"]
    result = benchmark(np.argsort, index["seq_size"], kind="stable")
    assert len(result) == len(index)
