"""Section III-D ablation — data sampling for reducer load balance.

The sort operator needs reduce-key ranges; the paper samples data on every
node to approximate the global distribution (following TopCluster) and sets
balanced ranges.  This ablation compares reducer skew with sampled quantile
boundaries against naive uniform (min..max) boundaries on a skewed key
distribution, and sweeps the sample size.
"""

import numpy as np
import pytest

from repro.bench import Experiment, shape
from repro.mapreduce import RangePartitioner, reservoir_sample
from repro.mapreduce.sampling import quantile_boundaries
from repro.mpi import run_mpi

NUM_REDUCERS = 16
KEYS_PER_RANK = 50_000
RANKS = 8


def skewed_keys(rank: int) -> np.ndarray:
    rng = np.random.default_rng(1000 + rank)
    return (rng.pareto(1.3, size=KEYS_PER_RANK) * 100).astype(np.int64)


def reducer_skew(partitioner, all_keys: np.ndarray) -> float:
    """max/mean ratio of reducer loads (1.0 = perfectly balanced)."""
    owners = np.array([partitioner(k) for k in all_keys])
    counts = np.bincount(owners, minlength=partitioner.num_reducers)
    return float(counts.max() / counts.mean())


def run_ablation():
    exp = Experiment(
        "Sampling ablation", "Reducer skew: sampled quantile ranges vs uniform ranges"
    )
    all_keys = np.concatenate([skewed_keys(r) for r in range(RANKS)])

    # naive uniform boundaries over the observed min..max
    lo, hi = int(all_keys.min()), int(all_keys.max())
    uniform = RangePartitioner(
        list(np.linspace(lo, hi, NUM_REDUCERS + 1)[1:-1].astype(np.int64)), NUM_REDUCERS
    )
    uniform_skew = reducer_skew(uniform, all_keys)
    exp.add(method="uniform ranges", sample_size="-", skew=uniform_skew)

    skews = {}
    for sample_size in (64, 256, 1024):
        def prog(comm, sample_size=sample_size):
            local = skewed_keys(comm.rank)
            sample = reservoir_sample(local, sample_size, np.random.default_rng(comm.rank))
            merged = [s for chunk in comm.allgather(sample) for s in chunk]
            return quantile_boundaries(merged, NUM_REDUCERS)

        boundaries = run_mpi(prog, RANKS).results[0]
        sampled = RangePartitioner(boundaries, NUM_REDUCERS)
        skews[sample_size] = reducer_skew(sampled, all_keys)
        exp.add(method="sampled quantiles", sample_size=sample_size, skew=skews[sample_size])

    exp.note("skew = max/mean reducer load; 1.0 is perfect balance")
    return exp, uniform_skew, skews


def test_sampling_ablation(benchmark, reporter):
    exp, uniform_skew, skews = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    reporter.record(exp)
    # sampling removes almost all of the skew the uniform ranges suffer
    shape(uniform_skew > 4.0, f"uniform ranges badly skewed on Pareto keys ({uniform_skew:.1f}x)")
    for size, skew in skews.items():
        shape(skew < uniform_skew / 2, f"sample={size} at least halves the skew ({skew:.2f}x)")
    shape(
        skews[1024] <= skews[64] * 1.1,
        "larger samples do not hurt balance",
    )


def test_reservoir_kernel(benchmark):
    """Kernel timing: reservoir sampling 1024 of 50k keys."""
    keys = skewed_keys(0)
    out = benchmark(reservoir_sample, keys, 1024)
    assert len(out) == 1024
