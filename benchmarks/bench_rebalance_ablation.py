"""Dynamic rebalancing ablation (the paper's Related Work extension).

"We can use the PaPar distribution function with the cyclic policy to
rebalance the key-value pairs between reducers."  This bench injects reducer
skew, rebalances with :func:`repro.mapreduce.rebalance.rebalance`, and
records the before/after imbalance and the virtual-time cost of the
redistribution on the testbed cluster.
"""

import numpy as np
import pytest

from repro.bench import Experiment, shape
from repro.cluster import ClusterModel, INFINIBAND_QDR
from repro.mapreduce.rebalance import imbalance, rebalance
from repro.mpi import run_mpi

RANKS = 8
TOTAL_ITEMS = 80_000


def skewed_share(rank: int, alpha: float) -> int:
    """Zipf-shaped per-rank load: rank 0 gets the lion's share."""
    weights = np.array([1.0 / (r + 1) ** alpha for r in range(RANKS)])
    share = weights / weights.sum()
    return int(TOTAL_ITEMS * share[rank])


def run_ablation():
    cluster = ClusterModel(num_nodes=4, ranks_per_node=2, network=INFINIBAND_QDR)
    exp = Experiment(
        "Rebalance ablation", "reducer skew before/after cyclic redistribution"
    )
    outcomes = {}
    for alpha in (0.5, 1.0, 2.0):
        def prog(comm, alpha=alpha):
            n = skewed_share(comm.rank, alpha)
            local = list(range(n))
            before = imbalance(comm, len(local))
            balanced = rebalance(comm, local)
            after = imbalance(comm, len(balanced))
            return before, after

        run = run_mpi(prog, RANKS, cluster=cluster)
        before, after = run.results[0]
        outcomes[alpha] = (before, after)
        exp.add(
            skew_alpha=alpha,
            imbalance_before=before,
            imbalance_after=after,
            redistribution_s=run.elapsed,
            bytes_moved=run.bytes_moved,
        )
    exp.note("imbalance = max/mean reducer load; 1.0 is perfect")
    return exp, outcomes


def test_rebalance_ablation(benchmark, reporter):
    exp, outcomes = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    reporter.record(exp)
    for alpha, (before, after) in outcomes.items():
        shape(after <= 1.01, f"alpha={alpha}: rebalance restores near-perfect balance")
        shape(before > after, f"alpha={alpha}: skew strictly reduced ({before:.2f} -> {after:.2f})")


def test_rebalance_kernel(benchmark):
    """Kernel timing: rebalancing 4 skewed ranks in-process."""

    def run():
        def prog(comm):
            local = list(range(20_000)) if comm.rank == 0 else []
            return len(rebalance(comm, local))

        return run_mpi(prog, 4).results

    sizes = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sum(sizes) == 20_000
