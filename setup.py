"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists so environments
without the ``wheel`` package (offline clusters) can still do
``python setup.py develop --no-deps`` or a plain ``pip install .`` through
the legacy build path.
"""

from setuptools import setup

setup()
