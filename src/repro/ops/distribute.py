"""The Distribute basic operator (Table I).

``Distribute(inputPath, outputPath, inputFormat, outputFormat, policy,
numPartitions, addOn)`` — the one operator that does not follow the
key-value concept.  The policy is formalized as a permutation matrix
``L_m^{km}`` generated at runtime from ``policy`` and ``numPartitions``
(Section III-B): the operator's code is fixed, only the matrix changes.

The operator accepts either a single dataset or a list of datasets (the
split outputs of the hybrid-cut workflow); each stream is permuted
independently — Figure 11 generates ``L_3^4`` for the high-degree stream and
``L_3^3`` for the low-degree stream — and partition ``p``'s final output
concatenates every stream's ``p``-th chunk, unpacked ("as the distribute is
the last step in the workflow, all data will be unpacked").
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.dataset import Dataset, concat
from repro.errors import OperatorError
from repro.ops.base import BasicOperator, register_basic
from repro.policies.distr import DistributionPolicy, get_policy
from repro.policies.permutation import (
    apply_permutation_matrix,
    stride_permutation_matrix,
)


@register_basic
class Distribute(BasicOperator):
    """Deal a dataset (or list of split streams) into output partitions."""

    name = "Distribute"

    def __init__(
        self,
        policy: Union[str, DistributionPolicy],
        num_partitions: int,
        use_matrix: bool = False,
    ) -> None:
        if num_partitions < 1:
            raise OperatorError(f"numPartitions must be >= 1, got {num_partitions!r}")
        self.policy = get_policy(policy) if isinstance(policy, str) else policy
        self.num_partitions = num_partitions
        #: apply the literal matrix-vector multiplication instead of the O(n)
        #: index form (ablation switch; results are identical)
        self.use_matrix = use_matrix

    def _permute_entries(self, n: int) -> np.ndarray:
        """Entry order with each partition's entries contiguous."""
        if self.use_matrix and n > 0 and n % self.num_partitions == 0:
            # cyclic dealing into P partitions gathers at stride P, which is
            # the stride permutation L_{n/P}^n in the paper's L_m^{km} notation
            matrix = stride_permutation_matrix(n, n // self.num_partitions)
            return apply_permutation_matrix(matrix, np.arange(n, dtype=np.int64))
        return self.policy.permutation(n, self.num_partitions)

    def partition_one(self, data: Dataset) -> list[Dataset]:
        """Partition one stream; entry = record (flat) or group (packed)."""
        n = len(data)
        perm = self._permute_entries(n)
        counts = self.policy.counts(n, self.num_partitions)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        return [
            data.take(perm[offsets[p] : offsets[p + 1]])
            for p in range(self.num_partitions)
        ]

    def apply_local(
        self, data: Union[Dataset, Sequence[Dataset]]
    ) -> list[Dataset]:
        """Distribute local entries; returns ``num_partitions`` flat datasets."""
        streams = [data] if isinstance(data, Dataset) else list(data)
        if not streams:
            raise OperatorError("Distribute received no input streams")
        per_stream = [self.partition_one(s) for s in streams]
        out = []
        for p in range(self.num_partitions):
            chunks = [per_stream[s][p].to_flat() for s in range(len(streams))]
            out.append(concat(chunks) if len(chunks) > 1 else chunks[0])
        return out
