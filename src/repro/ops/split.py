"""The Split basic operator (Table I).

``Split(inputPath, outputPathList, inputFormat, outputFormat, key, policy,
addOn)`` — route each entry to one of several outputs according to a
:class:`~repro.policies.split_policy.SplitPolicy` evaluated on a key field.
The hybrid-cut workflow splits packed groups by the ``indegree`` attribute
into a high-degree output (``unpack`` format) and a low-degree output
(``orig``, i.e. stays packed) — Figure 11 steps 4-5.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.dataset import Dataset
from repro.errors import OperatorError
from repro.ops.base import BasicOperator, register_basic
from repro.ops.format_ops import Orig
from repro.policies.split_policy import SplitPolicy

import numpy as np


@register_basic
class Split(BasicOperator):
    """Split a dataset into ``policy.num_outputs`` datasets by key ranges."""

    name = "Split"

    def __init__(
        self,
        key: str,
        policy: SplitPolicy,
        output_formats: Sequence[str] = (),
    ) -> None:
        if not key:
            raise OperatorError("Split requires a key field")
        self.key = key
        self.policy = policy
        if output_formats and len(output_formats) != policy.num_outputs:
            raise OperatorError(
                f"{policy.num_outputs} split outputs but {len(output_formats)} formats"
            )
        from repro.ops.base import get_format

        self.output_formats = [
            get_format(f) for f in (output_formats or ["orig"] * policy.num_outputs)
        ]

    def apply_local(self, data: Dataset) -> list[Dataset]:
        """Route local entries; returns one dataset per output path."""
        if not data.schema.has_field(self.key):
            raise OperatorError(
                f"Split key {self.key!r} not in schema {data.schema.id!r}"
            )
        keys = data.column(self.key)
        routes = self.policy.route(keys)
        outputs = []
        for i, fmt in enumerate(self.output_formats):
            selected = data.take(np.flatnonzero(routes == i))
            outputs.append(fmt.apply(selected, key_field=self.key))
        return outputs

    @property
    def keeps_packed(self) -> list[bool]:
        """Which outputs keep the packed layout (``orig`` on packed input)."""
        return [isinstance(f, Orig) for f in self.output_formats]
