"""The Group basic operator (Table I).

``Group(inputPath, outputPath, inputFormat, outputFormat, key, addOn)`` —
group entries by a key field.  The hybrid-cut workflow groups edges by the
in-vertex ``vertex_b``, lets the ``count`` add-on append the ``indegree``
attribute, and packs the output (Figure 11 steps 1-3).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.dataset import Dataset
from repro.errors import OperatorError
from repro.ops.base import AddOnOperator, BasicOperator, register_basic


@register_basic
class Group(BasicOperator):
    """Group a dataset by one key field, optionally applying add-ons."""

    name = "Group"

    def __init__(
        self,
        key: str,
        addons: Sequence[tuple[AddOnOperator, str, Optional[str]]] = (),
        output_format: str = "pack",
    ) -> None:
        if not key:
            raise OperatorError("Group requires a key field")
        if output_format not in ("pack", "orig"):
            raise OperatorError(
                f"Group output format must be 'pack' or 'orig', got {output_format!r}"
            )
        self.key = key
        #: each add-on is (operator instance, attr name, aggregated field or None)
        self.addons = list(addons)
        self.output_format = output_format

    def apply_local(self, data: Dataset) -> Dataset:
        """Group this rank's local entries and apply the add-ons."""
        if not data.schema.has_field(self.key):
            raise OperatorError(
                f"Group key {self.key!r} not in schema {data.schema.id!r}"
            )
        packed = data.to_packed(self.key).packed
        for addon, attr, fieldname in self.addons:
            packed = addon.apply(packed, attr, fieldname)
        out = Dataset.from_packed(packed)
        if self.output_format == "orig" and not data.is_packed:
            out = out.to_flat()
        return out

    @property
    def added_attrs(self) -> list[str]:
        """Attribute names the add-ons introduce (for ``$group.$attr`` refs)."""
        return [attr for _, attr, _ in self.addons]
