"""Operator base classes and registries (paper Section III-B, Table I).

Three operator families, distinguished by what they do to the data:

* **Basic** operators (sort, group, split, distribute) reorder entries but
  never add, delete or mutate attributes.  A single basic operator can be a
  whole workflow.
* **Add-on** operators (count, max, min, mean, sum) add or delete attributes.
  They cannot form a job alone; they ride on a basic operator.
* **Format** operators (orig, pack, unpack) change the data layout without
  reordering entries or touching attributes.

Users register custom operators by inheriting one of these classes and
describing the class in a registration file (Figure 7,
:mod:`repro.config.operators`).
"""

from __future__ import annotations

import abc
from typing import Any, ClassVar, Optional

import numpy as np

from repro.core.dataset import Dataset
from repro.errors import OperatorError
from repro.formats.packed import PackedRecords


class Operator(abc.ABC):
    """Root of the operator hierarchy."""

    #: the name used in workflow configuration files
    name: ClassVar[str] = "abstract"


class BasicOperator(Operator):
    """Reorders entries; never changes attributes.

    ``apply_local`` is the single-node kernel: it transforms one rank's local
    dataset.  The distributed runtime composes kernels with shuffles; the
    serial backend just calls the kernel on the whole input.
    """

    @abc.abstractmethod
    def apply_local(self, data: Any) -> Any:
        """Transform local data (a Dataset, or operator-specific input)."""


class AddOnOperator(Operator):
    """Adds one attribute per record, computed over each key group.

    Subclasses implement :meth:`compute_group`, the per-group aggregate.
    """

    #: dtype of the attribute the add-on appends
    attr_type: ClassVar[str] = "long"
    #: whether the add-on needs a ``value`` field to aggregate (count does not)
    needs_field: ClassVar[bool] = True

    @abc.abstractmethod
    def compute_group(self, rows: np.ndarray, field: Optional[str]) -> Any:
        """Aggregate one group's rows into the attribute value."""

    def apply(
        self, packed: PackedRecords, attr: str, field: Optional[str] = None
    ) -> PackedRecords:
        """Append attribute ``attr`` to every record of every group."""
        if self.needs_field and field is None:
            raise OperatorError(f"add-on {self.name!r} requires a value field")
        if self.needs_field and field is not None and not packed.schema.has_field(field):
            raise OperatorError(
                f"add-on {self.name!r}: schema {packed.schema.id!r} has no field {field!r}"
            )
        new_schema = packed.schema.with_field(attr, self.attr_type)
        new_groups = []
        for key, rows in packed.groups:
            value = self.compute_group(rows, field)
            extended = np.empty(len(rows), dtype=new_schema.dtype)
            for name in packed.schema.field_names:
                extended[name] = rows[name]
            extended[attr] = value
            new_groups.append((key, extended))
        return PackedRecords(schema=new_schema, key_field=packed.key_field, groups=new_groups)


class FormatOperator(Operator):
    """Changes the data layout (orig / pack / unpack)."""

    @abc.abstractmethod
    def apply(self, data: Dataset, key_field: Optional[str] = None) -> Dataset:
        """Re-lay-out the dataset."""


# -- registries ----------------------------------------------------------------

_BASIC: dict[str, type[BasicOperator]] = {}
_ADDONS: dict[str, type[AddOnOperator]] = {}
_FORMATS: dict[str, type[FormatOperator]] = {}


def _register(registry: dict, cls: type, kind: str) -> type:
    key = cls.name.strip().lower()
    if key in registry and registry[key] is not cls:
        raise OperatorError(f"{kind} operator {cls.name!r} is already registered")
    registry[key] = cls
    return cls


def register_basic(cls: type[BasicOperator]) -> type[BasicOperator]:
    """Class decorator adding a basic operator to the registry."""
    return _register(_BASIC, cls, "basic")


def register_addon(cls: type[AddOnOperator]) -> type[AddOnOperator]:
    """Class decorator adding an add-on operator to the registry."""
    return _register(_ADDONS, cls, "add-on")


def register_format(cls: type[FormatOperator]) -> type[FormatOperator]:
    """Class decorator adding a format operator to the registry."""
    return _register(_FORMATS, cls, "format")


def get_basic(name: str) -> type[BasicOperator]:
    """Look up a basic operator class by configuration name."""
    cls = _BASIC.get(name.strip().lower())
    if cls is None:
        raise OperatorError(f"unknown basic operator {name!r}; known: {sorted(_BASIC)}")
    return cls


def get_addon(name: str) -> AddOnOperator:
    """Instantiate an add-on operator by configuration name."""
    cls = _ADDONS.get(name.strip().lower())
    if cls is None:
        raise OperatorError(f"unknown add-on operator {name!r}; known: {sorted(_ADDONS)}")
    return cls()


def get_format(name: str) -> FormatOperator:
    """Instantiate a format operator by configuration name."""
    cls = _FORMATS.get(name.strip().lower())
    if cls is None:
        raise OperatorError(f"unknown format operator {name!r}; known: {sorted(_FORMATS)}")
    return cls()


def registered_names() -> dict[str, list[str]]:
    """All registered operator names by family (Table I introspection)."""
    return {
        "basic": sorted(_BASIC),
        "addon": sorted(_ADDONS),
        "format": sorted(_FORMATS),
    }
