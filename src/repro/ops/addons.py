"""Add-on operators: count, max, min, mean, sum (Table I).

Each computes one aggregate per key group and appends it as a new attribute
on every record of the group — e.g. the hybrid-cut workflow's
``<addon operator="count" key="vertex_b" attr="indegree"/>`` turns each edge
``(vertex_a, vertex_b)`` into ``(vertex_a, vertex_b, indegree)``.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ops.base import AddOnOperator, register_addon


@register_addon
class Count(AddOnOperator):
    """Number of elements with the specific key."""

    name = "count"
    attr_type = "long"
    needs_field = False

    def compute_group(self, rows: np.ndarray, field: Optional[str]) -> Any:
        return len(rows)


@register_addon
class Max(AddOnOperator):
    """Maximum of the specific value field within the group."""

    name = "max"
    attr_type = "double"

    def compute_group(self, rows: np.ndarray, field: Optional[str]) -> Any:
        return rows[field].max()


@register_addon
class Min(AddOnOperator):
    """Minimum of the specific value field within the group."""

    name = "min"
    attr_type = "double"

    def compute_group(self, rows: np.ndarray, field: Optional[str]) -> Any:
        return rows[field].min()


@register_addon
class Mean(AddOnOperator):
    """Average of the specific value field within the group."""

    name = "mean"
    attr_type = "double"

    def compute_group(self, rows: np.ndarray, field: Optional[str]) -> Any:
        return rows[field].mean()


@register_addon
class Sum(AddOnOperator):
    """Sum of the specific value field within the group."""

    name = "sum"
    attr_type = "double"

    def compute_group(self, rows: np.ndarray, field: Optional[str]) -> Any:
        return rows[field].sum()
