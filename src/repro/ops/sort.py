"""The Sort basic operator (Table I).

``Sort(inputPath, outputPath, inputFormat, outputFormat, key, flag, addOn)``
— sort entries by a key field.  The muBLASTP workflow sorts the index by
``seq_size`` ascending (Figures 1, 8, 9).

The sort is *stable*, which matters for bit-exact reproduction of Figure 9:
two sequences with equal ``seq_size`` keep their input order, which decides
which partition each lands on under the subsequent cyclic distribution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.dataset import Dataset
from repro.errors import OperatorError
from repro.ops.base import AddOnOperator, BasicOperator, register_basic

#: Table I flag values ("-1: ascending, 1: descending")
ASCENDING = -1
DESCENDING = 1


@register_basic
class Sort(BasicOperator):
    """Sort a dataset by one key field."""

    name = "Sort"

    def __init__(
        self,
        key: str,
        ascending: bool = True,
        addon: Optional[AddOnOperator] = None,
        addon_attr: Optional[str] = None,
        addon_field: Optional[str] = None,
        kernel: str = "numpy",
    ) -> None:
        if not key:
            raise OperatorError("Sort requires a key field")
        if kernel not in ("numpy", "aspas"):
            raise OperatorError(f"unknown sort kernel {kernel!r}; use 'numpy' or 'aspas'")
        self.key = key
        self.ascending = ascending
        self.addon = addon
        self.addon_attr = addon_attr
        self.addon_field = addon_field
        #: local sort kernel: numpy's stable sort, or the ASPaS-style blocked
        #: mergesort the paper credits for single-node speed (results identical)
        self.kernel = kernel

    @classmethod
    def from_flag(cls, key: str, flag: int = ASCENDING, **kwargs) -> "Sort":
        """Table I calling convention: ``flag`` -1 ascending / 1 descending."""
        if flag not in (ASCENDING, DESCENDING):
            raise OperatorError(f"sort flag must be -1 or 1, got {flag!r}")
        return cls(key, ascending=(flag == ASCENDING), **kwargs)

    def sort_indices(self, keys: np.ndarray) -> np.ndarray:
        """Stable order of entries by key (descending keeps ties stable too)."""
        if self.kernel == "aspas":
            from repro.ops.aspas import aspas_argsort as argsort
        else:
            argsort = lambda k: np.argsort(k, kind="stable")  # noqa: E731
        if self.ascending:
            return argsort(keys)
        # stable descending: sort the negated key, not the reversed array
        negated = -keys.astype(np.int64, copy=False) if keys.dtype.kind in "iu" else -keys
        return argsort(negated)

    def apply_local(self, data: Dataset) -> Dataset:
        """Sort this rank's local entries (records, or packed groups)."""
        if not data.schema.has_field(self.key) and not self._is_packed_key(data):
            raise OperatorError(
                f"Sort key {self.key!r} not in schema {data.schema.id!r}"
            )
        keys = data.column(self.key)
        order = self.sort_indices(keys)
        out = data.take(order)
        if self.addon is not None:
            packed = out.to_packed(self.key).packed
            out = Dataset.from_packed(
                self.addon.apply(packed, self.addon_attr, self.addon_field)
            )
        return out

    def _is_packed_key(self, data: Dataset) -> bool:
        return data.is_packed and data.packed.key_field == self.key
