"""Format operators: orig, pack, unpack (Table I).

Format operators change the layout only — they never reorder entries or
add/delete attributes.  ``orig`` keeps whatever layout the data is in,
``pack`` groups records by a key field, ``unpack`` flattens packed groups
back to records (Figure 11 steps 3 and 5).
"""

from __future__ import annotations

from typing import Optional

from repro.core.dataset import Dataset
from repro.errors import OperatorError
from repro.ops.base import FormatOperator, register_format


@register_format
class Orig(FormatOperator):
    """(default) Output data with the input format."""

    name = "orig"

    def apply(self, data: Dataset, key_field: Optional[str] = None) -> Dataset:
        return data


@register_format
class Pack(FormatOperator):
    """Output data with the packed format (grouped by ``key_field``)."""

    name = "pack"

    def apply(self, data: Dataset, key_field: Optional[str] = None) -> Dataset:
        if data.is_packed:
            return data
        if key_field is None:
            raise OperatorError("pack requires a key field")
        return data.to_packed(key_field)


@register_format
class Unpack(FormatOperator):
    """Output data with the unpacked (flat) format."""

    name = "unpack"

    def apply(self, data: Dataset, key_field: Optional[str] = None) -> Dataset:
        return data.to_flat()
