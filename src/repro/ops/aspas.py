"""An ASPaS-style vectorized mergesort for the sort operator's local phase.

The paper's single-node sort speed comes from ASPaS (Hou et al., ICS 2015),
a framework generating SIMD sort/merge kernels: data is cut into blocks,
each block sorted with vector kernels, then blocks are merged.  numpy's
kernels play the SIMD role here; this module contributes the blocked
sort + k-way merge *structure* so the block size (cache residency) and the
merge fan-in become measurable knobs, and the benchmark suite can quantify
the single-node claim ("even on a single compute node, PaPar is faster,
thanks to ASPaS").

``aspas_argsort`` is a stable argsort with results identical to
``np.argsort(kind="stable")`` (property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.errors import OperatorError

DEFAULT_BLOCK = 1 << 16


def _merge_two(keys: np.ndarray, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Stable merge of two index runs ordered by ``keys`` (vectorized).

    ``np.searchsorted`` computes, for every element of ``right``, how many
    elements of ``left`` precede it (ties keep ``left`` first — stability),
    which yields both runs' final positions without a Python-level loop.
    """
    left_keys = keys[left]
    right_keys = keys[right]
    # position of each right element among the left run (ties -> after left)
    right_into_left = np.searchsorted(left_keys, right_keys, side="right")
    out = np.empty(len(left) + len(right), dtype=np.int64)
    right_pos = right_into_left + np.arange(len(right), dtype=np.int64)
    out[right_pos] = right
    mask = np.ones(len(out), dtype=bool)
    mask[right_pos] = False
    out[mask] = left
    return out


def aspas_argsort(keys: np.ndarray, block: int = DEFAULT_BLOCK) -> np.ndarray:
    """Stable blocked mergesort: sort cache-sized blocks, then merge pairwise.

    Equivalent to ``np.argsort(keys, kind="stable")``.
    """
    if block < 2:
        raise OperatorError(f"block size must be >= 2, got {block!r}")
    keys = np.asarray(keys)
    n = len(keys)
    if n <= block:
        return np.argsort(keys, kind="stable")
    # phase 1: sort each block with the vector kernel
    runs = []
    for start in range(0, n, block):
        idx = np.arange(start, min(start + block, n), dtype=np.int64)
        runs.append(idx[np.argsort(keys[idx], kind="stable")])
    # phase 2: balanced pairwise merge tree (adjacent pairs keep stability)
    while len(runs) > 1:
        merged = []
        for i in range(0, len(runs) - 1, 2):
            merged.append(_merge_two(keys, runs[i], runs[i + 1]))
        if len(runs) % 2:
            merged.append(runs[-1])
        runs = merged
    return runs[0]


def aspas_sort(keys: np.ndarray, block: int = DEFAULT_BLOCK) -> np.ndarray:
    """Sorted copy of ``keys`` via :func:`aspas_argsort`."""
    return np.asarray(keys)[aspas_argsort(keys, block=block)]
