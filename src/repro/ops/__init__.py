"""The operator building blocks of PaPar workflows (Table I).

Importing this package registers the standard operators:

* basic: ``Sort``, ``Group``, ``Split``, ``Distribute``;
* add-on: ``count``, ``max``, ``min``, ``mean``, ``sum``;
* format: ``orig``, ``pack``, ``unpack``.

Custom operators inherit the base classes in :mod:`repro.ops.base` and are
either registered programmatically (``register_basic`` et al.) or described
in a Figure-7-style registration file (:mod:`repro.config.operators`).
"""

from repro.ops.addons import Count, Max, Mean, Min, Sum
from repro.ops.base import (
    AddOnOperator,
    BasicOperator,
    FormatOperator,
    Operator,
    get_addon,
    get_basic,
    get_format,
    register_addon,
    register_basic,
    register_format,
    registered_names,
)
from repro.ops.distribute import Distribute
from repro.ops.format_ops import Orig, Pack, Unpack
from repro.ops.group import Group
from repro.ops.sort import ASCENDING, DESCENDING, Sort
from repro.ops.split import Split

__all__ = [
    "Operator",
    "BasicOperator",
    "AddOnOperator",
    "FormatOperator",
    "Sort",
    "Group",
    "Split",
    "Distribute",
    "Count",
    "Max",
    "Min",
    "Mean",
    "Sum",
    "Orig",
    "Pack",
    "Unpack",
    "ASCENDING",
    "DESCENDING",
    "register_basic",
    "register_addon",
    "register_format",
    "get_basic",
    "get_addon",
    "get_format",
    "registered_names",
]
