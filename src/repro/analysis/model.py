"""Lenient workflow model for the static analyzer.

The strict parser (:func:`repro.config.workflow.parse_workflow_config`)
stops at the first problem — correct for a runtime front door, useless for
a linter that must report *every* finding in one pass.  This module builds
a tolerant model straight from the located element tree: structural
problems (missing attributes, duplicate ids) become diagnostics instead of
exceptions, and analysis continues with whatever could be salvaged.

The model reuses :class:`~repro.config.workflow.ParamSpec` and
:class:`~repro.config.workflow.AddOnSpec` (which carry source lines), but
keeps parameters as *lists* so duplicates remain observable.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.locate import LocatedTree
from repro.config.workflow import _REF_RE, AddOnSpec, ParamSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config.workflow import WorkflowSpec
    from repro.core.planner import WorkflowPlan
    from repro.formats.records import RecordSchema

#: operator types the planner understands natively
KNOWN_OPERATORS = ("sort", "group", "split", "distribute")


@dataclass
class LintOperator:
    """One ``<operator>`` stage, tolerantly parsed."""

    id: str
    operator: str
    attrs: dict[str, str] = field(default_factory=dict)
    params: list[ParamSpec] = field(default_factory=list)
    addons: list[AddOnSpec] = field(default_factory=list)
    line: Optional[int] = None

    @property
    def kind(self) -> str:
        """The operator name, normalized for case-insensitive matching."""
        return self.operator.strip().lower()

    def param(self, *names: str) -> Optional[ParamSpec]:
        """First parameter matching any of ``names`` (in name priority order)."""
        for name in names:
            for p in self.params:
                if p.name == name:
                    return p
        return None

    def param_value(self, *names: str) -> Optional[str]:
        """Value of the first parameter matching any of ``names``."""
        p = self.param(*names)
        return p.value if p is not None else None


@dataclass
class LintWorkflow:
    """A tolerantly parsed ``<workflow>`` document."""

    id: str
    name: str
    arguments: list[ParamSpec] = field(default_factory=list)
    operators: list[LintOperator] = field(default_factory=list)
    line: Optional[int] = None

    def argument(self, name: str) -> Optional[ParamSpec]:
        """The declared workflow argument called ``name``, if any."""
        for a in self.arguments:
            if a.name == name:
                return a
        return None

    def operator_ids(self) -> list[str]:
        """Operator ids in document order."""
        return [op.id for op in self.operators]

    def operator_index(self, op_id: str) -> Optional[int]:
        """Position of operator ``op_id`` in document order, if present."""
        for i, op in enumerate(self.operators):
            if op.id == op_id:
                return i
        return None


@dataclass(frozen=True)
class Reference:
    """One ``$ref`` occurrence inside a parameter or operator attribute."""

    #: the reference text without the leading ``$`` (dots kept, inner $ dropped)
    ref: str
    #: operator the reference occurs in (None for argument defaults)
    op: Optional[LintOperator]
    #: name of the parameter or attribute holding the reference
    slot: str
    line: Optional[int]

    @property
    def parts(self) -> list[str]:
        """The dotted reference split into components."""
        return self.ref.replace("$", "").split(".")

    @property
    def head(self) -> str:
        """The first component: an argument name or an operator id."""
        return self.parts[0]


def build_workflow_model(
    tree: LocatedTree, filename: Optional[str]
) -> tuple[Optional[LintWorkflow], list[Diagnostic]]:
    """Build a :class:`LintWorkflow` from a located tree, collecting
    structural diagnostics instead of raising."""
    diags: list[Diagnostic] = []
    root = tree.root

    def diag(
        code: str,
        severity: Severity,
        message: str,
        node: Optional[ET.Element],
        rule: str,
        suggestion: Optional[str] = None,
    ) -> None:
        diags.append(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                file=filename,
                line=tree.line(node),
                column=tree.column(node),
                rule=rule,
                suggestion=suggestion,
            )
        )

    if root.tag != "workflow":
        diag(
            "PAP001",
            Severity.ERROR,
            f"expected <workflow> root element, found <{root.tag}>",
            root,
            "xml-syntax",
            "rename the root element to <workflow>",
        )
        return None, diags

    wf_id = root.get("id")
    if not wf_id:
        diag(
            "PAP002",
            Severity.ERROR,
            "<workflow> requires an 'id' attribute",
            root,
            "missing-attribute",
            'add id="..." to the <workflow> element',
        )
        wf_id = "<anonymous>"
    model = LintWorkflow(
        id=wf_id, name=root.get("name", wf_id), line=tree.line(root)
    )

    args_node = root.find("arguments")
    if args_node is not None:
        seen_args: set[str] = set()
        for p in args_node.findall("param"):
            name = p.get("name")
            if not name:
                diag(
                    "PAP002",
                    Severity.ERROR,
                    "<param> requires a 'name' attribute",
                    p,
                    "missing-attribute",
                )
                continue
            if name in seen_args:
                diag(
                    "PAP003",
                    Severity.ERROR,
                    f"duplicate workflow argument {name!r}",
                    p,
                    "duplicate-id",
                    "remove or rename the duplicate declaration",
                )
            seen_args.add(name)
            model.arguments.append(
                ParamSpec(
                    name=name,
                    type=p.get("type", "String"),
                    value=p.get("value"),
                    format=p.get("format"),
                    line=tree.line(p),
                )
            )

    ops_node = root.find("operators")
    if ops_node is None or not list(ops_node):
        diag(
            "PAP002",
            Severity.ERROR,
            f"workflow {wf_id!r} declares no operators",
            root if ops_node is None else ops_node,
            "missing-attribute",
            "add an <operators> section with at least one <operator>",
        )
        return model, diags

    seen_ids: set[str] = set()
    for i, op_node in enumerate(ops_node.findall("operator")):
        op_id = op_node.get("id")
        op_name = op_node.get("operator")
        if not op_id or not op_name:
            diag(
                "PAP002",
                Severity.ERROR,
                "<operator> requires 'id' and 'operator' attributes",
                op_node,
                "missing-attribute",
            )
        op_id = op_id or f"<operator-{i}>"
        if op_id in seen_ids:
            diag(
                "PAP003",
                Severity.ERROR,
                f"duplicate operator id {op_id!r}",
                op_node,
                "duplicate-id",
                "give every operator a unique id",
            )
        seen_ids.add(op_id)
        op = LintOperator(
            id=op_id,
            operator=op_name or "",
            attrs={
                k: v for k, v in op_node.attrib.items() if k not in ("id", "operator")
            },
            line=tree.line(op_node),
        )
        seen_params: set[str] = set()
        for p in op_node.findall("param"):
            pname = p.get("name")
            if not pname:
                diag(
                    "PAP002",
                    Severity.ERROR,
                    f"<param> in operator {op_id!r} requires a 'name' attribute",
                    p,
                    "missing-attribute",
                )
                continue
            if pname in seen_params:
                diag(
                    "PAP003",
                    Severity.ERROR,
                    f"operator {op_id!r} declares parameter {pname!r} twice",
                    p,
                    "duplicate-id",
                    "remove the duplicate <param>; the runtime keeps only one",
                )
            seen_params.add(pname)
            op.params.append(
                ParamSpec(
                    name=pname,
                    type=p.get("type", "String"),
                    value=p.get("value"),
                    format=p.get("format"),
                    line=tree.line(p),
                )
            )
        for a in op_node.findall("addon"):
            if not a.get("operator"):
                diag(
                    "PAP002",
                    Severity.ERROR,
                    f"<addon> in operator {op_id!r} requires an 'operator' attribute",
                    a,
                    "missing-attribute",
                )
                continue
            op.addons.append(
                AddOnSpec(
                    operator=a.get("operator", ""),
                    key=a.get("key"),
                    attr=a.get("attr"),
                    value=a.get("value"),
                    line=tree.line(a),
                )
            )
        model.operators.append(op)
    return model, diags


@dataclass
class LintContext:
    """Everything one analysis pass knows; handed to every checker."""

    filename: Optional[str]
    model: Optional[LintWorkflow]
    #: input-data schemas by id (registered on the framework or --input files)
    schemas: dict[str, "RecordSchema"] = field(default_factory=dict)
    #: schema id -> originating file (for diagnostics about input configs)
    input_files: dict[str, str] = field(default_factory=dict)
    #: user-supplied workflow arguments (CLI --arg / API args)
    args: dict[str, str] = field(default_factory=dict)
    #: the strict parse, when it succeeded
    spec: Optional["WorkflowSpec"] = None
    #: the resolved plan, when planning succeeded
    plan: Optional["WorkflowPlan"] = None
    #: planner failure message, when planning was attempted and failed
    plan_error: Optional[str] = None
    #: simulated cluster size the user intends to run with (optional)
    ranks: Optional[int] = None
    #: execution backend the user intends to run with (enables PAP07x)
    backend: Optional[str] = None
    #: True when *fault injection* specs are declared for the intended run
    #: (checkpoint/retry recovery is tracked separately via ``checkpoint``)
    faults: bool = False
    #: True when a checkpoint store/directory is declared for the run
    checkpoint: bool = False
    #: True when the workflow is destined for the streaming daemon
    #: (``papar serve``); enables the serving-fit rules (PAP090)
    serve: bool = False
    #: declared per-rank memory budget spec (e.g. "64MB"), when given
    memory_budget: Optional[str] = None
    #: assumed input record count for budget sizing (with memory_budget)
    assume_records: Optional[int] = None
    #: memoized plan-IR (see :meth:`ir`); None until first requested
    _ir: Optional[object] = field(default=None, repr=False)
    #: memoized analyzed plan (see :meth:`analyzed`)
    _analyzed: Optional[object] = field(default=None, repr=False)

    def ir(self):
        """The shared plan-IR of this workflow, built once and memoized.

        Every rule that needs resolved paths, ``$ref`` edges, or the
        symbolic environment reads this — the single dataflow resolution
        the analyzer performs (returns ``None`` when no model exists).
        """
        if self._ir is None and self.model is not None:
            from repro.analysis.ir import build_ir

            self._ir = build_ir(self)
        return self._ir

    def analyzed(self):
        """The fixed-point analyses + cost model over :meth:`ir`, memoized."""
        if self._analyzed is None and self.model is not None:
            from repro.analysis.cost import analyze_plan

            self._analyzed = analyze_plan(self)
        return self._analyzed

    def diag(
        self,
        code: str,
        message: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
        suggestion: Optional[str] = None,
        file: Optional[str] = None,
    ) -> Diagnostic:
        """Build a diagnostic, pulling severity and rule name from the catalog."""
        from repro.analysis.rules import CATALOG

        spec = CATALOG[code]
        return Diagnostic(
            code=code,
            severity=spec.severity,
            message=message,
            file=file if file is not None else self.filename,
            line=line,
            column=column,
            rule=spec.name,
            suggestion=suggestion,
        )

    def input_schema(self) -> tuple[Optional["RecordSchema"], Optional[ParamSpec]]:
        """The input-data schema the workflow reads, via the planner's
        convention: the last ``input*`` argument with a ``format``."""
        if self.model is None:
            return None, None
        found: tuple[Optional["RecordSchema"], Optional[ParamSpec]] = (None, None)
        for arg in self.model.arguments:
            if arg.format and arg.name.lower().startswith("input"):
                found = (self.schemas.get(arg.format), arg)
        return found


class SymbolicEnv:
    """Best-effort ``$ref`` substitution without executing anything.

    Arguments resolve to user-supplied values or config defaults; operator
    outputs resolve to their (possibly already substituted) path strings.
    Unknown references stay as literal ``$ref`` text so downstream rules can
    still compare values symbolically.
    """

    def __init__(self) -> None:
        self.values: dict[str, str] = {}

    def bind(self, name: str, value: str) -> None:
        """Make ``$name`` resolve to ``value``."""
        self.values[name.replace("$", "")] = value

    def resolve(self, text: Optional[str]) -> tuple[Optional[str], bool]:
        """Substitute known refs; returns (text, fully_resolved)."""
        if text is None:
            return None, True
        complete = True

        def sub(m) -> str:
            nonlocal complete
            key = m.group(1).replace("$", "")
            if key in self.values:
                return str(self.values[key])
            complete = False
            return m.group(0)

        return _REF_RE.sub(sub, text), complete


def iter_references(model: LintWorkflow) -> Iterator[Reference]:
    """Every ``$ref`` occurrence in the workflow, with its source slot."""
    for arg in model.arguments:
        if arg.value:
            for m in _REF_RE.finditer(arg.value):
                yield Reference(m.group(1), None, arg.name, arg.line)
    for op in model.operators:
        for p in op.params:
            if p.value:
                for m in _REF_RE.finditer(p.value):
                    yield Reference(m.group(1), op, p.name, p.line)
        for attr_name, attr_value in op.attrs.items():
            for m in _REF_RE.finditer(attr_value):
                yield Reference(m.group(1), op, attr_name, op.line)
        for addon in op.addons:
            for text in (addon.key, addon.value):
                if text:
                    for m in _REF_RE.finditer(text):
                        yield Reference(m.group(1), op, "addon", addon.line)
