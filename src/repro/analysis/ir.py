"""The typed plan-IR shared by the lint rules and the (future) optimizer.

Historically every path/type rule re-derived the workflow dataflow with its
own call to ``resolve_dataflow``.  This module is that resolution promoted
to a first-class intermediate representation: one :func:`build_ir` pass
turns a tolerant :class:`~repro.analysis.model.LintWorkflow` into a
:class:`PlanIR` — operator nodes with resolved-as-far-as-possible
parameters, explicit dataflow edges recovered from the ``$ref`` path
wiring (including the directory-prefix consumption the planner supports),
exchange annotations describing which operators shuffle data between
ranks, and the source locations :mod:`repro.analysis.locate` collected.

Everything downstream — the PAP02x/03x rules, the fixed-point analyses in
:mod:`repro.analysis.dataflow`, the cost model in
:mod:`repro.analysis.cost`, and ``papar explain`` — consumes this IR
instead of re-resolving paths privately.  An optimizer pass is a pure
rewrite over the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.analysis.model import LintOperator, LintWorkflow, SymbolicEnv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.model import LintContext

#: operator kind -> exchange annotation: how the SPMD runtimes move the
#: operator's input between ranks (``None`` = purely rank-local).
#: ``range`` is the sample + range-shuffle of sort/group (Figures 9/11);
#: ``position`` is distribute's global-position permutation shuffle.
EXCHANGE_KINDS: dict[str, str] = {
    "sort": "range",
    "group": "range",
    "distribute": "position",
}


@dataclass(frozen=True)
class IREdge:
    """One dataflow edge: a producer output consumed by a later node.

    ``src is None`` marks the workflow-input pseudo-source (the first job,
    or any job whose input path no earlier output produces).
    """

    #: producing operator id, or None for the workflow input
    src: Optional[str]
    #: output slot on the producer (splits have one slot per condition)
    src_output: int
    #: consuming operator id
    dst: str
    #: the resolved path text the edge was recovered from
    path: str


@dataclass
class IRNode:
    """One operator stage of the plan-IR."""

    #: operator id (unique in a well-formed workflow)
    op_id: str
    #: normalized operator kind ("sort", "group", "split", "distribute", ...)
    kind: str
    #: the tolerant model node (parameter lists, add-ons, attributes)
    op: LintOperator
    #: position in document (= execution) order
    index: int
    #: parameter name -> value with every known ``$ref`` substituted
    params: dict[str, Optional[str]] = field(default_factory=dict)
    #: parameter name -> True when the substitution was complete
    params_resolved: dict[str, bool] = field(default_factory=dict)
    #: resolved input path (None when the operator declares none)
    input: Optional[str] = None
    input_resolved: bool = True
    input_line: Optional[int] = None
    #: resolved output path(s); splits have one per condition
    outputs: list[str] = field(default_factory=list)
    outputs_resolved: bool = True
    output_line: Optional[int] = None
    #: exchange annotation ("range" / "position" / None), see EXCHANGE_KINDS
    exchange: Optional[str] = None

    @property
    def line(self) -> Optional[int]:
        """Source line of the ``<operator>`` element."""
        return self.op.line

    def param_value(self, *names: str) -> Optional[str]:
        """Resolved value of the first declared parameter among ``names``."""
        for name in names:
            if name in self.params:
                return self.params[name]
        return None

    def param_line(self, *names: str) -> Optional[int]:
        """Source line of the first declared parameter among ``names``."""
        p = self.op.param(*names)
        return p.line if p is not None else None


@dataclass
class PlanIR:
    """The whole analyzed plan: nodes in execution order plus their edges."""

    workflow_id: str
    nodes: list[IRNode]
    edges: list[IREdge]
    #: the symbolic environment after walking every operator
    env: SymbolicEnv

    def __post_init__(self) -> None:
        self._by_id = {n.op_id: n for n in self.nodes}

    def node(self, op_id: str) -> Optional[IRNode]:
        """The node called ``op_id``, if any."""
        return self._by_id.get(op_id)

    @property
    def final(self) -> Optional[IRNode]:
        """The last node (the workflow product), when the plan is non-empty."""
        return self.nodes[-1] if self.nodes else None

    def in_edges(self, op_id: str) -> list[IREdge]:
        """Edges feeding ``op_id`` (empty = reads the workflow input)."""
        return [e for e in self.edges if e.dst == op_id]

    def out_edges(self, op_id: str) -> list[IREdge]:
        """Edges consuming outputs of ``op_id``."""
        return [e for e in self.edges if e.src == op_id]

    def predecessors(self, op_id: str) -> list[IRNode]:
        """Producing nodes of ``op_id``, in execution order, de-duplicated."""
        seen: dict[str, IRNode] = {}
        for e in self.in_edges(op_id):
            if e.src is not None and e.src not in seen:
                node = self.node(e.src)
                if node is not None:
                    seen[e.src] = node
        return sorted(seen.values(), key=lambda n: n.index)

    def successors(self, op_id: str) -> list[IRNode]:
        """Consuming nodes of ``op_id``, in execution order, de-duplicated."""
        seen: dict[str, IRNode] = {}
        for e in self.out_edges(op_id):
            if e.dst not in seen:
                node = self.node(e.dst)
                if node is not None:
                    seen[e.dst] = node
        return sorted(seen.values(), key=lambda n: n.index)

    def consumed_outputs(self, op_id: str) -> set[int]:
        """Output slots of ``op_id`` some later node consumes."""
        return {e.src_output for e in self.out_edges(op_id)}

    def sole_consumer(self, op_id: str) -> Optional[IRNode]:
        """The unique consumer of *every* consumed output, or None."""
        succ = self.successors(op_id)
        return succ[0] if len(succ) == 1 else None

    def exchange_nodes(self) -> list[IRNode]:
        """Nodes annotated with an exchange, in execution order."""
        return [n for n in self.nodes if n.exchange is not None]


def _resolve_node_io(node: IRNode, env: SymbolicEnv) -> None:
    """Fill the node's resolved input/output paths, mirroring the planner."""
    op = node.op
    in_param = op.param("inputPath", "input", "inputPathList")
    if in_param is not None:
        node.input, node.input_resolved = env.resolve(in_param.value)
        node.input_line = in_param.line
    if node.kind == "split":
        out_param = op.param("outputPathList")
        if out_param is not None and out_param.value:
            resolved, ok = env.resolve(out_param.value)
            node.outputs = [
                p.strip() for p in (resolved or "").split(",") if p.strip()
            ]
            node.outputs_resolved = ok
            node.output_line = out_param.line
    else:
        out_param = op.param("outputPath", "ouputPath")
        if out_param is not None and out_param.value is not None:
            resolved, ok = env.resolve(out_param.value)
            node.outputs = [resolved or ""]
            node.outputs_resolved = ok
            node.output_line = out_param.line
        else:
            # the planner's default output path
            node.outputs = [f"/tmp/{op.id}"]


def _wire_edges(nodes: list[IRNode]) -> list[IREdge]:
    """Recover dataflow edges from the resolved paths.

    A node's input consumes an earlier output when the paths match exactly
    or the input is a directory prefix of the output (the hybrid-cut
    ``/tmp/split/`` pattern, where one distribute drains every split
    output).  Unmatched inputs read the workflow input.
    """
    edges: list[IREdge] = []
    for i, node in enumerate(nodes):
        if node.input is None:
            if i == 0:
                edges.append(IREdge(None, 0, node.op_id, ""))
            elif nodes[i - 1].outputs:
                # the serial runtime chains from the previous job when an
                # operator declares no input; mirror that implicit edge
                edges.append(
                    IREdge(nodes[i - 1].op_id, 0, node.op_id, nodes[i - 1].outputs[0])
                )
            continue
        path = node.input
        matched = False
        for j in range(i):
            for k, out in enumerate(nodes[j].outputs):
                if not out:
                    continue
                if out == path or out.startswith(path.rstrip("/") + "/"):
                    edges.append(IREdge(nodes[j].op_id, k, node.op_id, out))
                    matched = True
        if not matched:
            edges.append(IREdge(None, 0, node.op_id, path))
    return edges


def build_ir(ctx: "LintContext") -> Optional[PlanIR]:
    """One resolution pass: model -> nodes + env + edges + annotations.

    This is the single place the analyzer walks the operator chain binding
    ``$refs`` — the walk the old ``resolve_dataflow`` helper performed once
    per rule.  Prefer :meth:`LintContext.ir`, which memoizes the result.
    """
    model = ctx.model
    if model is None:
        return None
    env = SymbolicEnv()
    for arg in model.arguments:
        if arg.name in ctx.args:
            env.bind(arg.name, str(ctx.args[arg.name]))
        elif arg.value is not None:
            env.bind(arg.name, env.resolve(arg.value)[0] or "")

    nodes: list[IRNode] = []
    for i, op in enumerate(model.operators):
        node = IRNode(
            op_id=op.id,
            kind=op.kind,
            op=op,
            index=i,
            exchange=EXCHANGE_KINDS.get(op.kind),
        )
        for p in op.params:
            resolved, ok = env.resolve(p.value)
            # duplicates stay observable in op.params; the dict keeps the
            # first occurrence, matching the runtime's behavior
            if p.name not in node.params:
                node.params[p.name] = resolved
                node.params_resolved[p.name] = ok
        _resolve_node_io(node, env)
        if node.outputs:
            env.bind(f"{op.id}.outputPath", node.outputs[0])
            if len(node.outputs) > 1:
                env.bind(f"{op.id}.outputPathList", ",".join(node.outputs))
        for addon in op.addons:
            attr = addon.attr or addon.operator
            if attr:
                env.bind(f"{op.id}.{attr}", attr)
        nodes.append(node)
    return PlanIR(
        workflow_id=model.id,
        nodes=nodes,
        edges=_wire_edges(nodes),
        env=env,
    )


def workflow_ir(model: LintWorkflow, args: Optional[dict[str, str]] = None) -> PlanIR:
    """Build a :class:`PlanIR` straight from a model (no LintContext needed)."""
    from repro.analysis.model import LintContext

    ctx = LintContext(filename=None, model=model, args=dict(args or {}))
    ir = build_ir(ctx)
    assert ir is not None  # model is not None by construction
    return ir
