"""Generic fixed-point dataflow analysis over the plan-IR.

One worklist engine (:func:`run_dataflow`) runs any
:class:`DataflowAnalysis` — forward or backward — over a
:class:`~repro.analysis.ir.PlanIR` until the per-node values stop
changing.  Three concrete analyses ship with it:

* :class:`SchemaAnalysis` — forward record-schema propagation on a flat
  lattice (⊤ unknown / concrete field list / ⊥ conflict): group add-ons
  append typed attributes, joins of disagreeing schemas detect conflicts;
* :class:`LivenessAnalysis` — backward column liveness seeded from the
  fields downstream operators actually reference (sort/group/split keys
  and add-on value fields), the basis of the PAP083 pruning advisory;
* :class:`CardinalityAnalysis` — forward entry/row-count estimation, the
  substrate of the per-exchange bytes-moved model in
  :mod:`repro.analysis.cost`.

The IR is a DAG in document order, so each pass converges after at most
``len(nodes)`` sweeps; the engine still iterates to a fixed point rather
than trusting topology, because the tolerant model may describe wiring a
strict parser would reject.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Generic, Optional, TypeVar

from repro.analysis.ir import IRNode, PlanIR

V = TypeVar("V")


class DataflowAnalysis(Generic[V]):
    """One analysis: a lattice (``top``/``join``) plus a transfer function.

    ``direction`` is ``"forward"`` (values flow source -> sink along IR
    edges) or ``"backward"`` (sink -> source).  ``boundary`` seeds the
    graph's entry (forward: the workflow input; backward: the final node's
    out-value).  ``transfer`` maps a node's in-value to its out-value.
    """

    direction: str = "forward"

    def top(self) -> V:
        """The "no information yet" lattice value."""
        raise NotImplementedError

    def boundary(self, ir: PlanIR) -> V:
        """The value entering the graph at its boundary."""
        raise NotImplementedError

    def join(self, a: V, b: V) -> V:
        """Combine values meeting at a node (must be monotone)."""
        raise NotImplementedError

    def transfer(self, node: IRNode, value: V) -> V:
        """The node's effect on a value flowing through it."""
        raise NotImplementedError


@dataclass
class DataflowResult(Generic[V]):
    """Per-node fixed-point values of one analysis run."""

    #: value at the node's input (forward) / live-out side (backward)
    input_of: dict[str, V]
    #: value after the node's transfer function
    output_of: dict[str, V]
    #: sweeps until the fixed point (diagnostic/curiosity)
    iterations: int = 0


def run_dataflow(ir: PlanIR, analysis: DataflowAnalysis[V]) -> DataflowResult[V]:
    """Iterate ``analysis`` over ``ir`` until nothing changes."""
    forward = analysis.direction == "forward"
    input_of: dict[str, V] = {n.op_id: analysis.top() for n in ir.nodes}
    output_of: dict[str, V] = {n.op_id: analysis.top() for n in ir.nodes}
    order = ir.nodes if forward else list(reversed(ir.nodes))
    boundary = analysis.boundary(ir)
    final = ir.final

    iterations = 0
    changed = True
    # a DAG needs one sweep in topological order; the cap only guards the
    # degenerate wiring a tolerant model can produce
    max_sweeps = max(2, len(ir.nodes) + 1)
    while changed and iterations < max_sweeps:
        changed = False
        iterations += 1
        for node in order:
            if forward:
                # dedupe by producer: several output slots of one node
                # (split) partition its value, they don't replicate it
                srcs = dict.fromkeys(e.src for e in ir.in_edges(node.op_id))
                incoming = [
                    boundary if src is None else output_of[src] for src in srcs
                ]
            else:
                dsts = dict.fromkeys(e.dst for e in ir.out_edges(node.op_id))
                incoming = [output_of[dst] for dst in dsts]
                if final is not None and node.op_id == final.op_id:
                    incoming.append(boundary)
            value = analysis.top()
            for v in incoming:
                value = analysis.join(value, v)
            out = analysis.transfer(node, value)
            if value != input_of[node.op_id] or out != output_of[node.op_id]:
                input_of[node.op_id] = value
                output_of[node.op_id] = out
                changed = True
    return DataflowResult(input_of=input_of, output_of=output_of, iterations=iterations)


# ---------------------------------------------------------------------------
# schema/type propagation (forward)
# ---------------------------------------------------------------------------

#: sentinel kinds of a SchemaValue
TOP = "top"
CONCRETE = "concrete"
BOTTOM = "bottom"


@dataclass(frozen=True)
class SchemaValue:
    """A lattice point: unknown schema, a concrete field list, or a conflict."""

    kind: str = TOP
    #: ordered (name, type) pairs when concrete
    fields: tuple[tuple[str, str], ...] = ()
    #: human-readable conflict reason when bottom
    reason: str = ""

    @classmethod
    def concrete(cls, fields) -> "SchemaValue":
        """A known schema from ordered ``(name, type)`` pairs."""
        return cls(kind=CONCRETE, fields=tuple(tuple(f) for f in fields))

    @classmethod
    def conflict(cls, reason: str) -> "SchemaValue":
        """The ⊥ value, remembering why propagation failed."""
        return cls(kind=BOTTOM, reason=reason)

    @property
    def is_known(self) -> bool:
        """True for a concrete (neither ⊤ nor ⊥) schema."""
        return self.kind == CONCRETE

    def names(self) -> tuple[str, ...]:
        """Field names, in order (empty unless concrete)."""
        return tuple(name for name, _ in self.fields)

    def field_type(self, name: str) -> Optional[str]:
        """Type of field ``name``, when concrete and present."""
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        return None


class SchemaAnalysis(DataflowAnalysis[SchemaValue]):
    """Forward schema propagation with ⊤/⊥ and conflict detection."""

    direction = "forward"

    def __init__(self, input_fields=None) -> None:
        #: the workflow-input schema as (name, type) pairs, when known
        self.input_fields = tuple(input_fields) if input_fields else None

    def top(self) -> SchemaValue:
        """⊤: schema not yet known."""
        return SchemaValue()

    def boundary(self, ir: PlanIR) -> SchemaValue:
        """The workflow-input schema (⊤ when no input config is bound)."""
        if self.input_fields is None:
            return SchemaValue()
        return SchemaValue.concrete(self.input_fields)

    def join(self, a: SchemaValue, b: SchemaValue) -> SchemaValue:
        """Agreeing schemas merge; disagreeing ones become a conflict."""
        if a.kind == TOP:
            return b
        if b.kind == TOP:
            return a
        if a.kind == BOTTOM:
            return a
        if b.kind == BOTTOM:
            return b
        if a.fields == b.fields:
            return a
        return SchemaValue.conflict(
            f"incoming schemas disagree: {list(a.names())} vs {list(b.names())}"
        )

    def transfer(self, node: IRNode, value: SchemaValue) -> SchemaValue:
        """Group add-ons append typed attributes; other stages pass through."""
        if not value.is_known:
            return value
        if node.kind != "group":
            # sort/split/distribute rearrange records without changing fields
            return value
        from repro.analysis.rules.schema_flow import _addon_attr_type
        from repro.ops.base import registered_names

        fields = list(value.fields)
        names = {name for name, _ in fields}
        known = registered_names()["addon"]
        for addon in node.op.addons:
            if addon.operator.strip().lower() not in known:
                continue  # PAP005 territory; don't guess the attribute type
            attr = addon.attr or addon.operator
            if attr in names:
                return SchemaValue.conflict(
                    f"add-on attribute {attr!r} collides with an existing field"
                )
            fields.append((attr, _addon_attr_type(addon.operator)))
            names.add(attr)
        return SchemaValue.concrete(fields)


# ---------------------------------------------------------------------------
# column liveness (backward)
# ---------------------------------------------------------------------------


def node_column_uses(node: IRNode) -> set[str]:
    """Columns the operator itself reads: keys and add-on value fields.

    Key parameters frequently hold references (``$group.$indegree``); the
    IR's resolved parameter values make them plain names here.
    """
    uses: set[str] = set()
    if node.kind in ("sort", "group", "split"):
        key = node.param_value("key", "keyId")
        if key and "$" not in key:
            uses.add(key.strip())
    if node.kind == "group":
        for addon in node.op.addons:
            if addon.value and "$" not in addon.value:
                uses.add(addon.value.strip())
    return uses


def node_column_defs(node: IRNode) -> set[str]:
    """Columns the operator introduces (group add-on attributes)."""
    if node.kind != "group":
        return set()
    return {
        (addon.attr or addon.operator)
        for addon in node.op.addons
        if (addon.attr or addon.operator)
    }


class LivenessAnalysis(DataflowAnalysis[frozenset]):
    """Backward column liveness: which fields any downstream stage reads.

    The final partitions materialize whole records, so liveness here is
    *computational* liveness — the set a late-materialization optimizer
    must keep moving through intermediate exchanges; everything else can
    ride a row-id until the final assembly (the PAP083 advisory).
    """

    direction = "backward"

    def top(self) -> frozenset:
        """⊥ of the may-union lattice: nothing known live yet."""
        return frozenset()

    def boundary(self, ir: PlanIR) -> frozenset:
        """Nothing is computationally live after the final stage."""
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        """May-liveness: live on any outgoing path means live."""
        return a | b

    def transfer(self, node: IRNode, value: frozenset) -> frozenset:
        """live-in = uses(node) ∪ (live-out − defs(node))."""
        # live-in = uses(node) ∪ (live-out − defs(node))
        return frozenset(node_column_uses(node) | (value - node_column_defs(node)))


# ---------------------------------------------------------------------------
# cardinality estimation (forward)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CardValue:
    """Estimated data volume flowing along an edge.

    ``rows`` counts underlying records (NaN-free ``None`` = unknown);
    ``entries`` counts shuffle entries — records when flat, groups once a
    group operator packed them.  ``row_bytes`` is the in-memory structured
    width of one record, which is what every exchange actually moves.
    """

    rows: Optional[float] = None
    entries: Optional[float] = None
    row_bytes: Optional[float] = None
    packed: bool = False

    @property
    def est_bytes(self) -> Optional[float]:
        """Payload bytes a full shuffle of this value would move."""
        if self.rows is None or self.row_bytes is None:
            return None
        return self.rows * self.row_bytes


def _merge_opt(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return a + b


class CardinalityAnalysis(DataflowAnalysis[Optional[CardValue]]):
    """Forward row/entry estimation feeding the exchange cost model.

    ``input_rows`` comes from sampling the real input file (see
    :func:`repro.analysis.cost.estimate_input_rows`), from the user's
    ``--assume-records``, or stays ``None`` (volumes become unknown but
    the structural analysis still runs).  ``group_ratio`` is the sampled
    distinct-key fraction used for a group's output entry count.
    """

    direction = "forward"

    def __init__(
        self,
        input_rows: Optional[float] = None,
        input_row_bytes: Optional[float] = None,
        group_ratio: Optional[float] = None,
        addon_bytes: Optional[dict[str, float]] = None,
    ) -> None:
        self.input_rows = input_rows
        self.input_row_bytes = input_row_bytes
        self.group_ratio = group_ratio
        #: extra per-record width appended by each group node's add-ons
        self.addon_bytes = dict(addon_bytes or {})

    def top(self) -> Optional[CardValue]:
        """No estimate yet."""
        return None

    def boundary(self, ir: PlanIR) -> Optional[CardValue]:
        """The measured/assumed volume of the workflow input."""
        return CardValue(
            rows=self.input_rows,
            entries=self.input_rows,
            row_bytes=self.input_row_bytes,
        )

    def join(self, a: Optional[CardValue], b: Optional[CardValue]) -> Optional[CardValue]:
        """Streams meeting at a node add their volumes."""
        if a is None:
            return b
        if b is None:
            return a
        # two streams meeting (the hybrid-cut distribute): volumes add
        return CardValue(
            rows=_merge_opt(a.rows, b.rows),
            entries=_merge_opt(a.entries, b.entries),
            row_bytes=a.row_bytes if a.row_bytes is not None else b.row_bytes,
            packed=a.packed or b.packed,
        )

    def transfer(self, node: IRNode, value: Optional[CardValue]) -> Optional[CardValue]:
        """Group rescales entries and widens rows; other stages conserve."""
        if value is None:
            return None
        if node.kind == "group":
            entries = value.entries
            if value.rows is not None and self.group_ratio is not None:
                entries = max(1.0, value.rows * self.group_ratio)
            row_bytes = value.row_bytes
            extra = self.addon_bytes.get(node.op_id)
            if row_bytes is not None and extra:
                row_bytes = row_bytes + extra
            out_param = node.op.param("outputPath")
            packs = bool(out_param is not None and out_param.format == "pack")
            return CardValue(
                rows=value.rows,
                entries=entries,
                row_bytes=row_bytes,
                packed=value.packed or packs,
            )
        if node.kind == "split":
            # rows fan out across the split's outputs but their union is
            # conserved; per-node accounting keeps the total (the adjacent
            # distribute drains every output)
            return value
        # sort/distribute and basic operators conserve rows and width
        return value


def isfinite(x: Any) -> bool:
    """True for a real, finite number (guards rendered estimates)."""
    return isinstance(x, (int, float)) and math.isfinite(x)


def scaled(value: CardValue, fraction: float) -> CardValue:
    """A proportionally scaled copy of ``value`` (split-output estimates)."""
    return replace(
        value,
        rows=None if value.rows is None else value.rows * fraction,
        entries=None if value.entries is None else value.entries * fraction,
    )
