"""Static exchange-volume estimation over the plan-IR.

The SPMD runtimes charge every sort/group exchange the *full* payload of
the stream being redistributed (a sample + range shuffle moves each record
to its owner, rank-local records included) and every distribute exchange
the full stream again (the global position permutation).  That makes the
static model simple and honest: per exchange, ``bytes ≈ rows × in-memory
record width``, with rows coming from the real input file when it exists
(via the exact counts of :class:`~repro.ooc.chunked.ChunkedDataset`), from
``--assume-records``, or staying unknown.

This is the cost half of ROADMAP item 2: the numbers ``papar explain``
prints, the threshold PAP084 fires on, and the savings PAP083 reports all
come from here — and they are checked against the ``comm`` bytes a
``--stats`` run actually measures (the 20%-accuracy contract in the
tests).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.analysis.dataflow import (
    CardinalityAnalysis,
    CardValue,
    LivenessAnalysis,
    SchemaAnalysis,
    SchemaValue,
    node_column_uses,
    run_dataflow,
)
from repro.analysis.ir import PlanIR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.model import LintContext
    from repro.formats.records import RecordSchema

#: sample size of the distinct-key probe behind group output estimates
SAMPLE_ROWS = 4096

#: budget of the row-counting reader; counting needs offsets, not memory
_COUNT_BUDGET = 1 << 20


def field_width(type_name: str) -> int:
    """In-memory bytes of one field of config type ``type_name``.

    Text-format string fields have no fixed width; 8 bytes is the pointer-
    sized stand-in the estimates use (and flag as approximate).
    """
    from repro.formats.records import _BINARY_TYPES

    dtype = _BINARY_TYPES.get(type_name)
    return int(dtype.itemsize) if dtype is not None else 8


def schema_row_bytes(value: SchemaValue) -> Optional[int]:
    """In-memory structured width of one record of an inferred schema."""
    if not value.is_known:
        return None
    return sum(field_width(ftype) for _, ftype in value.fields)


def estimate_input_rows(path: str, schema: "RecordSchema") -> Optional[int]:
    """Exact record count of an existing input file, else ``None``.

    Binary files are offset arithmetic; text files cost one streaming pass
    (the same pass :class:`ChunkedDataset` needs anyway for random access).
    """
    if not path or not os.path.isfile(path):
        return None
    try:
        from repro.ooc.budget import MemoryBudget
        from repro.ooc.chunked import ChunkedDataset

        ds = ChunkedDataset(path, schema, MemoryBudget(_COUNT_BUDGET))
        return int(ds.num_records)
    except Exception:
        return None


def sample_group_ratio(
    path: str, schema: "RecordSchema", key: Optional[str]
) -> Optional[float]:
    """Distinct-key fraction from a head sample of the real input.

    Drives the group operator's output entry estimate; ``None`` when the
    file or the key is unavailable (the estimate then conservatively keeps
    the input entry count).
    """
    if not key or not path or not os.path.isfile(path):
        return None
    if not schema.has_field(key):
        return None
    try:
        from repro.ooc.budget import MemoryBudget
        from repro.ooc.chunked import ChunkedDataset

        ds = ChunkedDataset(path, schema, MemoryBudget(_COUNT_BUDGET))
        n = min(SAMPLE_ROWS, ds.num_records)
        if n == 0:
            return None
        rows = ds.read_rows(0, n)
        import numpy as np

        return float(len(np.unique(rows[key])) / n)
    except Exception:
        return None


@dataclass
class ExchangeEstimate:
    """The modeled cost of one exchange stage."""

    #: operator performing the exchange
    op_id: str
    #: "range" (sort/group sample shuffle) or "position" (distribute)
    kind: str
    #: estimated records entering the exchange (None = unknown)
    rows: Optional[float]
    #: estimated payload bytes the shuffle moves (None = unknown)
    est_bytes: Optional[float]
    #: in-memory record width the byte estimate used
    row_bytes: Optional[float]
    #: True when rows came from a real file count rather than an assumption
    measured: bool = False


@dataclass
class PlanCost:
    """All per-exchange estimates plus the liveness-based pruning numbers."""

    exchanges: list[ExchangeEstimate] = field(default_factory=list)
    #: schema fields no operator's key or add-on ever reads
    unused_columns: list[str] = field(default_factory=list)
    #: bytes the exchanges would stop moving if unused columns were pruned
    prunable_bytes: Optional[float] = None

    @property
    def total_bytes(self) -> Optional[float]:
        """Summed payload across exchanges (None while any is unknown)."""
        if not self.exchanges or any(e.est_bytes is None for e in self.exchanges):
            return None
        return sum(e.est_bytes for e in self.exchanges)  # type: ignore[misc]

    def exchange(self, op_id: str) -> Optional[ExchangeEstimate]:
        """The estimate of operator ``op_id``'s exchange, if it has one."""
        for e in self.exchanges:
            if e.op_id == op_id:
                return e
        return None


@dataclass
class AnalyzedPlan:
    """One bundle of the IR plus every fixed-point result over it.

    This is what the PAP08x rules and ``papar explain`` consume: build it
    once per lint pass (see :meth:`LintContext.analyzed`), read it many
    times.
    """

    ir: PlanIR
    #: per-node inferred schema (SchemaAnalysis output values)
    schema_of: dict[str, SchemaValue]
    #: per-node live columns on the *input* side (LivenessAnalysis)
    live_of: dict[str, frozenset]
    #: per-node input cardinality (CardinalityAnalysis input values)
    card_of: dict[str, Optional[CardValue]]
    cost: PlanCost


def _input_file(ctx: "LintContext") -> tuple[Optional[str], Optional["RecordSchema"]]:
    """The workflow's resolved input path and its record schema, if known."""
    schema, arg = ctx.input_schema()
    if ctx.model is None or arg is None:
        return None, schema
    value = ctx.args.get(arg.name, arg.value)
    ir = ctx.ir()
    if ir is not None and value:
        value = ir.env.resolve(value)[0]
    return value, schema


def analyze_plan(ctx: "LintContext") -> Optional[AnalyzedPlan]:
    """Run all three dataflow analyses and the cost model over the IR."""
    ir = ctx.ir()
    if ir is None:
        return None
    input_path, schema = _input_file(ctx)
    input_fields = (
        tuple((f.name, f.type) for f in schema.fields) if schema is not None else None
    )

    schema_res = run_dataflow(ir, SchemaAnalysis(input_fields))
    live_res = run_dataflow(ir, LivenessAnalysis())

    rows: Optional[float] = None
    measured = False
    if input_path is not None and schema is not None:
        counted = estimate_input_rows(input_path, schema)
        if counted is not None:
            rows = float(counted)
            measured = True
    if rows is None and ctx.assume_records is not None:
        rows = float(ctx.assume_records)

    row_bytes = float(schema.itemsize) if schema is not None else None
    group_ratio = None
    addon_bytes: dict[str, float] = {}
    for node in ir.nodes:
        if node.kind != "group":
            continue
        extra = 0.0
        for addon in node.op.addons:
            from repro.analysis.rules.schema_flow import _addon_attr_type

            extra += field_width(_addon_attr_type(addon.operator))
        if extra:
            addon_bytes[node.op_id] = extra
        if group_ratio is None and input_path is not None and schema is not None:
            group_ratio = sample_group_ratio(
                input_path, schema, node.param_value("key", "keyId")
            )
    card_res = run_dataflow(
        ir,
        CardinalityAnalysis(
            input_rows=rows,
            input_row_bytes=row_bytes,
            group_ratio=group_ratio,
            addon_bytes=addon_bytes,
        ),
    )

    cost = PlanCost()
    for node in ir.exchange_nodes():
        card = card_res.input_of.get(node.op_id)
        inferred = schema_res.input_of.get(node.op_id, SchemaValue())
        width = schema_row_bytes(inferred)
        if width is None and card is not None:
            width = card.row_bytes
        n_rows = card.rows if card is not None else None
        est = None
        if n_rows is not None and width is not None:
            est = n_rows * width
        cost.exchanges.append(
            ExchangeEstimate(
                op_id=node.op_id,
                kind=node.exchange or "",
                rows=n_rows,
                est_bytes=est,
                row_bytes=width,
                measured=measured,
            )
        )

    # liveness-based pruning: input-schema fields nothing ever reads
    if schema is not None:
        used: set[str] = set()
        for node in ir.nodes:
            used |= node_column_uses(node)
        unused = [f.name for f in schema.fields if f.name not in used]
        if unused and len(unused) < len(schema.fields):
            cost.unused_columns = unused
            saved_per_row = sum(field_width(f.type) for f in schema.fields if f.name in unused)
            if rows is not None:
                # only exchanges before the final materialization can shed
                # the columns; the last stage must write whole records
                final = ir.final
                n_early = sum(
                    1
                    for e in cost.exchanges
                    if final is None or e.op_id != final.op_id
                )
                if n_early:
                    cost.prunable_bytes = rows * saved_per_row * n_early

    return AnalyzedPlan(
        ir=ir,
        schema_of=schema_res.output_of,
        # backward analysis: output_of holds live-IN (needed at this stage)
        live_of=live_res.output_of,
        card_of=card_res.input_of,
        cost=cost,
    )
