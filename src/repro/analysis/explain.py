"""The ``papar explain`` report: the analyzed plan-IR, rendered.

One :func:`explain_files` call runs the same engine pass ``papar lint``
runs, then renders what the fixed-point analyses concluded instead of
only what the rules flagged: per operator the inferred record schema,
the live (actually-read) columns, the dataflow edges, and — for every
exchange — the estimated rows and payload bytes the shuffle moves, plus
the PAP08x advisories that fall out of the same numbers.

Output is text (terminal report) or versioned JSON (schema
``papar.explain`` v1, pinned by a contract test) so other tooling can
consume the cost model without scraping the terminal rendering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.analysis.diagnostics import LintResult
from repro.analysis.engine import Linter
from repro.formats.records import RecordSchema

#: JSON contract version of the explain report
EXPLAIN_SCHEMA_VERSION = 1

#: advisory codes the explain report surfaces alongside the analyses
_ADVISORY_PREFIX = "PAP08"


def _fmt_count(value: Optional[float]) -> str:
    if value is None:
        return "?"
    return f"{value:,.0f}"


def _fmt_bytes(value: Optional[float]) -> str:
    if value is None:
        return "?"
    for unit, scale in (("GB", 1 << 30), ("MB", 1 << 20), ("KB", 1 << 10)):
        if value >= scale:
            return f"{value / scale:.1f}{unit}"
    return f"{value:.0f}B"


@dataclass
class ExplainReport:
    """The rendered-model side of one analysis pass."""

    workflow: str
    file: Optional[str]
    #: per-operator dicts (id, kind, schema, live columns, exchange, ...)
    operators: list[dict] = field(default_factory=list)
    #: recovered dataflow edges as dicts (src, src_output, dst, path)
    edges: list[dict] = field(default_factory=list)
    #: per-exchange cost estimates as dicts (op, kind, rows, est_bytes, ...)
    exchanges: list[dict] = field(default_factory=list)
    #: unused input columns + the bytes pruning them would save
    pruning: dict = field(default_factory=dict)
    #: the lint result of the same pass (advisories live here)
    lint: LintResult = field(default_factory=LintResult)

    @property
    def advisories(self) -> list:
        """The PAP08x findings of the pass, in report order."""
        return [d for d in self.lint if d.code.startswith(_ADVISORY_PREFIX)]

    def to_dict(self) -> dict:
        """The versioned JSON form (schema ``papar.explain`` v1)."""
        return {
            "version": EXPLAIN_SCHEMA_VERSION,
            "tool": "papar-explain",
            "workflow": self.workflow,
            "file": self.file,
            "operators": self.operators,
            "edges": self.edges,
            "exchanges": self.exchanges,
            "pruning": self.pruning,
            "advisories": [d.to_dict() for d in self.advisories],
            "summary": {
                "errors": len(self.lint.errors),
                "warnings": len(self.lint.warnings),
                "info": len(self.lint.infos),
            },
        }

    def render_json(self) -> str:
        """:meth:`to_dict` as indented JSON text."""
        return json.dumps(self.to_dict(), indent=2)

    def render_text(self) -> str:
        """The terminal report."""
        lines = [f"workflow {self.workflow!r}" + (f" ({self.file})" if self.file else "")]
        for op in self.operators:
            head = f"  [{op['index']}] {op['id']} ({op['kind']})"
            if op.get("exchange"):
                head += f"  exchange={op['exchange']}"
            lines.append(head)
            schema = op.get("schema")
            if schema is None:
                lines.append("      schema: ?")
            elif isinstance(schema, str):
                lines.append(f"      schema: conflict - {schema}")
            else:
                rendered = ", ".join(f"{n}:{t}" for n, t in schema)
                lines.append(f"      schema: {rendered}")
            live = op.get("live")
            if live is not None:
                lines.append(
                    "      live columns: "
                    + (", ".join(live) if live else "(none)")
                )
            rows = op.get("est_rows")
            lines.append(f"      est rows in: {_fmt_count(rows)}")
        if self.edges:
            lines.append("  edges:")
            for e in self.edges:
                src = e["src"] if e["src"] is not None else "<input>"
                lines.append(f"      {src}[{e['src_output']}] -> {e['dst']}  ({e['path']})")
        if self.exchanges:
            lines.append("  exchanges:")
            for ex in self.exchanges:
                lines.append(
                    f"      {ex['op']} ({ex['kind']}): "
                    f"rows={_fmt_count(ex['rows'])} "
                    f"bytes={_fmt_bytes(ex['est_bytes'])}"
                    + ("" if ex["measured"] else " (assumed)" if ex["rows"] is not None else "")
                )
        if self.pruning.get("unused_columns"):
            cols = ", ".join(self.pruning["unused_columns"])
            lines.append(
                f"  prunable columns: {cols} "
                f"(est saving {_fmt_bytes(self.pruning.get('est_bytes_saved'))})"
            )
        advisories = self.advisories
        if advisories:
            lines.append("  advisories:")
            for d in advisories:
                lines.append(f"      {d.render()}")
        lines.append("  " + self.lint.summary())
        return "\n".join(lines)


def _schema_json(value) -> Any:
    """SchemaValue -> JSON: field pairs, a conflict string, or None."""
    from repro.analysis.dataflow import BOTTOM, CONCRETE

    if value is None:
        return None
    if value.kind == CONCRETE:
        return [list(pair) for pair in value.fields]
    if value.kind == BOTTOM:
        return value.reason or "conflict"
    return None


def build_report(ctx, result: LintResult) -> ExplainReport:
    """Assemble an :class:`ExplainReport` from an analyzed context."""
    report = ExplainReport(
        workflow=ctx.model.id if ctx.model is not None else "<unparsed>",
        file=ctx.filename,
        lint=result,
    )
    analyzed = ctx.analyzed()
    if analyzed is None:
        return report
    ir, cost = analyzed.ir, analyzed.cost
    for node in ir.nodes:
        schema_value = analyzed.schema_of.get(node.op_id)
        live = analyzed.live_of.get(node.op_id)
        card = analyzed.card_of.get(node.op_id)
        report.operators.append(
            {
                "index": node.index,
                "id": node.op_id,
                "kind": node.kind,
                "line": node.line,
                "exchange": node.exchange,
                "schema": _schema_json(schema_value),
                "live": sorted(live) if live is not None else None,
                "est_rows": card.rows if card is not None else None,
                "input": node.input,
                "outputs": list(node.outputs),
            }
        )
    report.edges = [
        {"src": e.src, "src_output": e.src_output, "dst": e.dst, "path": e.path}
        for e in ir.edges
    ]
    report.exchanges = [
        {
            "op": est.op_id,
            "kind": est.kind,
            "rows": est.rows,
            "row_bytes": est.row_bytes,
            "est_bytes": est.est_bytes,
            "measured": est.measured,
        }
        for est in cost.exchanges
    ]
    report.pruning = {
        "unused_columns": list(cost.unused_columns),
        "est_bytes_saved": cost.prunable_bytes,
    }
    return report


def explain_workflow(
    workflow_xml: str,
    filename: Optional[str] = None,
    inputs: Iterable[tuple[str, Optional[str]]] = (),
    args: Optional[dict[str, Any]] = None,
    schemas: Optional[dict[str, RecordSchema]] = None,
    ranks: Optional[int] = None,
    assume_records: Optional[int] = None,
) -> ExplainReport:
    """Analyze one workflow (XML text) and build its explain report."""
    linter = Linter(schemas=schemas, ranks=ranks, assume_records=assume_records)
    ctx, result = linter.analyze(
        workflow_xml, filename=filename, inputs=inputs, args=args
    )
    if ctx is None:
        return ExplainReport(workflow="<unparsed>", file=filename, lint=result)
    return build_report(ctx, result)


def explain_files(
    workflow_path: str,
    input_paths: Iterable[str] = (),
    args: Optional[dict[str, Any]] = None,
    schemas: Optional[dict[str, RecordSchema]] = None,
    ranks: Optional[int] = None,
    assume_records: Optional[int] = None,
) -> ExplainReport:
    """:func:`explain_workflow` over configuration files on disk."""
    with open(workflow_path, "r", encoding="utf-8") as fh:
        workflow_xml = fh.read()
    inputs = []
    for path in input_paths:
        with open(path, "r", encoding="utf-8") as fh:
            inputs.append((fh.read(), path))
    return explain_workflow(
        workflow_xml,
        filename=str(workflow_path),
        inputs=inputs,
        args=args,
        schemas=schemas,
        ranks=ranks,
        assume_records=assume_records,
    )
