"""Location-tracking XML parsing shared by the configuration parsers.

``xml.etree.ElementTree`` discards source positions, which is fine for a
runtime but useless for a linter: a diagnostic that cannot say *where* the
problem is forces the user to grep.  :class:`LocatingXMLParser` re-parses
with the underlying expat parser and records, for every element, the
1-based line and column where its start tag opens.

The C accelerator of :class:`xml.etree.ElementTree.XMLParser` does not let
subclasses observe the expat state (overriding ``_start`` is silently
ignored), so this wrapper drives :mod:`xml.parsers.expat` directly and
feeds a stock :class:`~xml.etree.ElementTree.TreeBuilder` — the resulting
tree is an ordinary ElementTree, plus a side table of source positions.

Both configuration parsers (:mod:`repro.config.schema` and
:mod:`repro.config.workflow`) parse through this module so their errors can
carry ``file:line`` locations, and the static analyzer
(:mod:`repro.analysis`) uses the same positions for its diagnostics.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
import xml.parsers.expat
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SourcePosition:
    """1-based line/column of an element's start tag."""

    line: int
    column: int


class XMLLocationError(ValueError):
    """Malformed XML, with the position where parsing failed."""

    def __init__(self, message: str, line: Optional[int], column: Optional[int]) -> None:
        super().__init__(message)
        self.line = line
        self.column = column


class LocatedTree:
    """A parsed element tree plus per-element source positions."""

    def __init__(self, root: ET.Element, positions: dict[int, SourcePosition]) -> None:
        self.root = root
        self._positions = positions

    def position(self, elem: ET.Element) -> Optional[SourcePosition]:
        """The recorded start-tag position of ``elem``, if any."""
        return self._positions.get(id(elem))

    def line(self, elem: Optional[ET.Element]) -> Optional[int]:
        """1-based line of ``elem``'s start tag (None when unknown)."""
        if elem is None:
            return None
        pos = self.position(elem)
        return pos.line if pos is not None else None

    def column(self, elem: Optional[ET.Element]) -> Optional[int]:
        """1-based column of ``elem``'s start tag (None when unknown)."""
        if elem is None:
            return None
        pos = self.position(elem)
        return pos.column if pos is not None else None


class LocatingXMLParser:
    """An ``ET.XMLParser`` replacement that remembers source positions.

    Usage::

        tree = LocatingXMLParser().parse(xml_text)
        tree.root            # ordinary ET.Element
        tree.line(element)   # 1-based line of the start tag
    """

    def parse(self, source: str) -> LocatedTree:
        """Parse ``source`` XML, recording each element's start position."""
        builder = ET.TreeBuilder()
        positions: dict[int, SourcePosition] = {}
        parser = xml.parsers.expat.ParserCreate()
        parser.buffer_text = True

        def handle_start(tag: str, attrs: dict[str, str]) -> None:
            elem = builder.start(tag, attrs)
            positions[id(elem)] = SourcePosition(
                line=parser.CurrentLineNumber,
                # expat columns are 0-based; report 1-based like compilers do
                column=parser.CurrentColumnNumber + 1,
            )

        parser.StartElementHandler = handle_start
        parser.EndElementHandler = lambda tag: builder.end(tag)
        parser.CharacterDataHandler = lambda data: builder.data(data)

        try:
            parser.Parse(source, True)
            root = builder.close()
        except xml.parsers.expat.ExpatError as exc:
            raise XMLLocationError(
                str(exc), getattr(exc, "lineno", None), getattr(exc, "offset", None)
            ) from exc
        except ET.ParseError as exc:  # TreeBuilder.close() on empty input
            raise XMLLocationError(str(exc), None, None) from exc
        return LocatedTree(root, positions)


def parse_located(source: str) -> LocatedTree:
    """Parse ``source`` and return the tree with source positions."""
    return LocatingXMLParser().parse(source)


def format_location(filename: Optional[str], line: Optional[int]) -> str:
    """Render ``file:line`` for error messages (empty when unknown)."""
    name = filename or "<config>"
    if line is None:
        return name
    return f"{name}:{line}"
