"""The lint engine: configurations in, a complete `LintResult` out.

One pass does, in order:

1. parse the input-data configurations (failures become ``PAP050``);
2. parse the workflow XML with source locations (failures: ``PAP001``);
3. build the lenient model, collecting structural diagnostics;
4. strict-parse and *plan* the workflow with synthesized arguments, so
   plan-level rules can inspect resolved operators (planner rejections
   surface as ``PAP040`` only when no static rule already explains them);
5. run every registered checker — the engine never stops at the first
   finding.

Nothing here executes a workflow: planning instantiates operator objects
and resolves ``$references`` but moves no data.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Optional

from repro.analysis.diagnostics import Diagnostic, LintResult, Severity
from repro.analysis.locate import XMLLocationError, parse_located
from repro.analysis.model import LintContext, build_workflow_model
from repro.analysis.rules import CATALOG, CHECKERS
from repro.config.schema import parse_input_config
from repro.config.workflow import WorkflowSpec, parse_workflow_config
from repro.errors import PaParError
from repro.formats.records import RecordSchema

#: pulls the trailing ``[file:line]`` marker the config parsers emit
_LOCATION_RE = re.compile(r"\[(?P<file>[^\[\]]*?):(?P<line>\d+)\]\s*$")


def _location_from_message(message: str) -> Optional[int]:
    m = _LOCATION_RE.search(message)
    return int(m.group("line")) if m else None


def synthesize_arguments(
    spec: WorkflowSpec, user_args: Optional[dict[str, Any]] = None
) -> dict[str, Any]:
    """Plausible placeholder values for arguments without defaults, so the
    analyzer can plan a workflow nobody has bound yet."""
    args: dict[str, Any] = dict(user_args or {})
    for name, ps in spec.arguments.items():
        if name in args or ps.value is not None:
            continue
        t = ps.type.lower()
        if t in ("integer", "int", "long"):
            args[name] = "4"
        elif t in ("float", "double"):
            args[name] = "1.0"
        elif t in ("boolean", "bool"):
            args[name] = "true"
        elif t == "stringlist":
            args[name] = f"/lint/{name}/a,/lint/{name}/b"
        else:
            args[name] = f"/lint/{name}"
    return args


class Linter:
    """Configurable façade over one analysis pass."""

    def __init__(
        self,
        schemas: Optional[dict[str, RecordSchema]] = None,
        ranks: Optional[int] = None,
        memory_budget: Optional[str] = None,
        assume_records: Optional[int] = None,
        backend: Optional[str] = None,
        faults: bool = False,
        checkpoint: bool = False,
        serve: bool = False,
    ) -> None:
        #: schemas registered out-of-band (e.g. on a PaPar instance)
        self.schemas: dict[str, RecordSchema] = dict(schemas or {})
        self.ranks = ranks
        #: declared memory budget / assumed record count (PAP06x rules)
        self.memory_budget = memory_budget
        self.assume_records = assume_records
        #: intended execution backend / fault-injection / checkpoint flags
        #: (PAP07x rules)
        self.backend = backend
        self.faults = faults
        self.checkpoint = checkpoint
        #: True when the workflow will run under the streaming daemon
        #: (PAP090 rules)
        self.serve = serve

    # -- public API ----------------------------------------------------------

    def lint(
        self,
        workflow_xml: str,
        filename: Optional[str] = None,
        inputs: Iterable[tuple[str, Optional[str]]] = (),
        args: Optional[dict[str, Any]] = None,
        do_plan: bool = True,
    ) -> LintResult:
        """Analyze one workflow (XML text) plus optional input configs.

        ``inputs`` is an iterable of ``(xml_text, filename)`` pairs.
        """
        _ctx, result = self.analyze(
            workflow_xml, filename=filename, inputs=inputs, args=args, do_plan=do_plan
        )
        return result

    def analyze(
        self,
        workflow_xml: str,
        filename: Optional[str] = None,
        inputs: Iterable[tuple[str, Optional[str]]] = (),
        args: Optional[dict[str, Any]] = None,
        do_plan: bool = True,
    ) -> tuple[Optional[LintContext], LintResult]:
        """One full pass returning both the populated context and the result.

        ``papar explain`` consumes the context (IR, fixed-point analyses,
        cost model via :meth:`LintContext.analyzed`) alongside the same
        diagnostics ``lint`` reports; the context is ``None`` only when the
        workflow XML itself failed to parse.
        """
        result = LintResult()
        if filename:
            result.files.append(filename)

        schemas = dict(self.schemas)
        input_files: dict[str, str] = {}
        for xml_text, in_name in inputs:
            if in_name:
                result.files.append(in_name)
            try:
                schema = parse_input_config(xml_text, filename=in_name)
            except PaParError as exc:
                message = str(exc)
                result.diagnostics.append(
                    Diagnostic(
                        code="PAP050",
                        severity=Severity.ERROR,
                        message=message,
                        file=in_name,
                        line=_location_from_message(message),
                        rule=CATALOG["PAP050"].name,
                    )
                )
                continue
            schemas[schema.id] = schema
            if in_name:
                input_files[schema.id] = in_name

        # -- workflow parse + model -------------------------------------
        try:
            tree = parse_located(workflow_xml)
        except XMLLocationError as exc:
            result.diagnostics.append(
                Diagnostic(
                    code="PAP001",
                    severity=Severity.ERROR,
                    message=f"malformed workflow configuration XML: {exc}",
                    file=filename,
                    line=exc.line,
                    column=exc.column,
                    rule=CATALOG["PAP001"].name,
                )
            )
            result.sort()
            return None, result

        model, structural = build_workflow_model(tree, filename)
        result.extend(structural)

        ctx = LintContext(
            filename=filename,
            model=model,
            schemas=schemas,
            input_files=input_files,
            args={k: str(v) for k, v in (args or {}).items()},
            ranks=self.ranks,
            memory_budget=self.memory_budget,
            assume_records=self.assume_records,
            backend=self.backend,
            faults=self.faults,
            checkpoint=self.checkpoint,
            serve=self.serve,
        )

        # -- PAP051: supplied input configs nothing references ----------
        if model is not None:
            referenced_formats = {
                a.format for a in model.arguments if a.format is not None
            }
            for schema_id, in_name in input_files.items():
                if schema_id not in referenced_formats:
                    result.diagnostics.append(
                        ctx.diag(
                            "PAP051",
                            f"input configuration {schema_id!r} is supplied "
                            "but no workflow argument references it",
                            file=in_name,
                            suggestion="add format="
                            f'"{schema_id}" to the input path argument',
                        )
                    )

        # -- strict parse + plan ---------------------------------------
        if do_plan and model is not None:
            self._try_plan(ctx, workflow_xml, filename)

        # -- run every checker ------------------------------------------
        for checker_func in CHECKERS:
            try:
                result.extend(checker_func(ctx))
            except Exception as exc:  # pragma: no cover - defensive
                result.diagnostics.append(
                    Diagnostic(
                        code="PAP099",
                        severity=Severity.ERROR,
                        message=(
                            f"internal: rule {checker_func.__name__!r} "
                            f"crashed: {exc!r}"
                        ),
                        file=filename,
                        rule=CATALOG["PAP099"].name,
                    )
                )

        # a planner rejection is only news when no static rule explains it
        static_errors = [
            d for d in result.diagnostics
            if d.severity is Severity.ERROR and d.code != "PAP040"
        ]
        if static_errors:
            result.diagnostics = [
                d for d in result.diagnostics if d.code != "PAP040"
            ]
        result.sort()
        return ctx, result

    def lint_paths(
        self,
        workflow_path: str,
        input_paths: Iterable[str] = (),
        args: Optional[dict[str, Any]] = None,
        do_plan: bool = True,
    ) -> LintResult:
        """Analyze configuration *files*."""
        with open(workflow_path, "r", encoding="utf-8") as fh:
            workflow_xml = fh.read()
        inputs = []
        for path in input_paths:
            with open(path, "r", encoding="utf-8") as fh:
                inputs.append((fh.read(), path))
        return self.lint(
            workflow_xml,
            filename=str(workflow_path),
            inputs=inputs,
            args=args,
            do_plan=do_plan,
        )

    # -- internals ----------------------------------------------------------

    def _try_plan(
        self, ctx: LintContext, workflow_xml: str, filename: Optional[str]
    ) -> None:
        from repro.core.planner import Planner

        try:
            spec = parse_workflow_config(workflow_xml, filename=filename)
        except PaParError as exc:
            ctx.plan_error = str(exc)
            return
        ctx.spec = spec
        try:
            plan_args = synthesize_arguments(spec, ctx.args)
            ctx.plan = Planner().plan(spec, plan_args)
        except PaParError as exc:
            ctx.plan_error = str(exc)
        except (TypeError, ValueError) as exc:
            ctx.plan_error = f"{exc.__class__.__name__}: {exc}"


def lint_workflow(
    workflow_xml: str,
    filename: Optional[str] = None,
    inputs: Iterable[tuple[str, Optional[str]]] = (),
    args: Optional[dict[str, Any]] = None,
    schemas: Optional[dict[str, RecordSchema]] = None,
    ranks: Optional[int] = None,
    do_plan: bool = True,
    memory_budget: Optional[str] = None,
    assume_records: Optional[int] = None,
    backend: Optional[str] = None,
    faults: bool = False,
    checkpoint: bool = False,
    serve: bool = False,
) -> LintResult:
    """Convenience one-call form of :class:`Linter`."""
    return Linter(
        schemas=schemas, ranks=ranks,
        memory_budget=memory_budget, assume_records=assume_records,
        backend=backend, faults=faults, checkpoint=checkpoint, serve=serve,
    ).lint(
        workflow_xml, filename=filename, inputs=inputs, args=args, do_plan=do_plan
    )


def lint_files(
    workflow_path: str,
    input_paths: Iterable[str] = (),
    args: Optional[dict[str, Any]] = None,
    schemas: Optional[dict[str, RecordSchema]] = None,
    ranks: Optional[int] = None,
    do_plan: bool = True,
    memory_budget: Optional[str] = None,
    assume_records: Optional[int] = None,
    backend: Optional[str] = None,
    faults: bool = False,
    checkpoint: bool = False,
    serve: bool = False,
) -> LintResult:
    """Convenience one-call form over files on disk."""
    return Linter(
        schemas=schemas, ranks=ranks,
        memory_budget=memory_budget, assume_records=assume_records,
        backend=backend, faults=faults, checkpoint=checkpoint, serve=serve,
    ).lint_paths(
        workflow_path, input_paths, args=args, do_plan=do_plan
    )
