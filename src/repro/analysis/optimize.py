"""The plan optimizer: PAP08x advisories applied as rewrites.

PR 8 built the diagnosis side — the plan-IR, the fixed-point dataflow
analyses, the exchange cost model, and the PAP080–084 advisories that
*describe* wasted work.  This module is the other half of ROADMAP item 2:
a rewrite engine over the same IR that turns each advisory into an
applied transformation, accepting a rewrite only when the re-analyzed
plan is still clean and its estimated exchange payload did not grow.

Passes (see ``docs/optimizer.md`` for the safety arguments):

``PAP080`` dead-operator-elimination
    Delete a non-final operator no edge or ``$ref`` ever consumes.

``PAP081`` redundant-exchange-elimination
    Drop an exchange whose layout the very next exchange discards —
    but only when the surviving exchange provably reproduces the exact
    byte order (stable-sort tie order is the subtle part; several
    advisory-flagged shapes are *refused* here, with reasons).

``PAP082`` permutation-chain-composition
    Collapse a ``distribute -> distribute`` chain when the composed
    permutation is symbolically the identity in the paper's L-product
    algebra (the runtimes deal each upstream partition *per stream*, so
    only the identity cases compose losslessly).  Every symbolic
    conclusion is re-verified by executing both pipelines on probe data.

``PAP083`` column-pruning
    Plan a narrowed execution: live columns plus a synthetic row id ride
    through every exchange, and the pruned columns are re-attached from
    the held input after the run (:mod:`repro.core.pruning`).

Every pass that declines to fire records a :class:`RefusedRewrite` with
the reason, so ``papar optimize`` teaches as much when it does nothing
as when it rewrites.  Output reuses the ``papar explain`` renderer as an
original → optimized diff (text, or versioned JSON: schema
``papar.optimize`` v1).
"""

from __future__ import annotations

import copy
import json
import re
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional

from repro.analysis.cost import field_width
from repro.analysis.engine import Linter
from repro.analysis.explain import ExplainReport, _fmt_bytes, build_report
from repro.analysis.rules.advisory import (
    _PROBE_SIZES,
    _adjacent_exchanges,
    _policy_and_parts,
    _referenced_ops,
    _same_key,
)
from repro.config.serialize import workflow_to_xml
from repro.config.workflow import (
    BOOLEAN_FALSE_LITERALS,
    BOOLEAN_TRUE_LITERALS,
    WorkflowSpec,
    parse_workflow_config,
)
from repro.core.pruning import ROWID_FIELD
from repro.formats.records import RecordSchema

#: JSON contract version of the optimize report
OPTIMIZE_SCHEMA_VERSION = 1

#: advisory code -> the optimizer pass that applies it
PASS_NAMES = {
    "PAP080": "dead-operator-elimination",
    "PAP081": "redundant-exchange-elimination",
    "PAP082": "permutation-chain-composition",
    "PAP083": "column-pruning",
}

#: parameter names the planner accepts as an operator's input binding
_INPUT_PARAM_NAMES = ("inputPath", "input", "inputPathList")


# ---------------------------------------------------------------------------
# result records


@dataclass
class AppliedRewrite:
    """One accepted transformation."""

    code: str
    pass_name: str
    #: the exchange pair (or single operator) the rewrite acted on
    site: str
    #: operator ids deleted from the workflow
    removed: list[str]
    #: operator ids that absorb the removed work
    kept: list[str]
    detail: str
    #: cost-model estimate of the exchange bytes this rewrite saves
    est_bytes_saved: Optional[int] = None

    def to_dict(self) -> dict:
        """JSON form for the versioned optimize report."""
        return {
            "code": self.code,
            "pass": self.pass_name,
            "site": self.site,
            "removed": list(self.removed),
            "kept": list(self.kept),
            "detail": self.detail,
            "est_bytes_saved": self.est_bytes_saved,
        }


@dataclass
class RefusedRewrite:
    """One advisory site the optimizer declined to rewrite, and why."""

    code: str
    pass_name: str
    site: str
    reason: str

    def to_dict(self) -> dict:
        """JSON form for the versioned optimize report."""
        return {
            "code": self.code,
            "pass": self.pass_name,
            "site": self.site,
            "reason": self.reason,
        }


@dataclass
class ColumnPruning:
    """The planned narrowed execution (applied by :mod:`repro.core.pruning`)."""

    #: live input columns, in schema order
    live: list[str]
    #: pruned input columns (never read by any operator)
    pruned: list[str]
    rowid_field: str
    full_row_bytes: int
    narrow_row_bytes: int
    est_bytes_saved: Optional[int] = None

    def to_dict(self) -> dict:
        """JSON form for the versioned optimize report."""
        return {
            "live": list(self.live),
            "pruned": list(self.pruned),
            "rowid_field": self.rowid_field,
            "full_row_bytes": self.full_row_bytes,
            "narrow_row_bytes": self.narrow_row_bytes,
            "est_bytes_saved": self.est_bytes_saved,
        }


@dataclass
class OptimizedPlan:
    """The rewritten workflow plus the audit trail that produced it."""

    original: WorkflowSpec
    workflow: WorkflowSpec
    rewrites: list[AppliedRewrite] = field(default_factory=list)
    refusals: list[RefusedRewrite] = field(default_factory=list)
    pruning: Optional[ColumnPruning] = None
    est_bytes_before: Optional[int] = None
    est_bytes_after: Optional[int] = None
    exchanges_removed: int = 0

    @property
    def changed(self) -> bool:
        """True when at least one pass fired (rewrite or pruning)."""
        return bool(self.rewrites) or self.pruning is not None

    def summary(self) -> dict:
        """The ``optimizer`` section attached to results and ``--stats``."""
        passes: list[str] = []
        for r in self.rewrites:
            if r.pass_name not in passes:
                passes.append(r.pass_name)
        if self.pruning is not None:
            passes.append(PASS_NAMES["PAP083"])
        est_after = self.est_bytes_after
        if est_after is not None and self.pruning is not None:
            saved = self.pruning.est_bytes_saved
            if saved is not None:
                est_after = max(0, est_after - saved)
        est_saved = None
        if self.est_bytes_before is not None and est_after is not None:
            est_saved = self.est_bytes_before - est_after
        return {
            "changed": self.changed,
            "passes_fired": passes,
            "rewrites": [r.to_dict() for r in self.rewrites],
            "refusals": [r.to_dict() for r in self.refusals],
            "operators_removed": sum(len(r.removed) for r in self.rewrites),
            "exchanges_removed": self.exchanges_removed,
            "pruning": self.pruning.to_dict() if self.pruning else None,
            "est_bytes_before": self.est_bytes_before,
            "est_bytes_after": est_after,
            "est_bytes_saved": est_saved,
        }


@dataclass
class OptimizeReport:
    """The original → optimized diff, rendered via the explain reports."""

    before: ExplainReport
    after: ExplainReport
    plan: OptimizedPlan

    def to_dict(self) -> dict:
        """The versioned JSON form (schema ``papar.optimize`` v1)."""
        return {
            "version": OPTIMIZE_SCHEMA_VERSION,
            "tool": "papar-optimize",
            "workflow": self.before.workflow,
            "file": self.before.file,
            "summary": self.plan.summary(),
            "before": self.before.to_dict(),
            "after": self.after.to_dict(),
        }

    def render_json(self) -> str:
        """:meth:`to_dict` as indented JSON text."""
        return json.dumps(self.to_dict(), indent=2)

    def render_text(self) -> str:
        """The terminal diff: summary, rewrites, refusals, both plans."""
        plan = self.plan
        lines = [
            f"optimize workflow {self.before.workflow!r}"
            + (f" ({self.before.file})" if self.before.file else "")
        ]
        summary = plan.summary()
        lines.append(
            f"  {len(plan.rewrites)} rewrite(s) applied, "
            f"{plan.exchanges_removed} exchange(s) removed"
            + (", columns pruned" if plan.pruning else "")
        )
        for r in plan.rewrites:
            saved = (
                f" (est -{_fmt_bytes(r.est_bytes_saved)})"
                if r.est_bytes_saved
                else ""
            )
            lines.append(
                f"    {r.code} {r.pass_name} at {r.site}: "
                f"removed {', '.join(repr(x) for x in r.removed)} — {r.detail}{saved}"
            )
        if plan.pruning is not None:
            p = plan.pruning
            saved = (
                f" (est -{_fmt_bytes(p.est_bytes_saved)})" if p.est_bytes_saved else ""
            )
            lines.append(
                f"    PAP083 {PASS_NAMES['PAP083']}: "
                f"{', '.join(p.pruned)} pruned; rows narrow from "
                f"{p.full_row_bytes}B to {p.narrow_row_bytes}B{saved}"
            )
        if plan.refusals:
            lines.append("  refused:")
            for r in plan.refusals:
                lines.append(f"    {r.code} {r.pass_name} at {r.site}: {r.reason}")
        if summary["est_bytes_before"] is not None:
            lines.append(
                "  estimated exchange payload: "
                f"{_fmt_bytes(summary['est_bytes_before'])} -> "
                f"{_fmt_bytes(summary['est_bytes_after'])}"
            )
        if not plan.changed:
            lines.append("  plan already minimal: no rewrite fired")
        lines.append("== original plan ==")
        lines.append(self.before.render_text())
        lines.append("== optimized plan ==")
        lines.append(self.after.render_text())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# spec surgery helpers


def _ref_pattern(op_id: str) -> re.Pattern:
    """Matches ``$op_id`` as a whole reference head (not ``$op_id2``)."""
    return re.compile(rf"\${re.escape(op_id)}(?![A-Za-z0-9_])")


def _iter_text_slots(spec: WorkflowSpec):
    """Every textual value a ``$ref`` could hide in: (owner, slot, text)."""
    for name, ps in spec.arguments.items():
        yield "<arguments>", name, ps.value
    for op in spec.operators:
        for pname, ps in op.params.items():
            yield op.id, pname, ps.value
        for aname, avalue in op.attrs.items():
            yield op.id, aname, avalue
        for addon in op.addons:
            yield op.id, "addon.key", addon.key
            yield op.id, "addon.value", addon.value


def _foreign_refs(
    spec: WorkflowSpec, op_id: str, allowed: set[tuple[str, str]]
) -> list[str]:
    """Slots outside ``allowed`` (and outside ``op_id`` itself) that
    reference ``$op_id``."""
    pat = _ref_pattern(op_id)
    hits = []
    for owner, slot, text in _iter_text_slots(spec):
        if owner == op_id or (owner, slot) in allowed:
            continue
        if text and pat.search(text):
            hits.append(f"{owner}.{slot}")
    return hits


def _input_param_name(op) -> Optional[str]:
    for name in _INPUT_PARAM_NAMES:
        if name in op.params:
            return name
    return None


def _doc_index(spec: WorkflowSpec, op_id: str) -> int:
    for i, op in enumerate(spec.operators):
        if op.id == op_id:
            return i
    return -1


def _sort_direction(node) -> Optional[bool]:
    """The planner's sort-direction semantics, mirrored statically.

    ``flag`` (Figure 8: ``-1`` = ascending) is read first, then an
    ``ascending`` parameter overrides it, honouring a declared boolean
    type's literal set.  Returns ``None`` when a value is unresolved or
    unparseable — callers must refuse to rewrite in that case.
    """
    ascending = True
    flag = node.param_value("flag")
    if flag is not None:
        if "$" in flag:
            return None
        try:
            ascending = int(str(flag).strip()) == -1
        except (TypeError, ValueError):
            return None
    p = node.op.param("ascending", "asc")
    if p is not None:
        raw = node.param_value("ascending", "asc")
        if raw is None or "$" in raw:
            return None
        text = str(raw).strip().lower()
        if p.type.lower() in ("boolean", "bool"):
            if text in BOOLEAN_TRUE_LITERALS:
                ascending = True
            elif text in BOOLEAN_FALSE_LITERALS:
                ascending = False
            else:
                return None
        else:
            ascending = text == "true"
    return ascending


def _drop_first(
    spec: WorkflowSpec, ir, first, second, refuse, code: str
) -> Optional[WorkflowSpec]:
    """Delete ``first`` and re-point ``second`` at first's input.

    Handles both explicit (``$first.outputPath``) and implicit
    (document-order chaining) wiring; refuses when any *other* slot still
    references the deleted operator or when ``second`` reads more inputs
    than just ``first``.
    """
    site = f"{first.op_id} -> {second.op_id}"
    if len(ir.in_edges(second.op_id)) != 1:
        refuse(code, site, f"{second.op_id!r} consumes inputs besides "
                           f"{first.op_id!r}'s output; cannot re-point it")
        return None
    allowed = {(second.op_id, name) for name in _INPUT_PARAM_NAMES}
    hits = _foreign_refs(spec, first.op_id, allowed)
    if hits:
        refuse(code, site, f"other slots still reference ${first.op_id} "
                           f"({', '.join(hits)})")
        return None
    new = copy.deepcopy(spec)
    f_op = new.operator(first.op_id)
    s_op = new.operator(second.op_id)
    f_input = _input_param_name(f_op)
    for name in _INPUT_PARAM_NAMES:
        s_op.params.pop(name, None)
    if f_input is not None:
        s_op.params[f_input] = f_op.params[f_input]
    else:
        # first chained implicitly; second now chains to the same producer
        # (or reads the workflow input if first was the head operator)
        if _doc_index(new, first.op_id) != _doc_index(new, second.op_id) - 1:
            refuse(code, site, f"{first.op_id!r} has no input parameter and "
                               f"{second.op_id!r} does not directly follow it; "
                               "implicit chaining cannot be preserved")
            return None
    new.operators = [op for op in new.operators if op.id != first.op_id]
    return new


def _drop_second(
    spec: WorkflowSpec, ir, first, second, refuse, code: str
) -> Optional[WorkflowSpec]:
    """Delete ``second`` and re-point its consumers at ``first``'s output."""
    site = f"{first.op_id} -> {second.op_id}"
    new = copy.deepcopy(spec)
    pat = _ref_pattern(second.op_id)
    out_path_ref = re.compile(
        rf"\${re.escape(second.op_id)}\.outputPath(?![A-Za-z0-9_])"
    )
    replacement = f"${first.op_id}.outputPath"
    second_idx = _doc_index(new, second.op_id)
    for e in ir.out_edges(second.op_id):
        consumer = new.operator(e.dst)
        consumer_node = ir.node(e.dst)
        pname = _input_param_name(consumer)
        if pname is None:
            # implicit chaining: after the removal the consumer must chain
            # straight to first, i.e. first must directly precede second
            if (
                second_idx != _doc_index(new, e.dst) - 1
                or _doc_index(new, first.op_id) != second_idx - 1
            ):
                refuse(code, site, f"{e.dst!r} chains implicitly and would "
                                   "re-chain to the wrong producer")
                return None
            continue
        value = consumer.params[pname].value or ""
        if consumer_node is not None and consumer_node.input != e.path:
            refuse(code, site, f"{e.dst!r} consumes a directory prefix of "
                               f"{second.op_id!r}'s output; cannot re-point it "
                               "textually")
            return None
        if pat.search(value):
            new_value, _ = out_path_ref.subn(replacement, value)
            if pat.search(new_value):
                refuse(code, site, f"{e.dst!r} references ${second.op_id} "
                                   "beyond outputPath")
                return None
        else:
            new_value = replacement
        consumer.params[pname] = replace(consumer.params[pname], value=new_value)
    new.operators = [op for op in new.operators if op.id != second.op_id]
    hits = _foreign_refs(new, second.op_id, set())
    if hits:
        refuse(code, site, f"other slots still reference ${second.op_id} "
                           f"({', '.join(hits)})")
        return None
    return new


# ---------------------------------------------------------------------------
# passes: each returns (new_spec, AppliedRewrite) for the first applicable
# site, or None when nothing (more) fires


def _exchange_estimate(ctx, op_id: str) -> Optional[int]:
    analyzed = ctx.analyzed()
    if analyzed is None:
        return None
    est = analyzed.cost.exchange(op_id)
    return est.est_bytes if est is not None else None


def _pass_dead(spec: WorkflowSpec, ctx, refuse, blocked):
    """PAP080: delete a non-final operator nothing ever consumes."""
    analyzed = ctx.analyzed()
    if analyzed is None or len(analyzed.ir.nodes) < 2:
        return None
    ir = analyzed.ir
    referenced = _referenced_ops(ctx)
    final = ir.final
    for node in ir.nodes:
        if final is not None and node.op_id == final.op_id:
            continue
        if ir.out_edges(node.op_id) or node.op_id in referenced:
            continue
        if ("PAP080", node.op_id) in blocked:
            continue
        new = copy.deepcopy(spec)
        new.operators = [op for op in new.operators if op.id != node.op_id]
        rewrite = AppliedRewrite(
            code="PAP080",
            pass_name=PASS_NAMES["PAP080"],
            site=node.op_id,
            removed=[node.op_id],
            kept=[],
            detail=f"operator {node.op_id!r} produces outputs no later stage "
                   "consumes; the whole stage is dead work",
            est_bytes_saved=_exchange_estimate(ctx, node.op_id),
        )
        return new, rewrite
    return None


def _pass_redundant(spec: WorkflowSpec, ctx, refuse, blocked):
    """PAP081: drop an exchange the very next exchange provably recreates.

    Safety hinges on the runtimes' *stable* sorts and canonical group
    order: within equal keys, both ascending and descending stable sorts
    preserve input order, and group output is always (ascending key
    groups, input order within each group) regardless of backend.
    """
    analyzed = ctx.analyzed()
    if analyzed is None:
        return None
    ir = analyzed.ir
    name = PASS_NAMES["PAP081"]
    for first, second in _adjacent_exchanges(ir):
        pair = (first.kind, second.kind)
        site = f"{first.op_id} -> {second.op_id}"
        if ("PAP081", site) in blocked:
            continue
        if pair == ("sort", "sort"):
            if not _same_key(first, second):
                refuse("PAP081", site, "the sorts key on different columns; "
                       "the first sort decides tie order under the stable "
                       "second sort, so dropping it changes the bytes")
                continue
            d1, d2 = _sort_direction(first), _sort_direction(second)
            if d1 is None or d2 is None:
                refuse("PAP081", site, "a sort direction is not statically "
                                       "resolvable")
                continue
            if d1 != d2:
                refuse("PAP081", site, "the sorts disagree on direction; "
                       "equal keys would keep the first sort's order")
                continue
            detail = ("the second sort re-ranges every record by the same key "
                      "and direction; one exchange suffices")
            new = _drop_first(spec, ir, first, second, refuse, "PAP081")
            if new is None:
                continue
            removed, kept = first, second
        elif pair == ("sort", "group"):
            if not _same_key(first, second):
                refuse("PAP081", site, "sort and group key on different "
                       "columns; the sort changes which rows are adjacent "
                       "inside each group")
                continue
            detail = ("group re-ranges by the same key and keeps within-group "
                      "input order, which the stable sort already preserved; "
                      "the sort's exchange is redundant")
            new = _drop_first(spec, ir, first, second, refuse, "PAP081")
            if new is None:
                continue
            removed, kept = first, second
        elif pair == ("group", "sort"):
            if not _same_key(first, second):
                refuse("PAP081", site, "group and sort key on different "
                                       "columns; the sort is doing real work")
                continue
            if _sort_direction(second) is not True:
                refuse("PAP081", site, "group output is ascending by key; "
                       "only an ascending same-key sort is the identity on it")
                continue
            out_param = first.op.param("outputPath")
            if out_param is not None and out_param.format and (
                "pack" in out_param.format.lower()
            ):
                refuse("PAP081", site, "the group emits packed records; the "
                       "sort consumes the flattened form, which is not a "
                       "textual rewiring")
                continue
            detail = ("group output is already range-partitioned and "
                      "ascending by that key; the stable ascending sort is "
                      "the identity on it")
            new = _drop_second(spec, ir, first, second, refuse, "PAP081")
            if new is None:
                continue
            removed, kept = second, first
        elif first.kind == "distribute" and second.kind in ("sort", "group"):
            refuse("PAP081", site, "the advisory is right that the position "
                   f"permutation is destroyed, but the {second.kind}'s tie/"
                   "within-group order depends on it; dropping the distribute "
                   "would reorder equal-key rows")
            continue
        else:
            continue
        rewrite = AppliedRewrite(
            code="PAP081",
            pass_name=name,
            site=site,
            removed=[removed.op_id],
            kept=[kept.op_id],
            detail=detail,
            est_bytes_saved=_exchange_estimate(ctx, removed.op_id),
        )
        return new, rewrite
    return None


def _distribute_chain_equal(name1: str, parts1: int, name2: str, parts2: int) -> bool:
    """Execute both pipelines on probe data and compare byte order.

    The chained leg feeds the first distribute's partition *list* into the
    second, exactly as the serial runtime does — so the per-stream dealing
    semantics are exercised, not an idealized whole-stream composition.
    """
    import numpy as np

    from repro.core.dataset import Dataset
    from repro.formats.records import Field, RecordSchema
    from repro.ops.distribute import Distribute

    schema = RecordSchema(
        id="__papar_probe", fields=(Field("pos", "long"),), input_format="binary"
    )
    try:
        d1 = Distribute(name1, parts1)
        d2 = Distribute(name2, parts2)
    except Exception:
        return False
    for n in _PROBE_SIZES:
        records = np.empty(n, dtype=schema.dtype)
        records["pos"] = np.arange(n, dtype=np.int64)
        data = Dataset.from_array(schema, records)
        chained = d2.apply_local(d1.apply_local(data))
        single = d2.apply_local(data)
        if len(chained) != len(single):
            return False
        for a, b in zip(chained, single):
            if a.to_flat().rows() != b.to_flat().rows():
                return False
    return True


def _pass_compose(spec: WorkflowSpec, ctx, refuse, blocked):
    """PAP082: collapse a distribute chain when the L-product composes to
    the identity.

    The runtimes deal each upstream partition per stream
    (:meth:`repro.ops.distribute.Distribute.apply_local`), so the composed
    permutation is ``L ∘ (⊕_i L_i)`` — a direct sum over the first stage's
    partitions, not a product over the whole stream.  Only two shapes are
    the identity for every length: a single-partition first stage, and a
    block first stage feeding a single-partition second stage.  Everything
    else (including the owner-equal shapes the advisory flags) changes the
    within-partition byte order and is refused.
    """
    analyzed = ctx.analyzed()
    if analyzed is None:
        return None
    ir = analyzed.ir
    for first, second in _adjacent_exchanges(ir):
        if (first.kind, second.kind) != ("distribute", "distribute"):
            continue
        site = f"{first.op_id} -> {second.op_id}"
        if ("PAP082", site) in blocked:
            continue
        policy1, parts1 = _policy_and_parts(first)
        policy2, parts2 = _policy_and_parts(second)
        name1 = (policy1 or "cyclic").strip().lower()
        name2 = (policy2 or "cyclic").strip().lower()
        if parts1 is None or parts2 is None:
            refuse("PAP082", site, "a partition count is not statically "
                                   "resolvable")
            continue
        if parts1 == 1:
            detail = ("a single-partition distribute is the identity "
                      "permutation (L_1 in the L-product algebra); the chain "
                      "composes to the second distribute alone")
        elif name1 == "block" and parts2 == 1:
            detail = ("block dealing keeps each stream contiguous and in "
                      "order, and a single-partition second stage "
                      "concatenates them back; the composition is the "
                      "identity")
        else:
            refuse("PAP082", site, "the runtimes deal each upstream "
                   "partition per stream, so this composition is a direct "
                   f"sum of {name1}({parts1}) permutations — not "
                   f"{name2}({parts2}) alone; collapsing would reorder "
                   "rows within partitions")
            continue
        in_edges = ir.in_edges(first.op_id)
        if len(in_edges) != 1:
            refuse("PAP082", site, f"{first.op_id!r} reads multiple inputs")
            continue
        src = in_edges[0].src
        if src is not None:
            producer = ir.node(src)
            if producer is not None and producer.kind == "split":
                refuse("PAP082", site, f"{first.op_id!r} consumes split "
                       "streams; the chain deals per stream and the collapse "
                       "would merge them")
                continue
            if producer is not None:
                out_param = producer.op.param("outputPath")
                if out_param is not None and out_param.format and (
                    "pack" in out_param.format.lower()
                ):
                    refuse("PAP082", site, f"{first.op_id!r} consumes packed "
                           "records; dealing flattens them, so the collapse "
                           "changes entry semantics")
                    continue
        if not _distribute_chain_equal(name1, parts1, name2, parts2):
            refuse("PAP082", site, "probe execution found a length where "
                   "the chained and collapsed pipelines disagree")
            continue
        new = _drop_first(spec, ir, first, second, refuse, "PAP082")
        if new is None:
            continue
        rewrite = AppliedRewrite(
            code="PAP082",
            pass_name=PASS_NAMES["PAP082"],
            site=site,
            removed=[first.op_id],
            kept=[second.op_id],
            detail=detail,
            est_bytes_saved=_exchange_estimate(ctx, first.op_id),
        )
        return new, rewrite
    return None


def _plan_pruning(ctx, refuse, memory_budget=None) -> Optional[ColumnPruning]:
    """PAP083: plan the narrowed execution, or record why it is unsafe."""
    analyzed = ctx.analyzed()
    if analyzed is None:
        return None
    cost = analyzed.cost
    if not cost.unused_columns:
        return None
    schema, _arg = ctx.input_schema()
    if schema is None:
        return None
    name = PASS_NAMES["PAP083"]
    site = f"input schema {schema.id!r}"
    if memory_budget is not None:
        refuse("PAP083", site, "out-of-core runs stream full records from "
               "disk; narrowing would change the spill layout")
        return None
    if schema.has_field(ROWID_FIELD):
        refuse("PAP083", site, f"the input already has a {ROWID_FIELD!r} "
                               "column")
        return None
    if any(f.type == "string" for f in schema.fields):
        refuse("PAP083", site, "variable-width string fields cannot ride a "
                               "fixed-width narrowed layout")
        return None
    for op in (ctx.model.operators if ctx.model is not None else []):
        for p in op.params:
            if p.format and "pack" in p.format.lower():
                refuse("PAP083", site, f"operator {op.id!r} uses a packed "
                       "record format; packed layouts carry whole records, "
                       "so re-attachment cannot reproduce them")
                return None
    for node in analyzed.ir.nodes:
        if node.kind in ("sort", "group", "split"):
            key = node.param_value("key", "keyId")
            if key is None or "$" in key:
                refuse("PAP083", site, f"operator {node.op_id!r} has no "
                       "statically resolvable key; liveness may undercount")
                return None
        for addon in node.op.addons:
            if addon.attr and addon.attr in cost.unused_columns:
                refuse("PAP083", site, f"add-on attribute {addon.attr!r} "
                       "collides with a pruned column name")
                return None
    live = [f.name for f in schema.fields if f.name not in cost.unused_columns]
    full_width = sum(field_width(f.type) for f in schema.fields)
    narrow_width = (
        sum(field_width(f.type) for f in schema.fields if f.name in live)
        + field_width("long")
    )
    if narrow_width >= full_width:
        refuse("PAP083", site, "the synthetic row id outweighs the pruned "
                               f"fields ({narrow_width}B >= {full_width}B)")
        return None
    saved = 0
    known = False
    for est in cost.exchanges:
        if est.rows is not None:
            saved += est.rows * (full_width - narrow_width)
            known = True
    return ColumnPruning(
        live=live,
        pruned=sorted(cost.unused_columns),
        rowid_field=ROWID_FIELD,
        full_row_bytes=full_width,
        narrow_row_bytes=narrow_width,
        est_bytes_saved=saved if known else None,
    )


# ---------------------------------------------------------------------------
# the engine


def _total_known_bytes(ctx) -> Optional[int]:
    analyzed = ctx.analyzed() if ctx is not None else None
    if analyzed is None:
        return None
    return analyzed.cost.total_bytes


def _exchange_count(ctx) -> int:
    analyzed = ctx.analyzed() if ctx is not None else None
    if analyzed is None:
        return 0
    return len(analyzed.cost.exchanges)


def optimize_spec(
    spec: WorkflowSpec,
    args: Optional[dict[str, Any]] = None,
    schemas: Optional[dict[str, RecordSchema]] = None,
    inputs: Iterable[tuple[str, Optional[str]]] = (),
    ranks: Optional[int] = None,
    assume_records: Optional[int] = None,
    memory_budget: Optional[str] = None,
    filename: Optional[str] = None,
) -> OptimizedPlan:
    """Run every pass to a fixed point and return the optimized plan.

    The engine is analyze → rewrite → re-analyze: after each structural
    rewrite the workflow is serialized back to XML and pushed through the
    full lint engine again, and the rewrite is kept only if the new plan
    has no lint errors, one fewer operator, no more exchanges, and no
    larger a total payload estimate.  Column pruning is planned once the
    structure reaches a fixed point.
    """
    linter = Linter(schemas=schemas, ranks=ranks, assume_records=assume_records)

    def analyze(s: WorkflowSpec):
        return linter.analyze(
            workflow_to_xml(s), filename=filename, inputs=inputs, args=args
        )

    original = copy.deepcopy(spec)
    current = copy.deepcopy(spec)
    plan = OptimizedPlan(original=original, workflow=current)
    seen_refusals: set[tuple[str, str, str]] = set()

    def refuse(code: str, site: str, reason: str) -> None:
        key = (code, site, reason)
        if key in seen_refusals:
            return
        seen_refusals.add(key)
        plan.refusals.append(
            RefusedRewrite(code=code, pass_name=PASS_NAMES[code], site=site,
                           reason=reason)
        )

    ctx, result = analyze(current)
    if ctx is None or result.errors:
        plan.workflow = current
        return plan
    plan.est_bytes_before = _total_known_bytes(ctx)
    exchanges_before = _exchange_count(ctx)

    blocked: set[tuple[str, str]] = set()
    max_rounds = 2 * len(current.operators) + 4
    for _ in range(max_rounds):
        progressed = False
        for pass_fn in (_pass_dead, _pass_redundant, _pass_compose):
            out = pass_fn(current, ctx, refuse, blocked)
            if out is None:
                continue
            new_spec, rewrite = out
            new_ctx, new_result = analyze(new_spec)
            old_total = _total_known_bytes(ctx)
            new_total = _total_known_bytes(new_ctx)
            ok = (
                new_ctx is not None
                and not new_result.errors
                and len(new_spec.operators) == len(current.operators) - 1
                and _exchange_count(new_ctx) <= _exchange_count(ctx)
                and not (
                    old_total is not None
                    and new_total is not None
                    and new_total > old_total
                )
            )
            if not ok:
                blocked.add((rewrite.code, rewrite.site))
                refuse(rewrite.code, rewrite.site,
                       "rewrite rejected on re-analysis: the rewritten plan "
                       "lints with errors or does not shrink")
                progressed = True
                break
            current, ctx, result = new_spec, new_ctx, new_result
            plan.rewrites.append(rewrite)
            progressed = True
            break
        if not progressed:
            break

    plan.workflow = current
    plan.est_bytes_after = _total_known_bytes(ctx)
    plan.exchanges_removed = exchanges_before - _exchange_count(ctx)
    plan.pruning = _plan_pruning(ctx, refuse, memory_budget=memory_budget)
    return plan


def optimize_workflow(
    workflow_xml: str,
    filename: Optional[str] = None,
    inputs: Iterable[tuple[str, Optional[str]]] = (),
    args: Optional[dict[str, Any]] = None,
    schemas: Optional[dict[str, RecordSchema]] = None,
    ranks: Optional[int] = None,
    assume_records: Optional[int] = None,
    memory_budget: Optional[str] = None,
) -> OptimizeReport:
    """Optimize one workflow (XML text) and build the diff report."""
    from repro.analysis.explain import explain_workflow

    spec = parse_workflow_config(workflow_xml, filename=filename)
    plan = optimize_spec(
        spec,
        args=args,
        schemas=schemas,
        inputs=inputs,
        ranks=ranks,
        assume_records=assume_records,
        memory_budget=memory_budget,
        filename=filename,
    )
    before = explain_workflow(
        workflow_xml, filename=filename, inputs=inputs, args=args,
        schemas=schemas, ranks=ranks, assume_records=assume_records,
    )
    linter = Linter(schemas=schemas, ranks=ranks, assume_records=assume_records)
    after_ctx, after_result = linter.analyze(
        workflow_to_xml(plan.workflow), filename=filename, inputs=inputs, args=args
    )
    if after_ctx is None:
        after = ExplainReport(workflow=before.workflow, file=filename,
                              lint=after_result)
    else:
        after = build_report(after_ctx, after_result)
    return OptimizeReport(before=before, after=after, plan=plan)


def optimize_files(
    workflow_path: str,
    input_paths: Iterable[str] = (),
    args: Optional[dict[str, Any]] = None,
    schemas: Optional[dict[str, RecordSchema]] = None,
    ranks: Optional[int] = None,
    assume_records: Optional[int] = None,
    memory_budget: Optional[str] = None,
) -> OptimizeReport:
    """:func:`optimize_workflow` over configuration files on disk."""
    with open(workflow_path, "r", encoding="utf-8") as fh:
        workflow_xml = fh.read()
    inputs = []
    for path in input_paths:
        with open(path, "r", encoding="utf-8") as fh:
            inputs.append((fh.read(), path))
    return optimize_workflow(
        workflow_xml,
        filename=str(workflow_path),
        inputs=inputs,
        args=args,
        schemas=schemas,
        ranks=ranks,
        assume_records=assume_records,
        memory_budget=memory_budget,
    )
