"""Streaming-service fit checks (PAP090).

These rules only fire when the user declares the workflow is destined for
the long-lived daemon (``papar lint --serve`` or the ``papar serve`` lint
gate).  PAP090 warns when the final distribute is fed by no sort or group
stage: the daemon then routes incremental appends by *position* (the
dealing permutation), so which partition a record lands in depends on the
order batches happen to arrive — two clients interleaving appends get a
different placement than one client sending the same records, and placement
only reconciles with the batch run at the next full rebalance.  Keyed
routing (a sort or group feeding the distribute) places each record by its
own key and has no such sensitivity.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.model import LintContext
from repro.analysis.rules import checker

#: operator kinds whose exchange keys records (arrival-order insensitive)
KEYED_KINDS = ("sort", "group")


@checker
def check_stream_safety(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP090: the declared serve workflow versus order-sensitive routing."""
    if not ctx.serve or ctx.model is None or not ctx.model.operators:
        return
    final = ctx.model.operators[-1]
    if final.kind != "distribute":
        # a non-distribute tail is rejected by the planner (the daemon
        # refuses to start); nothing stream-specific to add here
        return
    if any(op.kind in KEYED_KINDS for op in ctx.model.operators[:-1]):
        return
    policy = final.param_value("distrPolicy", "policy") or "cyclic"
    yield ctx.diag(
        "PAP090",
        f"distribute {final.id!r} uses the order-sensitive dealing policy "
        f"{policy!r} with no sort or group stage upstream: under 'papar "
        "serve', which partition an appended record lands in depends on "
        "batch arrival order, not on the record itself",
        line=final.line,
        suggestion="add a Sort or Group stage so appends route by key, or "
        "accept that placement is arrival-order dependent until the next "
        "rebalance folds the log into a batch-identical layout",
    )
