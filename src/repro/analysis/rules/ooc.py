"""Out-of-core sizing checks (PAP060-PAP061).

These rules only fire when the user *declares* a memory budget
(``papar lint --memory-budget 64MB``): PAP061 validates the budget spec
itself, and PAP060 estimates the input's resident size — record width
from the input schema times ``--assume-records`` — and warns when it
exceeds the budget while the workflow has no spill-capable operator
(sort, group, or distribute all stream through run files under a
budget; a workflow of only basic operators materializes its input).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.model import LintContext
from repro.analysis.rules import checker

#: operator kinds whose budgeted execution spills to run files
SPILL_CAPABLE = ("sort", "group", "distribute")


def _format_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{n} B" if unit == "B" else f"{value:.1f} {unit}"
        value /= 1024
    return f"{n} B"  # pragma: no cover - unreachable


def _parse_budget(spec: str) -> Optional[int]:
    from repro.ooc.budget import MemoryBudgetError, parse_memory_budget

    try:
        return parse_memory_budget(spec)
    except MemoryBudgetError:
        return None


@checker
def check_memory_budget(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP060/PAP061: declared budget versus estimated input size."""
    if ctx.memory_budget is None:
        return
    limit = _parse_budget(ctx.memory_budget)
    if limit is None:
        yield ctx.diag(
            "PAP061",
            f"--memory-budget {ctx.memory_budget!r} is not a valid size",
            suggestion="use a byte count or a size like 64MB / 1GiB",
        )
        return
    if ctx.assume_records is None or ctx.model is None:
        return
    schema, arg = ctx.input_schema()
    if schema is None:
        return
    estimated = int(ctx.assume_records) * int(schema.itemsize)
    if estimated <= limit:
        return
    if any(op.kind in SPILL_CAPABLE for op in ctx.model.operators):
        # a spill-capable stage bounds the working set; nothing to warn about
        return
    yield ctx.diag(
        "PAP060",
        f"estimated input size {_format_bytes(estimated)} "
        f"({ctx.assume_records} records x {schema.itemsize} B) exceeds the "
        f"declared memory budget {_format_bytes(limit)}, and no operator in "
        "this workflow (sort/group/distribute) can spill to run files",
        line=arg.line if arg is not None else None,
        suggestion="raise --memory-budget or route the data through a "
        "spill-capable operator",
    )
