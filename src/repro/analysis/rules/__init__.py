"""Rule registry and catalog for ``papar lint``.

Every diagnostic the analyzer can emit has a stable entry here: a ``PAPnnn``
code, a short kebab-case rule name, a default severity, and a one-line
summary.  ``docs/lint-rules.md`` is generated from the same vocabulary and
the golden-diagnostics test suite pins each code's behavior.

Checkers are plain generator functions taking a
:class:`~repro.analysis.model.LintContext` and yielding
:class:`~repro.analysis.diagnostics.Diagnostic` objects; they are collected
by the :func:`checker` decorator and run (all of them, in registration
order) by the engine.  One checker may emit several related codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.diagnostics import Severity


@dataclass(frozen=True)
class RuleSpec:
    """Catalog entry of one diagnostic code."""

    code: str
    name: str
    severity: Severity
    summary: str


def _spec(code: str, name: str, severity: Severity, summary: str) -> RuleSpec:
    return RuleSpec(code=code, name=name, severity=severity, summary=summary)


#: every code the analyzer can emit, in catalog order
CATALOG: dict[str, RuleSpec] = {
    s.code: s
    for s in (
        # -- structure / syntax (PAP00x) ------------------------------------
        _spec("PAP001", "xml-syntax", Severity.ERROR,
              "the file is not well-formed XML or has the wrong root element"),
        _spec("PAP002", "missing-attribute", Severity.ERROR,
              "a required attribute or section is missing"),
        _spec("PAP003", "duplicate-id", Severity.ERROR,
              "an operator id, argument, or parameter is declared twice"),
        _spec("PAP004", "unknown-operator", Severity.ERROR,
              "an operator type the planner does not know"),
        _spec("PAP005", "unknown-addon", Severity.ERROR,
              "an add-on operator name that is not registered"),
        _spec("PAP006", "addon-ignored", Severity.WARNING,
              "an add-on attached to an operator that does not support add-ons"),
        # -- $variable reference graph (PAP01x) ------------------------------
        _spec("PAP010", "undefined-reference", Severity.ERROR,
              "a $reference that no argument or earlier operator defines"),
        _spec("PAP011", "forward-reference", Severity.ERROR,
              "a reference to an operator that has not run yet"),
        _spec("PAP012", "reference-cycle", Severity.ERROR,
              "operators whose references form a cycle"),
        _spec("PAP013", "unused-argument", Severity.WARNING,
              "a declared workflow argument that nothing references"),
        _spec("PAP014", "unknown-output-attribute", Severity.ERROR,
              "a $opid.attr reference to an attribute the operator never produces"),
        # -- record-schema type flow (PAP02x) --------------------------------
        _spec("PAP020", "key-not-in-schema", Severity.ERROR,
              "a sort/group/split key that names no field available at that stage"),
        _spec("PAP021", "float-group-key", Severity.WARNING,
              "grouping/hashing on a floating-point field is fragile"),
        _spec("PAP022", "split-threshold-type", Severity.ERROR,
              "a split threshold that is not comparable with the key type"),
        _spec("PAP023", "split-coverage-gap", Severity.WARNING,
              "split conditions that leave some key values unrouted"),
        _spec("PAP024", "addon-field-missing", Severity.ERROR,
              "an add-on that aggregates a value field the schema does not have"),
        _spec("PAP025", "boolean-literal", Severity.WARNING,
              "a boolean parameter whose literal is not a recognized true/false"),
        # -- path wiring (PAP03x) -------------------------------------------
        _spec("PAP030", "dead-output", Severity.WARNING,
              "an operator output that no later job consumes"),
        _spec("PAP031", "output-collision", Severity.ERROR,
              "two jobs writing the same output path"),
        _spec("PAP032", "orphan-directory-input", Severity.ERROR,
              "a directory input with zero producing jobs"),
        _spec("PAP033", "split-arity", Severity.ERROR,
              "split condition count and outputPathList length disagree"),
        _spec("PAP034", "split-policy-syntax", Severity.ERROR,
              "a split policy string that does not parse"),
        _spec("PAP035", "unknown-distribution-policy", Severity.ERROR,
              "a distribution policy name that is not registered"),
        _spec("PAP036", "bad-partition-count", Severity.ERROR,
              "numPartitions / num_reducers literal that is not a positive integer"),
        # -- resolved-plan checks (PAP04x) ----------------------------------
        _spec("PAP040", "plan-failure", Severity.ERROR,
              "the planner rejects the workflow for a reason no other rule caught"),
        _spec("PAP041", "invalid-permutation", Severity.ERROR,
              "a distribution policy that does not produce a valid permutation"),
        _spec("PAP042", "reducer-mismatch", Severity.WARNING,
              "collective schedules (num_reducers) inconsistent across jobs"),
        _spec("PAP043", "sort-tie-partitioning", Severity.INFO,
              "equal sort keys are partitioned by input order downstream"),
        _spec("PAP044", "ranks-exceed-partitions", Severity.WARNING,
              "more ranks than partitions leaves ranks idle"),
        # -- input-data configurations (PAP05x) ------------------------------
        _spec("PAP050", "input-config-invalid", Severity.ERROR,
              "an input-data configuration fails to parse or validate"),
        _spec("PAP051", "input-config-unused", Severity.WARNING,
              "an input-data configuration no workflow argument references"),
        # -- out-of-core sizing (PAP06x) --------------------------------------
        _spec("PAP060", "input-exceeds-memory-budget", Severity.WARNING,
              "the estimated input size exceeds the declared memory budget "
              "and no spill-capable operator is in the workflow"),
        _spec("PAP061", "invalid-memory-budget", Severity.ERROR,
              "the declared --memory-budget does not parse as a size"),
        # -- execution-backend fit (PAP07x) ----------------------------------
        _spec("PAP070", "process-backend-faults", Severity.WARNING,
              "fault injection is declared but backend='process' cannot "
              "run it; the runtime will refuse the configuration"),
        _spec("PAP071", "process-backend-oversubscribed", Severity.INFO,
              "more process ranks than CPU cores; forked ranks will "
              "time-slice instead of running in parallel"),
        _spec("PAP072", "process-backend-unguarded", Severity.INFO,
              "a large process-backend run declares no checkpoint store; "
              "a single worker crash restarts it from scratch"),
        # -- analyzer self-diagnosis ----------------------------------------
        _spec("PAP099", "internal-error", Severity.ERROR,
              "a lint rule crashed; please report the configuration"),
    )
}

#: registered checker functions, in registration order
CHECKERS: list[Callable] = []


def checker(func: Callable) -> Callable:
    """Register a checker (a generator of diagnostics over a LintContext)."""
    CHECKERS.append(func)
    return func


def all_codes() -> list[str]:
    """Every catalogued code, sorted."""
    return sorted(CATALOG)


def _load() -> None:
    """Import the rule modules so their checkers register."""
    from repro.analysis.rules import (  # noqa: F401
        backend,
        ooc,
        paths,
        plan,
        references,
        schema_flow,
    )


_load()

__all__ = ["CATALOG", "CHECKERS", "RuleSpec", "all_codes", "checker"]


def iter_checkers() -> Iterable[Callable]:
    """The registered checker callables, in registration order."""
    return tuple(CHECKERS)
