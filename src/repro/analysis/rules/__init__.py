"""Rule registry and catalog for ``papar lint``.

Every diagnostic the analyzer can emit has a stable entry here: a ``PAPnnn``
code, a short kebab-case rule name, a default severity, a one-line summary,
and — for ``papar lint --explain PAPnnn`` — a longer description plus a
bad/good example pair.  ``docs/lint-rules.md`` is written against the same
vocabulary and the golden-diagnostics test suite pins each code's behavior.

Checkers are plain generator functions taking a
:class:`~repro.analysis.model.LintContext` and yielding
:class:`~repro.analysis.diagnostics.Diagnostic` objects; they are collected
by the :func:`checker` decorator and run (all of them, in registration
order) by the engine.  One checker may emit several related codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.diagnostics import Severity


@dataclass(frozen=True)
class RuleSpec:
    """Catalog entry of one diagnostic code (the machine-readable rule doc)."""

    code: str
    name: str
    severity: Severity
    summary: str
    #: longer prose shown by ``papar lint --explain <code>``
    description: str = ""
    #: a minimal configuration fragment that triggers the rule
    bad: str = ""
    #: the corrected fragment
    good: str = ""

    def explain_dict(self) -> dict:
        """The JSON form ``--explain --format json`` emits."""
        return {
            "code": self.code,
            "name": self.name,
            "severity": self.severity.value,
            "summary": self.summary,
            "description": self.description or self.summary,
            "bad": self.bad,
            "good": self.good,
        }


def _spec(
    code: str,
    name: str,
    severity: Severity,
    summary: str,
    description: str = "",
    bad: str = "",
    good: str = "",
) -> RuleSpec:
    return RuleSpec(
        code=code,
        name=name,
        severity=severity,
        summary=summary,
        description=description,
        bad=bad,
        good=good,
    )


#: every code the analyzer can emit, in catalog order
CATALOG: dict[str, RuleSpec] = {
    s.code: s
    for s in (
        # -- structure / syntax (PAP00x) ------------------------------------
        _spec("PAP001", "xml-syntax", Severity.ERROR,
              "the file is not well-formed XML or has the wrong root element",
              "Workflow configurations are XML documents rooted at "
              "<workflow>; anything else cannot be analyzed at all.",
              "<worfklow id=\"w\">...</worfklow>",
              "<workflow id=\"w\">...</workflow>"),
        _spec("PAP002", "missing-attribute", Severity.ERROR,
              "a required attribute or section is missing",
              "Operators need id= and operator=, params need name=, and a "
              "workflow needs an id and at least one operator.",
              "<operator operator=\"Sort\">",
              "<operator id=\"sort\" operator=\"Sort\">"),
        _spec("PAP003", "duplicate-id", Severity.ERROR,
              "an operator id, argument, or parameter is declared twice",
              "Duplicate names are ambiguous: $refs and the runtime keep "
              "only one of the declarations, silently dropping the other.",
              "<operator id=\"s\" .../> <operator id=\"s\" .../>",
              "<operator id=\"s1\" .../> <operator id=\"s2\" .../>"),
        _spec("PAP004", "unknown-operator", Severity.ERROR,
              "an operator type the planner does not know",
              "Only registered operator types (Sort, Group, Split, "
              "Distribute, ...) can be planned into jobs.",
              "<operator id=\"s\" operator=\"Sortt\">",
              "<operator id=\"s\" operator=\"Sort\">"),
        _spec("PAP005", "unknown-addon", Severity.ERROR,
              "an add-on operator name that is not registered",
              "Group add-ons (count, sum, ...) come from a registry; a typo "
              "means no attribute is computed.",
              "<addon operator=\"cuont\" attr=\"indegree\"/>",
              "<addon operator=\"count\" attr=\"indegree\"/>"),
        _spec("PAP006", "addon-ignored", Severity.WARNING,
              "an add-on attached to an operator that does not support add-ons",
              "Only group operators evaluate add-ons; elsewhere the "
              "declaration is silently ignored.",
              "<operator id=\"s\" operator=\"Sort\"><addon .../></operator>",
              "<operator id=\"g\" operator=\"Group\"><addon .../></operator>"),
        # -- $variable reference graph (PAP01x) ------------------------------
        _spec("PAP010", "undefined-reference", Severity.ERROR,
              "a $reference that no argument or earlier operator defines",
              "Every $name must resolve to a workflow argument or an "
              "earlier operator's output/attribute.",
              "<param name=\"inputPath\" value=\"$inptu_path\"/>",
              "<param name=\"inputPath\" value=\"$input_path\"/>"),
        _spec("PAP011", "forward-reference", Severity.ERROR,
              "a reference to an operator that has not run yet",
              "Operators execute in document order; referencing a later "
              "operator's output reads a path that does not exist yet.",
              "<operator id=\"a\"><param value=\"$b.outputPath\"/></operator>"
              " ... <operator id=\"b\">",
              "declare operator b before the operator that references it"),
        _spec("PAP012", "reference-cycle", Severity.ERROR,
              "operators whose references form a cycle",
              "A cycle in the $ref graph means no execution order can "
              "satisfy the dataflow.",
              "a reads $b.outputPath while b reads $a.outputPath",
              "break the cycle so data flows strictly forward"),
        _spec("PAP013", "unused-argument", Severity.WARNING,
              "a declared workflow argument that nothing references",
              "Dead arguments usually indicate a typo at the use site or a "
              "leftover from an earlier revision.",
              "<param name=\"threshold\" .../> never referenced",
              "reference $threshold somewhere, or delete the argument"),
        _spec("PAP014", "unknown-output-attribute", Severity.ERROR,
              "a $opid.attr reference to an attribute the operator never produces",
              "Operators expose outputPath (splits: outputPathList) and "
              "group add-on attributes; anything else resolves to nothing.",
              "<param value=\"$group.$indegres\"/>",
              "<param value=\"$group.$indegree\"/>"),
        # -- record-schema type flow (PAP02x) --------------------------------
        _spec("PAP020", "key-not-in-schema", Severity.ERROR,
              "a sort/group/split key that names no field available at that stage",
              "Keys must name a field of the input element or an attribute "
              "appended by an earlier add-on; the type-flow analysis tracks "
              "exactly what is available at each stage.",
              "<param name=\"key\" value=\"seq_sizee\"/>",
              "<param name=\"key\" value=\"seq_size\"/>"),
        _spec("PAP021", "float-group-key", Severity.WARNING,
              "grouping/hashing on a floating-point field is fragile",
              "Float equality depends on rounding; two logically equal keys "
              "can land in different groups.",
              "<param name=\"key\" value=\"score\"/> with score: double",
              "group on an integer field, or bucket the values first"),
        _spec("PAP022", "split-threshold-type", Severity.ERROR,
              "a split threshold that is not comparable with the key type",
              "Comparing a string key against numeric thresholds, or an "
              "integer key against fractional ones, can never route "
              "records meaningfully.",
              "key 'name' (string) with policy {&gt;=, 10},{&lt;, 10}",
              "split on a numeric field such as a count attribute"),
        _spec("PAP023", "split-coverage-gap", Severity.WARNING,
              "split conditions that leave some key values unrouted",
              "A record matching no condition aborts the run; conditions "
              "should cover the whole key range.",
              "policy=\"{&gt;, 10},{&lt;, 10}\" (10 itself unrouted)",
              "policy=\"{&gt;=, 10},{&lt;, 10}\""),
        _spec("PAP024", "addon-field-missing", Severity.ERROR,
              "an add-on that aggregates a value field the schema does not have",
              "Aggregating add-ons (sum, min, ...) read a value field per "
              "record; it must exist in the element schema.",
              "<addon operator=\"sum\" value=\"weigth\"/>",
              "<addon operator=\"sum\" value=\"weight\"/>"),
        _spec("PAP025", "boolean-literal", Severity.WARNING,
              "a boolean parameter whose literal is not a recognized true/false",
              "The runtime accepts a fixed set of true/false spellings and "
              "rejects everything else at execution time.",
              "<param name=\"ascending\" type=\"boolean\" value=\"yep\"/>",
              "<param name=\"ascending\" type=\"boolean\" value=\"true\"/>"),
        # -- path wiring (PAP03x) -------------------------------------------
        _spec("PAP030", "dead-output", Severity.WARNING,
              "an operator output that no later job consumes",
              "An output path nothing reads is wasted work, or — more "
              "often — a mis-wired inputPath downstream.",
              "<param name=\"outputPath\" value=\"/tmp/x\"/> never read",
              "wire a later inputPath to $op.outputPath"),
        _spec("PAP031", "output-collision", Severity.ERROR,
              "two jobs writing the same output path",
              "The second writer clobbers the first; every operator needs "
              "a distinct output path.",
              "two operators with outputPath=\"/tmp/x\"",
              "give each operator its own output path"),
        _spec("PAP032", "orphan-directory-input", Severity.ERROR,
              "a directory input with zero producing jobs",
              "A trailing-slash inputPath is a directory read over earlier "
              "outputs; with no producer underneath it, the job reads "
              "nothing.",
              "<param name=\"inputPath\" value=\"/tmp/nothing/\"/>",
              "point inputPath at an earlier operator's output directory"),
        _spec("PAP033", "split-arity", Severity.ERROR,
              "split condition count and outputPathList length disagree",
              "Each split condition routes to exactly one output path; the "
              "counts must match.",
              "2 conditions with outputPathList=\"/tmp/a,/tmp/b,/tmp/c\"",
              "declare exactly one output path per condition"),
        _spec("PAP034", "split-policy-syntax", Severity.ERROR,
              "a split policy string that does not parse",
              "Split policies use the grammar {op, operand},... with op "
              "in >=, <=, >, <, ==, !=.",
              "policy=\"&gt;= 10\"",
              "policy=\"{&gt;=, 10},{&lt;, 10}\""),
        _spec("PAP035", "unknown-distribution-policy", Severity.ERROR,
              "a distribution policy name that is not registered",
              "Distribution policies come from a registry (cyclic, "
              "roundRobin, block, graphVertexCut, ...).",
              "<param name=\"distrPolicy\" value=\"roundRobbin\"/>",
              "<param name=\"distrPolicy\" value=\"roundRobin\"/>"),
        _spec("PAP036", "bad-partition-count", Severity.ERROR,
              "numPartitions / num_reducers literal that is not a positive integer",
              "Partition and reducer counts size real data structures; "
              "zero, negative, or non-integer values cannot run.",
              "<param name=\"numPartitions\" value=\"0\"/>",
              "<param name=\"numPartitions\" value=\"4\"/>"),
        # -- resolved-plan checks (PAP04x) ----------------------------------
        _spec("PAP040", "plan-failure", Severity.ERROR,
              "the planner rejects the workflow for a reason no other rule caught",
              "The linter probes the real planner with synthesized "
              "arguments; a rejection no specific rule explains is "
              "reported verbatim.",
              "any configuration the strict planner refuses",
              "fix the reported planner error"),
        _spec("PAP041", "invalid-permutation", Severity.ERROR,
              "a distribution policy that does not produce a valid permutation",
              "The probed policy produced an assignment that is not a "
              "permutation of the input positions.",
              "a custom policy dropping or duplicating entries",
              "make the policy a bijection over entry positions"),
        _spec("PAP042", "reducer-mismatch", Severity.WARNING,
              "collective schedules (num_reducers) inconsistent across jobs",
              "Jobs exchanging data should agree on the reducer count, or "
              "ranks idle / oversubscribe between stages.",
              "num_reducers=\"2\" feeding num_reducers=\"5\"",
              "use one reducer count across connected jobs"),
        _spec("PAP043", "sort-tie-partitioning", Severity.INFO,
              "equal sort keys are partitioned by input order downstream",
              "Range partitioning breaks ties by input position; a "
              "downstream distribute then depends on input order for equal "
              "keys — deterministic, but worth knowing.",
              "sort on a low-cardinality key feeding a distribute",
              "sort on a higher-cardinality (or compound) key"),
        _spec("PAP044", "ranks-exceed-partitions", Severity.WARNING,
              "more ranks than partitions leaves ranks idle",
              "With fewer partitions than ranks, the extra ranks receive "
              "no data in the final stage.",
              "--ranks 8 with numPartitions=4",
              "use at least as many partitions as ranks"),
        # -- input-data configurations (PAP05x) ------------------------------
        _spec("PAP050", "input-config-invalid", Severity.ERROR,
              "an input-data configuration fails to parse or validate",
              "Input-data configs declare the element schema; a broken one "
              "disables all type-flow analysis.",
              "<value name=\"seq_start\" type=\"integre\"/>",
              "<value name=\"seq_start\" type=\"integer\"/>"),
        _spec("PAP051", "input-config-unused", Severity.WARNING,
              "an input-data configuration no workflow argument references",
              "An input config whose id no argument names (via format=) is "
              "dead weight, or the argument has a typo.",
              "--input graph.xml with no format=\"graph_edge\" argument",
              "add format=\"graph_edge\" to the input argument"),
        # -- out-of-core sizing (PAP06x) --------------------------------------
        _spec("PAP060", "input-exceeds-memory-budget", Severity.WARNING,
              "the estimated input size exceeds the declared memory budget "
              "and no spill-capable operator is in the workflow",
              "When the input cannot fit a rank's budget, the run must "
              "spill; without a spill-capable operator it will OOM-abort.",
              "--memory-budget 1MB with a 100MB input and no sort",
              "raise the budget or let a sort/group stage spill"),
        _spec("PAP061", "invalid-memory-budget", Severity.ERROR,
              "the declared --memory-budget does not parse as a size",
              "Budgets use the size grammar: '64MB', '512KiB', '1048576'.",
              "--memory-budget furiously",
              "--memory-budget 64MB"),
        # -- execution-backend fit (PAP07x) ----------------------------------
        _spec("PAP070", "process-backend-faults", Severity.WARNING,
              "fault injection is declared but backend='process' cannot "
              "run it; the runtime will refuse the configuration",
              "Simulated fault injection needs the deterministic threaded "
              "fabric; forked processes take real faults instead.",
              "--backend process --faults crash:0.1",
              "use the threaded backend for fault injection"),
        _spec("PAP071", "process-backend-oversubscribed", Severity.INFO,
              "more process ranks than CPU cores; forked ranks will "
              "time-slice instead of running in parallel",
              "Process ranks map to real cores; oversubscribing trades "
              "parallelism for context switching.",
              "--backend process --ranks 64 on an 8-core host",
              "keep ranks at or below the core count"),
        _spec("PAP072", "process-backend-unguarded", Severity.INFO,
              "a large process-backend run declares no checkpoint store; "
              "a single worker crash restarts it from scratch",
              "Long process-backend runs should checkpoint so a crashed "
              "worker resumes from the committed job prefix.",
              "a multi-GB process run without --checkpoint-dir",
              "add --checkpoint-dir to the run"),
        # -- optimization advisories (PAP08x) ---------------------------------
        _spec("PAP080", "dead-operator", Severity.INFO,
              "an operator whose outputs nothing downstream ever consumes",
              "The plan-IR found no edge (path match or $ref) from any of "
              "this operator's outputs to a later stage: the whole stage — "
              "including its exchange, if any — is wasted work. The "
              "optimizer's dead-operator-elimination pass (papar optimize) "
              "deletes exactly these stages.",
              "a Sort stage whose output path no later operator reads",
              "applied rewrite (dead-operator-elimination): the stage is "
              "deleted; 'papar optimize' removes it and its exchange from "
              "the plan"),
        _spec("PAP081", "redundant-exchange", Severity.INFO,
              "adjacent exchanges where the first shuffle's effect is discarded",
              "Sort and group redistribute records by key range; a second "
              "range exchange immediately after (sort->sort, sort->group, "
              "or a distribute feeding either) re-shuffles everything, "
              "discarding the first exchange's layout. One exchange "
              "suffices. (sort->distribute is NOT flagged: distribute's "
              "position permutation preserves the sorted order — the "
              "paper's canonical pipeline.) The "
              "redundant-exchange-elimination pass applies the safe subset "
              "of these: same-key shapes where the surviving exchange "
              "reproduces the exact byte order; different-key and "
              "distribute-fed shapes are refused because stable-sort tie "
              "order depends on the dropped stage.",
              "a Sort stage feeding another Sort on the same key",
              "applied rewrite (redundant-exchange-elimination): "
              "sort->sort on one key collapses to the second sort alone — "
              "'papar optimize' drops the first exchange and re-points the "
              "survivor at its input"),
        _spec("PAP082", "collapsible-permutation-chain", Severity.INFO,
              "adjacent distributes whose stride permutations compose into one",
              "Distribute policies are stride-permutation matrices (the "
              "paper's L_m^n formalism); products of permutation matrices "
              "are permutation matrices, so back-to-back distributes "
              "compose into a single position shuffle. The "
              "permutation-chain-composition pass collapses the chains "
              "whose composition is provably the identity (the runtimes "
              "deal each upstream partition per stream, so general "
              "compositions reorder rows within partitions and are "
              "refused).",
              "distribute(cyclic) feeding distribute(block)",
              "applied rewrite (permutation-chain-composition): "
              "distribute(any, 1 partition) feeding distribute(p) is L_1 "
              "compose L_p = L_p — 'papar optimize' deletes the "
              "single-partition stage after probe-verifying equality"),
        _spec("PAP083", "unused-column", Severity.INFO,
              "input columns no key or add-on reads; pruning them shrinks "
              "every exchange",
              "Backward liveness found schema fields no operator's key or "
              "add-on ever reads. Workflows ship whole records through "
              "every exchange; the column-pruning pass carries row-ids "
              "instead and re-attaches the unused columns at final "
              "materialization, saving the reported bytes per exchange.",
              "a 4-column schema where only one column is ever a key",
              "applied rewrite (column-pruning): 'papar run --optimize' "
              "moves live columns plus a synthetic row id through every "
              "exchange and re-attaches the pruned columns afterwards — "
              "bit-identical output, narrower shuffles"),
        _spec("PAP084", "exchange-hotspot", Severity.INFO,
              "an exchange whose estimated payload exceeds the hotspot "
              "threshold",
              "The cost model estimates bytes moved per exchange from the "
              "input row count and the inferred record width; stages above "
              "the threshold dominate the run and are the first candidates "
              "for tuning (more ranks, column pruning, combiners). No "
              "single rewrite applies mechanically — but the optimizer "
              "passes (especially column-pruning) usually shrink the "
              "hotspot first.",
              "a sort over 10^8 records of 16-byte elements (1.6 GB moved)",
              "applied mitigation: run 'papar optimize' — column-pruning "
              "and exchange elimination shrink the hotspot; then tune "
              "ranks/combiners for what remains"),
        # -- streaming-service fit (PAP09x) -----------------------------------
        _spec("PAP090", "stream-unsafe-policy", Severity.WARNING,
              "a serve workflow routes appends by arrival order, not by key",
              "The streaming daemon routes incremental appends through the "
              "last sort/group stage feeding the final distribute. With "
              "neither, records are dealt by *position* (the permutation "
              "policies are order-sensitive): which partition an appended "
              "record lands in depends on when its batch arrived, and only "
              "a full rebalance reconciles placement with the batch run.",
              "a lone <operator operator=\"Distribute\"> served with "
              "--serve and policy cyclic",
              "put a Sort or Group stage before the distribute so appends "
              "route by each record's own key"),
        # -- analyzer self-diagnosis ----------------------------------------
        _spec("PAP099", "internal-error", Severity.ERROR,
              "a lint rule crashed; please report the configuration",
              "A checker raised instead of yielding diagnostics; the "
              "analyzer caught it and kept running the remaining rules.",
              "n/a (analyzer defect, not a configuration defect)",
              "report the configuration that triggered it"),
    )
}

#: registered checker functions, in registration order
CHECKERS: list[Callable] = []


def checker(func: Callable) -> Callable:
    """Register a checker (a generator of diagnostics over a LintContext)."""
    CHECKERS.append(func)
    return func


def all_codes() -> list[str]:
    """Every catalogued code, sorted."""
    return sorted(CATALOG)


def _load() -> None:
    """Import the rule modules so their checkers register."""
    from repro.analysis.rules import (  # noqa: F401
        advisory,
        backend,
        ooc,
        paths,
        plan,
        references,
        schema_flow,
        serve,
    )


_load()

__all__ = ["CATALOG", "CHECKERS", "RuleSpec", "all_codes", "checker"]


def iter_checkers() -> Iterable[Callable]:
    """The registered checker callables, in registration order."""
    return tuple(CHECKERS)
