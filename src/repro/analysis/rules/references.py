"""The ``$variable`` reference graph (PAP010-PAP014, PAP004-PAP006).

A workflow's glue is its references: plain ``$name`` pulls a workflow
argument, dotted ``$opid.param`` / ``$opid.$attr`` pulls an intermediate
value an earlier operator produced.  These rules walk every occurrence and
verify the graph is closed (nothing undefined), acyclic, and respects
execution order (no forward references), plus the converse hygiene check:
every declared argument is actually used.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.model import LintContext, Reference, iter_references
from repro.analysis.rules import checker
from repro.ops.base import registered_names

#: attributes every planned operator exposes to later references
_IMPLICIT_OUTPUTS = ("outputPath", "outputPathList")


def _closest(name: str, candidates: list[str]) -> Optional[str]:
    """A cheap did-you-mean: candidate within edit-prefix distance."""
    import difflib

    matches = difflib.get_close_matches(name, candidates, n=1, cutoff=0.6)
    return matches[0] if matches else None


@checker
def check_operator_types(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP004 unknown operator type, PAP005/PAP006 add-on validity."""
    if ctx.model is None:
        return
    from repro.analysis.model import KNOWN_OPERATORS

    known_addons = registered_names()["addon"]
    for op in ctx.model.operators:
        if op.kind and op.kind not in KNOWN_OPERATORS:
            yield ctx.diag(
                "PAP004",
                f"operator {op.id!r} uses unknown operator type {op.operator!r}",
                line=op.line,
                suggestion=f"use one of: {', '.join(KNOWN_OPERATORS)}",
            )
        for addon in op.addons:
            name = addon.operator.strip().lower()
            if name and name not in known_addons:
                hint = _closest(name, known_addons)
                yield ctx.diag(
                    "PAP005",
                    f"operator {op.id!r} attaches unknown add-on {addon.operator!r}",
                    line=addon.line,
                    suggestion=f"did you mean {hint!r}?" if hint else
                    f"registered add-ons: {', '.join(known_addons)}",
                )
        # only the group planner consumes <addon> declarations
        if op.addons and op.kind != "group":
            for addon in op.addons:
                yield ctx.diag(
                    "PAP006",
                    f"add-on {addon.operator!r} on {op.kind or 'unknown'} operator "
                    f"{op.id!r} is silently ignored at plan time",
                    line=addon.line,
                    suggestion="attach add-ons to a group operator",
                )


@checker
def check_references(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP010 undefined, PAP011 forward, PAP012 cycles, PAP014 bad attrs."""
    if ctx.model is None:
        return
    model = ctx.model
    arg_names = [a.name for a in model.arguments]
    op_ids = model.operator_ids()
    op_index = {op_id: i for i, op_id in enumerate(op_ids)}

    # operator -> set of operators it references (for cycle detection)
    ref_edges: dict[str, set[str]] = {op_id: set() for op_id in op_ids}
    deferred: list[tuple[Reference, str]] = []  # forward refs, maybe cycles

    for ref in iter_references(model):
        head = ref.head
        dotted = len(ref.parts) > 1
        here = op_index.get(ref.op.id) if ref.op is not None else None

        if not dotted:
            if head in arg_names:
                continue
            if head in op_index:
                # "$sort" alone names an operator, not a value
                yield ctx.diag(
                    "PAP010",
                    f"reference ${head} names operator {head!r} but no attribute; "
                    f"operators are referenced as ${head}.outputPath",
                    line=ref.line,
                    suggestion=f"write ${head}.outputPath (or another attribute)",
                )
                continue
            hint = _closest(head, arg_names + op_ids)
            yield ctx.diag(
                "PAP010",
                f"undefined reference ${head} in "
                + (f"operator {ref.op.id!r} " if ref.op else "")
                + f"parameter {ref.slot!r}; known arguments: {sorted(arg_names)}",
                line=ref.line,
                suggestion=f"did you mean ${hint}?" if hint else
                "declare it under <arguments> or reference an earlier operator",
            )
            continue

        # dotted: $opid.attr
        if head not in op_index:
            hint = _closest(head, op_ids)
            yield ctx.diag(
                "PAP010",
                f"reference ${ref.ref} names unknown operator {head!r}",
                line=ref.line,
                suggestion=f"did you mean ${hint}.{'.'.join(ref.parts[1:])}?"
                if hint else f"declared operators: {sorted(op_ids)}",
            )
            continue
        if ref.op is not None:
            ref_edges[ref.op.id].add(head)
        if here is not None and op_index[head] >= here:
            # self- and forward references: defer — if part of a cycle we
            # report PAP012 once per cycle instead of noisy PAP011s
            deferred.append((ref, head))
            continue
        yield from _check_attribute(ctx, ref, head)

    # cycle detection over the operator reference graph
    cycles = _find_cycles(ref_edges)
    cyclic_ops = {op_id for cycle in cycles for op_id in cycle}
    for cycle in cycles:
        members = " -> ".join(cycle + [cycle[0]])
        first = min(cycle, key=lambda o: op_index[o])
        op = model.operators[op_index[first]]
        yield ctx.diag(
            "PAP012",
            f"operators reference each other in a cycle: {members}",
            line=op.line,
            suggestion="operators run in declaration order; break the cycle",
        )
    for ref, head in deferred:
        if ref.op is not None and ref.op.id in cyclic_ops and head in cyclic_ops:
            continue  # already covered by the cycle diagnostic
        if ref.op is not None and head == ref.op.id:
            yield ctx.diag(
                "PAP012",
                f"operator {ref.op.id!r} references its own output ${ref.ref}",
                line=ref.line,
                suggestion="an operator cannot consume a value it produces",
            )
        else:
            yield ctx.diag(
                "PAP011",
                f"operator {ref.op.id!r} references ${ref.ref}, but operator "
                f"{head!r} runs later (operators execute in declaration order)",
                line=ref.line,
                suggestion=f"move {head!r} before {ref.op.id!r}, or reference "
                "an earlier operator",
            )


def _check_attribute(
    ctx: LintContext, ref: Reference, producer_id: str
) -> Iterator[Diagnostic]:
    """PAP014: the referenced attribute must exist on the producer."""
    assert ctx.model is not None
    idx = ctx.model.operator_index(producer_id)
    if idx is None:
        return
    producer = ctx.model.operators[idx]
    attr = ref.parts[1] if len(ref.parts) > 1 else ""
    exposed = set(_IMPLICIT_OUTPUTS)
    for addon in producer.addons:
        exposed.add(addon.attr or addon.operator)
    if attr not in exposed:
        hint = _closest(attr, sorted(exposed))
        yield ctx.diag(
            "PAP014",
            f"reference ${ref.ref}: operator {producer_id!r} produces no "
            f"attribute {attr!r} (it exposes {sorted(exposed)})",
            line=ref.line,
            suggestion=f"did you mean ${producer_id}.{hint}?" if hint else None,
        )


def _find_cycles(edges: dict[str, set[str]]) -> list[list[str]]:
    """Strongly connected components with more than one node (or a self-loop
    that references *forward* is handled separately); Tarjan, iterative."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    cycles: list[list[str]] = []

    def strongconnect(v: str) -> None:
        work = [(v, iter(sorted(edges.get(v, ()))))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in edges:
                    continue
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(edges.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                if len(scc) > 1:
                    cycles.append(sorted(scc))

    for v in sorted(edges):
        if v not in index:
            strongconnect(v)
    return cycles


@checker
def check_unused_arguments(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP013: declared arguments nothing references."""
    if ctx.model is None:
        return
    used = {ref.head for ref in iter_references(ctx.model) if len(ref.parts) == 1}
    # dotted references never hit arguments, but count $arg inside dotted
    # heads conservatively (heads are operators, so nothing to add)
    for arg in ctx.model.arguments:
        if arg.name not in used:
            yield ctx.diag(
                "PAP013",
                f"workflow argument {arg.name!r} is declared but never referenced",
                line=arg.line,
                suggestion="remove the declaration or reference it as "
                f"${arg.name}",
            )
