"""Execution-backend fit checks (PAP070-PAP071).

These rules only fire when the user *declares* the backend they intend to
run with (``papar lint --backend process``): PAP070 warns ahead of the
runtime's :class:`~repro.errors.ConfigError` when fault tolerance is
declared together with ``backend='process'`` (the injector and recovery
loop need the deterministic threaded fabric), and PAP071 notes when the
intended rank count oversubscribes the machine's CPUs — forked ranks
compete for cores, so extra ranks add shuffle volume without adding
parallelism.
"""

from __future__ import annotations

import os
from typing import Iterator, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.model import LintContext
from repro.analysis.rules import checker


def available_cpus() -> Optional[int]:
    """CPU cores the process backend can actually use (patchable in tests)."""
    return os.cpu_count()


@checker
def check_process_backend(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP070/PAP071: declared backend versus its runtime restrictions."""
    if ctx.backend != "process":
        return
    if ctx.faults:
        yield ctx.diag(
            "PAP070",
            "fault tolerance (faults/checkpoint/retry) is declared but "
            "backend='process' cannot run it: injection and recovery need "
            "the deterministic threaded fabric, so the run will be refused",
            suggestion="use backend='mpi' for chaos runs, or drop the "
            "fault-tolerance flags for wall-clock runs",
        )
    cpus = available_cpus()
    if ctx.ranks is not None and cpus is not None and ctx.ranks > cpus:
        yield ctx.diag(
            "PAP071",
            f"{ctx.ranks} process ranks on a machine with {cpus} CPU "
            "core(s): forked ranks will time-slice instead of running in "
            "parallel",
            suggestion=f"use at most {cpus} ranks with backend='process', "
            "or backend='mpi' if the rank count models a larger cluster",
        )
