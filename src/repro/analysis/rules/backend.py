"""Execution-backend fit checks (PAP070-PAP072).

These rules only fire when the user *declares* the backend they intend to
run with (``papar lint --backend process``): PAP070 warns ahead of the
runtime's :class:`~repro.errors.ConfigError` when *fault injection* is
declared together with ``backend='process'`` (the injector's seeded draw
streams need the deterministic threaded fabric; checkpoint/retry recovery
is supported via gang-restart and does not trip this rule), PAP071 notes
when the intended rank count oversubscribes the machine's CPUs — forked
ranks compete for cores, so extra ranks add shuffle volume without adding
parallelism — and PAP072 advises checkpointing for large process-backend
runs, where a single worker crash otherwise restarts the whole gang from
scratch.
"""

from __future__ import annotations

import os
from typing import Iterator, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.model import LintContext
from repro.analysis.rules import checker


def available_cpus() -> Optional[int]:
    """CPU cores the process backend can actually use (patchable in tests)."""
    return os.cpu_count()


#: a process-backend run is "large" enough for the PAP072 checkpoint
#: advisory at this many ranks ...
LARGE_RUN_RANKS = 8
#: ... or this many assumed input records
LARGE_RUN_RECORDS = 1_000_000


@checker
def check_process_backend(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP070-PAP072: declared backend versus its runtime restrictions."""
    if ctx.backend != "process":
        return
    if ctx.faults:
        yield ctx.diag(
            "PAP070",
            "fault injection (--faults) is declared but backend='process' "
            "cannot run it: the injector's seeded draws need the "
            "deterministic threaded fabric, so the run will be refused",
            suggestion="use backend='mpi' for injected-chaos runs; "
            "checkpoint/retry recovery works on backend='process' via "
            "gang-restart",
        )
    cpus = available_cpus()
    if ctx.ranks is not None and cpus is not None and ctx.ranks > cpus:
        yield ctx.diag(
            "PAP071",
            f"{ctx.ranks} process ranks on a machine with {cpus} CPU "
            "core(s): forked ranks will time-slice instead of running in "
            "parallel",
            suggestion=f"use at most {cpus} ranks with backend='process', "
            "or backend='mpi' if the rank count models a larger cluster",
        )
    large = (ctx.ranks is not None and ctx.ranks >= LARGE_RUN_RANKS) or (
        ctx.assume_records is not None and ctx.assume_records >= LARGE_RUN_RECORDS
    )
    if large and not ctx.checkpoint:
        yield ctx.diag(
            "PAP072",
            "this is a large process-backend run with no checkpoint store "
            "declared: a single worker crash (OOM kill, segfault, hang) "
            "restarts the whole gang from scratch",
            suggestion="pass --checkpoint-dir (DiskCheckpointStore) so a "
            "gang-restart resumes from the committed job prefix",
        )
