"""Record-schema type flow through the operator chain (PAP020-PAP025).

The input-data configuration declares the fields of one record; operators
key on those fields, and group add-ons append new ones (``indegree`` in the
hybrid-cut workflow).  These rules walk the chain with a field->type map,
so a key typo, a threshold of the wrong type, or an aggregate over a
missing value field is caught before anything runs.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.model import LintContext, LintOperator, SymbolicEnv
from repro.analysis.rules import checker
from repro.config.workflow import (
    BOOLEAN_FALSE_LITERALS,
    BOOLEAN_TRUE_LITERALS,
    _REF_RE,
)
from repro.ops.base import registered_names

_NUMERIC_TYPES = {"integer", "long", "float", "double"}
_FLOAT_TYPES = {"float", "double"}

#: addon name -> type of the attribute it appends (mirrors the registry
#: without instantiating operators)
def _addon_attr_type(name: str) -> str:
    from repro.ops.base import _ADDONS

    cls = _ADDONS.get(name.strip().lower())
    return cls.attr_type if cls is not None else "long"


def _addon_needs_field(name: str) -> bool:
    from repro.ops.base import _ADDONS

    cls = _ADDONS.get(name.strip().lower())
    return cls.needs_field if cls is not None else False


def _resolve_key(
    op: LintOperator, env: SymbolicEnv, ctx: LintContext
) -> tuple[Optional[str], Optional[int]]:
    """The operator's key as a plain field/attribute name, if resolvable."""
    key_param = op.param("key", "keyId")
    if key_param is None or key_param.value is None:
        return None, None
    resolved, complete = env.resolve(key_param.value)
    if not complete or resolved is None or _REF_RE.search(resolved):
        return None, key_param.line
    return resolved.strip(), key_param.line


@checker
def check_schema_flow(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP020/021/024: key membership and type flow through the chain."""
    if ctx.model is None:
        return
    schema, _arg = ctx.input_schema()
    if schema is None:
        return
    ir = ctx.ir()
    if ir is None:
        return
    env = ir.env
    available: dict[str, str] = {f.name: f.type for f in schema.fields}

    for op in ctx.model.operators:
        key, key_line = _resolve_key(op, env, ctx)
        keyed = op.kind in ("sort", "group", "split")
        if keyed and key is not None and key not in available:
            import difflib

            hint = difflib.get_close_matches(key, sorted(available), n=1, cutoff=0.6)
            yield ctx.diag(
                "PAP020",
                f"operator {op.id!r} keys on {key!r}, which is not a field "
                f"available at this stage; known fields: {sorted(available)}",
                line=key_line or op.line,
                suggestion=f"did you mean {hint[0]!r}?" if hint else
                "declare the field in the input <element> or add it with an add-on",
            )
        if (
            op.kind == "group"
            and key is not None
            and available.get(key) in _FLOAT_TYPES
        ):
            yield ctx.diag(
                "PAP021",
                f"operator {op.id!r} groups on {key!r} of type "
                f"{available[key]}; floating-point equality makes group "
                "boundaries fragile",
                line=key_line or op.line,
                suggestion="group on an integer field, or bucket the values first",
            )
        # add-ons: value-field existence, then extend the availability map
        if op.kind == "group":
            for addon in op.addons:
                name = addon.operator.strip().lower()
                if name not in registered_names()["addon"]:
                    continue  # PAP005 already reported
                value_field, _ = env.resolve(addon.value)
                if _addon_needs_field(name):
                    if value_field is None:
                        yield ctx.diag(
                            "PAP024",
                            f"add-on {addon.operator!r} on operator {op.id!r} "
                            "aggregates a value field but declares none",
                            line=addon.line,
                            suggestion='add value="<field>" to the <addon>',
                        )
                    elif value_field not in available:
                        yield ctx.diag(
                            "PAP024",
                            f"add-on {addon.operator!r} on operator {op.id!r} "
                            f"aggregates field {value_field!r}, which is not in "
                            f"the schema; known fields: {sorted(available)}",
                            line=addon.line,
                        )
                attr = addon.attr or addon.operator
                available[attr] = _addon_attr_type(name)


@checker
def check_split_thresholds(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP022/023: split thresholds comparable and covering."""
    if ctx.model is None:
        return
    from repro.policies.split_policy import SplitPolicy

    schema, _arg = ctx.input_schema()
    ir = ctx.ir()
    if ir is None:
        return
    env = ir.env

    # rebuild the availability map (cheap; mirrors check_schema_flow)
    available: dict[str, str] = (
        {f.name: f.type for f in schema.fields} if schema is not None else {}
    )
    for op in ctx.model.operators:
        if op.kind == "group":
            for addon in op.addons:
                attr = addon.attr or addon.operator
                if attr:
                    available[attr] = _addon_attr_type(addon.operator)
        if op.kind != "split":
            continue
        policy_param = op.param("policy", "splitPolicy")
        if policy_param is None or policy_param.value is None:
            continue  # missing policy is the planner's PAP040 territory
        resolved, complete = env.resolve(policy_param.value)
        if not complete:
            continue  # unresolvable without user args; checked at plan time
        try:
            policy = SplitPolicy.parse(resolved or "")
        except Exception:
            # PAP034 (split-policy-syntax) is emitted by the paths rules
            continue

        key, key_line = _resolve_key(op, env, ctx)
        key_type = available.get(key) if key is not None else None
        if key_type == "string":
            yield ctx.diag(
                "PAP022",
                f"operator {op.id!r} splits string-typed key {key!r} against "
                "numeric thresholds; the comparison can never be satisfied "
                "meaningfully",
                line=key_line or op.line,
                suggestion="split on a numeric field (or an add-on attribute "
                "such as a count)",
            )
        if (
            key_type in ("integer", "long")
            and any(c.operand != int(c.operand) for c in policy.conditions)
        ):
            yield ctx.diag(
                "PAP022",
                f"operator {op.id!r} compares integer key {key!r} with "
                "non-integer threshold(s) "
                f"{[c.operand for c in policy.conditions if c.operand != int(c.operand)]}",
                line=policy_param.line or op.line,
                suggestion="use integer thresholds for integer keys",
            )

        yield from _check_coverage(ctx, op, policy, policy_param.line)


def _check_coverage(ctx, op, policy, line) -> Iterator[Diagnostic]:
    """PAP023: every key value should match some condition (first match
    wins); probe the threshold boundaries instead of solving inequalities."""
    probes: set[float] = set()
    for cond in policy.conditions:
        t = cond.operand
        probes.update((t - 1.0, t - 0.5, t, t + 0.5, t + 1.0))
    unrouted = sorted(
        v for v in probes
        if not any(c.matches_scalar(v) for c in policy.conditions)
    )
    if unrouted:
        shown = ", ".join(f"{v:g}" for v in unrouted[:4])
        yield ctx.diag(
            "PAP023",
            f"split operator {op.id!r}: key values such as {shown} match no "
            "condition and would abort the run",
            line=line or op.line,
            suggestion="make the conditions cover the whole key range "
            "(e.g. pair {>=, t} with {<, t})",
        )


@checker
def check_boolean_literals(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP025: boolean literals outside the accepted true/false sets."""
    if ctx.model is None:
        return
    every_param = [(None, a) for a in ctx.model.arguments]
    for op in ctx.model.operators:
        every_param.extend((op, p) for p in op.params)
    for op, param in every_param:
        if param.type.lower() not in ("boolean", "bool"):
            continue
        value = param.value
        if value is None or _REF_RE.search(value):
            continue
        text = value.strip().lower()
        if text not in BOOLEAN_TRUE_LITERALS and text not in BOOLEAN_FALSE_LITERALS:
            where = f"operator {op.id!r} " if op is not None else ""
            yield ctx.diag(
                "PAP025",
                f"{where}boolean parameter {param.name!r} has literal "
                f"{value!r}, which is not a recognized true/false value "
                "(the runtime rejects it)",
                line=param.line,
                suggestion=f"use one of {sorted(BOOLEAN_TRUE_LITERALS)} or "
                f"{sorted(BOOLEAN_FALSE_LITERALS)}",
            )
