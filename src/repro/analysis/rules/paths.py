"""Path wiring between jobs (PAP030-PAP036, PAP034/035 policy syntax).

Operators communicate through paths: a job's ``inputPath`` either names an
earlier job's output (directly or as a directory prefix) or the workflow
input.  The plan-IR records that wiring as explicit edges; these rules
read the edges and flag outputs nobody reads, paths written twice,
directory reads with zero producers, and malformed policy strings.
"""

from __future__ import annotations

from difflib import get_close_matches
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.model import LintContext
from repro.analysis.rules import checker
from repro.config.workflow import _REF_RE


def _is_symbolic(text: str) -> bool:
    return bool(_REF_RE.search(text))


@checker
def check_path_wiring(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP030 dead outputs, PAP031 collisions, PAP032 orphan dir inputs."""
    if ctx.model is None or not ctx.model.operators:
        return
    ir = ctx.ir()
    if ir is None:
        return

    # -- collisions: two jobs writing the same (resolved) path ------------
    writers: dict[str, list[int]] = {}
    for node in ir.nodes:
        for path in node.outputs:
            if path:
                writers.setdefault(path, []).append(node.index)
    for path, idxs in writers.items():
        if _is_symbolic(path):
            continue
        if len(idxs) > 1:
            first = ir.nodes[idxs[0]]
            for i in idxs[1:]:
                node = ir.nodes[i]
                yield ctx.diag(
                    "PAP031",
                    f"operator {node.op_id!r} writes {path!r}, which operator "
                    f"{first.op_id!r} also writes; the second run clobbers the first",
                    line=node.output_line or node.line,
                    suggestion="give every operator a distinct output path",
                )

    # -- orphan directory inputs -------------------------------------------
    for node in ir.nodes:
        if node.index == 0 or node.input is None:
            continue
        path = node.input
        feeds = ir.in_edges(node.op_id)
        unmatched = all(e.src is None for e in feeds)
        if unmatched and path.endswith("/") and not _is_symbolic(path):
            yield ctx.diag(
                "PAP032",
                f"operator {node.op_id!r} reads directory {path!r}, but no "
                "earlier operator writes anything under it",
                line=node.input_line or node.line,
                suggestion="point inputPath at an earlier operator's output "
                "(e.g. $previous.outputPath)",
            )

    # -- dead outputs ------------------------------------------------------
    final = ir.final
    for node in ir.nodes:
        if final is not None and node.op_id == final.op_id:
            continue  # the final job's output is the workflow product
        consumed = ir.consumed_outputs(node.op_id)
        for k, out in enumerate(node.outputs):
            if out and k not in consumed:
                yield ctx.diag(
                    "PAP030",
                    f"output {out!r} of operator {node.op_id!r} is never "
                    "consumed by a later operator",
                    line=node.output_line or node.line,
                    suggestion="wire a later operator's inputPath to "
                    f"${node.op_id}.outputPath, or drop the operator",
                )


@checker
def check_split_shape(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP033 arity and PAP034 policy syntax for split operators."""
    if ctx.model is None:
        return
    from repro.policies.split_policy import SplitPolicy

    ir = ctx.ir()
    if ir is None:
        return
    env = ir.env
    for node in ir.nodes:
        op = node.op
        if node.kind != "split":
            continue
        policy_param = op.param("policy", "splitPolicy")
        paths_param = op.param("outputPathList")
        policy = None
        if policy_param is not None and policy_param.value is not None:
            resolved, complete = env.resolve(policy_param.value)
            probe = resolved if complete else _REF_RE.sub("0", policy_param.value)
            try:
                policy = SplitPolicy.parse(probe or "")
            except Exception as exc:
                yield ctx.diag(
                    "PAP034",
                    f"operator {op.id!r}: split policy "
                    f"{policy_param.value!r} does not parse: {exc}",
                    line=policy_param.line or op.line,
                    suggestion="use the grammar {op, operand},{op, operand},... "
                    "with op in >=, <=, >, <, ==, !=",
                )
        if (
            policy is not None
            and paths_param is not None
            and paths_param.value is not None
            and node.outputs_resolved
        ):
            n_paths = len(node.outputs)
            if n_paths != policy.num_outputs:
                yield ctx.diag(
                    "PAP033",
                    f"operator {op.id!r} declares {policy.num_outputs} split "
                    f"condition(s) but {n_paths} output path(s)",
                    line=paths_param.line or op.line,
                    suggestion="declare exactly one output path per condition",
                )


@checker
def check_partition_counts(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP035 unknown distribution policy, PAP036 bad literal counts."""
    if ctx.model is None:
        return
    from repro.policies.distr import _POLICIES

    ir = ctx.ir()
    if ir is None:
        return
    env = ir.env
    for node in ir.nodes:
        op = node.op
        if node.kind == "distribute":
            policy_param = op.param("distrPolicy", "policy")
            if policy_param is not None and policy_param.value is not None:
                resolved, complete = env.resolve(policy_param.value)
                if complete and resolved and resolved.strip().lower() not in _POLICIES:
                    close = get_close_matches(
                        resolved.strip().lower(), sorted(_POLICIES), n=1
                    )
                    yield ctx.diag(
                        "PAP035",
                        f"operator {op.id!r} uses unknown distribution policy "
                        f"{resolved!r}; registered: {sorted(_POLICIES)}",
                        line=policy_param.line or op.line,
                        suggestion=f"did you mean {close[0]!r}?" if close else None,
                    )
            nparts = op.param("numPartitions", "num_partitions")
            if nparts is not None and nparts.value is not None:
                resolved, complete = env.resolve(nparts.value)
                if complete and resolved is not None:
                    yield from _check_positive_int(
                        ctx, op, "numPartitions", resolved, nparts.line
                    )
        reducers = op.attrs.get("num_reducers")
        if reducers is not None:
            resolved, complete = env.resolve(reducers)
            if complete and resolved is not None:
                yield from _check_positive_int(
                    ctx, op, "num_reducers", resolved, op.line
                )


def _check_positive_int(ctx, op, what, text, line) -> Iterator[Diagnostic]:
    try:
        value = int(str(text).strip())
    except (TypeError, ValueError):
        yield ctx.diag(
            "PAP036",
            f"operator {op.id!r}: {what} is {text!r}, not an integer",
            line=line or op.line,
        )
        return
    if value < 1:
        yield ctx.diag(
            "PAP036",
            f"operator {op.id!r}: {what} is {value}, but must be >= 1",
            line=line or op.line,
        )
