"""Path wiring between jobs (PAP030-PAP036, PAP034/035 policy syntax).

Operators communicate through paths: a job's ``inputPath`` either names an
earlier job's output (directly or as a directory prefix) or the workflow
input.  These rules re-derive that wiring symbolically — without binding
real arguments — and flag outputs nobody reads, paths written twice,
directory reads with zero producers, and malformed policy strings.
"""

from __future__ import annotations

from difflib import get_close_matches
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.model import LintContext, resolve_dataflow
from repro.analysis.rules import checker
from repro.config.workflow import _REF_RE


def _is_symbolic(text: str) -> bool:
    return bool(_REF_RE.search(text))


@checker
def check_path_wiring(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP030 dead outputs, PAP031 collisions, PAP032 orphan dir inputs."""
    if ctx.model is None or not ctx.model.operators:
        return
    flows, _env = resolve_dataflow(ctx)

    # -- collisions: two jobs writing the same (resolved) path ------------
    writers: dict[str, list[int]] = {}
    for i, io in enumerate(flows):
        for path in io.outputs:
            if path:
                writers.setdefault(path, []).append(i)
    for path, idxs in writers.items():
        if _is_symbolic(path):
            continue
        if len(idxs) > 1:
            first = flows[idxs[0]].op
            for i in idxs[1:]:
                io = flows[i]
                yield ctx.diag(
                    "PAP031",
                    f"operator {io.op.id!r} writes {path!r}, which operator "
                    f"{first.id!r} also writes; the second run clobbers the first",
                    line=io.output_line or io.op.line,
                    suggestion="give every operator a distinct output path",
                )

    # -- consumption map ---------------------------------------------------
    consumed: set[tuple[int, int]] = set()  # (producer index, output index)
    for i, io in enumerate(flows):
        if io.input is None:
            continue
        path = io.input
        matched = False
        for j in range(i):
            for k, out in enumerate(flows[j].outputs):
                if not out:
                    continue
                if out == path or out.startswith(path.rstrip("/") + "/"):
                    # exact or directory-prefix consumption (hybrid-cut)
                    consumed.add((j, k))
                    matched = True
        if (
            not matched
            and i > 0
            and path.endswith("/")
            and not _is_symbolic(path)
        ):
            yield ctx.diag(
                "PAP032",
                f"operator {io.op.id!r} reads directory {path!r}, but no "
                "earlier operator writes anything under it",
                line=io.input_line or io.op.line,
                suggestion="point inputPath at an earlier operator's output "
                "(e.g. $previous.outputPath)",
            )

    # -- dead outputs ------------------------------------------------------
    last = len(flows) - 1
    for j, io in enumerate(flows):
        if j == last:
            continue  # the final job's output is the workflow product
        for k, out in enumerate(io.outputs):
            if out and (j, k) not in consumed:
                yield ctx.diag(
                    "PAP030",
                    f"output {out!r} of operator {io.op.id!r} is never "
                    "consumed by a later operator",
                    line=io.output_line or io.op.line,
                    suggestion="wire a later operator's inputPath to "
                    f"${io.op.id}.outputPath, or drop the operator",
                )


@checker
def check_split_shape(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP033 arity and PAP034 policy syntax for split operators."""
    if ctx.model is None:
        return
    from repro.policies.split_policy import SplitPolicy

    flows, env = resolve_dataflow(ctx)
    for io in flows:
        op = io.op
        if op.kind != "split":
            continue
        policy_param = op.param("policy", "splitPolicy")
        paths_param = op.param("outputPathList")
        policy = None
        if policy_param is not None and policy_param.value is not None:
            resolved, complete = env.resolve(policy_param.value)
            probe = resolved if complete else _REF_RE.sub("0", policy_param.value)
            try:
                policy = SplitPolicy.parse(probe or "")
            except Exception as exc:
                yield ctx.diag(
                    "PAP034",
                    f"operator {op.id!r}: split policy "
                    f"{policy_param.value!r} does not parse: {exc}",
                    line=policy_param.line or op.line,
                    suggestion="use the grammar {op, operand},{op, operand},... "
                    "with op in >=, <=, >, <, ==, !=",
                )
        if (
            policy is not None
            and paths_param is not None
            and paths_param.value is not None
            and io.outputs_resolved
        ):
            n_paths = len(io.outputs)
            if n_paths != policy.num_outputs:
                yield ctx.diag(
                    "PAP033",
                    f"operator {op.id!r} declares {policy.num_outputs} split "
                    f"condition(s) but {n_paths} output path(s)",
                    line=paths_param.line or op.line,
                    suggestion="declare exactly one output path per condition",
                )


@checker
def check_partition_counts(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP035 unknown distribution policy, PAP036 bad literal counts."""
    if ctx.model is None:
        return
    from repro.policies.distr import _POLICIES

    flows, env = resolve_dataflow(ctx)
    for io in flows:
        op = io.op
        if op.kind == "distribute":
            policy_param = op.param("distrPolicy", "policy")
            if policy_param is not None and policy_param.value is not None:
                resolved, complete = env.resolve(policy_param.value)
                if complete and resolved and resolved.strip().lower() not in _POLICIES:
                    close = get_close_matches(
                        resolved.strip().lower(), sorted(_POLICIES), n=1
                    )
                    yield ctx.diag(
                        "PAP035",
                        f"operator {op.id!r} uses unknown distribution policy "
                        f"{resolved!r}; registered: {sorted(_POLICIES)}",
                        line=policy_param.line or op.line,
                        suggestion=f"did you mean {close[0]!r}?" if close else None,
                    )
            nparts = op.param("numPartitions", "num_partitions")
            if nparts is not None and nparts.value is not None:
                resolved, complete = env.resolve(nparts.value)
                if complete and resolved is not None:
                    yield from _check_positive_int(
                        ctx, op, "numPartitions", resolved, nparts.line
                    )
        reducers = op.attrs.get("num_reducers")
        if reducers is not None:
            resolved, complete = env.resolve(reducers)
            if complete and resolved is not None:
                yield from _check_positive_int(
                    ctx, op, "num_reducers", resolved, op.line
                )


def _check_positive_int(ctx, op, what, text, line) -> Iterator[Diagnostic]:
    try:
        value = int(str(text).strip())
    except (TypeError, ValueError):
        yield ctx.diag(
            "PAP036",
            f"operator {op.id!r}: {what} is {text!r}, not an integer",
            line=line or op.line,
        )
        return
    if value < 1:
        yield ctx.diag(
            "PAP036",
            f"operator {op.id!r}: {what} is {value}, but must be >= 1",
            line=line or op.line,
        )
