"""Checks on the resolved :class:`~repro.core.planner.WorkflowPlan`
(PAP040-PAP044).

When the engine manages to plan the workflow (with user-supplied or
synthesized arguments), a second family of rules inspects the *resolved*
artifacts: the distribution policy must generate a genuine permutation of
the declared partition count, collective schedules (``num_reducers``) must
be consistent across jobs, and determinism hazards in the sort -> split /
distribute chain are surfaced.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.model import LintContext
from repro.analysis.rules import checker


def _op_line(ctx: LintContext, op_id: str) -> Optional[int]:
    if ctx.model is None:
        return None
    idx = ctx.model.operator_index(op_id)
    if idx is None:
        return None
    return ctx.model.operators[idx].line


@checker
def check_plan_outcome(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP040: the planner rejected the workflow and no static rule said why."""
    if ctx.plan_error is None:
        return
    yield ctx.diag(
        "PAP040",
        f"the workflow does not plan: {ctx.plan_error}",
        line=ctx.model.line if ctx.model is not None else None,
    )


@checker
def check_permutations(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP041: distribution matrices must be valid permutations."""
    if ctx.plan is None:
        return
    from repro.ops.distribute import Distribute

    for job in ctx.plan.jobs:
        op = job.operator
        if not isinstance(op, Distribute):
            continue
        nparts = op.num_partitions
        if nparts < 1:
            continue  # PAP036 already covers non-positive literals
        policy = op.policy  # a DistributionPolicy (resolved by the planner)
        # probe with a count that exercises the remainder path
        n = 3 * nparts + 2
        try:
            perm = policy.permutation(n, nparts)
            counts = policy.counts(n, nparts)
        except Exception as exc:
            yield ctx.diag(
                "PAP041",
                f"job {job.op_id!r}: distribution policy {policy.name!r} fails "
                f"to build a permutation for {nparts} partition(s): {exc}",
                line=_op_line(ctx, job.op_id),
            )
            continue
        problems = []
        if len(perm) != n or not np.array_equal(np.sort(perm), np.arange(n)):
            problems.append(f"indices are not a permutation of 0..{n - 1}")
        if len(counts) != nparts:
            problems.append(
                f"{len(counts)} partition counts for {nparts} partitions"
            )
        elif int(np.sum(counts)) != n:
            problems.append(
                f"partition counts sum to {int(np.sum(counts))}, not {n}"
            )
        if problems:
            yield ctx.diag(
                "PAP041",
                f"job {job.op_id!r}: distribution policy {policy.name!r} is "
                f"not a valid permutation of {nparts} partition(s): "
                + "; ".join(problems),
                line=_op_line(ctx, job.op_id),
            )


@checker
def check_collective_schedule(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP042: num_reducers consistent across jobs and with the partition
    count; PAP044: declared ranks should not exceed the partition count."""
    if ctx.plan is None:
        return
    from repro.ops.distribute import Distribute

    declared = [
        (job, job.num_reducers)
        for job in ctx.plan.jobs
        if job.num_reducers is not None
    ]
    distinct = {n for _job, n in declared}
    if len(distinct) > 1:
        jobs = ", ".join(f"{job.op_id}={n}" for job, n in declared)
        yield ctx.diag(
            "PAP042",
            "jobs declare inconsistent reducer counts "
            f"({jobs}); every shuffle re-partitions the data differently",
            line=_op_line(ctx, declared[0][0].op_id),
            suggestion="use one num_reducers for the whole workflow",
        )

    nparts = None
    final_distribute = None
    for job in ctx.plan.jobs:
        if isinstance(job.operator, Distribute):
            nparts = job.operator.num_partitions
            final_distribute = job
    if nparts is not None:
        for job, n in declared:
            if n > nparts:
                yield ctx.diag(
                    "PAP042",
                    f"job {job.op_id!r} declares num_reducers={n}, more than "
                    f"the final partition count {nparts}; the extra reducers "
                    "produce empty shards",
                    line=_op_line(ctx, job.op_id),
                )
        if ctx.ranks is not None and ctx.ranks > nparts and final_distribute is not None:
            yield ctx.diag(
                "PAP044",
                f"running with {ctx.ranks} rank(s) but job "
                f"{final_distribute.op_id!r} produces only {nparts} "
                "partition(s); the surplus ranks stay idle",
                line=_op_line(ctx, final_distribute.op_id),
                suggestion="lower --ranks or raise numPartitions",
            )


@checker
def check_sort_determinism(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP043: sorts feeding a split/distribute partition tied keys by
    input order — stable, but input-order-sensitive."""
    if ctx.plan is None:
        return
    from repro.ops.distribute import Distribute
    from repro.ops.sort import Sort
    from repro.ops.split import Split

    by_id = {job.op_id: job for job in ctx.plan.jobs}
    for job in ctx.plan.jobs:
        if job.source is None or not isinstance(
            job.operator, (Split, Distribute)
        ):
            continue
        producer = by_id.get(job.source)
        if producer is None or not isinstance(producer.operator, Sort):
            continue
        yield ctx.diag(
            "PAP043",
            f"job {job.op_id!r} partitions the output of sort "
            f"{producer.op_id!r}: records with equal "
            f"{producer.operator.key!r} keys keep input order (stable sort), "
            "so partition contents depend on input file order",
            line=_op_line(ctx, job.op_id),
            suggestion="add a tie-breaking secondary key upstream if "
            "partition contents must be input-order independent",
        )
