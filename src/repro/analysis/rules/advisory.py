"""Optimization advisories over the analyzed plan-IR (PAP080-PAP084).

These rules never block a run — they are the static half of the plan
optimizer (ROADMAP item 2), reporting as INFO what a rewrite pass *would*
do: delete dead stages, drop redundant exchanges, collapse composed
stride permutations, prune unread columns, and point at the exchange
that dominates the bytes-moved budget.  ``papar explain`` renders the
same analyses as a report instead of diagnostics, and
:mod:`repro.analysis.optimize` is the other half: it applies each
advisory as a rewrite (``PASS_NAMES`` maps code -> pass) where the
rewrite is provably bit-identical, and records a refusal where it is
not — the advisory triggers here are deliberately broader than the
rewrite preconditions there (an advisory is a conversation starter, a
rewrite is a proof obligation).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.model import LintContext, iter_references
from repro.analysis.rules import checker

#: estimated payload above which PAP084 calls an exchange a hotspot
HOTSPOT_BYTES = 256 * 1024 * 1024

#: entry counts the PAP082 composition is probed at (coprime-ish sizes so
#: an equivalence must hold beyond one lucky divisor structure)
_PROBE_SIZES = (24, 36, 35)


def _referenced_ops(ctx: LintContext) -> set[str]:
    """Operator ids some *other* operator references via ``$opid....``."""
    assert ctx.model is not None
    ids = set(ctx.model.operator_ids())
    used: set[str] = set()
    for ref in iter_references(ctx.model):
        head = ref.head
        if head in ids and (ref.op is None or ref.op.id != head):
            used.add(head)
    return used


@checker
def check_dead_operators(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP080: a non-final operator no path edge or ``$ref`` ever consumes."""
    if ctx.model is None or len(ctx.model.operators) < 2:
        return
    ir = ctx.ir()
    if ir is None:
        return
    referenced = _referenced_ops(ctx)
    final = ir.final
    for node in ir.nodes:
        if final is not None and node.op_id == final.op_id:
            continue
        if ir.out_edges(node.op_id):
            continue
        if node.op_id in referenced:
            continue
        yield ctx.diag(
            "PAP080",
            f"operator {node.op_id!r} is dead: no later operator consumes "
            "any of its outputs, so the whole stage (and its exchange) is "
            "wasted work",
            line=node.line,
            suggestion=f"consume ${node.op_id}.outputPath downstream, or "
            "delete the operator",
        )


def _adjacent_exchanges(ir) -> Iterator[tuple]:
    """(producer, consumer) exchange pairs where consumer is the sole,
    immediate reader of the producer's outputs."""
    for node in ir.exchange_nodes():
        nxt = ir.sole_consumer(node.op_id)
        if nxt is not None and nxt.exchange is not None:
            yield node, nxt


def _same_key(a, b) -> bool:
    ka = a.param_value("key", "keyId")
    kb = b.param_value("key", "keyId")
    return ka is not None and ka == kb


def _sort_ascending(node) -> bool:
    value = node.param_value("ascending", "asc")
    return value is None or value.strip().lower() not in ("false", "0", "no")


@checker
def check_redundant_exchanges(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP081: an exchange whose layout the very next exchange discards."""
    if ctx.model is None:
        return
    ir = ctx.ir()
    if ir is None:
        return
    for first, second in _adjacent_exchanges(ir):
        pair = (first.kind, second.kind)
        redundant: Optional[str] = None
        if pair == ("sort", "sort"):
            redundant = (
                "the second sort re-ranges every record; the first sort's "
                "exchange is discarded"
            )
        elif pair == ("sort", "group"):
            redundant = (
                "the group stage re-ranges every record by its own key; the "
                "sort's exchange is discarded"
            )
        elif pair == ("group", "sort") and _same_key(first, second) and _sort_ascending(second):
            redundant = (
                "group output is already range-partitioned and ordered by "
                "that key; the ascending sort re-shuffles it for nothing"
            )
        elif first.kind == "distribute" and second.kind in ("sort", "group"):
            redundant = (
                "the position permutation is immediately destroyed by the "
                f"{second.kind} stage's range exchange"
            )
        # NOT flagged: sort -> distribute (the paper's canonical pipeline:
        # the position permutation preserves sorted order), and
        # distribute -> distribute (PAP082's composition territory).
        if redundant:
            yield ctx.diag(
                "PAP081",
                f"exchange of operator {first.op_id!r} ({first.exchange}) is "
                f"redundant: {redundant}",
                line=first.line,
                suggestion=f"drop operator {first.op_id!r}'s shuffle; one "
                "exchange suffices",
            )


def _policy_and_parts(node) -> tuple[Optional[str], Optional[int]]:
    policy = node.param_value("distrPolicy", "policy")
    nparts = node.param_value("numPartitions", "num_partitions")
    try:
        parts = int(str(nparts).strip()) if nparts is not None else None
    except ValueError:
        parts = None
    if parts is not None and parts < 1:
        parts = None
    return (policy.strip().lower() if policy else None), parts


def _composed_owners(p1, n1: int, p2, n2: int, n: int) -> Optional[np.ndarray]:
    """Partition owners after distribute(p1, n1) then distribute(p2, n2)."""
    try:
        perm1 = p1.permutation(n, n1)
        inv = np.empty(n, dtype=np.int64)
        inv[perm1] = np.arange(n, dtype=np.int64)
        return p2.assign(n, n2)[inv]
    except Exception:
        return None


@checker
def check_collapsible_distributes(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP082: distribute->distribute composes into one stride permutation."""
    if ctx.model is None:
        return
    ir = ctx.ir()
    if ir is None:
        return
    from repro.policies.distr import get_policy

    for first, second in _adjacent_exchanges(ir):
        if (first.kind, second.kind) != ("distribute", "distribute"):
            continue
        name1, parts1 = _policy_and_parts(first)
        name2, parts2 = _policy_and_parts(second)
        equivalent: Optional[str] = None
        if name1 and name2 and parts1 and parts2:
            try:
                p1, p2 = get_policy(name1), get_policy(name2)
            except Exception:
                p1 = p2 = None  # PAP035 already reports the unknown name
            if p1 is not None and p2 is not None:
                # probe the composition numerically: permutation products
                # are permutations, so one matching candidate at every
                # probe size is the single equivalent shuffle
                for candidate in ("cyclic", "block"):
                    cand = get_policy(candidate)
                    if all(
                        (o := _composed_owners(p1, parts1, p2, parts2, n)) is not None
                        and np.array_equal(o, cand.assign(n, parts2))
                        for n in _PROBE_SIZES
                    ):
                        equivalent = candidate
                        break
        detail = (
            f"equivalent to a single {equivalent!r} distribute with "
            f"numPartitions={parts2}"
            if equivalent
            else "the two position permutations compose into one shuffle "
            "(products of L matrices are permutations)"
        )
        yield ctx.diag(
            "PAP082",
            f"distribute chain {first.op_id!r} -> {second.op_id!r} is "
            f"collapsible: {detail}",
            line=first.line,
            suggestion="replace the chain with one distribute applying the "
            "composed permutation",
        )


def _fmt_bytes(n: float) -> str:
    for unit, scale in (("GB", 1 << 30), ("MB", 1 << 20), ("KB", 1 << 10)):
        if n >= scale:
            return f"{n / scale:.1f}{unit}"
    return f"{n:.0f}B"


@checker
def check_unused_columns(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP083: input columns nothing reads, with the bytes pruning saves."""
    if ctx.model is None:
        return
    analyzed = ctx.analyzed()
    if analyzed is None or not analyzed.cost.unused_columns:
        return
    # only worth advising when an intermediate exchange actually exists:
    # the final stage must materialize whole records either way
    final = analyzed.ir.final
    early = [
        e for e in analyzed.cost.exchanges
        if final is None or e.op_id != final.op_id
    ]
    if not early:
        return
    cols = ", ".join(repr(c) for c in analyzed.cost.unused_columns)
    saved = analyzed.cost.prunable_bytes
    estimate = (
        f"pruning them would save an estimated {_fmt_bytes(saved)} of "
        "exchange traffic"
        if saved is not None
        else "pruning them would shrink every intermediate exchange"
    )
    schema, arg = ctx.input_schema()
    yield ctx.diag(
        "PAP083",
        f"column(s) {cols} are never read by any key or add-on; {estimate}",
        line=arg.line if arg is not None else None,
        suggestion="an optimizer could move row-ids through intermediate "
        "exchanges and re-attach unused columns at materialization",
    )


@checker
def check_exchange_hotspots(ctx: LintContext) -> Iterator[Diagnostic]:
    """PAP084: an exchange whose estimated payload crosses the threshold."""
    if ctx.model is None:
        return
    analyzed = ctx.analyzed()
    if analyzed is None:
        return
    for est in analyzed.cost.exchanges:
        if est.est_bytes is None or est.est_bytes <= HOTSPOT_BYTES:
            continue
        node = analyzed.ir.node(est.op_id)
        yield ctx.diag(
            "PAP084",
            f"exchange of operator {est.op_id!r} ({est.kind}) moves an "
            f"estimated {_fmt_bytes(est.est_bytes)} "
            f"({est.rows:.0f} records x {est.row_bytes:.0f}B), above the "
            f"{_fmt_bytes(HOTSPOT_BYTES)} hotspot threshold",
            line=node.line if node is not None else None,
            suggestion="tune this stage first: more ranks, column pruning, "
            "or a combiner below the shuffle",
        )
