"""Diagnostic objects and lint results.

A :class:`Diagnostic` is one finding of the static analyzer: a stable rule
code (``PAP001``...), a severity, a source location, a human message, and —
when the rule knows one — a suggested fix.  A :class:`LintResult` collects
*every* finding of one analysis pass (the engine never stops at the first
error) and knows how to render itself as text or JSON and how to map onto a
process exit code.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional


class Severity(enum.Enum):
    """How bad a finding is.

    * ``ERROR`` — the configuration cannot run correctly; ``run``/``plan``
      refuse to proceed (unless ``--no-lint``).
    * ``WARNING`` — suspicious but runnable; fails the lint under ``--strict``.
    * ``INFO`` — an observation worth knowing; never affects the exit code.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: rank for sorting (most severe first)
_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding reported by a lint rule."""

    code: str
    severity: Severity
    message: str
    file: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None
    #: short kebab-case rule name (stable, documented in docs/lint-rules.md)
    rule: str = ""
    #: suggested fix, when the rule can propose one
    suggestion: Optional[str] = None

    @property
    def location(self) -> str:
        """``file:line`` rendering (with graceful fallbacks)."""
        name = self.file or "<config>"
        if self.line is None:
            return name
        return f"{name}:{self.line}"

    def render(self) -> str:
        """One-finding text rendering, compiler style."""
        text = f"{self.location}: {self.severity.value} {self.code} {self.message}"
        if self.suggestion:
            text += f"\n    fix: {self.suggestion}"
        return text

    def to_dict(self) -> dict:
        """JSON-stable dict form (schema documented in docs/lint-rules.md)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "rule": self.rule,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "column": self.column,
            "suggestion": self.suggestion,
        }


@dataclass
class LintResult:
    """Every diagnostic of one analysis pass."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: files the engine actually analyzed (workflow + input configs)
    files: list[str] = field(default_factory=list)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        """Append findings from another checker."""
        self.diagnostics.extend(diags)

    def sort(self) -> None:
        """Order findings by file, line, severity, code, then message.

        The message tie-break makes the order — and therefore ``--format
        json`` output — byte-stable across runs even when one rule emits
        several findings at the same location.
        """
        self.diagnostics.sort(
            key=lambda d: (
                d.file or "",
                d.line if d.line is not None else 0,
                _SEVERITY_ORDER[d.severity],
                d.code,
                d.message,
            )
        )

    # -- queries -------------------------------------------------------------

    @property
    def errors(self) -> list[Diagnostic]:
        """The error-severity findings."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """The warning-severity findings."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        """The info-severity findings."""
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    def codes(self) -> set[str]:
        """The distinct PAPnnn codes present in this result."""
        return {d.code for d in self.diagnostics}

    def ok(self, strict: bool = False) -> bool:
        """Whether the configuration passed (no errors; no warnings if strict)."""
        if self.errors:
            return False
        if strict and self.warnings:
            return False
        return True

    def exit_code(self, strict: bool = False) -> int:
        """0 when :meth:`ok`, 1 otherwise (matching the CLI contract)."""
        return 0 if self.ok(strict) else 1

    # -- rendering ----------------------------------------------------------

    def summary(self) -> str:
        """The one-line count summary ("N error(s), N warning(s), N info")."""
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info"
        )

    def render_text(self) -> str:
        """Full text report (one finding per block plus a summary line)."""
        lines = [d.render() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-stable dict form of the whole result."""
        return {
            "version": 1,
            "tool": "papar-lint",
            "files": list(self.files),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "info": len(self.infos),
            },
        }

    def render_json(self) -> str:
        """:meth:`to_dict` as indented JSON text."""
        return json.dumps(self.to_dict(), indent=2)
