"""Static analysis of PaPar configurations (``papar lint``).

A rule-based analyzer that checks a workflow configuration + input-data
configuration(s) + (optionally) an intended rank count *without executing
anything*, and a diagnostic engine that reports every finding with a stable
code (``PAP001``...), a severity, an XML source location, a message, and a
suggested fix.  See ``docs/lint-rules.md`` for the rule catalog.

Three front doors:

* CLI — ``python -m repro lint workflow.xml [--input input.xml] ...``;
* API — :meth:`repro.PaPar.lint` returning structured diagnostics;
* pipeline hook — ``plan`` / ``run`` refuse configurations with lint
  errors unless ``--no-lint`` is passed.

This module lazily re-exports its public names (PEP 562) because the
configuration parsers import :mod:`repro.analysis.locate` — eager imports
here would create a cycle with :mod:`repro.config`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_LAZY = {
    "Diagnostic": ("repro.analysis.diagnostics", "Diagnostic"),
    "LintResult": ("repro.analysis.diagnostics", "LintResult"),
    "Severity": ("repro.analysis.diagnostics", "Severity"),
    "Linter": ("repro.analysis.engine", "Linter"),
    "lint_workflow": ("repro.analysis.engine", "lint_workflow"),
    "lint_files": ("repro.analysis.engine", "lint_files"),
    "synthesize_arguments": ("repro.analysis.engine", "synthesize_arguments"),
    "CATALOG": ("repro.analysis.rules", "CATALOG"),
    "RuleSpec": ("repro.analysis.rules", "RuleSpec"),
    "all_codes": ("repro.analysis.rules", "all_codes"),
    "LocatingXMLParser": ("repro.analysis.locate", "LocatingXMLParser"),
    "parse_located": ("repro.analysis.locate", "parse_located"),
    "PlanIR": ("repro.analysis.ir", "PlanIR"),
    "IRNode": ("repro.analysis.ir", "IRNode"),
    "IREdge": ("repro.analysis.ir", "IREdge"),
    "build_ir": ("repro.analysis.ir", "build_ir"),
    "workflow_ir": ("repro.analysis.ir", "workflow_ir"),
    "run_dataflow": ("repro.analysis.dataflow", "run_dataflow"),
    "SchemaAnalysis": ("repro.analysis.dataflow", "SchemaAnalysis"),
    "LivenessAnalysis": ("repro.analysis.dataflow", "LivenessAnalysis"),
    "CardinalityAnalysis": ("repro.analysis.dataflow", "CardinalityAnalysis"),
    "analyze_plan": ("repro.analysis.cost", "analyze_plan"),
    "AnalyzedPlan": ("repro.analysis.cost", "AnalyzedPlan"),
    "ExplainReport": ("repro.analysis.explain", "ExplainReport"),
    "explain_workflow": ("repro.analysis.explain", "explain_workflow"),
    "explain_files": ("repro.analysis.explain", "explain_files"),
    "PASS_NAMES": ("repro.analysis.optimize", "PASS_NAMES"),
    "AppliedRewrite": ("repro.analysis.optimize", "AppliedRewrite"),
    "RefusedRewrite": ("repro.analysis.optimize", "RefusedRewrite"),
    "OptimizedPlan": ("repro.analysis.optimize", "OptimizedPlan"),
    "OptimizeReport": ("repro.analysis.optimize", "OptimizeReport"),
    "optimize_spec": ("repro.analysis.optimize", "optimize_spec"),
    "optimize_workflow": ("repro.analysis.optimize", "optimize_workflow"),
    "optimize_files": ("repro.analysis.optimize", "optimize_files"),
}

__all__ = sorted(_LAZY)

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.analysis.diagnostics import Diagnostic, LintResult, Severity
    from repro.analysis.engine import (
        Linter,
        lint_files,
        lint_workflow,
        synthesize_arguments,
    )
    from repro.analysis.locate import LocatingXMLParser, parse_located
    from repro.analysis.rules import CATALOG, RuleSpec, all_codes


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
