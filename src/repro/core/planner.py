"""Workflow planning: configuration -> an executable job sequence.

The planner resolves every ``$variable``, instantiates the operator objects,
and wires the dataflow between jobs.  The paper's operators communicate
through paths (``$sort.outputPath``); the planner recovers the dataflow graph
from those paths — including the hybrid-cut case where the ``distribute``
job's ``inputPath`` is the *directory* ``/tmp/split/`` holding both split
outputs, meaning "consume every output of the split job".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.config.workflow import Bindings, OperatorSpec, WorkflowSpec, bind_arguments
from repro.errors import WorkflowError
from repro.ops.base import get_addon
from repro.ops.distribute import Distribute
from repro.ops.group import Group
from repro.ops.sort import Sort
from repro.ops.split import Split
from repro.policies.split_policy import SplitPolicy


@dataclass
class PlannedJob:
    """One runnable stage of the workflow."""

    op_id: str
    operator_name: str
    operator: Any
    #: op_id of the producing job, or None to read the workflow input
    source: Optional[str]
    #: which outputs of the source to consume (for multi-output sources)
    source_outputs: list[int] = field(default_factory=list)
    #: resolved output path(s)
    output_paths: list[str] = field(default_factory=list)
    #: resolved operator parameters (for code generation)
    resolved_params: dict[str, Any] = field(default_factory=dict)
    num_reducers: Optional[int] = None


@dataclass
class WorkflowPlan:
    """The planned job sequence plus the final binding environment."""

    workflow_id: str
    jobs: list[PlannedJob]
    env: Bindings
    input_format_id: Optional[str] = None

    @property
    def final_job(self) -> PlannedJob:
        return self.jobs[-1]

    def job(self, op_id: str) -> PlannedJob:
        for j in self.jobs:
            if j.op_id == op_id:
                return j
        raise WorkflowError(f"plan has no job {op_id!r}")


def _resolved_params(spec: OperatorSpec, env: Bindings) -> dict[str, Any]:
    out = {}
    for name, ps in spec.params.items():
        out[name] = ps.coerce(env.resolve(ps.value))
    return out


def _first_param(params: dict[str, Any], *names: str) -> Any:
    for n in names:
        if n in params and params[n] is not None:
            return params[n]
    return None


class Planner:
    """Turns a :class:`~repro.config.workflow.WorkflowSpec` into a plan."""

    def plan(
        self, spec: WorkflowSpec, args: Optional[dict[str, Any]] = None
    ) -> WorkflowPlan:
        env = bind_arguments(spec, args)
        jobs: list[PlannedJob] = []
        # path -> (op_id, output index) for dataflow wiring
        produced: dict[str, tuple[str, int]] = {}

        for op_spec in spec.operators:
            params = _resolved_params(op_spec, env)
            job = self._plan_operator(op_spec, params, env)
            self._wire_input(job, params, produced)
            for idx, path in enumerate(job.output_paths):
                produced[path] = (job.op_id, idx)
            env.bind(f"{job.op_id}.outputPath", job.output_paths[0])
            if len(job.output_paths) > 1:
                env.bind(f"{job.op_id}.outputPathList", job.output_paths)
            jobs.append(job)

        if not jobs:
            raise WorkflowError(f"workflow {spec.id!r} planned no jobs")
        input_fmt = None
        for ps in spec.arguments.values():
            if ps.format and ps.name.lower().startswith("input"):
                input_fmt = ps.format
        return WorkflowPlan(
            workflow_id=spec.id, jobs=jobs, env=env, input_format_id=input_fmt
        )

    # -- per-operator planning -------------------------------------------------

    def _plan_operator(
        self, spec: OperatorSpec, params: dict[str, Any], env: Bindings
    ) -> PlannedJob:
        kind = spec.operator.strip().lower()
        if kind == "sort":
            return self._plan_sort(spec, params, env)
        if kind == "group":
            return self._plan_group(spec, params, env)
        if kind == "split":
            return self._plan_split(spec, params, env)
        if kind == "distribute":
            return self._plan_distribute(spec, params, env)
        raise WorkflowError(
            f"operator {spec.id!r} uses unknown operator type {spec.operator!r}"
        )

    def _num_reducers(self, spec: OperatorSpec, env: Bindings) -> Optional[int]:
        raw = spec.attrs.get("num_reducers")
        if raw is None:
            return None
        return int(env.resolve(raw))

    def _plan_sort(self, spec, params, env) -> PlannedJob:
        key = _first_param(params, "key", "keyId")
        if not key:
            raise WorkflowError(f"sort operator {spec.id!r} declares no key")
        ascending = True
        flag = _first_param(params, "flag")
        if flag is not None:
            ascending = int(flag) == -1
        asc = _first_param(params, "ascending")
        if asc is not None:
            ascending = bool(asc) if isinstance(asc, bool) else str(asc).lower() == "true"
        op = Sort(key=str(key), ascending=ascending)
        out = _first_param(params, "outputPath", "ouputPath") or f"/tmp/{spec.id}"
        return PlannedJob(
            op_id=spec.id,
            operator_name="Sort",
            operator=op,
            source=None,
            output_paths=[str(out)],
            resolved_params=params,
            num_reducers=self._num_reducers(spec, env),
        )

    def _plan_group(self, spec, params, env) -> PlannedJob:
        key = _first_param(params, "key", "keyId")
        if not key:
            raise WorkflowError(f"group operator {spec.id!r} declares no key")
        addons = []
        for a in spec.addons:
            addon_op = get_addon(a.operator)
            attr = a.attr or a.operator
            value_field = a.value
            addons.append((addon_op, attr, value_field))
            # expose the attribute for later `$opid.$attr` references
            env.bind(f"{spec.id}.{attr}", attr)
        out_param = spec.params.get("outputPath")
        output_format = (out_param.format if out_param else None) or "orig"
        op = Group(key=str(key), addons=addons, output_format=output_format)
        out = _first_param(params, "outputPath", "ouputPath") or f"/tmp/{spec.id}"
        return PlannedJob(
            op_id=spec.id,
            operator_name="Group",
            operator=op,
            source=None,
            output_paths=[str(out)],
            resolved_params=params,
            num_reducers=self._num_reducers(spec, env),
        )

    def _plan_split(self, spec, params, env) -> PlannedJob:
        key = _first_param(params, "key", "keyId")
        if not key:
            raise WorkflowError(f"split operator {spec.id!r} declares no key")
        policy_text = _first_param(params, "policy", "splitPolicy")
        if not policy_text:
            raise WorkflowError(f"split operator {spec.id!r} declares no policy")
        policy = SplitPolicy.parse(str(policy_text))
        paths_param = spec.params.get("outputPathList")
        paths = params.get("outputPathList")
        if not paths:
            raise WorkflowError(f"split operator {spec.id!r} declares no outputPathList")
        formats = []
        if paths_param is not None and paths_param.format:
            formats = [f.strip() for f in paths_param.format.split(",")]
        if len(paths) != policy.num_outputs:
            raise WorkflowError(
                f"split operator {spec.id!r}: {policy.num_outputs} conditions but "
                f"{len(paths)} output paths"
            )
        op = Split(key=str(key), policy=policy, output_formats=formats)
        return PlannedJob(
            op_id=spec.id,
            operator_name="Split",
            operator=op,
            source=None,
            output_paths=[str(p) for p in paths],
            resolved_params=params,
            num_reducers=self._num_reducers(spec, env),
        )

    def _plan_distribute(self, spec, params, env) -> PlannedJob:
        policy = _first_param(params, "distrPolicy", "policy") or "cyclic"
        nparts = _first_param(params, "numPartitions", "num_partitions")
        if nparts is None:
            raise WorkflowError(
                f"distribute operator {spec.id!r} declares no numPartitions"
            )
        op = Distribute(policy=str(policy), num_partitions=int(nparts))
        out = _first_param(params, "outputPath", "ouputPath") or f"/tmp/{spec.id}"
        return PlannedJob(
            op_id=spec.id,
            operator_name="Distribute",
            operator=op,
            source=None,
            output_paths=[str(out)],
            resolved_params=params,
            num_reducers=self._num_reducers(spec, env),
        )

    # -- dataflow wiring ----------------------------------------------------------

    def _wire_input(
        self,
        job: PlannedJob,
        params: dict[str, Any],
        produced: dict[str, tuple[str, int]],
    ) -> None:
        input_path = _first_param(params, "inputPath", "input", "inputPathList")
        if input_path is None or not produced:
            job.source = None
            return
        input_path = str(input_path)
        if input_path in produced:
            op_id, idx = produced[input_path]
            job.source = op_id
            job.source_outputs = [idx]
            return
        # directory prefix: consume every matching output (hybrid-cut distribute)
        matches = [
            (op_id, idx)
            for path, (op_id, idx) in produced.items()
            if path.startswith(input_path.rstrip("/") + "/") or path.startswith(input_path)
        ]
        if matches:
            sources = {op_id for op_id, _ in matches}
            if len(sources) > 1:
                raise WorkflowError(
                    f"job {job.op_id!r}: input {input_path!r} matches outputs of "
                    f"multiple jobs {sorted(sources)}"
                )
            job.source = matches[0][0]
            job.source_outputs = sorted(idx for _, idx in matches)
            return
        # unmatched: reads the workflow input (first job, or an external path)
        job.source = None
