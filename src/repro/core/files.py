"""File-based end-to-end partitioning.

The paper's generated partitioner is a program from input *files* to
partition *files* (``part-00000`` style, one per partition).  This module
adds that layer on top of the in-memory runtimes: resolve the workflow's
input path argument, read it through the registered schema, execute the
plan, and write one output file per partition in the input's own format
("all data will be unpacked to make sure the output has the same format of
input").
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.config.workflow import WorkflowSpec
from repro.core.runtime import PartitionResult
from repro.errors import WorkflowError
from repro.formats.binary import write_partitions
from repro.formats.records import RecordSchema
from repro.formats.text import write_text

PathLike = Union[str, os.PathLike]


@dataclass
class FilePartitionResult:
    """A :class:`PartitionResult` plus the files it was written to."""

    result: PartitionResult
    output_paths: list[str] = field(default_factory=list)

    @property
    def partitions(self):
        return self.result.partitions

    @property
    def num_partitions(self) -> int:
        return self.result.num_partitions


def find_io_arguments(spec: WorkflowSpec) -> tuple[str, str]:
    """Names of the workflow's input and output path arguments.

    Convention of the paper's configs: the argument with a ``format``
    attribute whose name starts with ``input`` is the input file, and the one
    starting with ``output`` is the output directory.
    """
    input_arg = output_arg = None
    for name, ps in spec.arguments.items():
        if name.lower().startswith("input"):
            input_arg = name
        elif name.lower().startswith("output"):
            output_arg = name
    if input_arg is None or output_arg is None:
        raise WorkflowError(
            f"workflow {spec.id!r} does not declare input/output path arguments"
        )
    return input_arg, output_arg


def load_input_dataset(
    papar: Any,
    spec: WorkflowSpec,
    args: dict[str, Any],
    schema_id: Optional[str] = None,
    memory_budget: Any = None,
) -> tuple[Any, RecordSchema]:
    """Resolve and read the workflow's input file as ``(dataset, schema)``.

    The input path comes from the spec's ``input*`` argument (the paper's
    config convention); with a ``memory_budget`` the file is opened as a
    streamed :class:`~repro.ooc.ChunkedDataset` instead of read into memory.
    Shared by :func:`partition_files` and the daemon's warm start, which
    must agree on how bytes become records.
    """
    input_arg, _ = find_io_arguments(spec)
    if input_arg not in args:
        raise WorkflowError(f"workflow {spec.id!r} needs {input_arg!r} in args")
    fmt_id = schema_id or spec.arguments[input_arg].format
    if not fmt_id:
        raise WorkflowError(
            f"argument {input_arg!r} declares no input format and no schema_id given"
        )
    schema = papar.schema(fmt_id)
    if memory_budget is not None:
        from repro.ooc.budget import MemoryBudget
        from repro.ooc.chunked import ChunkedDataset

        data: Any = ChunkedDataset(
            args[input_arg], schema, MemoryBudget.coerce(memory_budget)
        )
    else:
        data = papar.load_dataset(args[input_arg], fmt_id)
    return data, schema


def write_partition_files(
    output_dir: PathLike,
    result: PartitionResult,
    schema: RecordSchema,
) -> list[str]:
    """Write one ``part-NNNNN`` file per partition in the schema's format."""
    os.makedirs(output_dir, exist_ok=True)
    flats = [p.to_flat() for p in result.partitions]
    if schema.input_format == "binary":
        # partitions may carry added attributes; write them with their own
        # schema but keep the input header convention
        part_schema = flats[0].schema if flats else schema
        header = b"\x00" * part_schema.start_position
        return write_partitions(
            output_dir, [p.records for p in flats], part_schema, header=header
        )
    paths = []
    for i, part in enumerate(flats):
        path = os.path.join(os.fspath(output_dir), f"part-{i:05d}")
        write_text(path, [tuple(r) for r in part.records], part.schema)
        paths.append(path)
    return paths


def partition_files(
    papar: Any,
    workflow: Union[WorkflowSpec, str],
    args: dict[str, Any],
    backend: str = "serial",
    num_ranks: int = 1,
    cluster: Optional[Any] = None,
    schema_id: Optional[str] = None,
    memory_budget: Any = None,
    optimize: bool = False,
    **fault_tolerance: Any,
) -> FilePartitionResult:
    """Read the input file, run the workflow, write the partition files.

    ``args`` must bind the workflow's input path argument to a real file and
    its output path argument to a directory.  ``fault_tolerance`` keywords
    (``faults``, ``checkpoint``, ``retry``, ``chaos_seed``,
    ``deadlock_grace``, plus an observability ``recorder``) are forwarded
    to :meth:`repro.PaPar.run`.

    ``optimize=True`` runs the PAP08x rewrite passes first (see
    ``docs/optimizer.md``); the part files are bit-identical either way —
    pruned runs re-attach the dropped columns before writing.

    With a ``memory_budget``, the input file is *not* read into memory:
    it is opened as a :class:`~repro.ooc.ChunkedDataset` and streamed in
    budget-sized chunks by the runtimes, spilling oversized exchanges to
    run files.
    """
    spec = papar.load_workflow(workflow) if isinstance(workflow, str) else workflow
    input_arg, output_arg = find_io_arguments(spec)
    if input_arg not in args or output_arg not in args:
        raise WorkflowError(
            f"partition_files needs {input_arg!r} and {output_arg!r} in args"
        )
    data, schema = load_input_dataset(
        papar, spec, args, schema_id=schema_id, memory_budget=memory_budget
    )
    result = papar.run(
        spec,
        args,
        data=data,
        backend=backend,
        num_ranks=num_ranks,
        cluster=cluster,
        memory_budget=memory_budget,
        optimize=optimize,
        **fault_tolerance,
    )
    paths = write_partition_files(args[output_arg], result, schema)
    return FilePartitionResult(result=result, output_paths=paths)
