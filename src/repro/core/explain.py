"""Plan explanation: DOT rendering and analytic cost prediction.

Two planner-side tools:

* :func:`plan_to_dot` — the job dataflow as Graphviz DOT text, for
  documentation and debugging of `$path` wiring.
* :func:`estimate_plan_cost` — predicted virtual time of a plan on a given
  cluster *before running it*, from the same cost model the runtimes charge.
  The prediction is per job (compute + shuffle) and its total tracks the
  measured virtual time of an actual run (tested within a small factor),
  which makes "how many nodes do I need?" answerable from the plan alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.model import ClusterModel
from repro.core.planner import WorkflowPlan
from repro.errors import WorkflowError
from repro.ops.distribute import Distribute
from repro.ops.group import Group
from repro.ops.sort import Sort
from repro.ops.split import Split


def _dot_escape(text: str) -> str:
    """Escape ``text`` for use inside a double-quoted DOT string."""
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _dot_quote(text: str) -> str:
    """A double-quoted DOT string; backslashes and quotes are escaped."""
    return f'"{_dot_escape(text)}"'


def plan_to_dot(plan: WorkflowPlan) -> str:
    """Graphviz DOT text of the planned dataflow."""
    lines = [
        f"digraph {_dot_quote(plan.workflow_id)} {{",
        "  rankdir=LR;",
        "  input [shape=oval];",
    ]
    for job in plan.jobs:
        # \n here is the DOT line-break escape, applied after id escaping
        label = f"{_dot_escape(job.op_id)}\\n({_dot_escape(job.operator_name)})"
        lines.append(f'  {_dot_quote(job.op_id)} [shape=box, label="{label}"];')
        src = job.source if job.source else "input"
        lines.append(f"  {_dot_quote(src)} -> {_dot_quote(job.op_id)};")
    final = plan.final_job.op_id
    lines.append("  partitions [shape=oval];")
    lines.append(f"  {_dot_quote(final)} -> partitions;")
    lines.append("}")
    return "\n".join(lines) + "\n"


@dataclass
class JobCostEstimate:
    """Predicted costs of one job on the target cluster."""

    op_id: str
    operator: str
    compute_s: float
    shuffle_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.shuffle_s + self.overhead_s


@dataclass
class PlanCostEstimate:
    """Predicted costs of a whole plan."""

    jobs: list[JobCostEstimate] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return sum(j.total_s for j in self.jobs)

    def breakdown(self) -> str:
        lines = [f"{'job':>12}  {'compute':>10}  {'shuffle':>10}  {'total':>10}"]
        for j in self.jobs:
            lines.append(
                f"{j.op_id:>12}  {j.compute_s:>10.6f}  {j.shuffle_s:>10.6f}  {j.total_s:>10.6f}"
            )
        lines.append(f"{'TOTAL':>12}  {'':>10}  {'':>10}  {self.total_s:>10.6f}")
        return "\n".join(lines)


def estimate_plan_cost(
    plan: WorkflowPlan,
    num_records: int,
    record_bytes: int,
    cluster: ClusterModel,
) -> PlanCostEstimate:
    """Predict the plan's virtual makespan on ``cluster``.

    Model per job (records evenly spread over the ranks):

    * Sort — local sort of ``n/ranks`` records plus one full shuffle;
    * Group — hash/group pass plus one full shuffle;
    * Split — one streaming pass, no shuffle;
    * Distribute — one streaming pass plus one full shuffle.
    """
    if num_records < 0 or record_bytes <= 0:
        raise WorkflowError("need non-negative record count and positive record size")
    ranks = cluster.size
    per_rank = num_records / ranks
    per_rank_bytes = per_rank * record_bytes
    cost = cluster.cost

    def shuffle_time() -> float:
        # pairwise exchange: (ranks-1) messages of per_rank_bytes/ranks each,
        # plus serialization at both ends
        if ranks == 1:
            return 0.0
        cross = per_rank_bytes * (1.0 - 1.0 / ranks)
        latency = (ranks - 1) * cluster.network.latency_s
        return cross / cluster.network.bandwidth_bps + latency + 2 * cost.pack(int(cross))

    estimate = PlanCostEstimate()
    for job in plan.jobs:
        op = job.operator
        overhead = cost.job_overhead
        if isinstance(op, Sort):
            compute = cluster.compute(cost.sort(int(per_rank)))
            shuffle = shuffle_time()
        elif isinstance(op, Group):
            compute = cluster.compute(cost.hash_group(int(per_rank)))
            shuffle = shuffle_time()
        elif isinstance(op, Split):
            compute = cluster.compute(cost.stream(int(per_rank)))
            shuffle = 0.0
        elif isinstance(op, Distribute):
            compute = cluster.compute(cost.stream(int(per_rank)))
            shuffle = shuffle_time()
        else:
            compute = cluster.compute(cost.stream(int(per_rank)))
            shuffle = 0.0
        estimate.jobs.append(
            JobCostEstimate(
                op_id=job.op_id,
                operator=job.operator_name,
                compute_s=compute,
                shuffle_s=shuffle,
                overhead_s=overhead,
            )
        )
    return estimate
