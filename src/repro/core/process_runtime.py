"""Process-backed workflow execution: ``backend="process"``.

:class:`ProcessRuntime` reuses every distributed kernel of
:class:`~repro.core.runtime.MPIRuntime` — sample-sort, range-group,
exclusive-scan distribute — and swaps only the launcher: ranks run as
forked OS processes over the shared-memory fabric of
:mod:`repro.mpi.process_backend`, so the kernels execute in genuine
parallel instead of time-slicing one GIL.

This is the wall-clock path.  The threaded ``backend="mpi"`` remains the
deterministic substrate for chaos engineering and virtual-time studies, so
the features that depend on shared in-process state are rejected *up
front* with a :class:`~repro.errors.ConfigError` instead of crashing
mid-run:

* *simulated* fault injection (``faults=``) — the injector's seeded draw
  streams coordinate through shared memory only threads have (real
  OS-level chaos is available through
  :class:`~repro.mpi.supervisor.CrashAgent` instead);
* ``Communicator.split``/``dup`` additionally raise
  :class:`~repro.errors.MPIError` from the fabric if a custom rank program
  calls them.

Recovery *is* supported: ``checkpoint=`` (a ``process_safe`` store, i.e.
:class:`~repro.fault.DiskCheckpointStore`) and ``retry=`` drive a
**gang-restart** — when the :class:`~repro.mpi.supervisor.Supervisor`
reports a dead or hung rank, the whole gang is torn down (shm segments
swept), the retry backoff is slept for real wall-clock time, and a fresh
gang resumes from the committed checkpoint prefix, replaying only
uncommitted jobs.  The classified crashes land in
``PartitionResult.extra["fault"]["crashes"]``.

Supported everywhere else: cluster models (virtual clocks ride along),
memory budgets (workers spill run files into the driver's spill
directory), and observability — the driver records the plan span and
folds each worker's transport counters into per-rank ``comm.shm_bytes`` /
``comm.pickle_bytes`` counts, while the merged summary lands in
``PartitionResult.extra["perf"]["transport"]``.

This module is imported only when ``backend="process"`` is selected
(pinned by a fresh-interpreter test), so the other backends never pay for
it.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cluster.model import ClusterModel
from repro.core.dataset import Dataset
from repro.core.planner import WorkflowPlan
from repro.core.runtime import MPIRuntime, PartitionResult
from repro.errors import ConfigError
from repro.mpi.comm import Communicator
from repro.mpi.launcher import MPIRun


def _rank_main(
    comm: Communicator,
    runtime: "ProcessRuntime",
    plan: WorkflowPlan,
    input_data: Dataset,
    ooc_spec: Any = None,
    checkpoint: Any = None,
    resume: int = 0,
    fingerprint: str = "",
) -> tuple[dict, Any]:
    """Worker entry point: run the rank program, return (final, perf).

    The thread launcher shares one ``perf_slots`` list across ranks; a
    process cannot, so each worker returns its own counter alongside the
    partition dict and the spawner reassembles the slots.  The checkpoint
    store crosses the fork boundary by value — that is sound only for
    ``process_safe`` stores (disk-backed), which the runtime enforces.
    """
    slots: list = [None] * comm.size
    final = runtime._rank_program(
        comm, plan, input_data, slots, ooc_spec=ooc_spec,
        checkpoint=checkpoint, resume=resume, fingerprint=fingerprint,
    )
    return final, slots[comm.rank]


class ProcessRuntime(MPIRuntime):
    """SPMD execution with ranks as OS processes (zero-copy shm shuffle)."""

    backend_name = "process"

    def __init__(
        self,
        num_ranks: int,
        cluster: Optional[ClusterModel] = None,
        sample_size: int = 512,
        *,
        faults: Any = None,
        chaos_seed: int = 0,
        checkpoint: Any = None,
        retry: Any = None,
        deadlock_grace: Optional[float] = None,
        recorder: Any = None,
        memory_budget: Any = None,
        timeout: float = 600.0,
        hang_timeout: Optional[float] = None,
    ) -> None:
        if faults is not None:
            raise ConfigError(
                "backend='process' does not support faults: "
                "fault injection and recovery need the deterministic threaded "
                "fabric; use backend='mpi' for chaos runs"
            )
        if checkpoint is not None and not getattr(checkpoint, "process_safe", False):
            raise ConfigError(
                "backend='process' needs a process-safe checkpoint store "
                "(DiskCheckpointStore): an in-memory store cannot cross the "
                "fork boundary back to the spawner"
            )
        super().__init__(
            num_ranks,
            cluster,
            sample_size,
            chaos_seed=chaos_seed,
            checkpoint=checkpoint,
            retry=retry,
            deadlock_grace=deadlock_grace,
            recorder=recorder,
            memory_budget=memory_budget,
        )
        #: wall-clock seconds the spawner waits for all workers to finish
        self.timeout = timeout
        #: heartbeat-silence seconds before a live rank is declared hung
        #: (``None`` = the supervisor's default)
        self.hang_timeout = hang_timeout
        self._transport: Optional[dict[str, Any]] = None

    def _execute_spmd(
        self, plan: WorkflowPlan, input_data: Dataset
    ) -> tuple[MPIRun, list, Optional[dict[str, Any]]]:
        from repro.mpi.process_backend import run_mpi_processes

        worker_kwargs: dict[str, Any] = {}
        if self._spill_dir is not None:
            worker_kwargs["ooc_spec"] = (self._ooc_limit, self._spill_dir)
        launch_kwargs: dict[str, Any] = {}
        if self.deadlock_grace is not None:
            launch_kwargs["collect_timeout"] = self.deadlock_grace
        if self.hang_timeout is not None:
            launch_kwargs["hang_timeout"] = self.hang_timeout

        def launch(extra: dict[str, Any]) -> MPIRun:
            return run_mpi_processes(
                _rank_main,
                self.num_ranks,
                cluster=self.cluster,
                args=(self, plan, input_data),
                kwargs={**worker_kwargs, **extra} or None,
                timeout=self.timeout,
                **launch_kwargs,
            )

        if not self.fault_tolerant:
            run = launch({})
            report = None
        else:
            from repro.fault.checkpoint import plan_fingerprint
            from repro.fault.runner import execute_with_recovery

            fingerprint = plan_fingerprint(plan, input_data, self.num_ranks)

            def attempt(resume: int, _start_time: float) -> MPIRun:
                # forked workers read/write the disk store directly; the
                # spawner-side `launch` tears a failed gang down (shm sweep
                # included) before the recovery loop sleeps and retries
                return launch(
                    {
                        "checkpoint": self.checkpoint,
                        "resume": resume,
                        "fingerprint": fingerprint,
                    }
                )

            run, report = execute_with_recovery(
                attempt,
                plan=plan,
                fingerprint=fingerprint,
                size=self.num_ranks,
                store=self.checkpoint,
                retry=self.retry,
                seed=self.chaos_seed,
                recorder=self.recorder,
                wall_clock=True,
            )
        finals = [final for final, _perf in run.results]
        perf_slots = [perf for _final, perf in run.results]
        run.results = finals
        self._transport = run.extra.get("transport")
        return run, perf_slots, report

    def _execute(self, plan: WorkflowPlan, input_data: Dataset) -> PartitionResult:
        result = super()._execute(plan, input_data)
        transport = self._transport
        if transport is not None:
            result.extra["perf"]["transport"] = transport
            if self.recorder is not None:
                for rank, t in transport.get("per_rank", {}).items():
                    self.recorder.count("comm.shm_bytes", t["shm_bytes"], rank=rank)
                    self.recorder.count("comm.pickle_bytes", t["pickle_bytes"], rank=rank)
        return result
