"""Process-backed workflow execution: ``backend="process"``.

:class:`ProcessRuntime` reuses every distributed kernel of
:class:`~repro.core.runtime.MPIRuntime` — sample-sort, range-group,
exclusive-scan distribute — and swaps only the launcher: ranks run as
forked OS processes over the shared-memory fabric of
:mod:`repro.mpi.process_backend`, so the kernels execute in genuine
parallel instead of time-slicing one GIL.

This is the wall-clock path.  The threaded ``backend="mpi"`` remains the
deterministic substrate for chaos engineering and virtual-time studies, so
the features that depend on shared in-process state are rejected *up
front* with a :class:`~repro.errors.ConfigError` instead of crashing
mid-run:

* fault injection / checkpoint / retry (``faults=``, ``checkpoint=``,
  ``retry=``) — the injector and recovery loop coordinate through shared
  memory only threads have;
* ``Communicator.split``/``dup`` additionally raise
  :class:`~repro.errors.MPIError` from the fabric if a custom rank program
  calls them.

Supported everywhere else: cluster models (virtual clocks ride along),
memory budgets (workers spill run files into the driver's spill
directory), and observability — the driver records the plan span and
folds each worker's transport counters into per-rank ``comm.shm_bytes`` /
``comm.pickle_bytes`` counts, while the merged summary lands in
``PartitionResult.extra["perf"]["transport"]``.

This module is imported only when ``backend="process"`` is selected
(pinned by a fresh-interpreter test), so the other backends never pay for
it.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cluster.model import ClusterModel
from repro.core.dataset import Dataset
from repro.core.planner import WorkflowPlan
from repro.core.runtime import MPIRuntime, PartitionResult
from repro.errors import ConfigError
from repro.mpi.comm import Communicator
from repro.mpi.launcher import MPIRun


def _rank_main(
    comm: Communicator,
    runtime: "ProcessRuntime",
    plan: WorkflowPlan,
    input_data: Dataset,
    ooc_spec: Any = None,
) -> tuple[dict, Any]:
    """Worker entry point: run the rank program, return (final, perf).

    The thread launcher shares one ``perf_slots`` list across ranks; a
    process cannot, so each worker returns its own counter alongside the
    partition dict and the spawner reassembles the slots.
    """
    slots: list = [None] * comm.size
    final = runtime._rank_program(comm, plan, input_data, slots, ooc_spec=ooc_spec)
    return final, slots[comm.rank]


class ProcessRuntime(MPIRuntime):
    """SPMD execution with ranks as OS processes (zero-copy shm shuffle)."""

    backend_name = "process"

    def __init__(
        self,
        num_ranks: int,
        cluster: Optional[ClusterModel] = None,
        sample_size: int = 512,
        *,
        faults: Any = None,
        chaos_seed: int = 0,
        checkpoint: Any = None,
        retry: Any = None,
        deadlock_grace: Optional[float] = None,
        recorder: Any = None,
        memory_budget: Any = None,
        timeout: float = 600.0,
    ) -> None:
        unsupported = [
            name
            for name, value in (
                ("faults", faults), ("checkpoint", checkpoint), ("retry", retry)
            )
            if value is not None
        ]
        if unsupported:
            raise ConfigError(
                f"backend='process' does not support {', '.join(unsupported)}: "
                "fault injection and recovery need the deterministic threaded "
                "fabric; use backend='mpi' for chaos runs"
            )
        super().__init__(
            num_ranks,
            cluster,
            sample_size,
            deadlock_grace=deadlock_grace,
            recorder=recorder,
            memory_budget=memory_budget,
        )
        #: wall-clock seconds the spawner waits for all workers to finish
        self.timeout = timeout
        self._transport: Optional[dict[str, Any]] = None

    def _execute_spmd(
        self, plan: WorkflowPlan, input_data: Dataset
    ) -> tuple[MPIRun, list, Optional[dict[str, Any]]]:
        from repro.mpi.process_backend import run_mpi_processes

        kwargs: dict[str, Any] = {}
        if self._spill_dir is not None:
            kwargs["ooc_spec"] = (self._ooc_limit, self._spill_dir)
        run = run_mpi_processes(
            _rank_main,
            self.num_ranks,
            cluster=self.cluster,
            args=(self, plan, input_data),
            kwargs=kwargs or None,
            timeout=self.timeout,
            **(
                {"collect_timeout": self.deadlock_grace}
                if self.deadlock_grace is not None
                else {}
            ),
        )
        finals = [final for final, _perf in run.results]
        perf_slots = [perf for _final, perf in run.results]
        run.results = finals
        self._transport = run.extra.get("transport")
        return run, perf_slots, None

    def _execute(self, plan: WorkflowPlan, input_data: Dataset) -> PartitionResult:
        result = super()._execute(plan, input_data)
        transport = self._transport
        if transport is not None:
            result.extra["perf"]["transport"] = transport
            if self.recorder is not None:
                for rank, t in transport.get("per_rank", {}).items():
                    self.recorder.count("comm.shm_bytes", t["shm_bytes"], rank=rank)
                    self.recorder.count("comm.pickle_bytes", t["pickle_bytes"], rank=rank)
        return result
