"""Column-pruned execution (the applied form of advisory ``PAP083``).

The optimizer's liveness pass (:mod:`repro.analysis.optimize`) decides
*whether* a workflow can run on narrowed records; this module does the
narrowing.  The contract mirrors the paper's "output has the same format
of input" rule:

1. :func:`narrow_dataset` keeps only the live columns plus a synthetic
   ``__papar_rowid`` (the original row index), so every exchange moves
   the narrow payload instead of full records;
2. the unchanged plan runs over the narrow dataset — every operator
   decision (sort keys, group keys, split conditions, distribute
   positions) reads only live columns, so the row routing is identical;
3. :func:`reattach_partition` rebuilds full-width partitions by gathering
   the pruned columns from the held source dataset through the row ids,
   preserving any attribute columns add-ons appended during the run.

The result is bit-identical to the unoptimized run: same rows, same
order, same schema — only the shuffle payload shrank in between.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.dataset import Dataset
from repro.errors import WorkflowError
from repro.formats.records import Field, RecordSchema

#: synthetic column carrying the original row index through the run
ROWID_FIELD = "__papar_rowid"


def narrowed_schema(schema: RecordSchema, live: Iterable[str]) -> RecordSchema:
    """The narrow layout: live fields in schema order plus the row id.

    The narrow schema is binary regardless of the source format — it never
    touches disk, it only rides through the in-memory exchanges — and gets
    a derived id so it can never be confused with (or concatenated into)
    the registered input schema.
    """
    live_set = set(live)
    fields = [f for f in schema.fields if f.name in live_set]
    fields.append(Field(ROWID_FIELD, "long"))
    return RecordSchema(
        id=f"{schema.id}__narrow",
        fields=tuple(fields),
        input_format="binary",
        start_position=0,
    )


def narrow_dataset(data: Dataset, live: Iterable[str]) -> Dataset:
    """Project ``data`` onto the live columns plus the row-id column."""
    if data.is_packed:
        raise WorkflowError("cannot narrow a packed dataset")
    schema = narrowed_schema(data.schema, live)
    records = np.empty(len(data.records), dtype=schema.dtype)
    for f in schema.fields[:-1]:
        records[f.name] = data.records[f.name]
    records[ROWID_FIELD] = np.arange(len(data.records), dtype=np.int64)
    return Dataset.from_array(schema, records)


def reattach_partition(part: Dataset, source: Dataset, live: Iterable[str]) -> Dataset:
    """Rebuild one full-width partition from its narrow counterpart.

    ``part`` is a partition the runtime produced from a narrowed dataset
    (possibly packed, possibly carrying add-on attribute columns);
    ``source`` is the original full-width dataset.  Pruned columns are
    gathered from ``source`` by row id; attribute columns the run appended
    are copied through in their run order, so the result matches what the
    unoptimized run would have produced byte for byte.
    """
    flat = part.to_flat()
    live_set = set(live)
    appended = [
        f
        for f in flat.schema.fields
        if f.name != ROWID_FIELD and f.name not in live_set
    ]
    full_schema = source.schema
    for f in appended:
        full_schema = full_schema.with_field(f.name, f.type)
    rowids = flat.records[ROWID_FIELD].astype(np.int64)
    records = np.empty(len(flat.records), dtype=full_schema.dtype)
    for f in source.schema.fields:
        records[f.name] = source.records[f.name][rowids]
    for f in appended:
        records[f.name] = flat.records[f.name]
    return Dataset.from_array(full_schema, records)
