"""The MapReduce backend: workflows as literal map/shuffle/reduce jobs.

Where :class:`~repro.core.runtime.MPIRuntime` implements each operator with
raw MPI exchanges, this backend phrases every operator exactly as the
paper's Figures 9 and 11 do — as an MR-MPI job with an explicit *temporary
reduce-key*:

* **Sort** (Figure 9, job 1): mappers emit ``(sampled-range-key, record)``,
  the shuffle routes by key range, reducers sort by the user key and strip
  the reduce-key.
* **Group** (Figure 11, job 1): mappers emit ``(group-key, record)``,
  reducers group, run the add-ons (e.g. ``count`` -> ``indegree``) and
  ``pack`` the output.
* **Split** (Figure 11, job 2): a map-only job routing entries by the split
  policy; no shuffle is needed because routing is local.
* **Distribute** (Figures 9/11, last job): mappers compute each entry's
  target partition from the permutation formalization and emit
  ``(partition-id, entry)`` — "the reducer id is used as the reduce-key";
  reducers strip the reduce-key and write their partition.

The output partitions are bit-identical to the other two backends (tested),
which is the point: the three backends are the paper's three mappings of one
formalization.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.cluster.model import ClusterModel
from repro.core.dataset import Dataset, concat
from repro.core.planner import PlannedJob, WorkflowPlan
from repro.core.runtime import (
    PartitionResult,
    RecoveringRuntimeMixin,
    SerialRuntime,
    _dataset_rows_per_rank,
    policy_partition_ids,
)
from repro.errors import WorkflowError
from repro.fault.checkpoint import CheckpointStore, job_key
from repro.fault.retry import RetryPolicy
from repro.mapreduce.columnar import PerfCounters, bucketize
from repro.mapreduce.engine import MRMPIEngine
from repro.mapreduce.partitioner import ExplicitPartitioner
from repro.mapreduce.sampling import sample_key_ranges
from repro.mpi import SUM
from repro.mpi.comm import Communicator
from repro.ops.distribute import Distribute
from repro.ops.group import Group
from repro.ops.sort import Sort
from repro.ops.split import Split

if TYPE_CHECKING:  # pragma: no cover - typing only; obs stays a lazy import
    from repro.obs.span import Recorder


class MapReduceRuntime(RecoveringRuntimeMixin):
    """Executes a workflow plan as a sequence of MR-MPI jobs."""

    def __init__(
        self,
        num_ranks: int,
        cluster: Optional[ClusterModel] = None,
        sample_size: int = 512,
        *,
        faults: Any = None,
        chaos_seed: int = 0,
        checkpoint: Optional[CheckpointStore] = None,
        retry: Optional[RetryPolicy] = None,
        deadlock_grace: Optional[float] = None,
        recorder: Optional["Recorder"] = None,
        memory_budget: Any = None,
    ) -> None:
        if cluster is not None and cluster.size != num_ranks:
            raise WorkflowError(
                f"cluster model has {cluster.size} ranks, runtime asked for {num_ranks}"
            )
        self.num_ranks = num_ranks
        self.cluster = cluster
        self.sample_size = sample_size
        self._init_fault_tolerance(faults, chaos_seed, checkpoint, retry, deadlock_grace)
        self._init_observability(recorder)
        self._init_ooc(memory_budget)

    def execute(self, plan: WorkflowPlan, input_data: Dataset) -> PartitionResult:
        self._ooc_setup()
        try:
            return self._execute(plan, input_data)
        finally:
            self._ooc_teardown()

    def _execute(self, plan: WorkflowPlan, input_data: Dataset) -> PartitionResult:
        if self.recorder is None:
            run, perf_slots, fault_report = self._execute_spmd(plan, input_data)
        else:
            with self.recorder.span(
                f"plan:{plan.workflow_id}",
                category="plan",
                attrs={"backend": "mapreduce", "ranks": self.num_ranks},
            ) as root:
                self._obs_root = root
                try:
                    run, perf_slots, fault_report = self._execute_spmd(plan, input_data)
                finally:
                    self._obs_root = None
        merged: dict[int, Dataset] = {}
        for rank_out in run.results:
            merged.update(rank_out)
        extra: dict[str, Any] = {"perf": PerfCounters.merge_ranks(perf_slots).summary()}
        if fault_report is not None:
            extra["fault"] = fault_report
        self._finish_observability(extra, fault_report)
        return PartitionResult(
            partitions=[merged[p] for p in sorted(merged)],
            elapsed=run.elapsed,
            bytes_moved=run.bytes_moved,
            messages=run.messages,
            extra=extra,
        )

    # -- per-rank program ---------------------------------------------------

    def _rank_program(
        self,
        comm: Communicator,
        plan: WorkflowPlan,
        input_data: Dataset,
        perf_slots: list,
        checkpoint: Optional[CheckpointStore] = None,
        resume: int = 0,
        fingerprint: str = "",
        recorder: Optional["Recorder"] = None,
        obs_root: Any = None,
        ooc_spec: Any = None,
    ) -> dict[int, Dataset]:
        perf = PerfCounters()
        comm.recorder = recorder
        ctx = None
        if ooc_spec is not None:
            from repro.ooc.budget import MemoryBudget
            from repro.ooc.spill import OOCContext

            limit, spill_dir = ooc_spec
            ctx = OOCContext(MemoryBudget(limit), spill_dir, rank=comm.rank)
        engine = MRMPIEngine(comm, perf=perf, recorder=recorder)
        engine.ooc = ctx
        local: Any = _dataset_rows_per_rank(input_data, comm.rank, comm.size)
        outputs: dict[str, Any] = {}
        final: Any = None
        for i, job in enumerate(plan.jobs):
            if i < resume:
                saved = checkpoint.load(job_key(fingerprint, i, job.op_id, comm.rank))
                final = saved["output"]
                outputs[job.op_id] = final
                comm.clock.merge(saved["clock"])
                if recorder is not None:
                    recorder.instant(
                        f"restored:{job.op_id}", category="checkpoint",
                        rank=comm.rank, clock=comm.clock,
                    )
                continue
            source = SerialRuntime._job_input(job, i, plan, outputs, local)
            comm.check_fault(i, "before")
            job_mark = ctx.manifest_mark() if ctx is not None else 0
            span = (
                recorder.span(
                    job.op_id, category="job", rank=comm.rank, clock=comm.clock,
                    parent=obs_root,
                    attrs={"job_index": i, "operator": job.operator_name.lower()},
                )
                if recorder is not None
                else nullcontext()
            )
            with perf.phase(job.operator_name.lower(), clock=comm.clock), span:
                final = self._run_job(engine, job, source, ctx)
            outputs[job.op_id] = final
            comm.check_fault(i, "after")
            if checkpoint is not None:
                payload = {"output": final, "clock": comm.clock.now}
                if ctx is not None:
                    payload["ooc"] = {"manifests": ctx.manifests_since(job_mark)}
                checkpoint.save(
                    job_key(fingerprint, i, job.op_id, comm.rank), payload
                )
        if ctx is not None:
            ctx.fold_into(perf)
        perf_slots[comm.rank] = perf
        if not isinstance(final, dict):
            raise WorkflowError(
                f"workflow {plan.workflow_id!r} must end with a Distribute job"
            )
        return final

    def _run_job(
        self, engine: MRMPIEngine, job: PlannedJob, source: Any, ctx: Any = None
    ) -> Any:
        if ctx is not None:
            return self._run_job_ooc(engine, job, source, ctx)
        op = job.operator
        if isinstance(op, Sort):
            return self._sort_job(engine, op, source, num_reducers=job.num_reducers)
        if isinstance(op, Group):
            return self._group_job(engine, op, source)
        if isinstance(op, Split):
            engine.charge_job_overhead()
            return op.apply_local(source)
        if isinstance(op, Distribute):
            return self._distribute_job(engine, op, source)
        return op.apply_local(source)

    def _run_job_ooc(
        self, engine: MRMPIEngine, job: PlannedJob, source: Any, ctx: Any
    ) -> Any:
        """Budget-aware twin of ``_run_job``: spills when the budget demands.

        The in-memory job methods charge their own job overhead, so the
        spilled paths pass ``charge_entry`` to charge it exactly once per
        job either way.
        """
        from repro.ooc.exchange import (
            ensure_dataset,
            ooc_distribute_exchange,
            ooc_group_exchange,
            ooc_sort_exchange,
        )

        comm = engine.comm
        op = job.operator
        if isinstance(op, Sort):
            return ooc_sort_exchange(
                comm, op, source, engine.perf, ctx,
                sample_size=self.sample_size,
                reducers=job.num_reducers or comm.size,
                fallback=lambda ds: self._sort_job(
                    engine, op, ds, num_reducers=job.num_reducers
                ),
                charge_entry=engine.charge_job_overhead,
            )
        if isinstance(op, Group):
            return ooc_group_exchange(
                comm, op, source, engine.perf, ctx,
                sample_size=self.sample_size,
                fallback=lambda ds: self._group_job(engine, op, ds),
                charge_entry=engine.charge_job_overhead,
            )
        if isinstance(op, Split):
            engine.charge_job_overhead()
            return op.apply_local(ensure_dataset(source))
        if isinstance(op, Distribute):
            # the in-memory streams inside the exchange never charge the
            # overhead themselves, so charge it here exactly once
            engine.charge_job_overhead()
            reducer_part = ExplicitPartitioner(op.num_partitions)
            return ooc_distribute_exchange(
                comm, op, source, engine.perf, ctx,
                dest_of=lambda p: reducer_part(p) % comm.size,
                backend="MapReduce",
            )
        return op.apply_local(ensure_dataset(source))

    # -- Sort as a MapReduce job (Figure 9, job 1) -----------------------------

    def _sort_job(
        self, engine: MRMPIEngine, op: Sort, data: Dataset, num_reducers: Optional[int] = None
    ) -> Dataset:
        engine.charge_job_overhead()
        comm = engine.comm
        keys = np.asarray(data.column(op.key))
        sort_keys = keys if op.ascending else -keys
        # the workflow may pin the reducer count (Figure 8: num_reducers=3);
        # reducers map onto ranks contiguously so rank-major order stays
        # globally sorted regardless of the reducer count
        reducers = num_reducers or comm.size
        boundaries = sample_key_ranges(
            comm, sort_keys, num_reducers=reducers, sample_size=self.sample_size
        )
        # map: tag every entry with its sampled-range reduce-key and shuffle
        reducer_of = np.searchsorted(np.asarray(boundaries), sort_keys, side="left")
        owners = (reducer_of * comm.size) // reducers
        chunks = self._exchange_chunks(comm, data, owners, engine.perf)
        received = concat(chunks) if len(chunks) > 1 else chunks[0]
        # reduce: sort by the user key, strip the temporary reduce-key
        return op.apply_local(received)

    # -- Group as a MapReduce job (Figure 11, job 1) ------------------------------

    def _group_job(self, engine: MRMPIEngine, op: Group, data: Dataset) -> Dataset:
        engine.charge_job_overhead()
        comm = engine.comm
        keys = np.asarray(data.column(op.key))
        boundaries = sample_key_ranges(
            comm, keys, num_reducers=comm.size, sample_size=self.sample_size
        )
        owners = np.searchsorted(np.asarray(boundaries), keys, side="left")
        chunks = self._exchange_chunks(comm, data, owners, engine.perf)
        received = concat(chunks) if len(chunks) > 1 else chunks[0]
        return op.apply_local(received)

    # -- Distribute as a MapReduce job (Figures 9/11, last job) --------------------

    def _distribute_job(
        self, engine: MRMPIEngine, op: Distribute, source: Any
    ) -> dict[int, Dataset]:
        engine.charge_job_overhead()
        comm = engine.comm
        streams = [source] if isinstance(source, Dataset) else list(source)
        num_p = op.num_partitions
        reducer_part = ExplicitPartitioner(num_p)
        collected: dict[int, list[tuple[int, int, Dataset]]] = {}
        for stream_idx, stream in enumerate(streams):
            n_local = len(stream)
            offset = comm.exscan(n_local, SUM, identity=0)
            global_idx = np.arange(n_local, dtype=np.int64) + offset
            owners_part = self._partition_ids(op, comm, global_idx, n_local)
            # map: the partition id is the temporary reduce-key; one grouped
            # take per non-empty partition (shared bucketize kernel)
            outboxes: list[list[tuple[int, int, Any]]] = [[] for _ in range(comm.size)]
            for p, idx in enumerate(bucketize(owners_part, num_p)):
                if not len(idx):
                    continue
                chunk = stream.take(idx)
                if engine.perf is not None:
                    engine.perf.count_move(len(idx), chunk.nbytes)
                dest_rank = reducer_part(p) % comm.size
                outboxes[dest_rank].append((p, int(global_idx[idx[0]]), chunk))
            if comm.recorder is not None:
                with comm.recorder.span(
                    "distribute-shuffle", category="shuffle",
                    rank=comm.rank, clock=comm.clock,
                    attrs={"stream": stream_idx, "records": n_local},
                ):
                    inboxes = comm.alltoall(outboxes)
            else:
                inboxes = comm.alltoall(outboxes)
            for box in inboxes:
                for p, first_idx, chunk in box:
                    collected.setdefault(p, []).append((stream_idx, first_idx, chunk))
        # reduce: strip the reduce-key, emit each owned partition
        result: dict[int, Dataset] = {}
        owned = range(comm.rank, num_p, comm.size)
        if not owned:
            return result
        empty: Any = None
        for p in owned:
            chunks = collected.get(p)
            if not chunks:
                if empty is None:
                    empty = streams[0].take(np.empty(0, dtype=np.int64)).to_flat()
                result[p] = empty
                continue
            chunks.sort(key=lambda t: (t[0], t[1]))
            flat = [c.to_flat() for _, _, c in chunks]
            result[p] = concat(flat) if len(flat) > 1 else flat[0]
        return result

    def _partition_ids(
        self, op: Distribute, comm: Communicator, global_idx: np.ndarray, n_local: int
    ) -> np.ndarray:
        total = comm.allreduce(n_local, SUM)
        return policy_partition_ids(op, global_idx, total, backend="MapReduce")

    # -- shuffle helper ------------------------------------------------------------

    @staticmethod
    def _exchange_chunks(
        comm: Communicator,
        data: Dataset,
        owners: np.ndarray,
        perf: Optional[PerfCounters] = None,
    ) -> list[Dataset]:
        outboxes = [data.take(idx) for idx in bucketize(owners, comm.size)]
        nbytes = sum(b.nbytes for b in outboxes)
        if perf is not None:
            perf.count_move(len(owners), nbytes)
        if comm.recorder is not None:
            with comm.recorder.span(
                "shuffle", category="shuffle", rank=comm.rank, clock=comm.clock,
                attrs={"records": len(owners), "nbytes": nbytes},
            ):
                inboxes = comm.alltoall(outboxes)
        else:
            inboxes = comm.alltoall(outboxes)
        flats = [b.to_flat() for b in inboxes if len(b)]
        if not flats:
            return [data.take(np.empty(0, dtype=np.int64)).to_flat()]
        return flats
